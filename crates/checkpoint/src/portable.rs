//! The heterogeneous (VM-level) checkpoint codec.
//!
//! The design follows the paper's §4 and its companion TR \[2\]: "in order
//! not to hurt the performance of heterogeneous checkpointing, data is saved
//! in the machine's native representation, with a concise indication of what
//! that representation is. During restart, the checkpointed data is
//! converted to the machine in which the application is restarted."
//!
//! Concretely:
//!
//! * the **header** is architecture-independent (fixed big-endian) and names
//!   the saving machine's representation ([`Arch`]);
//! * the **body** is written with the saving machine's byte order and word
//!   length — saving is a plain memory walk, no conversion;
//! * **restore** reads the header and converts: byte-swaps if endianness
//!   differs, widens/narrows machine words if the word length differs.
//!   Narrowing fails with [`Error::Checkpoint`] if a value does not fit the
//!   destination word — the failure mode real heterogeneous C/R must detect.

use starfish_util::{Error, Result};

use crate::arch::{Arch, Endianness};
use crate::value::CkptValue;

const MAGIC: u32 = 0x5346_564D; // "SFVM"
const VERSION: u8 = 1;

const T_UNIT: u8 = 0;
const T_BOOL: u8 = 1;
const T_INT: u8 = 2;
const T_FLOAT: u8 = 3;
const T_STR: u8 = 4;
const T_BYTES: u8 = 5;
const T_INT_ARR: u8 = 6;
const T_FLOAT_ARR: u8 = 7;
const T_LIST: u8 = 8;
const T_RECORD: u8 = 9;
const T_ZEROS: u8 = 10;

/// What restore had to do to the image (reported to EXPERIMENTS.md tables
/// and charged as conversion time by the runtime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionReport {
    /// Endianness differed: every multi-byte scalar was byte-swapped.
    pub byte_swapped: bool,
    /// Words were widened 32→64.
    pub word_widened: bool,
    /// Words were narrowed 64→32 (each value range-checked).
    pub word_narrowed: bool,
    /// Number of scalar values that required conversion work.
    pub values_converted: u64,
    /// Total body bytes processed.
    pub body_bytes: u64,
}

impl ConversionReport {
    pub fn identical(&self) -> bool {
        !self.byte_swapped && !self.word_widened && !self.word_narrowed
    }
}

// ---- native-representation writer -----------------------------------------

struct NativeWriter {
    arch: Arch,
    buf: Vec<u8>,
}

impl NativeWriter {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32_native(&mut self, v: u32) {
        match self.arch.endian {
            Endianness::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
            Endianness::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
        }
    }

    fn put_u64_native(&mut self, v: u64) {
        match self.arch.endian {
            Endianness::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
            Endianness::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
        }
    }

    /// A machine word: 4 or 8 bytes depending on the saving arch. Errors if
    /// the value cannot be represented on the saving machine at all.
    fn put_word_signed(&mut self, v: i64) -> Result<()> {
        if self.arch.word_bits == 32 {
            let narrowed = i32::try_from(v).map_err(|_| {
                Error::checkpoint(format!(
                    "value {v} does not fit the saving machine's 32-bit word"
                ))
            })?;
            self.put_u32_native(narrowed as u32);
        } else {
            self.put_u64_native(v as u64);
        }
        Ok(())
    }

    /// An unsigned word used for lengths.
    fn put_word_len(&mut self, v: u64) -> Result<()> {
        if self.arch.word_bits == 32 {
            let narrowed = u32::try_from(v)
                .map_err(|_| Error::checkpoint(format!("length {v} exceeds 32-bit word")))?;
            self.put_u32_native(narrowed);
        } else {
            self.put_u64_native(v);
        }
        Ok(())
    }

    fn put_f64_native(&mut self, v: f64) {
        self.put_u64_native(v.to_bits());
    }

    fn put_value(&mut self, v: &CkptValue) -> Result<()> {
        match v {
            CkptValue::Unit => self.put_u8(T_UNIT),
            CkptValue::Bool(b) => {
                self.put_u8(T_BOOL);
                self.put_u8(*b as u8);
            }
            CkptValue::Int(i) => {
                self.put_u8(T_INT);
                self.put_word_signed(*i)?;
            }
            CkptValue::Float(f) => {
                self.put_u8(T_FLOAT);
                self.put_f64_native(*f);
            }
            CkptValue::Str(s) => {
                self.put_u8(T_STR);
                self.put_word_len(s.len() as u64)?;
                self.buf.extend_from_slice(s.as_bytes());
            }
            CkptValue::Bytes(b) => {
                self.put_u8(T_BYTES);
                self.put_word_len(b.len() as u64)?;
                self.buf.extend_from_slice(b);
            }
            CkptValue::IntArray(xs) => {
                self.put_u8(T_INT_ARR);
                self.put_word_len(xs.len() as u64)?;
                for x in xs {
                    self.put_word_signed(*x)?;
                }
            }
            CkptValue::FloatArray(xs) => {
                self.put_u8(T_FLOAT_ARR);
                self.put_word_len(xs.len() as u64)?;
                for x in xs {
                    self.put_f64_native(*x);
                }
            }
            CkptValue::List(vs) => {
                self.put_u8(T_LIST);
                self.put_word_len(vs.len() as u64)?;
                for v in vs {
                    self.put_value(v)?;
                }
            }
            CkptValue::Record(fs) => {
                self.put_u8(T_RECORD);
                self.put_word_len(fs.len() as u64)?;
                for (k, v) in fs {
                    self.put_word_len(k.len() as u64)?;
                    self.buf.extend_from_slice(k.as_bytes());
                    self.put_value(v)?;
                }
            }
            CkptValue::Zeros(n) => {
                self.put_u8(T_ZEROS);
                // Always 8 bytes: region sizes can exceed a 32-bit word even
                // on 32-bit machines (file-backed regions).
                self.put_u64_native(*n);
            }
        }
        Ok(())
    }
}

// ---- converting reader -----------------------------------------------------

struct ConvertingReader<'a> {
    src: Arch,
    dst: Arch,
    buf: &'a [u8],
    pos: usize,
    report: ConversionReport,
}

impl<'a> ConvertingReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::checkpoint(format!(
                "truncated image: need {n} bytes at {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u32_src(&mut self) -> Result<u32> {
        let b: [u8; 4] = self.take(4)?.try_into().unwrap();
        Ok(match self.src.endian {
            Endianness::Little => u32::from_le_bytes(b),
            Endianness::Big => u32::from_be_bytes(b),
        })
    }

    fn get_u64_src(&mut self) -> Result<u64> {
        let b: [u8; 8] = self.take(8)?.try_into().unwrap();
        Ok(match self.src.endian {
            Endianness::Little => u64::from_le_bytes(b),
            Endianness::Big => u64::from_be_bytes(b),
        })
    }

    fn note_scalar(&mut self) {
        if !self.report.identical() {
            self.report.values_converted += 1;
        }
    }

    /// Read a machine word of the *source* arch as a signed value and check
    /// it fits the *destination* word.
    fn get_word_signed(&mut self) -> Result<i64> {
        let v = if self.src.word_bits == 32 {
            self.get_u32_src()? as i32 as i64
        } else {
            self.get_u64_src()? as i64
        };
        if self.dst.word_bits == 32 && i32::try_from(v).is_err() {
            return Err(Error::checkpoint(format!(
                "value {v} from a {}-bit image does not fit the destination's 32-bit word",
                self.src.word_bits
            )));
        }
        self.note_scalar();
        Ok(v)
    }

    fn get_word_len(&mut self) -> Result<u64> {
        let v = if self.src.word_bits == 32 {
            self.get_u32_src()? as u64
        } else {
            self.get_u64_src()?
        };
        self.note_scalar();
        Ok(v)
    }

    fn get_f64(&mut self) -> Result<f64> {
        let bits = self.get_u64_src()?;
        self.note_scalar();
        Ok(f64::from_bits(bits))
    }

    fn get_value(&mut self) -> Result<CkptValue> {
        Ok(match self.get_u8()? {
            T_UNIT => CkptValue::Unit,
            T_BOOL => CkptValue::Bool(match self.get_u8()? {
                0 => false,
                1 => true,
                b => return Err(Error::checkpoint(format!("bad bool byte {b}"))),
            }),
            T_INT => CkptValue::Int(self.get_word_signed()?),
            T_FLOAT => CkptValue::Float(self.get_f64()?),
            T_STR => {
                let n = self.get_word_len()? as usize;
                let raw = self.take(n)?.to_vec();
                CkptValue::Str(
                    String::from_utf8(raw)
                        .map_err(|_| Error::checkpoint("invalid utf-8 in image"))?,
                )
            }
            T_BYTES => {
                let n = self.get_word_len()? as usize;
                CkptValue::Bytes(self.take(n)?.to_vec())
            }
            T_INT_ARR => {
                let n = self.get_word_len()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(Error::checkpoint("array length exceeds image"));
                }
                let mut xs = Vec::with_capacity(n);
                for _ in 0..n {
                    xs.push(self.get_word_signed()?);
                }
                CkptValue::IntArray(xs)
            }
            T_FLOAT_ARR => {
                let n = self.get_word_len()? as usize;
                if n.saturating_mul(8) > self.buf.len() - self.pos {
                    return Err(Error::checkpoint("array length exceeds image"));
                }
                let mut xs = Vec::with_capacity(n);
                for _ in 0..n {
                    xs.push(self.get_f64()?);
                }
                CkptValue::FloatArray(xs)
            }
            T_LIST => {
                let n = self.get_word_len()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(Error::checkpoint("list length exceeds image"));
                }
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(self.get_value()?);
                }
                CkptValue::List(vs)
            }
            T_RECORD => {
                let n = self.get_word_len()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(Error::checkpoint("record length exceeds image"));
                }
                let mut fs = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = self.get_word_len()? as usize;
                    let k = String::from_utf8(self.take(klen)?.to_vec())
                        .map_err(|_| Error::checkpoint("invalid utf-8 field name"))?;
                    fs.push((k, self.get_value()?));
                }
                CkptValue::Record(fs)
            }
            T_ZEROS => CkptValue::Zeros(self.get_u64_src()?),
            t => return Err(Error::checkpoint(format!("unknown value tag {t}"))),
        })
    }
}

// ---- public API -------------------------------------------------------------

/// Serialize `value` in the native representation of `arch`, prefixed by the
/// architecture-independent header.
pub fn encode_portable(value: &CkptValue, arch: Arch) -> Result<Vec<u8>> {
    let mut w = NativeWriter {
        arch,
        buf: Vec::with_capacity(256),
    };
    // Header (always big-endian / fixed layout so any machine can read it).
    w.buf.extend_from_slice(&MAGIC.to_be_bytes());
    w.buf.push(VERSION);
    w.buf.push(match arch.endian {
        Endianness::Little => 0,
        Endianness::Big => 1,
    });
    w.buf.push(arch.word_bits);
    w.put_value(value)?;
    Ok(w.buf)
}

/// Read the representation header of an image without decoding the body.
pub fn peek_arch(img: &[u8]) -> Result<Arch> {
    if img.len() < 7 {
        return Err(Error::checkpoint("image too short for header"));
    }
    let magic = u32::from_be_bytes(img[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(Error::checkpoint("bad image magic"));
    }
    if img[4] != VERSION {
        return Err(Error::checkpoint(format!("unsupported version {}", img[4])));
    }
    let endian = match img[5] {
        0 => Endianness::Little,
        1 => Endianness::Big,
        b => return Err(Error::checkpoint(format!("bad endianness byte {b}"))),
    };
    let word_bits = img[6];
    if word_bits != 32 && word_bits != 64 {
        return Err(Error::checkpoint(format!("bad word bits {word_bits}")));
    }
    Ok(Arch::new("image", "image", endian, word_bits))
}

/// Decode an image on a machine of architecture `dst`, converting the
/// representation as needed.
pub fn decode_portable(img: &[u8], dst: Arch) -> Result<(CkptValue, ConversionReport)> {
    let src = peek_arch(img)?;
    let mut r = ConvertingReader {
        src,
        dst,
        buf: img,
        pos: 7,
        report: ConversionReport {
            byte_swapped: src.endian != dst.endian,
            word_widened: src.word_bits < dst.word_bits,
            word_narrowed: src.word_bits > dst.word_bits,
            values_converted: 0,
            body_bytes: (img.len() - 7) as u64,
        },
    };
    let v = r.get_value()?;
    if r.pos != r.buf.len() {
        return Err(Error::checkpoint(format!(
            "{} trailing bytes in image",
            r.buf.len() - r.pos
        )));
    }
    Ok((v, r.report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MACHINES;

    fn sample() -> CkptValue {
        CkptValue::record(vec![
            ("step", CkptValue::Int(12345)),
            ("pi", CkptValue::Float(std::f64::consts::PI)),
            ("name", CkptValue::Str("jacobi".into())),
            ("flags", CkptValue::Bool(true)),
            ("grid", CkptValue::FloatArray(vec![0.5, -1.25, 1e300])),
            ("idx", CkptValue::IntArray(vec![-1, 0, 2_000_000_000])),
            (
                "nested",
                CkptValue::List(vec![CkptValue::Unit, CkptValue::Bytes(vec![1, 2, 3])]),
            ),
            ("heap", CkptValue::Zeros(1 << 20)),
        ])
    }

    #[test]
    fn same_arch_roundtrip_no_conversion() {
        for arch in MACHINES {
            let img = encode_portable(&sample(), arch).unwrap();
            let (v, rep) = decode_portable(&img, arch).unwrap();
            assert_eq!(v, sample());
            assert!(rep.identical(), "no conversion on {arch}");
            assert_eq!(rep.values_converted, 0);
        }
    }

    /// The Table 2 experiment: every ordered pair of machines can exchange
    /// checkpoints (as long as values fit the destination word).
    #[test]
    fn all_36_arch_pairs_roundtrip() {
        for src in MACHINES {
            let img = encode_portable(&sample(), src).unwrap();
            for dst in MACHINES {
                let (v, rep) = decode_portable(&img, dst).unwrap();
                assert_eq!(v, sample(), "{src} -> {dst}");
                assert_eq!(rep.byte_swapped, src.endian != dst.endian);
            }
        }
    }

    #[test]
    fn endianness_actually_differs_on_the_wire() {
        let le = encode_portable(&CkptValue::Int(0x01020304), MACHINES[0]).unwrap();
        let be = encode_portable(&CkptValue::Int(0x01020304), MACHINES[1]).unwrap();
        assert_ne!(le, be, "LE and BE bodies must differ");
        // Headers differ only in the endianness byte.
        assert_eq!(le[0..5], be[0..5]);
    }

    #[test]
    fn word_narrowing_fails_when_value_too_big() {
        let alpha = MACHINES[5]; // 64-bit
        let i686 = MACHINES[0]; // 32-bit
        let img = encode_portable(&CkptValue::Int(1 << 40), alpha).unwrap();
        let err = decode_portable(&img, i686).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)));
        // But a fitting value narrows fine.
        let img = encode_portable(&CkptValue::Int(-5), alpha).unwrap();
        let (v, rep) = decode_portable(&img, i686).unwrap();
        assert_eq!(v, CkptValue::Int(-5));
        assert!(rep.word_narrowed);
        assert!(rep.values_converted > 0);
    }

    #[test]
    fn saving_oversized_int_on_32bit_machine_fails() {
        let err = encode_portable(&CkptValue::Int(1 << 40), MACHINES[0]).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)));
    }

    #[test]
    fn corrupt_images_rejected() {
        assert!(decode_portable(b"shrt", MACHINES[0]).is_err());
        let mut img = encode_portable(&sample(), MACHINES[0]).unwrap();
        img[0] ^= 0xFF; // break magic
        assert!(decode_portable(&img, MACHINES[0]).is_err());
        let mut img = encode_portable(&sample(), MACHINES[0]).unwrap();
        img.truncate(img.len() - 3);
        assert!(decode_portable(&img, MACHINES[0]).is_err());
        let mut img = encode_portable(&sample(), MACHINES[0]).unwrap();
        img.push(0);
        assert!(decode_portable(&img, MACHINES[0]).is_err());
    }

    #[test]
    fn peek_arch_reads_header_only() {
        let img = encode_portable(&CkptValue::Unit, MACHINES[1]).unwrap();
        let a = peek_arch(&img).unwrap();
        assert_eq!(a.endian, Endianness::Big);
        assert_eq!(a.word_bits, 32);
    }

    #[test]
    fn negative_ints_survive_all_conversions() {
        for src in MACHINES {
            let img =
                encode_portable(&CkptValue::IntArray(vec![-1, i32::MIN as i64]), src).unwrap();
            for dst in MACHINES {
                let (v, _) = decode_portable(&img, dst).unwrap();
                assert_eq!(v, CkptValue::IntArray(vec![-1, i32::MIN as i64]));
            }
        }
    }

    #[test]
    fn floats_bit_exact_across_endianness() {
        let vals = vec![0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1e-300];
        let img = encode_portable(&CkptValue::FloatArray(vals.clone()), MACHINES[1]).unwrap();
        let (v, rep) = decode_portable(&img, MACHINES[0]).unwrap();
        assert!(rep.byte_swapped);
        match v {
            CkptValue::FloatArray(xs) => {
                for (a, b) in xs.iter().zip(&vals) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            _ => panic!("wrong shape"),
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::arch::MACHINES;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = CkptValue> {
        let leaf = prop_oneof![
            Just(CkptValue::Unit),
            any::<bool>().prop_map(CkptValue::Bool),
            // Stay within i32 so every arch can save/restore.
            (i32::MIN..=i32::MAX).prop_map(|v| CkptValue::Int(v as i64)),
            any::<f64>().prop_map(CkptValue::Float),
            ".{0,12}".prop_map(CkptValue::Str),
            proptest::collection::vec(any::<u8>(), 0..32).prop_map(CkptValue::Bytes),
            proptest::collection::vec(i32::MIN..=i32::MAX, 0..8)
                .prop_map(|v| CkptValue::IntArray(v.into_iter().map(|x| x as i64).collect())),
            (0u64..1 << 30).prop_map(CkptValue::Zeros),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(CkptValue::List),
                proptest::collection::vec(("[a-z]{1,6}", inner), 0..4)
                    .prop_map(|fs| { CkptValue::Record(fs) }),
            ]
        })
    }

    fn values_equal_mod_nan(a: &CkptValue, b: &CkptValue) -> bool {
        match (a, b) {
            (CkptValue::Float(x), CkptValue::Float(y)) => x.to_bits() == y.to_bits(),
            (CkptValue::FloatArray(xs), CkptValue::FloatArray(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (CkptValue::List(xs), CkptValue::List(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| values_equal_mod_nan(x, y))
            }
            (CkptValue::Record(xs), CkptValue::Record(ys)) => {
                xs.len() == ys.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .all(|((ka, va), (kb, vb))| ka == kb && values_equal_mod_nan(va, vb))
            }
            _ => a == b,
        }
    }

    proptest! {
        /// Portable round-trip through any pair of Table 2 machines
        /// preserves values exactly (bit-exact for floats).
        #[test]
        fn portable_roundtrip_any_pair(
            v in arb_value(),
            src_i in 0usize..6,
            dst_i in 0usize..6,
        ) {
            let src = MACHINES[src_i];
            let dst = MACHINES[dst_i];
            let img = encode_portable(&v, src).unwrap();
            let (got, _) = decode_portable(&img, dst).unwrap();
            prop_assert!(values_equal_mod_nan(&got, &v));
        }

        /// Decoding never panics on arbitrary garbage.
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_portable(&data, MACHINES[0]);
        }
    }
}
