//! Recovery-line computation for uncoordinated checkpointing.
//!
//! With independent checkpointing, processes snapshot on their own schedule
//! and the system must find, after a failure, the most recent *consistent*
//! global checkpoint — the recovery line \[14,32\]. A global checkpoint is
//! inconsistent if it contains an *orphan* message: one whose receipt is
//! remembered by the receiver's checkpoint but whose send was rolled back.
//! Eliminating orphans can force further rollbacks — the classic *domino
//! effect* \[34,41\], which the `ablation_domino` benchmark quantifies.
//!
//! Model: process `p`'s execution is divided into checkpoint intervals;
//! interval `k` is the execution *after* checkpoint `k` (interval 0 runs
//! from the start to checkpoint 1). "Rolling back to checkpoint `k`" means
//! re-executing from the start of interval `k`. A message logged as
//! `MsgDep { sender, send_interval, receiver, recv_interval }` was sent in
//! the sender's interval `send_interval` and received in the receiver's
//! interval `recv_interval`.

use std::collections::BTreeMap;

use starfish_util::Rank;

/// One logged message dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgDep {
    pub sender: Rank,
    pub send_interval: u64,
    pub receiver: Rank,
    pub recv_interval: u64,
}

/// The computed recovery line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryLine {
    /// Checkpoint index each rank must restart from.
    pub line: BTreeMap<Rank, u64>,
    /// Checkpoints discarded relative to each rank's latest
    /// (`latest[r] - line[r]`), summed — the domino-effect cost.
    pub rolled_back: u64,
    /// Number of fixpoint iterations the algorithm needed.
    pub iterations: u32,
}

impl RecoveryLine {
    pub fn index_of(&self, r: Rank) -> u64 {
        self.line.get(&r).copied().unwrap_or(0)
    }

    /// True when every process restarts from its latest checkpoint (no
    /// domino effect).
    pub fn is_latest(&self) -> bool {
        self.rolled_back == 0
    }
}

/// Compute the recovery line after `failed` ranks are forced back to their
/// latest stored checkpoints.
///
/// `latest` maps each rank to its highest stored checkpoint index (0 = only
/// the initial state exists). `deps` is the message log. The algorithm is
/// the standard rollback-propagation fixpoint: start from everyone's latest
/// checkpoint and repeatedly cut receivers back below any orphaned receive.
/// It terminates because candidate indices only decrease and are bounded by
/// zero; the result is the *maximal* consistent line by the lattice argument
/// of \[32\].
pub fn recovery_line(
    latest: &BTreeMap<Rank, u64>,
    deps: &[MsgDep],
    failed: &[Rank],
) -> RecoveryLine {
    // Candidates start at the latest checkpoint of every process. (For the
    // failed processes, the volatile state is gone, so "latest" is already
    // the best they can do; the entry applies to them identically.)
    let mut line = latest.clone();
    for f in failed {
        line.entry(*f).or_insert(0);
    }
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for d in deps {
            let c_s = line.get(&d.sender).copied().unwrap_or(0);
            let c_r = line.get(&d.receiver).copied().unwrap_or(0);
            // Orphan: the send happens in interval >= c_s (it will be rolled
            // back and re-executed), but the receive is already reflected in
            // the receiver's checkpoint c_r (received in an interval < c_r).
            if d.send_interval >= c_s && d.recv_interval < c_r {
                // Receiver must fall back to a checkpoint not later than the
                // receive interval start.
                let new_cr = d.recv_interval.min(c_r - 1);
                if new_cr < c_r {
                    line.insert(d.receiver, new_cr);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    let rolled_back = latest
        .iter()
        .map(|(r, l)| l.saturating_sub(line.get(r).copied().unwrap_or(0)))
        .sum();
    RecoveryLine {
        line,
        rolled_back,
        iterations,
    }
}

/// Count how many checkpoints each process would keep after pruning to the
/// line (helper for the ablation report).
pub fn discarded_checkpoints(
    latest: &BTreeMap<Rank, u64>,
    line: &RecoveryLine,
) -> BTreeMap<Rank, u64> {
    latest
        .iter()
        .map(|(r, l)| (*r, l.saturating_sub(line.index_of(*r))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latest(pairs: &[(u32, u64)]) -> BTreeMap<Rank, u64> {
        pairs.iter().map(|(r, i)| (Rank(*r), *i)).collect()
    }

    fn dep(s: u32, si: u64, r: u32, ri: u64) -> MsgDep {
        MsgDep {
            sender: Rank(s),
            send_interval: si,
            receiver: Rank(r),
            recv_interval: ri,
        }
    }

    #[test]
    fn no_messages_no_rollback() {
        let l = latest(&[(0, 3), (1, 2)]);
        let rl = recovery_line(&l, &[], &[Rank(0)]);
        assert!(rl.is_latest());
        assert_eq!(rl.index_of(Rank(0)), 3);
        assert_eq!(rl.index_of(Rank(1)), 2);
    }

    #[test]
    fn consistent_messages_no_rollback() {
        // Message sent in interval 0, received in interval 0; both have
        // checkpoints at index 1 taken after the exchange.
        let l = latest(&[(0, 1), (1, 1)]);
        let deps = [dep(0, 0, 1, 0)];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        assert!(rl.is_latest());
    }

    #[test]
    fn orphan_forces_receiver_rollback() {
        // Rank 0 sent in its interval 2 (after its checkpoint 2 = its
        // latest, so the send is rolled back). Rank 1 received it in
        // interval 1 and then took checkpoint 2 (latest): that checkpoint
        // remembers an unsent message.
        let l = latest(&[(0, 2), (1, 2)]);
        let deps = [dep(0, 2, 1, 1)];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        assert_eq!(rl.index_of(Rank(0)), 2);
        assert_eq!(rl.index_of(Rank(1)), 1);
        assert_eq!(rl.rolled_back, 1);
    }

    #[test]
    fn domino_chain_cascades() {
        // Classic staircase: 0 -> 1 -> 2 -> 3, each message orphaned by the
        // previous rollback.
        let l = latest(&[(0, 1), (1, 2), (2, 2), (3, 2)]);
        let deps = [
            dep(0, 1, 1, 1), // rolled-back send (interval 1 >= c_0=1) received before ckpt 2
            dep(1, 1, 2, 1),
            dep(2, 1, 3, 1),
        ];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        assert_eq!(rl.index_of(Rank(1)), 1);
        assert_eq!(rl.index_of(Rank(2)), 1);
        assert_eq!(rl.index_of(Rank(3)), 1);
        assert_eq!(rl.rolled_back, 3);
        assert!(rl.iterations >= 2, "cascade needs multiple passes");
    }

    #[test]
    fn domino_to_initial_state() {
        // Worst case: every checkpoint is orphaned; everyone restarts from
        // the beginning.
        let l = latest(&[(0, 1), (1, 1)]);
        let deps = [
            dep(0, 1, 1, 0), // orphan: kills 1's ckpt 1
            dep(1, 0, 0, 0), // now 1 re-executes interval 0, orphaning 0's receive before ckpt 1
        ];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        assert_eq!(rl.index_of(Rank(0)), 0);
        assert_eq!(rl.index_of(Rank(1)), 0);
        assert_eq!(rl.rolled_back, 2);
    }

    #[test]
    fn unrelated_processes_untouched() {
        let l = latest(&[(0, 5), (1, 4), (2, 7)]);
        // Only 0 and 1 exchange messages; 2 is independent.
        let deps = [dep(0, 5, 1, 3)];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        assert_eq!(rl.index_of(Rank(2)), 7);
        assert_eq!(rl.index_of(Rank(1)), 3);
    }

    #[test]
    fn discarded_counts() {
        let l = latest(&[(0, 2), (1, 2)]);
        let deps = [dep(0, 2, 1, 0)];
        let rl = recovery_line(&l, &deps, &[Rank(0)]);
        let d = discarded_checkpoints(&l, &rl);
        assert_eq!(d[&Rank(0)], 0);
        assert_eq!(d[&Rank(1)], 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The computed line is always consistent: no orphan remains.
        #[test]
        fn line_is_consistent(
            latest_v in proptest::collection::vec(0u64..6, 2..6),
            deps_raw in proptest::collection::vec(
                (0usize..6, 0u64..6, 0usize..6, 0u64..6), 0..40
            ),
        ) {
            let n = latest_v.len();
            let latest: BTreeMap<Rank, u64> = latest_v
                .iter()
                .enumerate()
                .map(|(i, l)| (Rank(i as u32), *l))
                .collect();
            let deps: Vec<MsgDep> = deps_raw
                .into_iter()
                .filter(|(s, _, r, _)| s % n != r % n)
                .map(|(s, si, r, ri)| MsgDep {
                    sender: Rank((s % n) as u32),
                    send_interval: si,
                    receiver: Rank((r % n) as u32),
                    recv_interval: ri,
                })
                .collect();
            let rl = recovery_line(&latest, &deps, &[Rank(0)]);
            // Verify consistency directly.
            for d in &deps {
                let c_s = rl.index_of(d.sender);
                let c_r = rl.index_of(d.receiver);
                prop_assert!(
                    !(d.send_interval >= c_s && d.recv_interval < c_r),
                    "orphan remains: {d:?} against line {:?}", rl.line
                );
            }
            // The line never exceeds the latest checkpoints.
            for (r, l) in &latest {
                prop_assert!(rl.index_of(*r) <= *l);
            }
        }
    }
}
