//! Machine architecture descriptors (paper Table 2).
//!
//! Heterogeneous checkpointing must bridge differences in *data
//! representation* (byte order) and *word length* (paper §4). Each simulated
//! node is assigned an [`Arch`]; a VM-level image records the arch it was
//! saved on, and restore converts. A native image refuses to restore on any
//! arch but its own.

use std::fmt;

use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{Error, Result};

/// Byte order of a machine's data representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    Little,
    Big,
}

impl Endianness {
    pub fn name(self) -> &'static str {
        match self {
            Endianness::Little => "little-endian",
            Endianness::Big => "big-endian",
        }
    }
}

/// One machine type: the tuple the paper's Table 2 lists per tested host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Arch {
    /// Architecture/CPU description, e.g. `"Intel P-II 350 MHz, i686"`.
    pub cpu: &'static str,
    /// Operating system, e.g. `"RedHat 6.1 Linux"`.
    pub os: &'static str,
    pub endian: Endianness,
    /// Machine word length in bits: 32 or 64.
    pub word_bits: u8,
}

impl Arch {
    pub const fn new(
        cpu: &'static str,
        os: &'static str,
        endian: Endianness,
        word_bits: u8,
    ) -> Self {
        Arch {
            cpu,
            os,
            endian,
            word_bits,
        }
    }

    /// Native representations identical? (Then no conversion is needed and
    /// even a native image can restore.)
    pub fn same_representation(&self, other: &Arch) -> bool {
        self.endian == other.endian && self.word_bits == other.word_bits
    }

    /// Largest unsigned value a machine word holds.
    pub fn word_max(&self) -> u64 {
        match self.word_bits {
            32 => u32::MAX as u64,
            _ => u64::MAX,
        }
    }

    /// Stable index into [`MACHINES`] if this is one of the Table 2 hosts.
    pub fn table2_index(&self) -> Option<usize> {
        MACHINES.iter().position(|m| m == self)
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} ({}, {}-bit)",
            self.cpu,
            self.os,
            self.endian.name(),
            self.word_bits
        )
    }
}

/// The six machine types of the paper's Table 2, in table order.
pub const MACHINES: [Arch; 6] = [
    Arch::new(
        "Intel P-II 350 MHz, i686",
        "RedHat 6.1 Linux",
        Endianness::Little,
        32,
    ),
    Arch::new(
        "Sun Ultra Enterprise 3000",
        "SunOS 5.7",
        Endianness::Big,
        32,
    ),
    Arch::new("RS/6000", "AIX 3.2", Endianness::Big, 32),
    Arch::new("Intel P-I, 160 MHz", "FreeBSD 3.2", Endianness::Little, 32),
    Arch::new("Intel P-II, 350 MHz", "Win NT", Endianness::Little, 32),
    Arch::new(
        "Dual Alpha DS20 500 MHz",
        "RedHat 6.2 Linux",
        Endianness::Little,
        64,
    ),
];

/// The default architecture for nodes that do not specify one (the paper's
/// measurement testbed: 300 MHz Pentium-II Linux boxes).
pub const DEFAULT_ARCH: Arch = MACHINES[0];

impl Encode for Arch {
    fn encode(&self, enc: &mut Encoder) {
        // Encoded by Table 2 index when possible, else by raw fields.
        match self.table2_index() {
            Some(i) => {
                enc.put_u8(1);
                enc.put_u8(i as u8);
            }
            None => {
                enc.put_u8(0);
                enc.put_u8(match self.endian {
                    Endianness::Little => 0,
                    Endianness::Big => 1,
                });
                enc.put_u8(self.word_bits);
            }
        }
    }
}

impl Decode for Arch {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.get_u8()? {
            1 => {
                let i = dec.get_u8()? as usize;
                MACHINES
                    .get(i)
                    .copied()
                    .ok_or_else(|| Error::codec(format!("bad arch index {i}")))
            }
            0 => {
                let endian = match dec.get_u8()? {
                    0 => Endianness::Little,
                    1 => Endianness::Big,
                    b => return Err(Error::codec(format!("bad endianness byte {b}"))),
                };
                let word_bits = dec.get_u8()?;
                if word_bits != 32 && word_bits != 64 {
                    return Err(Error::codec(format!("bad word bits {word_bits}")));
                }
                Ok(Arch::new("custom", "custom", endian, word_bits))
            }
            t => Err(Error::codec(format!("bad arch tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::codec::roundtrip;

    #[test]
    fn table2_has_six_machines_with_expected_mix() {
        assert_eq!(MACHINES.len(), 6);
        let big = MACHINES
            .iter()
            .filter(|m| m.endian == Endianness::Big)
            .count();
        assert_eq!(big, 2, "SunOS and AIX are big-endian");
        let w64 = MACHINES.iter().filter(|m| m.word_bits == 64).count();
        assert_eq!(w64, 1, "only the Alpha is 64-bit");
    }

    #[test]
    fn representation_comparison() {
        let linux = MACHINES[0];
        let nt = MACHINES[4];
        let sun = MACHINES[1];
        let alpha = MACHINES[5];
        assert!(linux.same_representation(&nt)); // both LE 32
        assert!(!linux.same_representation(&sun)); // endianness differs
        assert!(!linux.same_representation(&alpha)); // word length differs
    }

    #[test]
    fn word_max_by_width() {
        assert_eq!(MACHINES[0].word_max(), u32::MAX as u64);
        assert_eq!(MACHINES[5].word_max(), u64::MAX);
    }

    #[test]
    fn codec_roundtrip_table2_and_custom() {
        for m in MACHINES {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
        let custom = Arch::new("custom", "custom", Endianness::Big, 64);
        let got = roundtrip(&custom).unwrap();
        assert_eq!(got.endian, Endianness::Big);
        assert_eq!(got.word_bits, 64);
    }

    #[test]
    fn display_mentions_endianness_and_width() {
        let s = format!("{}", MACHINES[1]);
        assert!(s.contains("big-endian"));
        assert!(s.contains("32-bit"));
    }
}
