//! The stable checkpoint store.
//!
//! Models the cluster's shared stable storage (the NFS-mounted checkpoint
//! directory of the paper's testbed): it survives node crashes, so a process
//! restarted on a *different* node finds its images. All daemons share one
//! handle.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_util::{AppId, Rank};

use crate::image::CkptImage;
use crate::recovery::MsgDep;

#[derive(Default)]
struct StoreInner {
    images: HashMap<(AppId, Rank), Vec<CkptImage>>,
    /// Message-dependency log for uncoordinated checkpointing, per app.
    deps: HashMap<AppId, Vec<MsgDep>>,
    /// Images the chaos layer marked torn/corrupt: present on disk but
    /// failing their checksum, so every read path skips them (a torn write
    /// must degrade recovery to an older line, never crash it).
    corrupted: HashSet<(AppId, Rank, u64)>,
}

/// Shared, thread-safe checkpoint storage. Cheap to clone.
#[derive(Clone, Default)]
pub struct CkptStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl CkptStore {
    pub fn new() -> Self {
        CkptStore::default()
    }

    /// Persist an image. Images of one process are kept sorted by index;
    /// re-putting an index replaces it (idempotent retry) and clears any
    /// corruption mark (a fresh write heals the torn one).
    pub fn put(&self, img: CkptImage) {
        let mut g = self.inner.lock();
        g.corrupted.remove(&(img.app, img.rank, img.index));
        let v = g.images.entry((img.app, img.rank)).or_default();
        match v.binary_search_by_key(&img.index, |i| i.index) {
            Ok(pos) => v[pos] = img,
            Err(pos) => v.insert(pos, img),
        }
    }

    /// Mark a stored image torn/corrupt: every read path skips it from now
    /// on, as if its checksum failed on load. Returns false if no such
    /// image exists. Chaos-layer injection point.
    pub fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool {
        let mut g = self.inner.lock();
        let exists = g
            .images
            .get(&(app, rank))
            .is_some_and(|v| v.binary_search_by_key(&index, |i| i.index).is_ok());
        if exists {
            g.corrupted.insert((app, rank, index));
        }
        exists
    }

    /// Latest *readable* image of a process, if any (corrupt ones skipped).
    pub fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage> {
        let g = self.inner.lock();
        g.images.get(&(app, rank)).and_then(|v| {
            v.iter()
                .rev()
                .find(|i| !g.corrupted.contains(&(app, rank, i.index)))
                .cloned()
        })
    }

    /// A specific image by index; `None` if absent or corrupt.
    pub fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage> {
        let g = self.inner.lock();
        if g.corrupted.contains(&(app, rank, index)) {
            return None;
        }
        g.images.get(&(app, rank)).and_then(|v| {
            v.binary_search_by_key(&index, |i| i.index)
                .ok()
                .map(|pos| v[pos].clone())
        })
    }

    /// Index 0 means "initial state" (no stored image); this returns the
    /// highest stored index, or 0.
    pub fn latest_index(&self, app: AppId, rank: Rank) -> u64 {
        self.latest(app, rank).map(|i| i.index).unwrap_or(0)
    }

    /// Highest checkpoint index at which *every* rank of `ranks` has a
    /// readable image — the recovery line of coordinated checkpointing.
    ///
    /// This is deliberately not `min(latest_index)`: with torn images a
    /// rank can hold readable images at {1, 3} while another holds {1, 2},
    /// making min-of-latest 2 — an index the first rank cannot restore.
    /// The chaos harness's `torn-interior-image` regression plan pins this
    /// (the line must be jointly *restorable*, not just jointly reached).
    pub fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64 {
        if ranks.is_empty() {
            return 0;
        }
        let g = self.inner.lock();
        let readable = |r: Rank| -> Vec<u64> {
            g.images
                .get(&(app, r))
                .map(|v| {
                    v.iter()
                        .map(|i| i.index)
                        .filter(|idx| !g.corrupted.contains(&(app, r, *idx)))
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut common: HashSet<u64> = readable(ranks[0]).into_iter().collect();
        for r in &ranks[1..] {
            let set: HashSet<u64> = readable(*r).into_iter().collect();
            common.retain(|idx| set.contains(idx));
            if common.is_empty() {
                return 0;
            }
        }
        common.into_iter().max().unwrap_or(0)
    }

    /// Drop images with index < `keep_from` (garbage collection after a
    /// coordinated checkpoint commits).
    pub fn prune_below(&self, app: AppId, keep_from: u64) {
        let mut g = self.inner.lock();
        for ((a, _), v) in g.images.iter_mut() {
            if *a == app {
                v.retain(|i| i.index >= keep_from);
            }
        }
        g.corrupted
            .retain(|(a, _, idx)| *a != app || *idx >= keep_from);
    }

    /// Delete everything belonging to an application.
    pub fn remove_app(&self, app: AppId) {
        let mut g = self.inner.lock();
        g.images.retain(|(a, _), _| *a != app);
        g.deps.remove(&app);
        g.corrupted.retain(|(a, _, _)| *a != app);
    }

    /// Record a message dependency (uncoordinated checkpointing).
    pub fn log_dep(&self, app: AppId, dep: MsgDep) {
        self.inner.lock().deps.entry(app).or_default().push(dep);
    }

    /// All logged dependencies of an application.
    pub fn deps(&self, app: AppId) -> Vec<MsgDep> {
        self.inner
            .lock()
            .deps
            .get(&app)
            .cloned()
            .unwrap_or_default()
    }

    /// (image count, accounted bytes) across the whole store.
    pub fn stats(&self) -> (usize, u64) {
        let g = self.inner.lock();
        let count = g.images.values().map(|v| v.len()).sum();
        let bytes = g
            .images
            .values()
            .flat_map(|v| v.iter())
            .map(|i| i.total_bytes())
            .sum();
        (count, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MACHINES;
    use crate::image::CkptLevel;
    use crate::value::CkptValue;
    use starfish_util::{Epoch, VirtualTime};

    fn img(rank: u32, index: u64) -> CkptImage {
        CkptImage::capture(
            AppId(1),
            Rank(rank),
            Epoch(0),
            index,
            CkptLevel::Vm { arch: MACHINES[0] },
            &CkptValue::Int(index as i64),
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn put_get_latest() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.put(img(0, 2));
        assert_eq!(s.latest(AppId(1), Rank(0)).unwrap().index, 2);
        assert_eq!(s.get(AppId(1), Rank(0), 1).unwrap().index, 1);
        assert!(s.get(AppId(1), Rank(0), 9).is_none());
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 2);
        assert_eq!(s.latest_index(AppId(1), Rank(7)), 0);
    }

    #[test]
    fn replacing_same_index_is_idempotent() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.put(img(0, 1));
        let (count, _) = s.stats();
        assert_eq!(count, 1);
    }

    #[test]
    fn out_of_order_puts_stay_sorted() {
        let s = CkptStore::new();
        s.put(img(0, 3));
        s.put(img(0, 1));
        s.put(img(0, 2));
        assert_eq!(s.latest(AppId(1), Rank(0)).unwrap().index, 3);
        assert_eq!(s.get(AppId(1), Rank(0), 2).unwrap().index, 2);
    }

    #[test]
    fn latest_common_index_is_min() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.put(img(0, 2));
        s.put(img(1, 1));
        let ranks = [Rank(0), Rank(1)];
        assert_eq!(s.latest_common_index(AppId(1), &ranks), 1);
        // A rank with no checkpoint pins the line at 0.
        let ranks3 = [Rank(0), Rank(1), Rank(2)];
        assert_eq!(s.latest_common_index(AppId(1), &ranks3), 0);
    }

    #[test]
    fn latest_common_index_on_an_empty_store_is_zero() {
        let s = CkptStore::new();
        assert_eq!(s.latest_common_index(AppId(1), &[Rank(0), Rank(1)]), 0);
        // An empty rank list means "no constraint holders": index 0 (start
        // from initial state), never a panic.
        assert_eq!(s.latest_common_index(AppId(1), &[]), 0);
        // A store with images for a *different* app is still empty here.
        s.put(img(0, 5));
        assert_eq!(s.latest_common_index(AppId(2), &[Rank(0)]), 0);
    }

    #[test]
    fn latest_common_index_single_rank_is_its_latest_readable() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.put(img(0, 4));
        assert_eq!(s.latest_common_index(AppId(1), &[Rank(0)]), 4);
        // With the head torn, the single-rank line falls back, matching
        // `latest_index` exactly.
        assert!(s.corrupt_image(AppId(1), Rank(0), 4));
        assert_eq!(s.latest_common_index(AppId(1), &[Rank(0)]), 1);
        assert_eq!(
            s.latest_common_index(AppId(1), &[Rank(0)]),
            s.latest_index(AppId(1), Rank(0))
        );
    }

    #[test]
    fn latest_common_index_interleaved_torn_images() {
        // Readable sets interleave with no overlap above 1:
        //   rank 0: {1, 2, 4} (3 torn), rank 1: {1, 3} (2, 4 torn),
        //   rank 2: {1, 2, 3, 4}.
        // Pairwise mins and min-of-latest all lie: the only jointly
        // readable index is 1.
        let s = CkptStore::new();
        for r in 0..3 {
            for i in 1..=4 {
                s.put(img(r, i));
            }
        }
        assert!(s.corrupt_image(AppId(1), Rank(0), 3));
        assert!(s.corrupt_image(AppId(1), Rank(1), 2));
        assert!(s.corrupt_image(AppId(1), Rank(1), 4));
        let ranks = [Rank(0), Rank(1), Rank(2)];
        assert_eq!(s.latest_common_index(AppId(1), &ranks), 1);
        // Healing rank 1's torn index 4 is not enough (rank 1 still lacks
        // nothing at 4 now, but rank 0 has 4 too — line jumps to 4).
        s.put(img(1, 4));
        assert_eq!(s.latest_common_index(AppId(1), &ranks), 4);
    }

    #[test]
    fn prune_below_garbage_collects() {
        let s = CkptStore::new();
        for i in 1..=4 {
            s.put(img(0, i));
        }
        s.prune_below(AppId(1), 3);
        assert!(s.get(AppId(1), Rank(0), 2).is_none());
        assert!(s.get(AppId(1), Rank(0), 3).is_some());
    }

    #[test]
    fn corrupt_image_degrades_recovery_line_by_one() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.put(img(0, 2));
        s.put(img(1, 1));
        s.put(img(1, 2));
        assert!(s.corrupt_image(AppId(1), Rank(0), 2));
        // Reads skip the torn image: rank 0 falls back to index 1, pulling
        // the recovery line with it — one step back, no domino.
        assert!(s.get(AppId(1), Rank(0), 2).is_none());
        assert_eq!(s.latest(AppId(1), Rank(0)).unwrap().index, 1);
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 1);
        assert_eq!(s.latest_common_index(AppId(1), &[Rank(0), Rank(1)]), 1);
        // Marking something that was never stored reports failure.
        assert!(!s.corrupt_image(AppId(1), Rank(0), 9));
    }

    #[test]
    fn recovery_line_is_jointly_restorable_not_min_of_latest() {
        // rank 0 readable {1, 3} (2 torn), rank 1 readable {1, 2} (3 torn):
        // min-of-latest would claim 2, which rank 0 cannot restore. The
        // line must fall back to 1, the highest index readable by all.
        let s = CkptStore::new();
        for i in 1..=3 {
            s.put(img(0, i));
            s.put(img(1, i));
        }
        assert!(s.corrupt_image(AppId(1), Rank(0), 2));
        assert!(s.corrupt_image(AppId(1), Rank(1), 3));
        let ranks = [Rank(0), Rank(1)];
        let line = s.latest_common_index(AppId(1), &ranks);
        assert_eq!(line, 1);
        for r in ranks {
            assert!(s.get(AppId(1), r, line).is_some(), "line must be readable");
        }
    }

    #[test]
    fn rewriting_a_corrupt_image_heals_it() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        assert!(s.corrupt_image(AppId(1), Rank(0), 1));
        assert!(s.latest(AppId(1), Rank(0)).is_none());
        s.put(img(0, 1)); // checkpoint retry overwrites the torn file
        assert_eq!(s.latest(AppId(1), Rank(0)).unwrap().index, 1);
    }

    #[test]
    fn remove_app_clears_everything() {
        let s = CkptStore::new();
        s.put(img(0, 1));
        s.log_dep(
            AppId(1),
            MsgDep {
                sender: Rank(0),
                send_interval: 1,
                receiver: Rank(1),
                recv_interval: 0,
            },
        );
        s.remove_app(AppId(1));
        assert_eq!(s.stats().0, 0);
        assert!(s.deps(AppId(1)).is_empty());
    }
}
