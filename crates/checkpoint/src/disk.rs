//! Disk timing model for checkpoint images.
//!
//! The paper's testbed used "regular IDE bus and controller" (§5) for native
//! checkpoints; VM-level images are small enough to be absorbed by the
//! buffer cache, which is why Figure 4's absolute times are an order of
//! magnitude below Figure 3's. Both behaviours are modelled as
//! `fixed + size/bandwidth` with constants calibrated to the papers'
//! smallest-point anchors (see DESIGN.md §6 and EXPERIMENTS.md).

use starfish_util::VirtualTime;

/// A simple linear disk model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Fixed per-image overhead (open, seek, sync, metadata).
    pub fixed: VirtualTime,
    /// Sustained write bandwidth, bytes/second.
    pub write_bw: f64,
    /// Sustained read bandwidth, bytes/second (restore path).
    pub read_bw: f64,
}

impl DiskModel {
    /// 1999-era IDE disk writing a native (synchronous) core dump.
    /// Calibrated: 632 KB native image → 0.104061 s on one node (Figure 3).
    /// 0.050 s fixed + 647_168 B / 12 MB/s = 0.1039 s.
    pub fn ide_1999() -> Self {
        DiskModel {
            fixed: VirtualTime::from_millis(50),
            write_bw: 12.0e6,
            read_bw: 14.0e6,
        }
    }

    /// Buffer-cache-absorbed write path used by the small VM-level images.
    /// Calibrated: 260 KB VM image → 0.0077 s on one node (Figure 4).
    /// 0.0033 s fixed + 266_240 B / 60 MB/s = 0.00774 s.
    pub fn vm_buffered() -> Self {
        DiskModel {
            fixed: VirtualTime::from_micros(3300),
            write_bw: 60.0e6,
            read_bw: 60.0e6,
        }
    }

    /// A free disk, for pure protocol-logic tests.
    pub fn instant() -> Self {
        DiskModel {
            fixed: VirtualTime::ZERO,
            write_bw: 0.0,
            read_bw: 0.0,
        }
    }

    /// Virtual time to write an image of `bytes`.
    pub fn write_time(&self, bytes: u64) -> VirtualTime {
        self.fixed + VirtualTime::transfer(bytes, self.write_bw)
    }

    /// Virtual time to read an image of `bytes` back (restart path).
    pub fn read_time(&self, bytes: u64) -> VirtualTime {
        self.fixed + VirtualTime::transfer(bytes, self.read_bw)
    }

    /// Application-visible cost of a *forked* (copy-on-write) checkpoint
    /// \[32,33\]: the process forks, the child writes the image while the
    /// parent computes on. The parent pays only the fork (page-table copy +
    /// COW faults on the write-heavy fraction); the full
    /// [`write_time`](Self::write_time) still elapses in the background and
    /// gates the *next* checkpoint.
    pub fn fork_time(&self, bytes: u64) -> VirtualTime {
        // ~1 ms fork syscall + page-table copy at ~1 GB/s equivalent.
        VirtualTime::from_millis(1) + VirtualTime::transfer(bytes, 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 3 anchor: a 632 KB native image takes ≈ 0.104 s on one node.
    #[test]
    fn figure3_single_node_anchor() {
        let t = DiskModel::ide_1999().write_time(632 * 1024);
        let s = t.as_secs_f64();
        assert!((s - 0.104061).abs() < 0.002, "native 632KB = {s}s");
    }

    /// Figure 4 anchor: a 260 KB VM image takes ≈ 0.0077 s on one node.
    #[test]
    fn figure4_single_node_anchor() {
        let t = DiskModel::vm_buffered().write_time(260 * 1024);
        let s = t.as_secs_f64();
        assert!((s - 0.0077).abs() < 0.0004, "vm 260KB = {s}s");
    }

    /// §5: "the checkpoint time grows linearly with the size".
    #[test]
    fn write_time_linear_in_size() {
        let m = DiskModel::ide_1999();
        let t0 = m.write_time(0).as_nanos() as f64;
        let t1 = m.write_time(10_000_000).as_nanos() as f64;
        let t2 = m.write_time(20_000_000).as_nanos() as f64;
        assert!(((t2 - t1) - (t1 - t0)).abs() < 10.0);
    }

    /// §5: the largest native checkpoint (135 MB) is "on the order of
    /// seconds".
    #[test]
    fn largest_images_order_of_seconds() {
        let native = DiskModel::ide_1999().write_time(135_000_000).as_secs_f64();
        assert!(native > 1.0 && native < 60.0, "native 135MB = {native}s");
        let vm = DiskModel::vm_buffered()
            .write_time(96_000_000)
            .as_secs_f64();
        assert!(vm > 0.5 && vm < 10.0, "vm 96MB = {vm}s");
    }

    #[test]
    fn fork_is_much_cheaper_than_the_write() {
        let m = DiskModel::ide_1999();
        for bytes in [632 * 1024, 10_000_000, 135_000_000u64] {
            assert!(
                m.fork_time(bytes) * 10 < m.write_time(bytes),
                "fork must be an order of magnitude below the write at {bytes}B"
            );
        }
    }

    #[test]
    fn instant_disk_is_free() {
        let m = DiskModel::instant();
        assert_eq!(m.write_time(1 << 30), VirtualTime::ZERO);
        assert_eq!(m.read_time(1 << 30), VirtualTime::ZERO);
    }
}
