//! Pluggable checkpoint storage backends.
//!
//! [`CkptBackend`] is the per-application *policy* (selected at submit time
//! via the daemon config, like the C/R protocol and level); the
//! [`CheckpointStore`] trait is the *mechanism* interface both backends
//! implement:
//!
//! * `disk` — the existing [`CkptStore`] stable store behind the modeled
//!   NFS/IDE disk ([`crate::disk::DiskModel`] charges the timing);
//! * `replica` — the diskless in-memory [`ReplicaStore`]
//!   ([`crate::replica`]), `k` copies of every fragment in peer memory.
//!
//! [`StoreHub`] is what the daemons and runtimes actually hold: one handle
//! that owns both stores plus the per-app policy/placement registry, and
//! routes every call to the app's backend. `From<CkptStore>` keeps the many
//! existing `Daemon::start(…, CkptStore::new())` call sites compiling — a
//! bare disk store lifts into a hub with every app defaulting to `disk`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_util::{AppId, NodeId, Rank, VirtualTime};

use crate::image::CkptImage;
use crate::recovery::MsgDep;
use crate::replica::{FetchReceipt, PutReceipt, RankHealth, ReplicaNet, ReplicaStore};
use crate::store::CkptStore;

/// Which storage backend an application's checkpoints use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CkptBackend {
    /// Stable storage behind the modeled disk (the paper's NFS testbed).
    #[default]
    Disk,
    /// Diskless: fragments replicated to `k` distinct peer nodes' memory.
    Replica { k: u8 },
}

impl CkptBackend {
    /// Parse a mgmt/CLI spelling: `disk`, `replica` (k = 2) or `replica:3`.
    pub fn parse(s: &str) -> Option<CkptBackend> {
        let t = s.trim().to_ascii_lowercase();
        match t.as_str() {
            "disk" => Some(CkptBackend::Disk),
            "replica" => Some(CkptBackend::Replica { k: 2 }),
            _ => {
                let k = t.strip_prefix("replica:")?.parse::<u8>().ok()?;
                (k >= 1).then_some(CkptBackend::Replica { k })
            }
        }
    }
}

impl std::fmt::Display for CkptBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptBackend::Disk => write!(f, "disk"),
            CkptBackend::Replica { k } => write!(f, "replica:{k}"),
        }
    }
}

/// The mechanism interface `disk` and `replica` both provide. Timing-bearing
/// operations (`put`/`fetch` on the replica path) stay on the concrete
/// types — the trait covers the placement-agnostic storage contract that
/// daemons, recovery-line computation and chaos oracles rely on.
pub trait CheckpointStore: Send + Sync {
    fn backend_name(&self) -> &'static str;
    fn put(&self, img: CkptImage, owner: NodeId);
    fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage>;
    fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage>;
    fn latest_index(&self, app: AppId, rank: Rank) -> u64;
    fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64;
    fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool;
    fn prune_below(&self, app: AppId, keep_from: u64);
    fn remove_app(&self, app: AppId);
    fn stats(&self) -> (usize, u64);
    /// Membership hooks: only the replica backend cares.
    fn node_down(&self, _node: NodeId) {}
    fn node_up(&self, _node: NodeId) {}
}

/// The disk backend: the stable [`CkptStore`] (placement-independent).
#[derive(Clone, Default)]
pub struct DiskBackend {
    pub store: CkptStore,
}

impl CheckpointStore for DiskBackend {
    fn backend_name(&self) -> &'static str {
        "disk"
    }
    fn put(&self, img: CkptImage, _owner: NodeId) {
        self.store.put(img);
    }
    fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage> {
        self.store.get(app, rank, index)
    }
    fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage> {
        self.store.latest(app, rank)
    }
    fn latest_index(&self, app: AppId, rank: Rank) -> u64 {
        self.store.latest_index(app, rank)
    }
    fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64 {
        self.store.latest_common_index(app, ranks)
    }
    fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool {
        self.store.corrupt_image(app, rank, index)
    }
    fn prune_below(&self, app: AppId, keep_from: u64) {
        self.store.prune_below(app, keep_from)
    }
    fn remove_app(&self, app: AppId) {
        self.store.remove_app(app)
    }
    fn stats(&self) -> (usize, u64) {
        self.store.stats()
    }
}

/// Replica backend with a fixed `k` and net model: the trait's untimed
/// entry points over a [`ReplicaStore`].
#[derive(Clone)]
pub struct ReplicaBackend {
    pub store: ReplicaStore,
    pub k: u8,
    pub net: ReplicaNet,
}

impl CheckpointStore for ReplicaBackend {
    fn backend_name(&self) -> &'static str {
        "replica"
    }
    fn put(&self, img: CkptImage, owner: NodeId) {
        self.store.put_replicated(img, owner, self.k, &self.net);
    }
    fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage> {
        self.store.get(app, rank, index)
    }
    fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage> {
        self.store.latest(app, rank)
    }
    fn latest_index(&self, app: AppId, rank: Rank) -> u64 {
        self.store.latest_index(app, rank)
    }
    fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64 {
        self.store.latest_common_index(app, ranks)
    }
    fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool {
        self.store.corrupt_image(app, rank, index)
    }
    fn prune_below(&self, app: AppId, keep_from: u64) {
        self.store.prune_below(app, keep_from)
    }
    fn remove_app(&self, app: AppId) {
        self.store.remove_app(app)
    }
    fn stats(&self) -> (usize, u64) {
        self.store.stats()
    }
    fn node_down(&self, node: NodeId) {
        self.store.node_down(node)
    }
    fn node_up(&self, node: NodeId) {
        self.store.node_up(node)
    }
}

#[derive(Clone)]
struct AppPolicy {
    backend: CkptBackend,
    /// rank → node placement, kept current by the daemons on submit and
    /// restart; lets `put` derive the owner node from the image's rank.
    placement: Vec<NodeId>,
}

#[derive(Default)]
struct HubInner {
    apps: HashMap<AppId, AppPolicy>,
}

/// One storage handle for daemons, runtimes and the chaos driver: both
/// backends plus the per-app policy registry. Cheap to clone; clones share
/// state (like the stores themselves).
#[derive(Clone)]
pub struct StoreHub {
    nfs: CkptStore,
    replica: ReplicaStore,
    net: ReplicaNet,
    inner: Arc<Mutex<HubInner>>,
}

impl Default for StoreHub {
    fn default() -> Self {
        StoreHub {
            nfs: CkptStore::new(),
            replica: ReplicaStore::new(),
            net: ReplicaNet::lan_1999(),
            inner: Arc::default(),
        }
    }
}

impl From<CkptStore> for StoreHub {
    /// Lift a bare disk store into a hub (every app defaults to `disk`).
    /// This keeps pre-hub call sites — `Daemon::start(…, CkptStore::new())`
    /// — source-compatible.
    fn from(nfs: CkptStore) -> Self {
        StoreHub {
            nfs,
            ..StoreHub::default()
        }
    }
}

impl StoreHub {
    pub fn new() -> Self {
        StoreHub::default()
    }

    pub fn with_net(net: ReplicaNet) -> Self {
        StoreHub {
            net,
            ..StoreHub::default()
        }
    }

    /// The underlying disk store (figure harnesses and tests that poke the
    /// NFS model directly).
    pub fn nfs(&self) -> &CkptStore {
        &self.nfs
    }

    /// The underlying replica store (chaos driver, status reporting).
    pub fn replica(&self) -> &ReplicaStore {
        &self.replica
    }

    pub fn net(&self) -> ReplicaNet {
        self.net
    }

    /// Register (or update) an app's backend policy and rank placement.
    pub fn set_backend(&self, app: AppId, backend: CkptBackend, placement: Vec<NodeId>) {
        self.inner
            .lock()
            .apps
            .insert(app, AppPolicy { backend, placement });
    }

    /// Update only the placement (after restart/migration re-placement).
    pub fn update_placement(&self, app: AppId, placement: Vec<NodeId>) {
        if let Some(p) = self.inner.lock().apps.get_mut(&app) {
            p.placement = placement;
        }
    }

    pub fn backend_of(&self, app: AppId) -> CkptBackend {
        self.inner
            .lock()
            .apps
            .get(&app)
            .map(|p| p.backend)
            .unwrap_or_default()
    }

    /// The node a rank's pushes originate from, per the registered
    /// placement (`None` when unregistered — disk apps don't need one).
    pub fn owner_of(&self, app: AppId, rank: Rank) -> Option<NodeId> {
        let g = self.inner.lock();
        let p = g.apps.get(&app)?;
        p.placement.get(rank.0 as usize).copied()
    }

    fn dispatch(&self, app: AppId) -> Box<dyn CheckpointStore> {
        match self.backend_of(app) {
            CkptBackend::Disk => Box::new(DiskBackend {
                store: self.nfs.clone(),
            }),
            CkptBackend::Replica { k } => Box::new(ReplicaBackend {
                store: self.replica.clone(),
                k,
                net: self.net,
            }),
        }
    }

    // ---- CkptStore-mirroring surface, routed per app ----------------------

    pub fn put(&self, img: CkptImage) {
        let app = img.app;
        let owner = self.owner_of(app, img.rank).unwrap_or(NodeId(0));
        self.dispatch(app).put(img, owner);
    }

    /// Replica-path put with its timing receipt; falls back to an untimed
    /// disk put (the caller charges its own [`crate::disk::DiskModel`]
    /// time) when the app's backend is `disk`.
    pub fn put_timed(&self, img: CkptImage) -> Option<PutReceipt> {
        let app = img.app;
        match self.backend_of(app) {
            CkptBackend::Disk => {
                self.nfs.put(img);
                None
            }
            CkptBackend::Replica { k } => {
                let owner = self.owner_of(app, img.rank).unwrap_or(NodeId(0));
                Some(self.replica.put_replicated(img, owner, k, &self.net))
            }
        }
    }

    /// Replica-path fetch with its timing receipt; `None` for disk apps
    /// (use [`StoreHub::get`] and charge disk read time) and for
    /// unrecoverable images.
    pub fn fetch_timed(
        &self,
        app: AppId,
        rank: Rank,
        index: u64,
        to: NodeId,
    ) -> Option<FetchReceipt> {
        match self.backend_of(app) {
            CkptBackend::Disk => None,
            CkptBackend::Replica { .. } => self.replica.fetch(app, rank, index, to, &self.net),
        }
    }

    pub fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage> {
        self.dispatch(app).get(app, rank, index)
    }

    pub fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage> {
        self.dispatch(app).latest(app, rank)
    }

    pub fn latest_index(&self, app: AppId, rank: Rank) -> u64 {
        self.dispatch(app).latest_index(app, rank)
    }

    pub fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64 {
        self.dispatch(app).latest_common_index(app, ranks)
    }

    pub fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool {
        self.dispatch(app).corrupt_image(app, rank, index)
    }

    pub fn prune_below(&self, app: AppId, keep_from: u64) {
        self.dispatch(app).prune_below(app, keep_from)
    }

    pub fn remove_app(&self, app: AppId) {
        self.dispatch(app).remove_app(app);
        self.inner.lock().apps.remove(&app);
    }

    pub fn log_dep(&self, app: AppId, dep: MsgDep) {
        // Dependency logs are tiny control records; they stay on the stable
        // store for both backends (the paper logs them with the daemons).
        self.nfs.log_dep(app, dep)
    }

    pub fn deps(&self, app: AppId) -> Vec<MsgDep> {
        self.nfs.deps(app)
    }

    /// Combined (image count, logical bytes) across both backends.
    pub fn stats(&self) -> (usize, u64) {
        let (dc, db) = self.nfs.stats();
        let (rc, rb) = self.replica.stats();
        (dc + rc, db + rb)
    }

    // ---- membership hooks -------------------------------------------------

    pub fn node_down(&self, node: NodeId) {
        self.replica.node_down(node);
    }

    pub fn node_up(&self, node: NodeId) {
        self.replica.node_up(node);
    }

    // ---- status reporting (mgmt `CKPT STATUS`) ----------------------------

    /// Per-rank replication health for a replica app; empty for disk apps.
    pub fn health(&self, app: AppId) -> Vec<RankHealth> {
        match self.backend_of(app) {
            CkptBackend::Disk => Vec::new(),
            CkptBackend::Replica { .. } => self.replica.health(app),
        }
    }

    /// Apps with a registered policy, sorted (mgmt listing).
    pub fn registered_apps(&self) -> Vec<(AppId, CkptBackend)> {
        let g = self.inner.lock();
        let mut v: Vec<(AppId, CkptBackend)> =
            g.apps.iter().map(|(a, p)| (*a, p.backend)).collect();
        v.sort_by_key(|(a, _)| a.0);
        v
    }

    /// Estimated disk-backend recovery time for `bytes` (for the status
    /// line's disk-vs-replica comparison), using the level-appropriate
    /// model the runtime charges.
    pub fn disk_read_estimate(bytes: u64, native: bool) -> VirtualTime {
        let model = if native {
            crate::disk::DiskModel::ide_1999()
        } else {
            crate::disk::DiskModel::vm_buffered()
        };
        model.read_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MACHINES;
    use crate::image::CkptLevel;
    use crate::value::CkptValue;
    use starfish_util::Epoch;

    fn img(app: u32, rank: u32, index: u64) -> CkptImage {
        CkptImage::capture(
            AppId(app),
            Rank(rank),
            Epoch(0),
            index,
            CkptLevel::Vm { arch: MACHINES[0] },
            &CkptValue::Int(index as i64),
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn backend_parse_and_display_roundtrip() {
        assert_eq!(CkptBackend::parse("disk"), Some(CkptBackend::Disk));
        assert_eq!(
            CkptBackend::parse("REPLICA"),
            Some(CkptBackend::Replica { k: 2 })
        );
        assert_eq!(
            CkptBackend::parse("replica:3"),
            Some(CkptBackend::Replica { k: 3 })
        );
        assert_eq!(CkptBackend::parse("replica:0"), None);
        assert_eq!(CkptBackend::parse("tape"), None);
        for b in [CkptBackend::Disk, CkptBackend::Replica { k: 3 }] {
            assert_eq!(CkptBackend::parse(&b.to_string()), Some(b));
        }
    }

    #[test]
    fn hub_defaults_unregistered_apps_to_disk() {
        let hub = StoreHub::new();
        hub.put(img(1, 0, 1));
        assert_eq!(hub.backend_of(AppId(1)), CkptBackend::Disk);
        assert_eq!(hub.nfs().latest_index(AppId(1), Rank(0)), 1);
        assert_eq!(hub.latest_index(AppId(1), Rank(0)), 1);
    }

    #[test]
    fn from_ckpt_store_preserves_existing_contents() {
        let disk = CkptStore::new();
        disk.put(img(1, 0, 1));
        let hub: StoreHub = disk.into();
        assert_eq!(hub.latest_index(AppId(1), Rank(0)), 1);
    }

    #[test]
    fn replica_apps_route_to_peer_memory_and_disk_stays_empty() {
        let hub = StoreHub::new();
        for n in 0..4 {
            hub.node_up(NodeId(n));
        }
        hub.set_backend(
            AppId(2),
            CkptBackend::Replica { k: 2 },
            vec![NodeId(0), NodeId(1)],
        );
        hub.put(img(2, 0, 1));
        hub.put(img(2, 1, 1));
        assert_eq!(hub.nfs().stats().0, 0, "replica puts must not hit disk");
        assert_eq!(hub.latest_index(AppId(2), Rank(0)), 1);
        assert_eq!(hub.latest_common_index(AppId(2), &[Rank(0), Rank(1)]), 1);
        // Survives one node loss at k=2 …
        hub.node_down(NodeId(1));
        assert_eq!(hub.latest_common_index(AppId(2), &[Rank(0), Rank(1)]), 1);
        let r = hub.fetch_timed(AppId(2), Rank(1), 1, NodeId(3)).unwrap();
        assert_eq!(r.img.rank, Rank(1));
        // … and the timed put returns a receipt only on the replica path.
        assert!(hub.put_timed(img(2, 0, 2)).is_some());
        assert!(hub.put_timed(img(9, 0, 1)).is_none());
    }

    #[test]
    fn remove_app_clears_policy_and_data() {
        let hub = StoreHub::new();
        hub.node_up(NodeId(0));
        hub.node_up(NodeId(1));
        hub.set_backend(AppId(3), CkptBackend::Replica { k: 1 }, vec![NodeId(0)]);
        hub.put(img(3, 0, 1));
        hub.remove_app(AppId(3));
        assert_eq!(hub.stats().0, 0);
        assert_eq!(hub.backend_of(AppId(3)), CkptBackend::Disk);
    }
}
