//! Diskless replicated checkpoint store (the `replica` backend).
//!
//! Instead of writing images to the modeled NFS/IDE disk, each rank's image
//! is split into fixed-size fragments and pushed to `k` peer nodes over the
//! fabric (large fragments ride the rendezvous path, paying its extra
//! control RTT). The placement map is a deterministic ring walk over the
//! live membership excluding the owner, so no fragment's replicas co-reside
//! on one node and any `k−1` node losses leave at least one live copy of
//! every fragment. An XOR parity fragment per image (stored on yet more
//! nodes, offset on the same ring) rebuilds exactly one fully lost fragment
//! when losses exceed `k−1` — the ReStore-style fallback.
//!
//! Recovery reassembles the lost rank's image from surviving peers at
//! fabric speed: per-fragment sources are fetched in parallel, so the
//! charged virtual time is the *maximum* per-source-node cost, not the sum.
//! No disk is in the loop in either direction — this is the scale story for
//! frequent checkpointing under heavy traffic.
//!
//! Determinism: everything here is a pure function of the put/fetch/
//! node-up/node-down call sequence; timing is virtual, derived from
//! [`ReplicaNet`]. No wall clock, no entropy.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_util::{AppId, NodeId, Rank, VirtualTime};

use crate::image::CkptImage;

/// Default fragment size: small enough that a lost node's replicas spread
/// over several peers (parallel recovery), large enough that per-fragment
/// control overhead stays negligible.
pub const DEFAULT_FRAG_BYTES: u64 = 256 * 1024;

/// Timing model of the replication fabric: plain numbers, so the store does
/// not depend on `vni`. The canonical constructors for the simulated
/// cluster live in `starfish_mpi::replication`, next to the real rendezvous
/// threshold they must agree with.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaNet {
    /// One-way small-message latency.
    pub latency: VirtualTime,
    /// Sustained point-to-point bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fragments at or above this size ride the rendezvous path and pay
    /// `rndv_rtt` of control handshake on top of the transfer.
    pub rndv_threshold: u64,
    /// Control round-trip of the rendezvous handshake (RTS/CTS).
    pub rndv_rtt: VirtualTime,
    /// Fragment size used when splitting images.
    pub frag_bytes: u64,
}

impl ReplicaNet {
    /// The paper-era testbed fabric: switched Fast Ethernet, ~11 MB/s
    /// sustained, ~120 µs one-way latency. Even at disk-comparable
    /// bandwidth, skipping the IDE model's 50 ms fixed cost and fetching
    /// fragments from several peers in parallel makes recovery far faster.
    pub fn lan_1999() -> Self {
        ReplicaNet {
            latency: VirtualTime::from_micros(120),
            bandwidth: 11.0 * 1024.0 * 1024.0,
            rndv_threshold: 64 * 1024,
            rndv_rtt: VirtualTime::from_micros(240),
            frag_bytes: DEFAULT_FRAG_BYTES,
        }
    }

    /// Zero-cost network for tests that only care about placement logic.
    pub fn instant() -> Self {
        ReplicaNet {
            latency: VirtualTime::ZERO,
            bandwidth: f64::INFINITY,
            rndv_threshold: u64::MAX,
            rndv_rtt: VirtualTime::ZERO,
            frag_bytes: DEFAULT_FRAG_BYTES,
        }
    }

    /// Cost of moving one fragment across one link.
    fn frag_cost(&self, bytes: u64) -> VirtualTime {
        let mut t = self.latency + VirtualTime::transfer(bytes, self.bandwidth);
        if bytes >= self.rndv_threshold {
            t += self.rndv_rtt;
        }
        t
    }
}

/// One fragment's placement: which nodes hold a full copy.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Fragment number within the image (0-based).
    pub seq: u32,
    pub bytes: u64,
    /// Distinct nodes holding a replica, in ring order from the owner.
    pub replicas: Vec<NodeId>,
}

impl Fragment {
    fn live_source(&self, live: &BTreeSet<NodeId>) -> Option<NodeId> {
        self.replicas.iter().copied().find(|n| live.contains(n))
    }
}

/// One replicated image: the logical payload plus its placement map.
#[derive(Debug, Clone)]
struct Stored {
    img: CkptImage,
    owner: NodeId,
    frags: Vec<Fragment>,
    /// XOR parity over all data fragments (size = largest fragment),
    /// placed on the ring after the data replicas.
    parity: Fragment,
    /// True when fewer than `k` distinct peers were live at put time; the
    /// k−1-loss guarantee is void until the next full-strength put.
    under_replicated: bool,
}

/// Receipt of a replicated put: virtual-time cost at the owner's NIC plus
/// accounting for the telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PutReceipt {
    pub cost: VirtualTime,
    /// Data fragments the image was split into (excludes parity).
    pub fragments: u32,
    /// Total bytes pushed to peers (all replicas + parity copies).
    pub replicated_bytes: u64,
    pub under_replicated: bool,
}

/// Receipt of a recovery fetch.
#[derive(Debug, Clone)]
pub struct FetchReceipt {
    pub img: CkptImage,
    /// Virtual time to reassemble: max over source nodes (parallel fetch).
    pub cost: VirtualTime,
    pub fragments_fetched: u32,
    pub bytes_fetched: u64,
    /// Fragments that had to be rebuilt from the XOR parity group.
    pub parity_rebuilds: u32,
}

/// Per-rank replication health, for `CKPT STATUS`.
#[derive(Debug, Clone)]
pub struct RankHealth {
    pub rank: Rank,
    pub index: u64,
    pub owner: NodeId,
    pub fragments: u32,
    /// Minimum live replica count over all fragments.
    pub min_live_replicas: u32,
    pub parity_live: bool,
    pub recoverable: bool,
    pub under_replicated: bool,
}

#[derive(Default)]
struct ReplicaInner {
    live: BTreeSet<NodeId>,
    images: HashMap<(AppId, Rank), Vec<Stored>>,
    corrupted: HashSet<(AppId, Rank, u64)>,
}

/// Shared in-memory replicated checkpoint store. Cheap to clone; one per
/// cluster (it *is* the aggregate of all peers' memories — per-node
/// partitioning is expressed by the placement map plus `node_down`).
#[derive(Clone, Default)]
pub struct ReplicaStore {
    inner: Arc<Mutex<ReplicaInner>>,
}

/// Deterministic placement: walk the sorted live peers (owner excluded)
/// ring starting at the owner's successor; fragment `f`'s `k` replicas are
/// `peers[(f + j) mod n]` for `j in 0..k`. Consecutive `j` give distinct
/// nodes whenever `n ≥ k`; the `f` offset rotates load across peers.
pub fn ring_placement(peers: &[NodeId], frag: u32, k: u8) -> Vec<NodeId> {
    let n = peers.len();
    if n == 0 {
        return Vec::new();
    }
    let take = (k as usize).min(n);
    (0..take).map(|j| peers[(frag as usize + j) % n]).collect()
}

impl ReplicaStore {
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    pub fn node_up(&self, n: NodeId) {
        self.inner.lock().live.insert(n);
    }

    pub fn node_down(&self, n: NodeId) {
        self.inner.lock().live.remove(&n);
    }

    pub fn set_live(&self, nodes: &[NodeId]) {
        self.inner.lock().live = nodes.iter().copied().collect();
    }

    /// A node rejoined after losing its memory (crash + restart): every
    /// replica it used to hold is gone for good, so drop it from all
    /// placement maps *before* marking the node live again. Old images
    /// survive only through their other copies (or parity); new puts may
    /// place fragments on the node as usual.
    pub fn node_wiped(&self, n: NodeId) {
        let mut g = self.inner.lock();
        for v in g.images.values_mut() {
            for s in v.iter_mut() {
                for f in s.frags.iter_mut() {
                    f.replicas.retain(|r| *r != n);
                }
                s.parity.replicas.retain(|r| *r != n);
            }
        }
        g.live.insert(n);
    }

    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.inner.lock().live.iter().copied().collect()
    }

    /// Split `img` into fragments, place `k` replicas of each on distinct
    /// live peers of `owner`, plus an XOR parity fragment, and charge the
    /// owner-side push cost.
    pub fn put_replicated(
        &self,
        img: CkptImage,
        owner: NodeId,
        k: u8,
        net: &ReplicaNet,
    ) -> PutReceipt {
        let mut g = self.inner.lock();
        let peers: Vec<NodeId> = g.live.iter().copied().filter(|n| *n != owner).collect();
        let total = img.total_bytes();
        let frag_bytes = net.frag_bytes.max(1);
        let n_frags = (total.div_ceil(frag_bytes)).max(1) as u32;
        let mut frags = Vec::with_capacity(n_frags as usize);
        let mut largest = 0u64;
        for f in 0..n_frags {
            let bytes = if f + 1 == n_frags {
                total - u64::from(f) * frag_bytes
            } else {
                frag_bytes
            };
            largest = largest.max(bytes);
            frags.push(Fragment {
                seq: f,
                bytes,
                replicas: ring_placement(&peers, f, k),
            });
        }
        // Parity lives one ring step past the last data placement so it
        // lands on different nodes than fragment 0's replicas when n > k.
        let parity = Fragment {
            seq: n_frags,
            bytes: largest,
            replicas: ring_placement(&peers, n_frags, k),
        };
        let under_replicated = peers.len() < k as usize;

        // Owner-side cost: every replica copy leaves through one NIC, so
        // pushes serialize there; per-fragment control costs accumulate.
        let mut cost = VirtualTime::ZERO;
        let mut replicated_bytes = 0u64;
        for fr in frags.iter().chain(std::iter::once(&parity)) {
            let copies = fr.replicas.len() as u64;
            replicated_bytes += fr.bytes * copies;
            for _ in 0..copies {
                cost += net.frag_cost(fr.bytes);
            }
        }

        g.corrupted.remove(&(img.app, img.rank, img.index));
        let key = (img.app, img.rank);
        let stored = Stored {
            owner,
            frags,
            parity,
            under_replicated,
            img,
        };
        let v = g.images.entry(key).or_default();
        match v.binary_search_by_key(&stored.img.index, |s| s.img.index) {
            Ok(pos) => v[pos] = stored,
            Err(pos) => v.insert(pos, stored),
        }
        PutReceipt {
            cost,
            fragments: n_frags,
            replicated_bytes,
            under_replicated,
        }
    }

    /// Can `s` be reassembled from the current live set? Returns the number
    /// of parity rebuilds needed (`0` = every fragment has a live replica,
    /// `1` = exactly one fragment is fully lost but the parity group and
    /// every other fragment survive), or `None` if unrecoverable.
    fn rebuild_plan(s: &Stored, live: &BTreeSet<NodeId>) -> Option<u32> {
        let lost = s
            .frags
            .iter()
            .filter(|f| f.live_source(live).is_none())
            .count();
        match lost {
            0 => Some(0),
            1 if s.parity.live_source(live).is_some() => Some(1),
            _ => None,
        }
    }

    fn readable(g: &ReplicaInner, app: AppId, rank: Rank) -> impl Iterator<Item = &Stored> {
        let live = &g.live;
        let corrupted = &g.corrupted;
        g.images
            .get(&(app, rank))
            .into_iter()
            .flatten()
            .filter(move |s| {
                !corrupted.contains(&(app, rank, s.img.index))
                    && Self::rebuild_plan(s, live).is_some()
            })
    }

    /// Reassemble a specific image on node `to`, charging fabric-speed
    /// recovery cost. `None` if the image is absent, corrupt, or has lost
    /// too many fragments (beyond what parity can rebuild).
    pub fn fetch(
        &self,
        app: AppId,
        rank: Rank,
        index: u64,
        to: NodeId,
        net: &ReplicaNet,
    ) -> Option<FetchReceipt> {
        let g = self.inner.lock();
        if g.corrupted.contains(&(app, rank, index)) {
            return None;
        }
        let v = g.images.get(&(app, rank))?;
        let s = &v[v.binary_search_by_key(&index, |s| s.img.index).ok()?];
        let rebuilds = Self::rebuild_plan(s, &g.live)?;

        // Plan the fetch: each fragment from its first live replica; a lost
        // fragment is rebuilt by XOR-ing the parity copy with every *other*
        // fragment, which this fetch pulls anyway. Per-source costs add
        // (that node's NIC serializes); distinct sources run in parallel,
        // so the reassembly cost is the max per-source total.
        let mut per_source: BTreeMap<NodeId, VirtualTime> = BTreeMap::new();
        let mut fragments_fetched = 0u32;
        let mut bytes_fetched = 0u64;
        let mut charge = |src: NodeId, bytes: u64| {
            *per_source.entry(src).or_insert(VirtualTime::ZERO) += net.frag_cost(bytes);
        };
        for f in &s.frags {
            if let Some(src) = f.live_source(&g.live) {
                // A surviving replica on the recovering node itself is free.
                if src != to {
                    charge(src, f.bytes);
                }
                fragments_fetched += 1;
                bytes_fetched += f.bytes;
            }
        }
        if rebuilds > 0 {
            let src = s.parity.live_source(&g.live).expect("plan checked parity");
            if src != to {
                charge(src, s.parity.bytes);
            }
            fragments_fetched += 1;
            bytes_fetched += s.parity.bytes;
        }
        let cost = per_source
            .values()
            .copied()
            .fold(VirtualTime::ZERO, VirtualTime::max_of);
        Some(FetchReceipt {
            img: s.img.clone(),
            cost,
            fragments_fetched,
            bytes_fetched,
            parity_rebuilds: rebuilds,
        })
    }

    /// A specific image by index, untimed; `None` if absent, corrupt, or
    /// unrecoverable from the live set.
    pub fn get(&self, app: AppId, rank: Rank, index: u64) -> Option<CkptImage> {
        let g = self.inner.lock();
        let img = Self::readable(&g, app, rank)
            .find(|s| s.img.index == index)
            .map(|s| s.img.clone());
        img
    }

    /// Latest recoverable image of a process, if any.
    pub fn latest(&self, app: AppId, rank: Rank) -> Option<CkptImage> {
        let g = self.inner.lock();
        let img = Self::readable(&g, app, rank).last().map(|s| s.img.clone());
        img
    }

    pub fn latest_index(&self, app: AppId, rank: Rank) -> u64 {
        self.latest(app, rank).map(|i| i.index).unwrap_or(0)
    }

    /// Highest index every rank can *reassemble from live peers* — same
    /// joint-restorability contract as [`crate::store::CkptStore`], with
    /// "readable" meaning "recoverable from surviving memory".
    pub fn latest_common_index(&self, app: AppId, ranks: &[Rank]) -> u64 {
        if ranks.is_empty() {
            return 0;
        }
        let g = self.inner.lock();
        let readable =
            |r: Rank| -> HashSet<u64> { Self::readable(&g, app, r).map(|s| s.img.index).collect() };
        let mut common = readable(ranks[0]);
        for r in &ranks[1..] {
            let set = readable(*r);
            common.retain(|idx| set.contains(idx));
            if common.is_empty() {
                return 0;
            }
        }
        common.into_iter().max().unwrap_or(0)
    }

    /// Mark an image torn (chaos injection): reads skip it until re-put.
    pub fn corrupt_image(&self, app: AppId, rank: Rank, index: u64) -> bool {
        let mut g = self.inner.lock();
        let exists = g
            .images
            .get(&(app, rank))
            .is_some_and(|v| v.binary_search_by_key(&index, |s| s.img.index).is_ok());
        if exists {
            g.corrupted.insert((app, rank, index));
        }
        exists
    }

    pub fn prune_below(&self, app: AppId, keep_from: u64) {
        let mut g = self.inner.lock();
        for ((a, _), v) in g.images.iter_mut() {
            if *a == app {
                v.retain(|s| s.img.index >= keep_from);
            }
        }
        g.corrupted
            .retain(|(a, _, idx)| *a != app || *idx >= keep_from);
    }

    pub fn remove_app(&self, app: AppId) {
        let mut g = self.inner.lock();
        g.images.retain(|(a, _), _| *a != app);
        g.corrupted.retain(|(a, _, _)| *a != app);
    }

    /// (image count, logical bytes) — logical image sizes, matching the
    /// disk store's accounting (replica copies are reported separately via
    /// the replication-bytes telemetry counter).
    pub fn stats(&self) -> (usize, u64) {
        let g = self.inner.lock();
        let count = g.images.values().map(|v| v.len()).sum();
        let bytes = g
            .images
            .values()
            .flat_map(|v| v.iter())
            .map(|s| s.img.total_bytes())
            .sum();
        (count, bytes)
    }

    /// Replication health of every rank's *latest* stored image, for the
    /// management plane's `CKPT STATUS`.
    pub fn health(&self, app: AppId) -> Vec<RankHealth> {
        let g = self.inner.lock();
        let mut out: Vec<RankHealth> = g
            .images
            .iter()
            .filter(|((a, _), v)| *a == app && !v.is_empty())
            .map(|((_, rank), v)| {
                let s = v.last().expect("non-empty");
                let live_count =
                    |f: &Fragment| f.replicas.iter().filter(|n| g.live.contains(n)).count() as u32;
                RankHealth {
                    rank: *rank,
                    index: s.img.index,
                    owner: s.owner,
                    fragments: s.frags.len() as u32,
                    min_live_replicas: s.frags.iter().map(live_count).min().unwrap_or(0),
                    parity_live: s.parity.live_source(&g.live).is_some(),
                    recoverable: Self::rebuild_plan(s, &g.live).is_some(),
                    under_replicated: s.under_replicated,
                }
            })
            .collect();
        out.sort_by_key(|h| h.rank);
        out
    }

    /// Placement map of a rank's latest image: `(fragment, bytes, replicas)`
    /// triples plus the parity row, for `CKPT STATUS <app> <rank>` detail.
    pub fn placement(&self, app: AppId, rank: Rank) -> Vec<Fragment> {
        let g = self.inner.lock();
        g.images
            .get(&(app, rank))
            .and_then(|v| v.last())
            .map(|s| {
                let mut frags = s.frags.clone();
                frags.push(s.parity.clone());
                frags
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MACHINES;
    use crate::image::CkptLevel;
    use crate::value::CkptValue;
    use starfish_util::Epoch;

    fn img(rank: u32, index: u64) -> CkptImage {
        CkptImage::capture(
            AppId(1),
            Rank(rank),
            Epoch(0),
            index,
            CkptLevel::Vm { arch: MACHINES[0] },
            &CkptValue::Int(index as i64),
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap()
    }

    fn store(nodes: u32) -> ReplicaStore {
        let s = ReplicaStore::new();
        s.set_live(&(0..nodes).map(NodeId).collect::<Vec<_>>());
        s
    }

    #[test]
    fn ring_placement_is_distinct_and_rotates() {
        let peers: Vec<NodeId> = (1..5).map(NodeId).collect();
        for f in 0..8 {
            let p = ring_placement(&peers, f, 3);
            assert_eq!(p.len(), 3);
            let set: BTreeSet<NodeId> = p.iter().copied().collect();
            assert_eq!(set.len(), 3, "replicas must be on distinct nodes");
        }
        assert_ne!(ring_placement(&peers, 0, 2), ring_placement(&peers, 1, 2));
        // Fewer peers than k: degrade to all peers, never duplicate.
        assert_eq!(ring_placement(&peers[..2], 0, 3).len(), 2);
        assert!(ring_placement(&[], 0, 3).is_empty());
    }

    #[test]
    fn placement_never_includes_the_owner() {
        let s = store(4);
        let r = s.put_replicated(img(0, 1), NodeId(0), 2, &ReplicaNet::lan_1999());
        assert!(!r.under_replicated);
        for f in s.placement(AppId(1), Rank(0)) {
            assert!(!f.replicas.contains(&NodeId(0)), "{f:?}");
            assert_eq!(
                f.replicas.iter().collect::<BTreeSet<_>>().len(),
                f.replicas.len()
            );
        }
    }

    #[test]
    fn survives_any_k_minus_1_node_losses() {
        for k in [2u8, 3] {
            let nodes = 5;
            let s = store(nodes);
            let net = ReplicaNet::lan_1999();
            for r in 0..4u32 {
                s.put_replicated(img(r, 1), NodeId(r % nodes), k, &net);
            }
            // Every (k-1)-subset of nodes.
            let subsets: Vec<Vec<u32>> = match k {
                2 => (0..nodes).map(|a| vec![a]).collect(),
                _ => (0..nodes)
                    .flat_map(|a| ((a + 1)..nodes).map(move |b| vec![a, b]))
                    .collect(),
            };
            for dead in subsets {
                let s2 = store(nodes);
                for r in 0..4u32 {
                    s2.put_replicated(img(r, 1), NodeId(r % nodes), k, &net);
                }
                for d in &dead {
                    s2.node_down(NodeId(*d));
                }
                let ranks: Vec<Rank> = (0..4).map(Rank).collect();
                assert_eq!(
                    s2.latest_common_index(AppId(1), &ranks),
                    1,
                    "k={k} dead={dead:?}"
                );
                for r in ranks {
                    let f = s2.fetch(AppId(1), r, 1, NodeId(4), &net).unwrap();
                    assert_eq!(f.parity_rebuilds, 0, "k−1 losses never need parity");
                    assert_eq!(f.img.index, 1);
                }
            }
        }
    }

    #[test]
    fn parity_rebuilds_one_fully_lost_fragment() {
        // k=1 (single replica) so losing that one node loses the fragment
        // outright; the parity group must carry the rebuild.
        let s = store(4);
        let net = ReplicaNet::lan_1999();
        s.put_replicated(img(0, 1), NodeId(0), 1, &net);
        let frags = s.placement(AppId(1), Rank(0));
        let data = &frags[..frags.len() - 1];
        let parity = frags.last().unwrap();
        let victim = data[0].replicas[0];
        assert!(!parity.replicas.contains(&victim) || data.len() == 1);
        s.node_down(victim);
        let f = s.fetch(AppId(1), Rank(0), 1, victim, &net);
        if parity.replicas.contains(&victim) {
            assert!(f.is_none());
        } else {
            let f = f.unwrap();
            assert!(f.parity_rebuilds >= 1, "{f:?}");
        }
    }

    #[test]
    fn too_many_losses_is_unrecoverable_and_node_up_heals_nothing_stale() {
        let s = store(3); // owner + 2 peers, k=2 ⇒ both peers hold everything
        let net = ReplicaNet::lan_1999();
        s.put_replicated(img(0, 1), NodeId(0), 2, &net);
        s.node_down(NodeId(1));
        s.node_down(NodeId(2));
        assert!(s.get(AppId(1), Rank(0), 1).is_none());
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 0);
        // The node coming back (restart with wiped memory is modeled by the
        // caller re-putting) — here memory is assumed intact on rejoin.
        s.node_up(NodeId(1));
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 1);
    }

    #[test]
    fn node_wiped_forgets_fragments_but_rejoins_live() {
        let s = store(3); // owner + 2 peers, k=2 ⇒ both peers hold everything
        let net = ReplicaNet::lan_1999();
        s.put_replicated(img(0, 1), NodeId(0), 2, &net);
        s.node_down(NodeId(1));
        s.node_wiped(NodeId(1)); // crash + restart: memory gone, node back
        assert_eq!(s.live_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
        // The image survives via node 2's copies, but node 1 is no longer a
        // listed replica anywhere…
        for f in s.placement(AppId(1), Rank(0)) {
            assert!(!f.replicas.contains(&NodeId(1)), "{f:?}");
        }
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 1);
        // …so a second loss of node 2 is now fatal even though node 1 is up.
        s.node_down(NodeId(2));
        assert!(s.get(AppId(1), Rank(0), 1).is_none());
        // A fresh put places on the rejoined node again.
        s.put_replicated(img(0, 2), NodeId(0), 2, &net);
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 2);
    }

    #[test]
    fn fetch_cost_is_parallel_max_not_sum() {
        let s = store(5);
        let mut net = ReplicaNet::lan_1999();
        net.frag_bytes = 64 * 1024; // several fragments per image
        let receipt = s.put_replicated(img(0, 1), NodeId(0), 2, &net);
        assert!(receipt.fragments > 1);
        let f = s.fetch(AppId(1), Rank(0), 1, NodeId(0), &net).unwrap();
        // Serial lower bound: all fragments from one source.
        let serial: VirtualTime = (0..f.fragments_fetched)
            .map(|_| net.frag_cost(net.frag_bytes))
            .sum();
        assert!(f.cost < serial, "parallel {} !< serial {}", f.cost, serial);
        assert!(f.cost > VirtualTime::ZERO);
    }

    #[test]
    fn corrupt_prune_and_remove_match_store_semantics() {
        let s = store(4);
        let net = ReplicaNet::lan_1999();
        for i in 1..=3 {
            s.put_replicated(img(0, i), NodeId(0), 2, &net);
        }
        assert!(s.corrupt_image(AppId(1), Rank(0), 3));
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 2);
        s.put_replicated(img(0, 3), NodeId(0), 2, &net); // re-put heals
        assert_eq!(s.latest_index(AppId(1), Rank(0)), 3);
        s.prune_below(AppId(1), 3);
        assert!(s.get(AppId(1), Rank(0), 2).is_none());
        assert!(s.get(AppId(1), Rank(0), 3).is_some());
        s.remove_app(AppId(1));
        assert_eq!(s.stats().0, 0);
    }

    #[test]
    fn health_reports_degradation() {
        let s = store(4);
        let net = ReplicaNet::lan_1999();
        s.put_replicated(img(0, 1), NodeId(0), 2, &net);
        let h = &s.health(AppId(1))[0];
        assert_eq!((h.rank, h.index, h.owner), (Rank(0), 1, NodeId(0)));
        assert_eq!(h.min_live_replicas, 2);
        assert!(h.recoverable && h.parity_live && !h.under_replicated);
        s.node_down(NodeId(1));
        let h = &s.health(AppId(1))[0];
        assert_eq!(h.min_live_replicas, 1);
        assert!(h.recoverable);
    }
}
