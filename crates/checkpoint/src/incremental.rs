//! Incremental checkpointing (libckpt-style \[33\], paper §6).
//!
//! Full checkpoints rewrite the whole image every time; incremental
//! checkpoints write only the *pages* (chunks) dirtied since the previous
//! image. Real implementations use MMU write protection; we detect dirty
//! chunks by content hashing, which has identical write-volume behaviour —
//! the quantity the `ablation_incremental` bench reports.
//!
//! Restore replays the chain: the last full image plus every later
//! increment, newest-wins per chunk.

use std::collections::BTreeMap;

/// Chunk size used for dirty tracking (a memory page on the paper's i686
/// testbed).
pub const CHUNK: usize = 4096;

fn hash_chunk(data: &[u8]) -> u64 {
    // FNV-1a: cheap, stable, good enough for dirty detection in a simulator.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One incremental delta: the chunks that changed, plus the new total length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Increment {
    pub len: usize,
    /// chunk index → new contents.
    pub dirty: BTreeMap<usize, Vec<u8>>,
}

impl Increment {
    /// Bytes that must hit stable storage for this increment.
    pub fn bytes_written(&self) -> u64 {
        self.dirty
            .values()
            .map(|c| c.len() as u64 + 16)
            .sum::<u64>()
            + 16
    }
}

/// Dirty-chunk tracker for one process image.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTracker {
    hashes: Vec<u64>,
    len: usize,
}

impl IncrementalTracker {
    pub fn new() -> Self {
        IncrementalTracker::default()
    }

    /// Diff `image` against the last captured state, returning the increment
    /// and updating the baseline. The first call returns everything (a full
    /// checkpoint).
    pub fn capture(&mut self, image: &[u8]) -> Increment {
        let n_chunks = image.len().div_ceil(CHUNK);
        let mut dirty = BTreeMap::new();
        for i in 0..n_chunks {
            let lo = i * CHUNK;
            let hi = (lo + CHUNK).min(image.len());
            let h = hash_chunk(&image[lo..hi]);
            if self.hashes.get(i).copied() != Some(h) {
                dirty.insert(i, image[lo..hi].to_vec());
            }
        }
        // Shrinkage also dirties the tail implicitly via `len`.
        self.hashes.resize(n_chunks, 0);
        for (i, c) in &dirty {
            self.hashes[*i] = hash_chunk(c);
        }
        self.hashes.truncate(n_chunks);
        self.len = image.len();
        Increment {
            len: image.len(),
            dirty,
        }
    }

    /// Forget the baseline (forces the next capture to be full).
    pub fn reset(&mut self) {
        self.hashes.clear();
        self.len = 0;
    }
}

/// Reassemble an image from a full base plus later increments (oldest
/// first).
pub fn reassemble(base: &Increment, increments: &[Increment]) -> Vec<u8> {
    let final_len = increments.last().map(|i| i.len).unwrap_or(base.len);
    let mut chunks: BTreeMap<usize, &[u8]> = BTreeMap::new();
    for (i, c) in &base.dirty {
        chunks.insert(*i, c);
    }
    for inc in increments {
        for (i, c) in &inc.dirty {
            chunks.insert(*i, c);
        }
    }
    let mut out = vec![0u8; final_len];
    for (i, c) in chunks {
        let lo = i * CHUNK;
        if lo >= final_len {
            continue;
        }
        let hi = (lo + c.len()).min(final_len);
        out[lo..hi].copy_from_slice(&c[..hi - lo]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_capture_is_full() {
        let mut t = IncrementalTracker::new();
        let img = vec![7u8; 3 * CHUNK + 100];
        let inc = t.capture(&img);
        assert_eq!(inc.dirty.len(), 4);
        assert_eq!(reassemble(&inc, &[]), img);
    }

    #[test]
    fn untouched_image_writes_nothing() {
        let mut t = IncrementalTracker::new();
        let img = vec![1u8; 10 * CHUNK];
        let full = t.capture(&img);
        let inc = t.capture(&img);
        assert!(inc.dirty.is_empty());
        assert!(inc.bytes_written() < full.bytes_written() / 10);
    }

    #[test]
    fn single_dirty_chunk_detected() {
        let mut t = IncrementalTracker::new();
        let mut img = vec![0u8; 16 * CHUNK];
        let base = t.capture(&img);
        img[5 * CHUNK + 17] = 0xFF;
        let inc = t.capture(&img);
        assert_eq!(inc.dirty.len(), 1);
        assert!(inc.dirty.contains_key(&5));
        assert_eq!(reassemble(&base, &[inc]), img);
    }

    #[test]
    fn chain_of_increments_reassembles() {
        let mut t = IncrementalTracker::new();
        let mut img = vec![0u8; 8 * CHUNK];
        let base = t.capture(&img);
        let mut incs = Vec::new();
        for step in 0..5 {
            img[step * CHUNK] = step as u8 + 1;
            incs.push(t.capture(&img));
        }
        assert_eq!(reassemble(&base, &incs), img);
    }

    #[test]
    fn growth_and_shrink_handled() {
        let mut t = IncrementalTracker::new();
        let img1 = vec![1u8; 2 * CHUNK];
        let base = t.capture(&img1);
        let img2 = vec![1u8; 4 * CHUNK]; // grow
        let inc2 = t.capture(&img2);
        assert_eq!(reassemble(&base, std::slice::from_ref(&inc2)), img2);
        let img3 = vec![1u8; CHUNK + 10]; // shrink (content of chunk 0 same, chunk 1 truncated+changed hash)
        let inc3 = t.capture(&img3);
        assert_eq!(reassemble(&base, &[inc2, inc3]), img3);
    }

    #[test]
    fn reset_forces_full() {
        let mut t = IncrementalTracker::new();
        let img = vec![9u8; 4 * CHUNK];
        t.capture(&img);
        t.reset();
        let inc = t.capture(&img);
        assert_eq!(inc.dirty.len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random edit scripts: base + increments always reassemble to the
        /// final image, and a clean capture writes (almost) nothing.
        #[test]
        fn reassembly_matches_final_image(
            len in 1usize..6 * CHUNK,
            edits in proptest::collection::vec(
                (0usize..6 * CHUNK, any::<u8>()), 0..24
            ),
            growth in 0usize..2 * CHUNK,
        ) {
            let mut t = IncrementalTracker::new();
            let mut img = vec![0xABu8; len];
            let base = t.capture(&img);
            let mut incs = Vec::new();
            // A few edit rounds.
            for chunk in edits.chunks(6) {
                for (pos, val) in chunk {
                    let p = pos % img.len();
                    img[p] = *val;
                }
                incs.push(t.capture(&img));
            }
            // Grow once, edit once more.
            img.extend(std::iter::repeat_n(0xCD, growth));
            incs.push(t.capture(&img));
            prop_assert_eq!(reassemble(&base, &incs), img.clone());
            // A clean capture after all that is (nearly) free.
            let clean = t.capture(&img);
            prop_assert!(clean.dirty.is_empty());
        }
    }
}
