//! # starfish-checkpoint — checkpoint/restart for Starfish
//!
//! Implements both halves of the paper's C/R story:
//!
//! * **Local checkpointing** at two levels (paper §3.2.2, §4):
//!   * *native* (homogeneous): the whole process image including the
//!     virtual-machine segment; restorable only on an identical
//!     architecture ([`image::CkptLevel::Native`]);
//!   * *virtual-machine level* (heterogeneous): a typed value tree
//!     ([`value::CkptValue`]) saved in the **saving machine's native
//!     representation** with a concise representation header, converted on
//!     restore ([`portable`]) — the design of Agbaria & Friedman's
//!     heterogeneous checkpointing TR \[2\]. The six machine types of
//!     Table 2 are modelled in [`arch`].
//! * **Distributed checkpoint protocols** (paper §1, §3.2.2): pure,
//!   message-driven protocol engines in [`proto`] — coordinated
//!   *stop-and-sync* \[14\], *Chandy–Lamport* distributed snapshots \[10\],
//!   and *independent (uncoordinated)* checkpointing with recovery-line
//!   computation over a rollback-dependency graph ([`recovery`]) \[32,41\].
//!   The engines emit effects; the runtime in `starfish` maps effects onto
//!   real sends, queue flushes and disk writes. This is what lets Starfish
//!   "run multiple C/R protocols side by side" and compare them.
//! * **Storage and timing** : [`store::CkptStore`] models the cluster's
//!   stable checkpoint storage; [`disk::DiskModel`] charges virtual time
//!   calibrated to the paper's Figures 3 and 4 anchor points. The
//!   [`backend`] module makes storage a per-app policy: `disk` (the above)
//!   or `replica` — the diskless in-memory replicated store of [`replica`],
//!   with k-way fragment placement over peer nodes and XOR-parity fallback
//!   (DESIGN.md §6a).
//! * **Optimizations**: [`incremental`] implements libckpt-style
//!   incremental checkpoints (only chunks dirtied since the previous image
//!   are written), quantified by the `ablation_incremental` bench.

pub mod arch;
pub mod backend;
pub mod disk;
pub mod image;
pub mod incremental;
pub mod portable;
pub mod proto;
pub mod recovery;
pub mod replica;
pub mod store;
pub mod value;

pub use arch::{Arch, Endianness, MACHINES};
pub use backend::{CheckpointStore, CkptBackend, StoreHub};
pub use disk::DiskModel;
pub use image::{ChannelMsg, CkptImage, CkptLevel};
pub use replica::{ReplicaNet, ReplicaStore};
pub use store::CkptStore;
pub use value::CkptValue;
