//! Chandy–Lamport distributed snapshots \[10\] — the coordinated protocol
//! Manetho builds on, implemented side by side with stop-and-sync to
//! demonstrate the paper's "multiple C/R protocols in one framework" claim.
//!
//! Unlike stop-and-sync, the application never blocks: a process snapshots
//! its state on first marker receipt (or initiation) and then *records* the
//! messages arriving on each incoming channel until that channel's marker
//! arrives. Channel FIFO order (which our data path provides per sender)
//! makes the recorded sets exactly the in-flight messages.

use std::collections::BTreeSet;

use starfish_util::Rank;

use super::{CrEffect, CrEvent, CrMsg};

/// Snapshot status of one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClPhase {
    Idle,
    /// State saved; still waiting for markers on some channels.
    Recording,
    /// All markers in; local snapshot complete.
    Complete,
}

/// One process's Chandy–Lamport engine.
#[derive(Debug, Clone)]
pub struct ChandyLamport {
    me: Rank,
    ranks: Vec<Rank>,
    phase: ClPhase,
    index: u64,
    markers_in: BTreeSet<Rank>,
    saved_seen: BTreeSet<Rank>,
}

impl ChandyLamport {
    pub fn new(me: Rank, mut ranks: Vec<Rank>) -> Self {
        ranks.sort_unstable();
        ranks.dedup();
        debug_assert!(ranks.contains(&me));
        ChandyLamport {
            me,
            ranks,
            phase: ClPhase::Idle,
            index: 0,
            markers_in: BTreeSet::new(),
            saved_seen: BTreeSet::new(),
        }
    }

    pub fn initiator(&self) -> Rank {
        self.ranks[0]
    }

    pub fn is_initiator(&self) -> bool {
        self.me == self.initiator()
    }

    pub fn phase(&self) -> ClPhase {
        self.phase
    }

    pub fn index(&self) -> u64 {
        self.index
    }

    fn peers(&self) -> impl Iterator<Item = Rank> + '_ {
        let me = self.me;
        self.ranks.iter().copied().filter(move |r| *r != me)
    }

    /// Take the local snapshot and emit markers + recording directives.
    /// `already_marked`: the channel whose marker triggered us (recorded as
    /// empty), if any.
    fn snapshot(&mut self, index: u64, already_marked: Option<Rank>) -> Vec<CrEffect> {
        self.phase = ClPhase::Recording;
        self.index = index;
        self.markers_in.clear();
        self.saved_seen.clear();
        let mut eff = vec![CrEffect::TakeCheckpoint { index }];
        for p in self.peers() {
            eff.push(CrEffect::DataMark {
                to: p,
                msg: CrMsg::Marker { index },
            });
        }
        if let Some(from) = already_marked {
            self.markers_in.insert(from);
        }
        for p in self.peers() {
            if Some(p) != already_marked {
                eff.push(CrEffect::RecordChannel { from: p });
            }
        }
        eff.extend(self.maybe_complete());
        eff
    }

    fn maybe_complete(&mut self) -> Vec<CrEffect> {
        if self.phase == ClPhase::Recording && self.markers_in.len() == self.ranks.len() - 1 {
            self.phase = ClPhase::Complete;
            if self.is_initiator() {
                self.saved_seen.insert(self.me);
                self.maybe_committed()
            } else {
                vec![CrEffect::Send {
                    to: self.initiator(),
                    msg: CrMsg::Saved {
                        rank: self.me,
                        index: self.index,
                    },
                }]
            }
        } else {
            Vec::new()
        }
    }

    fn maybe_committed(&mut self) -> Vec<CrEffect> {
        if self.is_initiator()
            && self.phase == ClPhase::Complete
            && self.saved_seen.len() == self.ranks.len()
        {
            self.phase = ClPhase::Idle;
            vec![CrEffect::Committed { index: self.index }]
        } else {
            Vec::new()
        }
    }

    /// The uniform transition function: feed one [`CrEvent`], get the
    /// resulting effects. Exactly equivalent to the named entry point for
    /// the event's kind; the `verify` model checker explores through here.
    pub fn step(&mut self, ev: CrEvent) -> Vec<CrEffect> {
        match ev {
            CrEvent::Start { index } => self.start(index),
            CrEvent::Msg { from, msg } => self.on_msg(from, &msg),
            CrEvent::Marker { from, index } => self.on_marker(from, index),
            // Flush marks belong to stop-and-sync; a saved-local completion
            // needs no engine action here (Saved is sent on completion of
            // marker collection, not of the disk write).
            CrEvent::FlushMark { .. } | CrEvent::SavedLocal { .. } => Vec::new(),
        }
    }

    /// Initiator starts snapshot `index`.
    pub fn start(&mut self, index: u64) -> Vec<CrEffect> {
        assert!(self.is_initiator(), "only the initiator starts a snapshot");
        assert_eq!(self.phase, ClPhase::Idle, "snapshot already in progress");
        self.snapshot(index, None)
    }

    /// A marker arrived on the data channel from `from`.
    pub fn on_marker(&mut self, from: Rank, index: u64) -> Vec<CrEffect> {
        match self.phase {
            ClPhase::Idle => self.snapshot(index, Some(from)),
            ClPhase::Recording if index == self.index => {
                let mut eff = vec![CrEffect::StopRecord { from }];
                self.markers_in.insert(from);
                eff.extend(self.maybe_complete());
                eff
            }
            // A member's engine rests in `Complete` after a round (only the
            // initiator returns to `Idle` on commit). A marker with a higher
            // index is the start of the next round — it must open a new
            // snapshot, not be dropped (markers are never resent).
            ClPhase::Complete if index > self.index => self.snapshot(index, Some(from)),
            _ => Vec::new(),
        }
    }

    /// A `Saved` control message (initiator only).
    pub fn on_msg(&mut self, _from: Rank, msg: &CrMsg) -> Vec<CrEffect> {
        match msg {
            CrMsg::Saved { rank, index } if self.is_initiator() && *index == self.index => {
                self.saved_seen.insert(*rank);
                self.maybe_committed()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_three_rank_snapshot() {
        let ranks = vec![Rank(0), Rank(1), Rank(2)];
        let mut e0 = ChandyLamport::new(Rank(0), ranks.clone());
        let mut e1 = ChandyLamport::new(Rank(1), ranks.clone());
        let mut e2 = ChandyLamport::new(Rank(2), ranks.clone());

        let eff = e0.start(1);
        assert!(eff.contains(&CrEffect::TakeCheckpoint { index: 1 }));
        // Records both incoming channels, markers to both peers.
        assert!(eff.contains(&CrEffect::RecordChannel { from: Rank(1) }));
        assert!(eff.contains(&CrEffect::RecordChannel { from: Rank(2) }));
        assert_eq!(
            eff.iter()
                .filter(|e| matches!(e, CrEffect::DataMark { .. }))
                .count(),
            2
        );

        // e1 gets the marker first from 0: snapshots, records only channel 2.
        let eff = e1.on_marker(Rank(0), 1);
        assert!(eff.contains(&CrEffect::TakeCheckpoint { index: 1 }));
        assert!(eff.contains(&CrEffect::RecordChannel { from: Rank(2) }));
        assert!(!eff.contains(&CrEffect::RecordChannel { from: Rank(0) }));

        // e2 snapshots on 0's marker, then finishes on 1's marker.
        e2.on_marker(Rank(0), 1);
        let done2 = e2.on_marker(Rank(1), 1);
        assert!(done2.contains(&CrEffect::StopRecord { from: Rank(1) }));
        assert!(done2.iter().any(|e| matches!(
            e,
            CrEffect::Send {
                to: Rank(0),
                msg: CrMsg::Saved { .. }
            }
        )));
        assert_eq!(e2.phase(), ClPhase::Complete);

        // e1 finishes on 2's marker.
        let done1 = e1.on_marker(Rank(2), 1);
        assert!(done1.iter().any(|e| matches!(e, CrEffect::Send { .. })));

        // e0 finishes when both markers are in, then commits on Saveds.
        e0.on_marker(Rank(1), 1);
        let last = e0.on_marker(Rank(2), 1);
        // Complete, but still waiting for Saveds: only the StopRecord.
        assert_eq!(last, vec![CrEffect::StopRecord { from: Rank(2) }]);
        assert!(e0
            .on_msg(
                Rank(1),
                &CrMsg::Saved {
                    rank: Rank(1),
                    index: 1
                }
            )
            .is_empty());
        let commit = e0.on_msg(
            Rank(2),
            &CrMsg::Saved {
                rank: Rank(2),
                index: 1,
            },
        );
        assert_eq!(commit, vec![CrEffect::Committed { index: 1 }]);
        assert_eq!(e0.phase(), ClPhase::Idle);
    }

    #[test]
    fn triggering_channel_recorded_empty() {
        let ranks = vec![Rank(0), Rank(1)];
        let mut e1 = ChandyLamport::new(Rank(1), ranks);
        let eff = e1.on_marker(Rank(0), 1);
        // Only peer channel is 0, whose marker triggered us: nothing to
        // record, so the snapshot is immediately complete.
        assert!(!eff
            .iter()
            .any(|e| matches!(e, CrEffect::RecordChannel { .. })));
        assert_eq!(e1.phase(), ClPhase::Complete);
    }

    /// Regression: a member rests in `Complete` after a round (only the
    /// initiator is reset by the commit). The next round's marker must start
    /// a fresh snapshot instead of being swallowed.
    #[test]
    fn next_round_marker_reopens_member_engine() {
        let ranks = vec![Rank(0), Rank(1)];
        let mut e1 = ChandyLamport::new(Rank(1), ranks);
        e1.on_marker(Rank(0), 1);
        assert_eq!(e1.phase(), ClPhase::Complete);
        let eff = e1.on_marker(Rank(0), 2);
        assert!(
            eff.contains(&CrEffect::TakeCheckpoint { index: 2 }),
            "{eff:?}"
        );
        assert_eq!(e1.index(), 2);
        // A stale duplicate from the finished round stays ignored.
        assert!(e1.on_marker(Rank(0), 1).is_empty());
    }

    #[test]
    fn duplicate_markers_ignored() {
        let ranks = vec![Rank(0), Rank(1), Rank(2)];
        let mut e1 = ChandyLamport::new(Rank(1), ranks);
        e1.on_marker(Rank(0), 1);
        let again = e1.on_marker(Rank(0), 1);
        // Recording and index matches, StopRecord emitted once more is
        // harmless but marker set cannot regress:
        assert!(again.len() <= 1);
        assert_eq!(e1.phase(), ClPhase::Recording);
    }

    #[test]
    fn no_blocking_application_never_pauses() {
        // The CL engine never emits BeginQuiesce or Resume: the app runs on.
        let ranks = vec![Rank(0), Rank(1)];
        let mut e0 = ChandyLamport::new(Rank(0), ranks);
        let eff = e0.start(1);
        assert!(!eff
            .iter()
            .any(|e| matches!(e, CrEffect::BeginQuiesce { .. } | CrEffect::Resume { .. })));
    }
}
