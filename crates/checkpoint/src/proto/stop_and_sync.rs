//! The stop-and-sync coordinated checkpoint protocol \[14\] — the protocol
//! behind the paper's Figure 3 and Figure 4 measurements.
//!
//! Round structure (coordinator = lowest participating rank by convention):
//!
//! 1. Coordinator broadcasts `Stop{index}` (through the daemons) and stops
//!    itself.
//! 2. Every process stops issuing application sends, then sends a
//!    `FlushMark{index}` **on the data path** to every peer. Because data
//!    channels are FIFO, receiving the mark from peer `p` proves every data
//!    message `p` sent before stopping has been drained into the local
//!    receive queue.
//! 3. When a process holds marks from all peers it is *quiesced*: it takes a
//!    local checkpoint whose channel state is the drained receive queue, and
//!    reports `Saved` to the coordinator.
//! 4. When the coordinator has all `Saved`s, the checkpoint commits; it
//!    broadcasts `Resume` and everyone continues.

use std::collections::{BTreeMap, BTreeSet};

use starfish_util::Rank;

use super::{CrEffect, CrEvent, CrMsg};

/// Protocol phase of one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Computing normally.
    Running,
    /// Stopped; waiting for flush marks from peers.
    Quiescing,
    /// Writing the local image.
    Saving,
    /// Local image saved; waiting for the global commit (members) or for
    /// remaining `Saved`s (coordinator).
    AwaitCommit,
}

/// One process's stop-and-sync engine.
#[derive(Debug, Clone)]
pub struct StopAndSync {
    me: Rank,
    ranks: Vec<Rank>,
    phase: Phase,
    index: u64,
    marks: BTreeSet<Rank>,
    saved: BTreeSet<Rank>,
    /// Flush marks that arrived for a round we have not entered yet. The
    /// fast data path can outrun the daemon-relayed control path: a peer
    /// that already resumed round `k` may deliver `FlushMark{k+1}` while we
    /// are still in `AwaitCommit` for round `k`. Marks are never resent, so
    /// they must be kept until `enter_stop(k+1)`.
    pending_marks: BTreeMap<u64, BTreeSet<Rank>>,
}

impl StopAndSync {
    /// `ranks`: all participating ranks (sorted or not). The coordinator is
    /// the smallest rank.
    pub fn new(me: Rank, mut ranks: Vec<Rank>) -> Self {
        ranks.sort_unstable();
        ranks.dedup();
        debug_assert!(ranks.contains(&me));
        StopAndSync {
            me,
            ranks,
            phase: Phase::Running,
            index: 0,
            marks: BTreeSet::new(),
            saved: BTreeSet::new(),
            pending_marks: BTreeMap::new(),
        }
    }

    pub fn coordinator(&self) -> Rank {
        self.ranks[0]
    }

    pub fn is_coordinator(&self) -> bool {
        self.me == self.coordinator()
    }

    pub fn phase(&self) -> Phase {
        self.phase
    }

    pub fn index(&self) -> u64 {
        self.index
    }

    fn peers(&self) -> impl Iterator<Item = Rank> + '_ {
        let me = self.me;
        self.ranks.iter().copied().filter(move |r| *r != me)
    }

    /// The uniform transition function: feed one [`CrEvent`], get the
    /// resulting effects. Exactly equivalent to calling the named entry
    /// point for the event's kind — the model checker in `crates/verify`
    /// drives engines through this single door so exhaustive exploration
    /// covers precisely the deployed transition logic.
    pub fn step(&mut self, ev: CrEvent) -> Vec<CrEffect> {
        match ev {
            CrEvent::Start { index } => self.start(index),
            CrEvent::Msg { from, msg } => self.on_msg(from, &msg),
            CrEvent::FlushMark { from, index } => self.on_flush_mark(from, index),
            CrEvent::SavedLocal { index } => self.on_saved(index),
            // Chandy–Lamport markers are not this protocol's mark.
            CrEvent::Marker { .. } => Vec::new(),
        }
    }

    /// Coordinator initiates checkpoint round `index`.
    pub fn start(&mut self, index: u64) -> Vec<CrEffect> {
        assert!(self.is_coordinator(), "only the coordinator starts a round");
        assert_eq!(self.phase, Phase::Running, "round already in progress");
        let mut eff = vec![CrEffect::Broadcast {
            msg: CrMsg::Stop { index },
        }];
        eff.extend(self.enter_stop(index));
        eff
    }

    fn enter_stop(&mut self, index: u64) -> Vec<CrEffect> {
        self.phase = Phase::Quiescing;
        self.index = index;
        self.marks.clear();
        self.saved.clear();
        if let Some(early) = self.pending_marks.remove(&index) {
            self.marks.extend(early);
        }
        self.pending_marks.retain(|k, _| *k > index);
        let mut eff = vec![CrEffect::BeginQuiesce { index }];
        for p in self.peers() {
            eff.push(CrEffect::DataMark {
                to: p,
                msg: CrMsg::FlushMark { index },
            });
        }
        // A single-process application quiesces trivially.
        eff.extend(self.maybe_quiesced());
        eff
    }

    fn maybe_quiesced(&mut self) -> Vec<CrEffect> {
        if self.phase == Phase::Quiescing && self.marks.len() == self.ranks.len() - 1 {
            self.phase = Phase::Saving;
            vec![CrEffect::TakeCheckpoint { index: self.index }]
        } else {
            Vec::new()
        }
    }

    fn maybe_committed(&mut self) -> Vec<CrEffect> {
        if self.is_coordinator()
            && self.phase == Phase::AwaitCommit
            && self.saved.len() == self.ranks.len()
        {
            self.phase = Phase::Running;
            vec![
                CrEffect::Broadcast {
                    msg: CrMsg::Resume { index: self.index },
                },
                CrEffect::Resume { index: self.index },
                CrEffect::Committed { index: self.index },
            ]
        } else {
            Vec::new()
        }
    }

    /// A C/R control message arrived (through the daemons).
    pub fn on_msg(&mut self, from: Rank, msg: &CrMsg) -> Vec<CrEffect> {
        match msg {
            CrMsg::Stop { index } => {
                if self.phase == Phase::Running {
                    self.enter_stop(*index)
                } else {
                    Vec::new() // duplicate
                }
            }
            CrMsg::Saved { rank, index } if *index == self.index => {
                if self.is_coordinator() {
                    self.saved.insert(*rank);
                    self.maybe_committed()
                } else {
                    Vec::new()
                }
            }
            CrMsg::Resume { index } if *index == self.index => {
                if self.phase == Phase::AwaitCommit {
                    self.phase = Phase::Running;
                    vec![CrEffect::Resume { index: *index }]
                } else {
                    Vec::new()
                }
            }
            _ => {
                let _ = from;
                Vec::new()
            }
        }
    }

    /// A `FlushMark` arrived on the data path from `from`.
    pub fn on_flush_mark(&mut self, from: Rank, index: u64) -> Vec<CrEffect> {
        if index != self.index && self.phase == Phase::Running {
            // Mark raced ahead of the Stop control message (possible: they
            // travel different paths). Enter the round now; the Stop will be
            // a duplicate.
            let mut eff = self.enter_stop(index);
            self.marks.insert(from);
            eff.extend(self.maybe_quiesced());
            return eff;
        }
        if index == self.index {
            self.marks.insert(from);
            return self.maybe_quiesced();
        }
        if index > self.index {
            // A mark for a round we have not entered (e.g. we are still in
            // `AwaitCommit` of the previous round). Hold it for `enter_stop`.
            self.pending_marks.entry(index).or_default().insert(from);
        }
        Vec::new()
    }

    /// The runtime finished writing the local image for `index`.
    pub fn on_saved(&mut self, index: u64) -> Vec<CrEffect> {
        debug_assert_eq!(index, self.index);
        debug_assert_eq!(self.phase, Phase::Saving);
        self.phase = Phase::AwaitCommit;
        if self.is_coordinator() {
            self.saved.insert(self.me);
            self.maybe_committed()
        } else {
            vec![CrEffect::Send {
                to: self.coordinator(),
                msg: CrMsg::Saved {
                    rank: self.me,
                    index,
                },
            }]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a full round among 3 ranks entirely in-process, checking the
    /// effect sequences of each participant.
    #[test]
    fn full_three_rank_round() {
        let ranks = vec![Rank(0), Rank(1), Rank(2)];
        let mut e0 = StopAndSync::new(Rank(0), ranks.clone());
        let mut e1 = StopAndSync::new(Rank(1), ranks.clone());
        let mut e2 = StopAndSync::new(Rank(2), ranks.clone());
        assert!(e0.is_coordinator());

        let eff0 = e0.start(1);
        assert!(eff0.contains(&CrEffect::Broadcast {
            msg: CrMsg::Stop { index: 1 }
        }));
        assert!(eff0.contains(&CrEffect::BeginQuiesce { index: 1 }));
        // Coordinator sends flush marks to both peers.
        let marks0: Vec<_> = eff0
            .iter()
            .filter(|e| matches!(e, CrEffect::DataMark { .. }))
            .collect();
        assert_eq!(marks0.len(), 2);

        // Members receive Stop.
        let eff1 = e1.on_msg(Rank(0), &CrMsg::Stop { index: 1 });
        let eff2 = e2.on_msg(Rank(0), &CrMsg::Stop { index: 1 });
        assert!(eff1.contains(&CrEffect::BeginQuiesce { index: 1 }));
        assert!(eff2.contains(&CrEffect::BeginQuiesce { index: 1 }));

        // Deliver all flush marks.
        assert!(e0.on_flush_mark(Rank(1), 1).is_empty());
        let take0 = e0.on_flush_mark(Rank(2), 1);
        assert_eq!(take0, vec![CrEffect::TakeCheckpoint { index: 1 }]);
        e1.on_flush_mark(Rank(0), 1);
        let take1 = e1.on_flush_mark(Rank(2), 1);
        assert_eq!(take1, vec![CrEffect::TakeCheckpoint { index: 1 }]);
        e2.on_flush_mark(Rank(0), 1);
        let take2 = e2.on_flush_mark(Rank(1), 1);
        assert_eq!(take2, vec![CrEffect::TakeCheckpoint { index: 1 }]);

        // Saves complete: members report to coordinator.
        let s1 = e1.on_saved(1);
        assert_eq!(
            s1,
            vec![CrEffect::Send {
                to: Rank(0),
                msg: CrMsg::Saved {
                    rank: Rank(1),
                    index: 1
                }
            }]
        );
        let s2 = e2.on_saved(1);
        assert_eq!(s2.len(), 1);
        assert!(e0.on_saved(1).is_empty(), "coordinator still waiting");

        // Coordinator collects Saved messages; commit on the last one.
        assert!(e0
            .on_msg(
                Rank(1),
                &CrMsg::Saved {
                    rank: Rank(1),
                    index: 1
                }
            )
            .is_empty());
        let commit = e0.on_msg(
            Rank(2),
            &CrMsg::Saved {
                rank: Rank(2),
                index: 1,
            },
        );
        assert!(commit.contains(&CrEffect::Committed { index: 1 }));
        assert!(commit.contains(&CrEffect::Broadcast {
            msg: CrMsg::Resume { index: 1 }
        }));
        assert_eq!(e0.phase(), Phase::Running);

        // Members resume.
        let r1 = e1.on_msg(Rank(0), &CrMsg::Resume { index: 1 });
        assert_eq!(r1, vec![CrEffect::Resume { index: 1 }]);
        assert_eq!(e1.phase(), Phase::Running);
    }

    #[test]
    fn single_process_round_is_local() {
        let mut e = StopAndSync::new(Rank(0), vec![Rank(0)]);
        let eff = e.start(1);
        // No peers: quiesce completes immediately and checkpoint is taken.
        assert!(eff.contains(&CrEffect::TakeCheckpoint { index: 1 }));
        let eff = e.on_saved(1);
        assert!(eff.contains(&CrEffect::Committed { index: 1 }));
        assert_eq!(e.phase(), Phase::Running);
    }

    #[test]
    fn flush_mark_racing_ahead_of_stop_still_works() {
        let ranks = vec![Rank(0), Rank(1)];
        let mut e1 = StopAndSync::new(Rank(1), ranks);
        // The data-path mark overtakes the daemon-relayed Stop.
        let eff = e1.on_flush_mark(Rank(0), 1);
        assert!(eff.contains(&CrEffect::BeginQuiesce { index: 1 }));
        assert!(eff.contains(&CrEffect::TakeCheckpoint { index: 1 }));
        // The late Stop is ignored as a duplicate.
        assert!(e1.on_msg(Rank(0), &CrMsg::Stop { index: 1 }).is_empty());
    }

    #[test]
    fn duplicate_stop_and_stale_saved_ignored() {
        let ranks = vec![Rank(0), Rank(1)];
        let mut e0 = StopAndSync::new(Rank(0), ranks);
        e0.start(2);
        assert!(e0.on_msg(Rank(1), &CrMsg::Stop { index: 2 }).is_empty());
        // Saved for an old round does nothing.
        assert!(e0
            .on_msg(
                Rank(1),
                &CrMsg::Saved {
                    rank: Rank(1),
                    index: 1
                }
            )
            .is_empty());
    }

    /// Regression: the coordinator commits round `k`, returns to `Running`,
    /// and immediately starts round `k+1`; its `FlushMark{k+1}` travels the
    /// fast data path and can land while a member is still in `AwaitCommit`
    /// for round `k` (the daemon-relayed `Resume{k}` is slower). The mark is
    /// never resent, so dropping it deadlocks the member in round `k+1`.
    #[test]
    fn mark_for_next_round_during_await_commit_is_kept() {
        let ranks = vec![Rank(0), Rank(1)];
        let mut e1 = StopAndSync::new(Rank(1), ranks);
        // Round 1 up to the point where r1 saved and awaits the commit.
        e1.on_msg(Rank(0), &CrMsg::Stop { index: 1 });
        e1.on_flush_mark(Rank(0), 1);
        e1.on_saved(1);
        assert_eq!(e1.phase(), Phase::AwaitCommit);
        // Round 2's mark overtakes Resume{1}: must not be dropped.
        assert!(e1.on_flush_mark(Rank(0), 2).is_empty());
        // Resume{1} and Stop{2} arrive in (total) order.
        e1.on_msg(Rank(0), &CrMsg::Resume { index: 1 });
        let eff = e1.on_msg(Rank(0), &CrMsg::Stop { index: 2 });
        // The stashed mark completes the quiesce immediately.
        assert!(
            eff.contains(&CrEffect::TakeCheckpoint { index: 2 }),
            "{eff:?}"
        );
    }

    #[test]
    fn second_round_after_commit() {
        let mut e = StopAndSync::new(Rank(0), vec![Rank(0)]);
        e.start(1);
        e.on_saved(1);
        let eff = e.start(2);
        assert!(eff.contains(&CrEffect::TakeCheckpoint { index: 2 }));
        let eff = e.on_saved(2);
        assert!(eff.contains(&CrEffect::Committed { index: 2 }));
    }
}
