//! Distributed checkpoint/restart protocols.
//!
//! The paper's architecture keeps C/R protocols pluggable: "The set of C/R
//! messages seems to be rich enough to express all C/R protocols we have
//! encountered" (§2.2), and protocols can run side by side for comparison
//! (§3.2.2). We realize that with *pure protocol engines*: each engine is a
//! deterministic state machine that consumes protocol messages ([`CrMsg`])
//! and local completion callbacks, and emits [`CrEffect`]s. The runtime in
//! the `starfish` crate maps effects onto real sends (through the daemons'
//! lightweight groups for control, through the VNI data path for channel
//! marks), queue flushes and disk writes; unit tests drive engines directly.
//!
//! Implemented protocols:
//! * [`stop_and_sync`] — the coordinated protocol the paper measures in
//!   Figures 3 and 4 \[14\];
//! * [`chandy_lamport`] — coordinated, non-blocking distributed snapshots
//!   \[10\];
//! * [`independent`] — uncoordinated checkpointing with dependency tracking,
//!   paired with [`crate::recovery`] for recovery-line computation.

pub mod chandy_lamport;
pub mod independent;
pub mod stop_and_sync;

use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{Error, Rank, Result, VirtualTime};

/// Checkpoint/restart protocol messages (Table 1's "Checkpoint/restart"
/// class; exchanged by C/R modules through the daemons, opaque to them).
/// `Marker` and `FlushMark` additionally travel the *data* path so they are
/// FIFO-ordered with application messages — that is what makes channel
/// flushing/recording sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrMsg {
    /// Coordinator tells everyone to stop and checkpoint (stop-and-sync).
    Stop { index: u64 },
    /// A member finished writing its local image.
    Saved { rank: Rank, index: u64 },
    /// Coordinator: all images are on stable storage, resume computing.
    Resume { index: u64 },
    /// Chandy–Lamport marker (data path).
    Marker { index: u64 },
    /// Stop-and-sync channel-flush mark (data path).
    FlushMark { index: u64 },
    /// Daemon tells a restarted process which checkpoint to load.
    RollbackTo { index: u64 },
}

impl CrMsg {
    /// Stable label for flight-recorder marks and trace tooling: protocol
    /// message kind plus its checkpoint index, e.g. `"marker #3"`.
    pub fn trace_label(&self) -> String {
        match self {
            CrMsg::Stop { index } => format!("stop #{index}"),
            CrMsg::Saved { rank, index } => format!("saved {rank} #{index}"),
            CrMsg::Resume { index } => format!("resume #{index}"),
            CrMsg::Marker { index } => format!("marker #{index}"),
            CrMsg::FlushMark { index } => format!("flush-mark #{index}"),
            CrMsg::RollbackTo { index } => format!("rollback-to #{index}"),
        }
    }
}

const T_STOP: u8 = 1;
const T_SAVED: u8 = 2;
const T_RESUME: u8 = 3;
const T_MARKER: u8 = 4;
const T_FLUSH: u8 = 5;
const T_ROLLBACK: u8 = 6;

impl Encode for CrMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            CrMsg::Stop { index } => {
                enc.put_u8(T_STOP);
                index.encode(enc);
            }
            CrMsg::Saved { rank, index } => {
                enc.put_u8(T_SAVED);
                rank.encode(enc);
                index.encode(enc);
            }
            CrMsg::Resume { index } => {
                enc.put_u8(T_RESUME);
                index.encode(enc);
            }
            CrMsg::Marker { index } => {
                enc.put_u8(T_MARKER);
                index.encode(enc);
            }
            CrMsg::FlushMark { index } => {
                enc.put_u8(T_FLUSH);
                index.encode(enc);
            }
            CrMsg::RollbackTo { index } => {
                enc.put_u8(T_ROLLBACK);
                index.encode(enc);
            }
        }
    }
}

impl Decode for CrMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            T_STOP => CrMsg::Stop {
                index: u64::decode(dec)?,
            },
            T_SAVED => CrMsg::Saved {
                rank: Rank::decode(dec)?,
                index: u64::decode(dec)?,
            },
            T_RESUME => CrMsg::Resume {
                index: u64::decode(dec)?,
            },
            T_MARKER => CrMsg::Marker {
                index: u64::decode(dec)?,
            },
            T_FLUSH => CrMsg::FlushMark {
                index: u64::decode(dec)?,
            },
            T_ROLLBACK => CrMsg::RollbackTo {
                index: u64::decode(dec)?,
            },
            t => return Err(Error::codec(format!("unknown CrMsg tag {t}"))),
        })
    }
}

/// A single input to a C/R protocol engine — the uniform event type of the
/// `step(state, event) → actions` transition interface that the `verify`
/// crate's model checker drives. The runtime's named entry points (`start`,
/// `on_msg`, `on_flush_mark`, `on_marker`, `on_saved`) are equivalent to
/// feeding the corresponding event through `step`, so model-checked
/// behavior is exactly deployed behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrEvent {
    /// The coordinator/initiator kicks off round `index`.
    Start { index: u64 },
    /// A C/R control message arrived through the daemons.
    Msg { from: Rank, msg: CrMsg },
    /// A stop-and-sync flush mark arrived on the data path from `from`.
    FlushMark { from: Rank, index: u64 },
    /// A Chandy–Lamport marker arrived on the data path from `from`.
    Marker { from: Rank, index: u64 },
    /// The local image for round `index` reached stable storage.
    SavedLocal { index: u64 },
}

/// Instructions from a protocol engine to its hosting runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrEffect {
    /// Send a C/R message to one rank through the daemons.
    Send { to: Rank, msg: CrMsg },
    /// Send a C/R message to every *other* rank through the daemons.
    Broadcast { msg: CrMsg },
    /// Send a mark/marker on the data path (FIFO with app messages).
    DataMark { to: Rank, msg: CrMsg },
    /// Stop the application at the next service point; report in-flight
    /// flush completion via `on_flush_mark` as marks arrive.
    BeginQuiesce { index: u64 },
    /// Snapshot local state (+ captured channel state) and write it to
    /// stable storage; call `on_saved` when done.
    TakeCheckpoint { index: u64 },
    /// Start recording data messages arriving from `from` into the current
    /// image's channel state (Chandy–Lamport).
    RecordChannel { from: Rank },
    /// Stop recording the channel from `from`.
    StopRecord { from: Rank },
    /// Let the application run again.
    Resume { index: u64 },
    /// The distributed checkpoint is fully committed (coordinator only).
    Committed { index: u64 },
}

/// Fitted daemon-side coordination overheads for the distributed phase of a
/// checkpoint (EXPERIMENTS.md documents the fit against Figures 3 and 4).
/// Charged once per distributed checkpoint at the coordinator, on top of the
/// genuine protocol-message latencies.
#[derive(Debug, Clone, Copy)]
pub struct SyncCostModel;

impl SyncCostModel {
    /// Native-level stop-and-sync overhead for `n` participating nodes.
    /// `55.6 ms × (1 − 1/n)`: 0 for n=1, 27.8 ms for n=2 (paper: +27.8 ms),
    /// 41.7 ms for n=4 (paper: +45.2 ms).
    pub fn native_sync(n: usize) -> VirtualTime {
        if n <= 1 {
            return VirtualTime::ZERO;
        }
        VirtualTime::from_nanos((55_600_000.0 * (1.0 - 1.0 / n as f64)) as u64)
    }

    /// VM-level overhead: the coordinator serially validates each member's
    /// portable representation header. `13.9 ms × (n − 1)`: 13.9 ms for n=2
    /// (paper: +12.8 ms), 41.7 ms for n=4 (paper: +44.3 ms).
    pub fn vm_sync(n: usize) -> VirtualTime {
        if n <= 1 {
            return VirtualTime::ZERO;
        }
        VirtualTime::from_nanos(13_900_000 * (n as u64 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::codec::roundtrip;

    #[test]
    fn crmsg_codec_roundtrip() {
        let msgs = vec![
            CrMsg::Stop { index: 3 },
            CrMsg::Saved {
                rank: Rank(2),
                index: 3,
            },
            CrMsg::Resume { index: 3 },
            CrMsg::Marker { index: 1 },
            CrMsg::FlushMark { index: 9 },
            CrMsg::RollbackTo { index: 2 },
        ];
        for m in msgs {
            assert_eq!(roundtrip(&m).unwrap(), m);
        }
        assert!(CrMsg::decode_from_bytes(&[77]).is_err());
    }

    #[test]
    fn sync_cost_model_anchors() {
        assert_eq!(SyncCostModel::native_sync(1), VirtualTime::ZERO);
        let n2 = SyncCostModel::native_sync(2).as_millis_f64();
        assert!((n2 - 27.8).abs() < 0.1, "native n=2: {n2}ms");
        let n4 = SyncCostModel::native_sync(4).as_millis_f64();
        assert!((n4 - 41.7).abs() < 0.1, "native n=4: {n4}ms");

        assert_eq!(SyncCostModel::vm_sync(1), VirtualTime::ZERO);
        let v2 = SyncCostModel::vm_sync(2).as_millis_f64();
        assert!((v2 - 13.9).abs() < 0.1, "vm n=2: {v2}ms");
        let v4 = SyncCostModel::vm_sync(4).as_millis_f64();
        assert!((v4 - 41.7).abs() < 0.1, "vm n=4: {v4}ms");
    }

    #[test]
    fn sync_cost_grows_monotonically() {
        for n in 1..8 {
            assert!(SyncCostModel::native_sync(n + 1) > SyncCostModel::native_sync(n) || n == 0);
            assert!(SyncCostModel::vm_sync(n + 1) > SyncCostModel::vm_sync(n) || n == 0);
        }
    }
}
