//! Independent (uncoordinated) checkpointing \[1,29,32,34,41\].
//!
//! Each process checkpoints on its own schedule with *no* synchronization —
//! the cheapest possible checkpoint — at the price of rollback propagation
//! at recovery time. To make recovery possible at all, every data message
//! piggybacks the sender's current checkpoint-interval index, and every
//! receive is logged as a [`crate::recovery::MsgDep`]; the recovery
//! line is then computed by [`crate::recovery::recovery_line`].
//!
//! The paper highlights that Starfish can run this protocol side by side
//! with the coordinated ones; the `ablation_cr_protocols` and
//! `ablation_domino` benches compare them.

use starfish_util::Rank;

use crate::recovery::MsgDep;

use super::CrEffect;

/// Tracks one process's checkpoint intervals and message dependencies.
#[derive(Debug, Clone)]
pub struct Independent {
    me: Rank,
    /// Current interval index: number of checkpoints taken so far. Interval
    /// `k` is the execution after checkpoint `k`.
    interval: u64,
    /// Receive-side dependency log accumulated since the beginning (flushed
    /// to the store alongside each checkpoint by the runtime).
    pending_deps: Vec<MsgDep>,
}

impl Independent {
    pub fn new(me: Rank) -> Self {
        Independent {
            me,
            interval: 0,
            pending_deps: Vec::new(),
        }
    }

    pub fn me(&self) -> Rank {
        self.me
    }

    /// The interval index to piggyback on outgoing data messages.
    pub fn current_interval(&self) -> u64 {
        self.interval
    }

    /// Take a local checkpoint right now (no coordination, no quiesce; the
    /// receive queue is captured as channel state so locally-buffered
    /// messages are not lost).
    pub fn take_checkpoint(&mut self) -> Vec<CrEffect> {
        self.interval += 1;
        vec![CrEffect::TakeCheckpoint {
            index: self.interval,
        }]
    }

    /// A data message arrived carrying the sender's piggybacked interval.
    /// Returns the dependency record the runtime must persist.
    pub fn on_data_received(&mut self, sender: Rank, sender_interval: u64) -> MsgDep {
        let dep = MsgDep {
            sender,
            send_interval: sender_interval,
            receiver: self.me,
            recv_interval: self.interval,
        };
        self.pending_deps.push(dep);
        dep
    }

    /// Dependencies logged since the last drain (the runtime persists these
    /// with each checkpoint / periodically).
    pub fn drain_deps(&mut self) -> Vec<MsgDep> {
        std::mem::take(&mut self.pending_deps)
    }

    /// After a rollback, reset to the restored interval.
    pub fn rollback_to(&mut self, index: u64) {
        self.interval = index;
        self.pending_deps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intervals_advance_with_checkpoints() {
        let mut e = Independent::new(Rank(1));
        assert_eq!(e.current_interval(), 0);
        let eff = e.take_checkpoint();
        assert_eq!(eff, vec![CrEffect::TakeCheckpoint { index: 1 }]);
        assert_eq!(e.current_interval(), 1);
        e.take_checkpoint();
        assert_eq!(e.current_interval(), 2);
    }

    #[test]
    fn receives_logged_with_both_intervals() {
        let mut e = Independent::new(Rank(1));
        e.take_checkpoint();
        let dep = e.on_data_received(Rank(0), 3);
        assert_eq!(dep.sender, Rank(0));
        assert_eq!(dep.send_interval, 3);
        assert_eq!(dep.receiver, Rank(1));
        assert_eq!(dep.recv_interval, 1);
        assert_eq!(e.drain_deps().len(), 1);
        assert!(e.drain_deps().is_empty(), "drained");
    }

    #[test]
    fn rollback_resets_interval_and_log() {
        let mut e = Independent::new(Rank(1));
        e.take_checkpoint();
        e.take_checkpoint();
        e.on_data_received(Rank(0), 0);
        e.rollback_to(1);
        assert_eq!(e.current_interval(), 1);
        assert!(e.drain_deps().is_empty());
    }

    /// End-to-end with the recovery module: two processes, an orphan
    /// message, and the line computed from the logged deps.
    #[test]
    fn deps_feed_recovery_line() {
        use crate::recovery::recovery_line;
        use std::collections::BTreeMap;

        let mut p0 = Independent::new(Rank(0));
        let mut p1 = Independent::new(Rank(1));
        let mut deps = Vec::new();

        // p0 ckpt #1, then sends m in interval 1; p1 receives in interval 0
        // and then takes ckpt #1 (which therefore remembers m).
        p0.take_checkpoint();
        deps.push(p1.on_data_received(Rank(0), p0.current_interval()));
        p1.take_checkpoint();

        // p0 crashes. Its latest is ckpt 1 — the send in interval 1 rolls
        // back, so p1's ckpt 1 holds an orphan and p1 must restart from 0.
        let latest: BTreeMap<Rank, u64> = [(Rank(0), 1u64), (Rank(1), 1u64)].into_iter().collect();
        let rl = recovery_line(&latest, &deps, &[Rank(0)]);
        assert_eq!(rl.index_of(Rank(0)), 1);
        assert_eq!(rl.index_of(Rank(1)), 0);
        assert_eq!(rl.rolled_back, 1);
    }
}
