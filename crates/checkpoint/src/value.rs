//! The checkpointable value model — our stand-in for the OCaml VM heap.
//!
//! In the paper, VM-level checkpointing walks the OCaml heap. Our programming
//! model (DESIGN.md substitution table) has applications keep their
//! checkpointable state in a [`CkptValue`] tree; the portable codec saves it
//! in the machine's native representation and converts on restore.

use std::fmt;

/// A typed value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CkptValue {
    Unit,
    Bool(bool),
    /// Signed integer (OCaml `int`): subject to *word-length* conversion —
    /// restoring onto a narrower machine fails if the value does not fit.
    Int(i64),
    Float(f64),
    Str(String),
    Bytes(Vec<u8>),
    /// Dense integer array (bulk data; each element is word-checked).
    IntArray(Vec<i64>),
    /// Dense float array (bulk numeric data, e.g. a Jacobi grid).
    FloatArray(Vec<f64>),
    List(Vec<CkptValue>),
    /// Named fields, order-preserving.
    Record(Vec<(String, CkptValue)>),
    /// A run of `n` zero bytes — models large untouched heap regions without
    /// materializing them, so Figure 3/4-scale images (up to 135 MB) can be
    /// swept cheaply. Encodes as a length, not as literal bytes, but its
    /// *accounted* size (and therefore its disk-write cost) is `n` bytes.
    Zeros(u64),
}

impl CkptValue {
    /// Convenience record constructor.
    pub fn record(fields: Vec<(&str, CkptValue)>) -> CkptValue {
        CkptValue::Record(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Look up a field of a record.
    pub fn field(&self, name: &str) -> Option<&CkptValue> {
        match self {
            CkptValue::Record(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            CkptValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            CkptValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            CkptValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            CkptValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_float_array(&self) -> Option<&[f64]> {
        match self {
            CkptValue::FloatArray(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_int_array(&self) -> Option<&[i64]> {
        match self {
            CkptValue::IntArray(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes (drives image-size
    /// accounting and the Figure 3/4 size sweeps).
    pub fn heap_bytes(&self) -> usize {
        match self {
            CkptValue::Unit => 0,
            CkptValue::Bool(_) => 1,
            CkptValue::Int(_) => 8,
            CkptValue::Float(_) => 8,
            CkptValue::Str(s) => s.len() + 8,
            CkptValue::Bytes(b) => b.len() + 8,
            CkptValue::IntArray(v) => v.len() * 8 + 8,
            CkptValue::FloatArray(v) => v.len() * 8 + 8,
            CkptValue::List(vs) => vs.iter().map(|v| v.heap_bytes()).sum::<usize>() + 8,
            CkptValue::Record(fs) => fs
                .iter()
                .map(|(k, v)| k.len() + v.heap_bytes() + 8)
                .sum::<usize>(),
            CkptValue::Zeros(n) => *n as usize,
        }
    }
}

impl fmt::Display for CkptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptValue::Unit => write!(f, "()"),
            CkptValue::Bool(b) => write!(f, "{b}"),
            CkptValue::Int(v) => write!(f, "{v}"),
            CkptValue::Float(v) => write!(f, "{v}"),
            CkptValue::Str(s) => write!(f, "{s:?}"),
            CkptValue::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            CkptValue::IntArray(v) => write!(f, "int[{}]", v.len()),
            CkptValue::FloatArray(v) => write!(f, "float[{}]", v.len()),
            CkptValue::List(vs) => write!(f, "list[{}]", vs.len()),
            CkptValue::Zeros(n) => write!(f, "<{n} zero bytes>"),
            CkptValue::Record(fs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_lookup() {
        let v = CkptValue::record(vec![
            ("step", CkptValue::Int(17)),
            ("grid", CkptValue::FloatArray(vec![1.0, 2.0])),
        ]);
        assert_eq!(v.field("step").and_then(|f| f.as_int()), Some(17));
        assert_eq!(
            v.field("grid").and_then(|f| f.as_float_array()).unwrap(),
            &[1.0, 2.0]
        );
        assert!(v.field("missing").is_none());
    }

    #[test]
    fn heap_bytes_scales_with_payload() {
        let small = CkptValue::Bytes(vec![0; 100]);
        let big = CkptValue::Bytes(vec![0; 100_000]);
        assert!(big.heap_bytes() > small.heap_bytes());
        assert_eq!(big.heap_bytes(), 100_008);
    }

    #[test]
    fn display_summarizes() {
        let v = CkptValue::record(vec![("n", CkptValue::Int(1))]);
        assert_eq!(format!("{v}"), "{n: 1}");
    }
}
