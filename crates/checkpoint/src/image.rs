//! Checkpoint images.
//!
//! An image captures one application process: its registered state (the "VM
//! heap"), the in-transit messages that logically belong to it (channel
//! state), and enough metadata to place it on the recovery line. Native
//! images additionally carry the architecture-locked virtual-machine segment,
//! which is why the paper's smallest native image is 632 KB while the
//! smallest VM-level image is only 260 KB (§5).

use starfish_util::{AppId, Epoch, Rank, Result, VirtualTime};

use crate::arch::Arch;
use crate::portable::{self, ConversionReport};
use crate::value::CkptValue;

/// Base size of a native (process-level) image of an *empty* program:
/// the paper's Figure 3 smallest data point (632 KB). Includes the OCaml
/// virtual machine's own data, which must be saved at this level.
pub const NATIVE_BASE_BYTES: u64 = 632 * 1024;

/// Base size of a VM-level image of an empty program: Figure 4's smallest
/// point (260 KB). The VM itself is *not* saved — only the heap — hence the
/// smaller constant (§5: "the checkpointed data does not contain the virtual
/// machine data").
pub const VM_BASE_BYTES: u64 = 260 * 1024;

/// At which level a checkpoint was taken (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CkptLevel {
    /// Native process level: OS-dependent, restorable only on an identical
    /// architecture + OS.
    Native { arch: Arch },
    /// OCaml-virtual-machine level: heterogeneous, restorable anywhere.
    Vm { arch: Arch },
}

impl CkptLevel {
    pub fn arch(&self) -> Arch {
        match self {
            CkptLevel::Native { arch } | CkptLevel::Vm { arch } => *arch,
        }
    }

    pub fn base_bytes(&self) -> u64 {
        match self {
            CkptLevel::Native { .. } => NATIVE_BASE_BYTES,
            CkptLevel::Vm { .. } => VM_BASE_BYTES,
        }
    }

    pub fn is_native(&self) -> bool {
        matches!(self, CkptLevel::Native { .. })
    }
}

/// An in-transit data message captured as part of a checkpoint (stop-and-sync
/// flushes these into the image; Chandy–Lamport records them per channel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelMsg {
    pub src: Rank,
    pub dst: Rank,
    /// MPI communicator context the message was sent on.
    pub context: u32,
    pub tag: u64,
    pub payload: Vec<u8>,
}

/// One process checkpoint.
#[derive(Debug, Clone)]
pub struct CkptImage {
    pub app: AppId,
    pub rank: Rank,
    pub epoch: Epoch,
    /// Checkpoint index of this process (1, 2, 3, ... per incarnation).
    pub index: u64,
    pub level: CkptLevel,
    /// The registered state, serialized in the saving machine's native
    /// representation by [`portable::encode_portable`].
    pub body: Vec<u8>,
    /// Captured channel state.
    pub channel: Vec<ChannelMsg>,
    /// Virtual instant the checkpoint was taken.
    pub taken_at: VirtualTime,
    /// For uncoordinated checkpointing: the sender-interval dependencies
    /// accumulated in the preceding interval, as `(peer rank, peer interval)`
    /// pairs (see `recovery`).
    pub deps: Vec<(Rank, u64)>,
}

impl CkptImage {
    /// Build an image by serializing `state` on `arch` at the given level.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        app: AppId,
        rank: Rank,
        epoch: Epoch,
        index: u64,
        level: CkptLevel,
        state: &CkptValue,
        channel: Vec<ChannelMsg>,
        taken_at: VirtualTime,
    ) -> Result<CkptImage> {
        let body = portable::encode_portable(state, level.arch())?;
        Ok(CkptImage {
            app,
            rank,
            epoch,
            index,
            level,
            body,
            channel,
            taken_at,
            deps: Vec::new(),
        })
    }

    /// Total accounted size on stable storage: level base, serialized state,
    /// and channel payloads. This is the size the disk model charges for and
    /// the size the Figure 3/4 harnesses report.
    pub fn total_bytes(&self) -> u64 {
        let chan: u64 = self
            .channel
            .iter()
            .map(|m| m.payload.len() as u64 + 24)
            .sum();
        // `Zeros` regions are stored compressed in `body` but account at
        // their full heap footprint, like real untouched pages hitting disk.
        let state_bytes = match portable::decode_portable(&self.body, self.level.arch()) {
            Ok((v, _)) => v.heap_bytes() as u64,
            Err(_) => self.body.len() as u64,
        };
        self.level.base_bytes() + state_bytes + chan
    }

    /// Restore the state on a machine of architecture `target`.
    ///
    /// * VM-level images convert representation as needed.
    /// * Native images require the *identical* machine type (architecture
    ///   and OS), as on real systems (§4).
    pub fn restore_state(&self, target: Arch) -> Result<(CkptValue, ConversionReport)> {
        if let CkptLevel::Native { arch } = self.level {
            if arch != target {
                return Err(starfish_util::Error::checkpoint(format!(
                    "native image from [{arch}] cannot restore on [{target}]"
                )));
            }
        }
        portable::decode_portable(&self.body, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MACHINES;

    fn state() -> CkptValue {
        CkptValue::record(vec![
            ("iter", CkptValue::Int(10)),
            ("data", CkptValue::Bytes(vec![7; 1000])),
        ])
    }

    fn img(level: CkptLevel) -> CkptImage {
        CkptImage::capture(
            AppId(1),
            Rank(0),
            Epoch(0),
            1,
            level,
            &state(),
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn empty_program_image_sizes_match_paper() {
        let native = CkptImage::capture(
            AppId(1),
            Rank(0),
            Epoch(0),
            1,
            CkptLevel::Native { arch: MACHINES[0] },
            &CkptValue::Unit,
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap();
        let vm = CkptImage::capture(
            AppId(1),
            Rank(0),
            Epoch(0),
            1,
            CkptLevel::Vm { arch: MACHINES[0] },
            &CkptValue::Unit,
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap();
        // 632 KB vs 260 KB, ± the tiny encoded Unit.
        assert!(native.total_bytes() >= 632 * 1024);
        assert!(native.total_bytes() < 632 * 1024 + 64);
        assert!(vm.total_bytes() >= 260 * 1024);
        assert!(vm.total_bytes() < 260 * 1024 + 64);
    }

    #[test]
    fn native_restores_only_on_identical_machine() {
        let i = img(CkptLevel::Native { arch: MACHINES[0] });
        assert!(i.restore_state(MACHINES[0]).is_ok());
        // Same representation but different machine (NT vs Linux): refused.
        assert!(i.restore_state(MACHINES[4]).is_err());
        assert!(i.restore_state(MACHINES[1]).is_err());
    }

    #[test]
    fn vm_restores_anywhere() {
        let i = img(CkptLevel::Vm { arch: MACHINES[0] });
        for m in MACHINES {
            let (v, _) = i.restore_state(m).unwrap();
            assert_eq!(v, state());
        }
    }

    #[test]
    fn channel_state_counts_toward_size() {
        let mut i = img(CkptLevel::Vm { arch: MACHINES[0] });
        let before = i.total_bytes();
        i.channel.push(ChannelMsg {
            src: Rank(1),
            dst: Rank(0),
            context: 1,
            tag: 0,
            payload: vec![0; 5000],
        });
        assert!(i.total_bytes() >= before + 5000);
    }

    #[test]
    fn zeros_regions_account_full_size() {
        let big = CkptImage::capture(
            AppId(1),
            Rank(0),
            Epoch(0),
            1,
            CkptLevel::Vm { arch: MACHINES[0] },
            &CkptValue::Zeros(50_000_000),
            vec![],
            VirtualTime::ZERO,
        )
        .unwrap();
        assert!(big.total_bytes() >= 50_000_000);
        // ...but the stored body is tiny (the whole point of Zeros).
        assert!(big.body.len() < 64);
    }
}
