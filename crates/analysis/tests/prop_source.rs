//! Property tests for the lexical layer: every finding's line number is
//! only as good as `blank()`'s promise to preserve line structure, so we
//! hammer it (and the item parser above it) with adversarial compositions
//! of the constructs that historically break line-oriented scanners —
//! nested block comments, multi-line strings, raw strings with hashes,
//! char literals vs lifetimes, `#[cfg(test)]` blocks.

use proptest::collection;
use proptest::prelude::*;
use starfish_analysis::model::CrateModel;
use starfish_analysis::source::{blank, test_regions, SourceFile};
use std::path::Path;

/// Fragments chosen to collide: comment openers inside strings, quotes
/// inside comments, raw-string fences, escaped quotes, lifetimes.
fn fragment() -> BoxedStrategy<&'static str> {
    prop_oneof![
        Just("fn f() {"),
        Just("}"),
        Just("let s = \"str with // and /* inside\";"),
        Just("let s = \"multi"),
        Just("end\";"),
        Just("let r = r#\"raw \" with /* fence\"#;"),
        Just("let r = r##\"deeper \"# fence\"##;"),
        Just("/* open"),
        Just("/* nested /* deeper */"),
        Just("*/"),
        Just("// line comment with \" quote and /* opener"),
        Just("let c = '\"';"),
        Just("let c = '\\'';"),
        Just("let lt: &'static str = \"x\";"),
        Just("#[cfg(test)]"),
        Just("mod tests {"),
        Just("struct S { field: Mutex<u32>, other: u8 }"),
        Just("enum E { A, B(u8), C { x: u8 } }"),
        Just("impl S { fn m(&self) { self.field.lock(); } }"),
        Just("let v = x[0].unwrap();"),
        Just(""),
    ]
    .boxed()
}

proptest! {
    /// `blank()` must keep exactly the same number of lines as its input
    /// in both modes, whatever state the lexer ends in.
    #[test]
    fn blank_preserves_line_structure(frags in collection::vec(fragment(), 0..40)) {
        let text = frags.join("\n");
        for lits in [true, false] {
            let b = blank(&text, lits);
            prop_assert_eq!(
                b.matches('\n').count(),
                text.matches('\n').count(),
                "line count drifted (blank_literals={})", lits
            );
        }
    }

    /// `test_regions` must be exactly line-aligned, and the full model
    /// parse must neither panic nor invent out-of-range line numbers.
    #[test]
    fn model_lines_stay_in_range(frags in collection::vec(fragment(), 0..40)) {
        let text = frags.join("\n");
        let nlines = text.lines().count();
        let code: Vec<String> = blank(&text, true).lines().map(str::to_string).collect();
        prop_assert_eq!(test_regions(&code).len(), code.len());

        let model = CrateModel::from_files(
            "prop",
            vec![SourceFile::from_text(Path::new("prop/src/lib.rs"), &text)],
        );
        for s in &model.structs {
            prop_assert!(s.line < nlines.max(1), "struct line out of range");
        }
        for e in &model.enums {
            prop_assert!(e.line < nlines.max(1), "enum line out of range");
        }
        for f in &model.functions {
            prop_assert!(f.sig_line < nlines.max(1), "fn line out of range");
            if let Some((b, e)) = f.body {
                prop_assert!(b <= e && e <= nlines.max(1), "body extent inverted");
            }
        }
    }

    /// Blanking is idempotent on its own output: a second pass over
    /// already-blanked code must change nothing (no half-consumed state).
    #[test]
    fn blank_is_idempotent(frags in collection::vec(fragment(), 0..40)) {
        let text = frags.join("\n");
        let once = blank(&text, true);
        let twice = blank(&once, true);
        prop_assert_eq!(&once, &twice);
    }
}
