//! Lock-graph integration tests: a snapshot of the graph extracted from
//! `fixtures/locky`, the mutation test proving cycle detection actually
//! depends on the edges (delete one, the cycle report must die), and a pin
//! of the real `vni` fabric's lock order so a future refactor that inverts
//! it fails loudly.

use starfish_analysis::locks::{self, Watched};
use starfish_analysis::model::CrateModel;
use std::collections::BTreeSet;
use std::path::Path;

fn locky() -> locks::LockAnalysis {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/locky");
    let models = vec![CrateModel::parse("locky", &dir)];
    locks::analyze(&models, Watched::All)
}

#[test]
fn locky_graph_snapshot() {
    let la = locky();
    let classes: Vec<&str> = la.graph.classes.iter().map(|s| s.as_str()).collect();
    assert_eq!(
        classes,
        vec!["locky::Hub.a", "locky::Hub.b", "locky::Hub.c"],
        "lock classes changed"
    );
    let edges: BTreeSet<(String, String)> = la
        .graph
        .edges
        .iter()
        .map(|e| (e.a.clone(), e.b.clone()))
        .collect();
    let want: BTreeSet<(String, String)> = [
        ("locky::Hub.a", "locky::Hub.b"),
        ("locky::Hub.b", "locky::Hub.c"),
        ("locky::Hub.c", "locky::Hub.a"),
    ]
    .into_iter()
    .map(|(a, b)| (a.to_string(), b.to_string()))
    .collect();
    assert_eq!(edges, want, "edge set changed");

    // The a->b edge is interprocedural: its witness must show BOTH the
    // acquisition in `ab` and the hop through `grab_b`.
    let ab = la
        .graph
        .edges
        .iter()
        .find(|e| e.a == "locky::Hub.a" && e.b == "locky::Hub.b")
        .expect("a->b edge");
    let w = ab.witness.join("\n");
    assert!(w.contains("Hub::ab"), "witness missing the holder:\n{w}");
    assert!(w.contains("grab_b"), "witness missing the call hop:\n{w}");
}

#[test]
fn locky_cycle_is_detected_and_mutation_kills_it() {
    let la = locky();
    let cycles = la.graph.cycles();
    assert!(
        !cycles.is_empty(),
        "the seeded 3-cycle a->b->c->a must be reported"
    );

    // Mutation test: deleting any single edge of the cycle must make the
    // report disappear — proves detection depends on the edges rather than
    // always (or never) firing.
    for (a, b) in [
        ("locky::Hub.a", "locky::Hub.b"),
        ("locky::Hub.b", "locky::Hub.c"),
        ("locky::Hub.c", "locky::Hub.a"),
    ] {
        let mutated = la.graph.without_edge(a, b);
        assert!(
            mutated.cycles().is_empty(),
            "cycle survived deleting {a} -> {b}"
        );
    }
}

#[test]
fn real_vni_fabric_lock_order_is_pinned_and_acyclic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let vni = CrateModel::parse("vni", &root.join("crates/vni"));
    let la = locks::analyze(&[vni], Watched::VniDaemon);

    let edges: BTreeSet<(String, String)> = la
        .graph
        .edges
        .iter()
        .map(|e| (e.a.clone(), e.b.clone()))
        .collect();
    // The fabric's documented order: membership (outer) before the
    // per-link shard lock before the destination inbox queue.
    for (a, b) in [
        ("vni::Inner.membership", "vni::Membership.links"),
        ("vni::Membership.links", "vni::Inbox.q"),
        ("vni::Inner.membership", "vni::Inbox.q"),
    ] {
        assert!(
            edges.contains(&(a.to_string(), b.to_string())),
            "expected lock-order edge {a} -> {b} not extracted; got {edges:?}"
        );
    }
    assert!(
        la.graph.cycles().is_empty(),
        "vni fabric lock graph must stay acyclic: {:?}",
        la.graph.cycles()
    );
}
