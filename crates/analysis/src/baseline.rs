//! The committed triage file, `analysis-baseline.toml`. Hand-rolled parser
//! for the TOML subset the baseline actually uses: comments, `[table]`,
//! `[[array-of-tables]]`, and `key = "string" | integer` pairs (keys may be
//! quoted). Anything else is a parse error — a baseline that cannot be read
//! must fail loudly, not silently allow everything.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One triaged lock-order edge `a -> b`: the edge is dropped from the graph
/// before cycle detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderAllow {
    pub a: String,
    pub b: String,
    pub reason: String,
}

/// One triaged blocking-while-locked site, keyed by the holding function's
/// qualified name and the blocking op kind (robust to line drift).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingAllow {
    pub function: String,
    pub op: String,
    pub reason: String,
}

#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub lock_order: Vec<LockOrderAllow>,
    pub blocking: Vec<BlockingAllow>,
    /// Repo-relative file path -> allowed panic-site count.
    pub panic_surface: BTreeMap<String, usize>,
}

impl Baseline {
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Load from disk; a missing file is an empty baseline, an unreadable
    /// or malformed one is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::empty());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    pub fn parse(text: &str) -> Result<Baseline, String> {
        #[derive(PartialEq)]
        enum Sec {
            None,
            LockOrder,
            Blocking,
            PanicSurface,
        }
        let mut b = Baseline::empty();
        let mut sec = Sec::None;
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let at = |msg: &str| format!("line {}: {msg}", ln + 1);
            if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
                sec = match name.trim() {
                    "lock-order" => {
                        b.lock_order.push(LockOrderAllow {
                            a: String::new(),
                            b: String::new(),
                            reason: String::new(),
                        });
                        Sec::LockOrder
                    }
                    "blocking-while-locked" => {
                        b.blocking.push(BlockingAllow {
                            function: String::new(),
                            op: String::new(),
                            reason: String::new(),
                        });
                        Sec::Blocking
                    }
                    other => return Err(at(&format!("unknown section [[{other}]]"))),
                };
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                sec = match name.trim() {
                    "panic-surface" => Sec::PanicSurface,
                    other => return Err(at(&format!("unknown section [{other}]"))),
                };
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(at("expected `key = value`"));
            };
            let key = unquote(line[..eq].trim());
            let val = line[eq + 1..].trim();
            match sec {
                Sec::None => return Err(at("key before any section")),
                Sec::LockOrder => {
                    let e = b.lock_order.last_mut().unwrap();
                    match key.as_str() {
                        "a" => e.a = parse_str(val).ok_or_else(|| at("`a` must be a string"))?,
                        "b" => e.b = parse_str(val).ok_or_else(|| at("`b` must be a string"))?,
                        "reason" => {
                            e.reason =
                                parse_str(val).ok_or_else(|| at("`reason` must be a string"))?
                        }
                        k => return Err(at(&format!("unknown lock-order key `{k}`"))),
                    }
                }
                Sec::Blocking => {
                    let e = b.blocking.last_mut().unwrap();
                    match key.as_str() {
                        "function" => {
                            e.function =
                                parse_str(val).ok_or_else(|| at("`function` must be a string"))?
                        }
                        "op" => e.op = parse_str(val).ok_or_else(|| at("`op` must be a string"))?,
                        "reason" => {
                            e.reason =
                                parse_str(val).ok_or_else(|| at("`reason` must be a string"))?
                        }
                        k => return Err(at(&format!("unknown blocking key `{k}`"))),
                    }
                }
                Sec::PanicSurface => {
                    let n: usize = val
                        .parse()
                        .map_err(|_| at(&format!("`{key}` must be an integer, got `{val}`")))?;
                    b.panic_surface.insert(key, n);
                }
            }
        }
        for e in &b.lock_order {
            if e.a.is_empty() || e.b.is_empty() || e.reason.is_empty() {
                return Err("every [[lock-order]] entry needs `a`, `b` and `reason`".into());
            }
        }
        for e in &b.blocking {
            if e.function.is_empty() || e.op.is_empty() || e.reason.is_empty() {
                return Err(
                    "every [[blocking-while-locked]] entry needs `function`, `op` and `reason`"
                        .into(),
                );
            }
        }
        Ok(b)
    }

    pub fn allows_edge(&self, a: &str, b: &str) -> bool {
        self.lock_order.iter().any(|e| e.a == a && e.b == b)
    }

    pub fn allows_blocking(&self, function: &str, op: &str) -> bool {
        self.blocking
            .iter()
            .any(|e| e.function == function && e.op == op)
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(val: &str) -> Option<String> {
    let v = val.strip_prefix('"')?.strip_suffix('"')?;
    Some(v.to_string())
}

fn unquote(key: &str) -> String {
    key.strip_prefix('"')
        .and_then(|k| k.strip_suffix('"'))
        .unwrap_or(key)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_sections() {
        let b = Baseline::parse(concat!(
            "# triaged findings\n",
            "[[lock-order]]\n",
            "a = \"vni::Membership.links\"\n",
            "b = \"vni::Inbox.q\"\n",
            "reason = \"strict shard order\"  # inline comment\n",
            "\n",
            "[[blocking-while-locked]]\n",
            "function = \"Daemon::wait_config\"\n",
            "op = \"thread::sleep\"\n",
            "reason = \"startup poll, no shard lock held\"\n",
            "\n",
            "[panic-surface]\n",
            "\"crates/vni/src/fabric.rs\" = 3\n",
        ))
        .unwrap();
        assert!(b.allows_edge("vni::Membership.links", "vni::Inbox.q"));
        assert!(!b.allows_edge("vni::Inbox.q", "vni::Membership.links"));
        assert!(b.allows_blocking("Daemon::wait_config", "thread::sleep"));
        assert_eq!(b.panic_surface.get("crates/vni/src/fabric.rs"), Some(&3));
    }

    #[test]
    fn rejects_incomplete_and_unknown() {
        assert!(Baseline::parse("[[lock-order]]\na = \"x\"\n").is_err());
        assert!(Baseline::parse("[mystery]\n").is_err());
        assert!(Baseline::parse("stray = 1\n").is_err());
        assert!(Baseline::parse("[panic-surface]\n\"f.rs\" = \"three\"\n").is_err());
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/analysis-baseline.toml")).unwrap();
        assert!(b.lock_order.is_empty() && b.blocking.is_empty() && b.panic_surface.is_empty());
    }
}
