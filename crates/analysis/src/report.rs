//! Findings and the machine-readable report. The JSON writer is
//! hand-rolled (same philosophy as `trace`'s perfetto exporter and
//! `events`' postmortem bundles): no serde offline, and the schema is
//! small enough that an escaper plus string building is clearer than a
//! framework.

use std::fmt;
use std::path::PathBuf;

/// One finding from any pass.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: PathBuf,
    pub line: usize,
    pub msg: String,
    /// Acquisition / call chains substantiating the finding (lock-order and
    /// blocking-while-locked); empty for line-local rules.
    pub chains: Vec<String>,
    /// Stable subject for baseline matching: the qualified function for
    /// blocking findings, the `a -> b` pair for lock-order findings,
    /// empty for legacy rules.
    pub subject: String,
    /// Stable detail for baseline matching: the blocking op kind, or the
    /// panic-site count. Empty when unused.
    pub detail: String,
}

impl Finding {
    pub fn new(rule: &str, file: PathBuf, line: usize, msg: String) -> Finding {
        Finding {
            rule: rule.to_string(),
            file,
            line,
            msg,
            chains: Vec::new(),
            subject: String::new(),
            detail: String::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )?;
        for c in &self.chains {
            write!(f, "\n    {c}")?;
        }
        Ok(())
    }
}

/// Corpus-level numbers, so a clean run still proves the passes saw the
/// workspace (a lint that silently scanned nothing also reports nothing).
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub crates: Vec<String>,
    pub files: usize,
    pub functions: usize,
    pub lock_classes: usize,
    pub lock_edges: usize,
    pub unresolved_locks: usize,
    pub panic_sites: usize,
    pub baselined: usize,
}

/// Everything one analysis run produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Non-failing observations (stale baseline entries, counts that could
    /// be tightened). Printed, never gating.
    pub notes: Vec<String>,
    pub stats: Stats,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human output: one line per finding (plus indented chains), then the
    /// notes and a stats trailer.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        let s = &self.stats;
        out.push_str(&format!(
            "analysis: {} crate(s), {} file(s), {} function(s); \
             {} lock class(es), {} lock-order edge(s), {} unresolved lock site(s); \
             {} panic site(s); {} finding(s) ({} baselined)\n",
            s.crates.len(),
            s.files,
            s.functions,
            s.lock_classes,
            s.lock_edges,
            s.unresolved_locks,
            s.panic_sites,
            self.findings.len(),
            s.baselined,
        ));
        out
    }

    /// Machine-readable report (CI artifact).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"starfish-analysis/1\",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(&f.rule)));
            out.push_str(&format!(
                "\"file\": {}, ",
                json_str(&f.file.display().to_string())
            ));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!("\"subject\": {}, ", json_str(&f.subject)));
            out.push_str(&format!("\"detail\": {}, ", json_str(&f.detail)));
            out.push_str(&format!("\"message\": {}, ", json_str(&f.msg)));
            out.push_str("\"chains\": [");
            for (j, c) in f.chains.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_str(c));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        let s = &self.stats;
        out.push_str("],\n  \"stats\": {");
        out.push_str("\"crates\": [");
        for (i, c) in s.crates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(c));
        }
        out.push_str(&format!(
            "], \"files\": {}, \"functions\": {}, \"lock_classes\": {}, \
             \"lock_edges\": {}, \"unresolved_locks\": {}, \"panic_sites\": {}, \
             \"baselined\": {}}}\n}}\n",
            s.files,
            s.functions,
            s.lock_classes,
            s.lock_edges,
            s.unresolved_locks,
            s.panic_sites,
            s.baselined,
        ));
        out
    }
}

/// JSON string literal with escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = Report::default();
        let mut f = Finding::new(
            "lock-order",
            PathBuf::from("crates/vni/src/fabric.rs"),
            10,
            "cycle \"a\" <-> b".into(),
        );
        f.chains.push("x -> y\t(f.rs:1)".into());
        r.findings.push(f);
        r.stats.crates.push("vni".into());
        let j = r.to_json();
        assert!(j.contains("\\\"a\\\""), "{j}");
        assert!(j.contains("\\t"), "{j}");
        assert!(j.contains("\"schema\": \"starfish-analysis/1\""));
        assert!(j.contains("\"crates\": [\"vni\"]"));
        // Structurally balanced (cheap sanity: equal brace counts).
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced: {j}"
        );
    }

    #[test]
    fn human_render_includes_chains_and_stats() {
        let mut r = Report::default();
        let mut f = Finding::new(
            "blocking-while-locked",
            PathBuf::from("a.rs"),
            3,
            "m".into(),
        );
        f.chains.push("chain step".into());
        r.findings.push(f);
        r.notes.push("stale entry".into());
        let h = r.render_human();
        assert!(h.contains("a.rs:3: [blocking-while-locked] m"));
        assert!(h.contains("    chain step"));
        assert!(h.contains("note: stale entry"));
        assert!(h.contains("1 finding(s)"));
    }
}
