//! The original `starfish-lint` rules, re-hosted on the analysis
//! framework's source model:
//!
//! 1. **wall-clock** — crates whose behavior must be a pure function of
//!    virtual time and seeds must not call wall-clock or seedless-entropy
//!    APIs outside test code. Real-time escape hatches carry
//!    `// lint: allow(wall-clock)` on the same or preceding line.
//! 2. **wire-enum-coverage** — every enum with an `Encode` *and* `Decode`
//!    implementation (trait or inherent) must have each variant named in
//!    the crate's test code. Variant parsing uses the item model, which
//!    (unlike the old line scanner) also sees single-line enums and
//!    several variants per line.
//! 3. **mgmt-usage** — every command arm of the management console's
//!    dispatch must have a `COMMAND_USAGE` entry, and vice versa.

use std::fs;
use std::path::Path;

use crate::model::CrateModel;
use crate::report::Finding;
use crate::source::{caps_literals, rs_files, token_in, SourceFile};

/// Tokens rule 1 forbids in deterministic crates: wall clocks plus
/// seedless entropy (`rand::random` / `Rng::gen` draw from OS entropy; the
/// workspace's `DetRng` is the seeded alternative).
pub const WALL_CLOCK_TOKENS: &[&str] = &[
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "rand::random",
    "Rng::gen",
];

/// The escape-hatch marker for rule 1.
pub const ALLOW_WALL_CLOCK: &str = "lint: allow(wall-clock)";

/// Crates (by directory name under `crates/`) whose `src/` must stay
/// virtual-time deterministic. `events` and `trace` sit on the recovery
/// forensics path: their frames are replayed and diffed across runs, so
/// wall-clock reads there would break postmortem reproducibility.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "vni",
    "mpi",
    "ensemble",
    "checkpoint",
    "chaos",
    "events",
    "trace",
];

// ---------------------------------------------------------------------------
// Rule 1: wall-clock
// ---------------------------------------------------------------------------

/// Check one crate's `src/` for forbidden wall-clock/entropy tokens.
pub fn wall_clock(src_dir: &Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in rs_files(src_dir) {
        let Some(scan) = SourceFile::load(&f) else {
            continue;
        };
        for (i, code) in scan.code.iter().enumerate() {
            if scan.in_test[i] {
                continue;
            }
            for tok in WALL_CLOCK_TOKENS {
                if !token_in(code, tok) {
                    continue;
                }
                if !scan.allowed(i, ALLOW_WALL_CLOCK) {
                    out.push(Finding::new(
                        "wall-clock",
                        scan.path.clone(),
                        i + 1,
                        format!(
                            "`{tok}` in a virtual-time-deterministic crate \
                             (annotate `// {ALLOW_WALL_CLOCK}` if this is a real-time escape hatch)"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: wire-enum coverage
// ---------------------------------------------------------------------------

/// Names with an `impl Encode for X` / `impl Decode for X`, or an inherent
/// impl block containing both `fn encode` and `fn decode`.
fn codec_types(scans: &[SourceFile]) -> Vec<String> {
    let mut enc = Vec::new();
    let mut dec = Vec::new();
    for scan in scans {
        let mut i = 0;
        while i < scan.code.len() {
            let line = scan.code[i].trim().to_string();
            if let Some(rest) = line.strip_prefix("impl Encode for ") {
                if let Some(n) = crate::source::leading_ident(rest) {
                    enc.push(n);
                }
            } else if let Some(rest) = line.strip_prefix("impl Decode for ") {
                if let Some(n) = crate::source::leading_ident(rest) {
                    dec.push(n);
                }
            } else if line.starts_with("impl ") && !line.contains(" for ") {
                // Inherent impl: scope out the block, look for both fns.
                let after = line.trim_start_matches("impl").trim_start();
                let after = if after.starts_with('<') {
                    match after.find('>') {
                        Some(g) => after[g + 1..].trim_start(),
                        None => after,
                    }
                } else {
                    after
                };
                if let Some(name) = crate::source::leading_ident(after) {
                    let mut depth = 0i32;
                    let mut opened = false;
                    let (mut has_enc, mut has_dec) = (false, false);
                    let mut j = i;
                    'blk: while j < scan.code.len() {
                        let l = &scan.code[j];
                        if token_in(l, "fn") && (l.contains("fn encode") || l.contains("fn decode"))
                        {
                            has_enc |= l.contains("fn encode(") || l.contains("fn encode<");
                            has_dec |= l.contains("fn decode(")
                                || l.contains("fn decode<")
                                || l.contains("fn decode_from");
                        }
                        for c in l.chars() {
                            match c {
                                '{' => {
                                    depth += 1;
                                    opened = true;
                                }
                                '}' => {
                                    depth -= 1;
                                    if opened && depth == 0 {
                                        break 'blk;
                                    }
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    if has_enc && has_dec {
                        enc.push(name.clone());
                        dec.push(name);
                    }
                    i = j + 1;
                    continue;
                }
            }
            i += 1;
        }
    }
    enc.retain(|n| dec.contains(n));
    enc.sort();
    enc.dedup();
    enc
}

/// Check one crate directory (containing `src/`, optionally `tests/`).
pub fn wire_enum_coverage(crate_dir: &Path) -> Vec<Finding> {
    let name = crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let model = CrateModel::parse(&name, crate_dir);
    let codecs = codec_types(&model.files);
    if codecs.is_empty() {
        return Vec::new();
    }
    // Test corpus: #[cfg(test)] regions of src plus everything in tests/.
    let mut corpus = String::new();
    for s in &model.files {
        for (i, l) in s.raw.iter().enumerate() {
            if s.in_test[i] {
                corpus.push_str(l);
                corpus.push('\n');
            }
        }
    }
    for f in rs_files(&crate_dir.join("tests")) {
        if let Ok(t) = fs::read_to_string(&f) {
            corpus.push_str(&t);
            corpus.push('\n');
        }
    }

    let mut out = Vec::new();
    for e in &model.enums {
        if e.in_test || !codecs.contains(&e.name) {
            continue;
        }
        for v in &e.variants {
            if !token_in(&corpus, v) {
                out.push(Finding::new(
                    "wire-enum-coverage",
                    model.files[e.file].path.clone(),
                    e.line + 1,
                    format!(
                        "wire enum `{}` variant `{v}` is never mentioned in this crate's \
                         tests — add it to the codec roundtrip test",
                        e.name
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 3: mgmt usage
// ---------------------------------------------------------------------------

/// Check the management console source for usage-table completeness.
pub fn mgmt_usage(mgmt_rs: &Path) -> Vec<Finding> {
    let Some(scan) = SourceFile::load(mgmt_rs) else {
        return Vec::new();
    };
    let mut out = Vec::new();

    // Commands: depth-1 literal arms of the `match cmd.to_ascii_uppercase()`
    // dispatch.
    let mut commands: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < scan.code.len() {
        if scan.code[i].contains("match cmd.to_ascii_uppercase()") && !scan.in_test[i] {
            let mut depth = 0i32;
            let mut j = i;
            loop {
                if j >= scan.code.len() {
                    break;
                }
                if j > i && depth == 1 {
                    let t = scan.code_str[j].trim();
                    if t.starts_with('"') {
                        for c in caps_literals(&scan.code_str[j]) {
                            commands.push((c, j + 1));
                        }
                    }
                }
                for c in scan.code[j].chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if j > i && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }

    // Table entries: first CAPS literal of each line of COMMAND_USAGE.
    let mut table: Vec<String> = Vec::new();
    let mut in_table = false;
    for (i, l) in scan.code.iter().enumerate() {
        if l.contains("COMMAND_USAGE") && l.contains('[') {
            in_table = true;
            continue;
        }
        if in_table {
            if l.contains("];") {
                break;
            }
            if let Some(first) = caps_literals(&scan.code_str[i]).into_iter().next() {
                table.push(first);
            }
        }
    }

    if commands.is_empty() {
        out.push(Finding::new(
            "mgmt-usage",
            mgmt_rs.to_path_buf(),
            1,
            "no command dispatch found (expected `match cmd.to_ascii_uppercase()`)".into(),
        ));
        return out;
    }
    for (cmd, line) in &commands {
        if !table.contains(cmd) {
            out.push(Finding::new(
                "mgmt-usage",
                mgmt_rs.to_path_buf(),
                *line,
                format!("command {cmd:?} has no COMMAND_USAGE entry (HELP will not list it)"),
            ));
        }
    }
    for t in &table {
        if !commands.iter().any(|(c, _)| c == t) {
            out.push(Finding::new(
                "mgmt-usage",
                mgmt_rs.to_path_buf(),
                1,
                format!("COMMAND_USAGE advertises {t:?} but no dispatch arm handles it"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("starfish-analysis-test-{name}"));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(d.join("src")).unwrap();
        d
    }

    #[test]
    fn wall_clock_flags_bare_instant_now() {
        let d = tmpdir("wc1");
        fs::write(
            d.join("src/lib.rs"),
            "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        )
        .unwrap();
        let v = wall_clock(&d.join("src"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn wall_clock_flags_seedless_entropy() {
        let d = tmpdir("wc-entropy");
        fs::write(
            d.join("src/lib.rs"),
            concat!(
                "pub fn jitter() -> u64 { rand::random::<u64>() }\n",
                "pub fn draw<R: Rng>(r: &mut R) -> u64 { Rng::gen(r) }\n",
            ),
        )
        .unwrap();
        let v = wall_clock(&d.join("src"));
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].msg.contains("rand::random"), "{}", v[0].msg);
        assert!(v[1].msg.contains("Rng::gen"), "{}", v[1].msg);
    }

    #[test]
    fn wall_clock_honors_allow_and_tests_and_comments() {
        let d = tmpdir("wc2");
        fs::write(
            d.join("src/lib.rs"),
            concat!(
                "pub fn ok() {\n",
                "    let _ = std::time::Instant::now(); // lint: allow(wall-clock)\n",
                "    // lint: allow(wall-clock)\n",
                "    let _ = std::time::Instant::now();\n",
                "    // a comment mentioning Instant::now() is fine\n",
                "    let _ = \"Instant::now() in a string is fine\";\n",
                "}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    fn t() { let _ = std::time::Instant::now(); }\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = wall_clock(&d.join("src"));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wall_clock_ban_covers_the_diskless_replica_store() {
        // The replica backend's virtual-time determinism rests on the
        // checkpoint crate being policed; pin the crate list so a future
        // edit cannot silently drop it (or the other deterministic cores).
        assert!(DETERMINISTIC_CRATES.contains(&"checkpoint"));
        assert!(DETERMINISTIC_CRATES.contains(&"mpi"));
        // And the rule has teeth inside a replica.rs-shaped module.
        let d = tmpdir("wc-replica");
        fs::write(
            d.join("src/replica.rs"),
            concat!(
                "pub fn put_replicated() {\n",
                "    let _t0 = std::time::Instant::now();\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = wall_clock(&d.join("src"));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "wall-clock");
        assert!(v[0].file.ends_with("replica.rs"), "{v:?}");
    }

    #[test]
    fn wall_clock_ban_covers_the_forensics_crates() {
        // PR 8's event bus / postmortem frames are replayed and diffed
        // across runs; pin `events` and `trace` into the deterministic set.
        assert!(DETERMINISTIC_CRATES.contains(&"events"));
        assert!(DETERMINISTIC_CRATES.contains(&"trace"));
    }

    #[test]
    fn wall_clock_does_not_match_sub_identifiers() {
        let d = tmpdir("wc3");
        fs::write(
            d.join("src/lib.rs"),
            "pub fn f(x: u64) -> u64 { my_thread_rng_seed(x) }\nfn my_thread_rng_seed(x: u64) -> u64 { x }\n",
        )
        .unwrap();
        assert!(wall_clock(&d.join("src")).is_empty());
    }

    #[test]
    fn enum_coverage_flags_untested_variant() {
        let d = tmpdir("enum1");
        fs::write(
            d.join("src/lib.rs"),
            concat!(
                "pub enum Wire {\n",
                "    Ping,\n",
                "    Pong,\n",
                "    Forgotten,\n",
                "}\n",
                "pub trait Encode {}\n",
                "pub trait Decode {}\n",
                "impl Encode for Wire {}\n",
                "impl Decode for Wire {}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    #[test]\n",
                "    fn roundtrip() { /* Ping Pong */ let _ = (\"Ping\", \"Pong\"); }\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = wire_enum_coverage(&d);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Forgotten"), "{}", v[0].msg);
    }

    #[test]
    fn enum_coverage_sees_single_line_and_multi_variant_lines() {
        // Regression: the pre-framework scanner collected at most one
        // leading identifier per line and skipped the opening-brace line,
        // so these two shapes escaped coverage entirely.
        let d = tmpdir("enum-oneline");
        fs::write(
            d.join("src/lib.rs"),
            concat!(
                "pub enum Flat { Seen, Missed }\n",
                "pub enum Packed {\n",
                "    A, Skipped,\n",
                "}\n",
                "pub trait Encode {}\n",
                "pub trait Decode {}\n",
                "impl Encode for Flat {}\n",
                "impl Decode for Flat {}\n",
                "impl Encode for Packed {}\n",
                "impl Decode for Packed {}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    #[test]\n",
                "    fn roundtrip() { let _ = (\"Seen\", \"A\"); }\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = wire_enum_coverage(&d);
        let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
        assert_eq!(v.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`Missed`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`Skipped`")), "{msgs:?}");
    }

    #[test]
    fn enum_without_codec_impls_is_ignored() {
        let d = tmpdir("enum2");
        fs::write(
            d.join("src/lib.rs"),
            "pub enum Internal { NeverOnTheWire }\n",
        )
        .unwrap();
        assert!(wire_enum_coverage(&d).is_empty());
    }

    #[test]
    fn inherent_codec_counts_as_wire_enum() {
        let d = tmpdir("enum3");
        fs::write(
            d.join("src/lib.rs"),
            concat!(
                "pub enum Rel {\n",
                "    Nack,\n",
                "    Quiet,\n",
                "}\n",
                "impl Rel {\n",
                "    pub fn encode(&self) -> Vec<u8> { Vec::new() }\n",
                "    pub fn decode(_b: &[u8]) -> Option<Rel> { None }\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = wire_enum_coverage(&d);
        assert_eq!(v.len(), 2, "{v:?}"); // no tests at all: both flagged
    }

    #[test]
    fn mgmt_usage_requires_table_entries_both_ways() {
        let d = tmpdir("mgmt1");
        fs::write(
            d.join("src/mgmt.rs"),
            concat!(
                "pub const COMMAND_USAGE: &[(&str, &str)] = &[\n",
                "    (\"LOGIN\", \"LOGIN ADMIN <password>\"),\n",
                "    (\"GHOST\", \"GHOST — not actually handled\"),\n",
                "];\n",
                "fn try_handle(cmd: &str) -> String {\n",
                "    match cmd.to_ascii_uppercase().as_str() {\n",
                "        \"LOGIN\" => \"ok\".into(),\n",
                "        \"STATS\" | \"HEALTH\" => \"ok\".into(),\n",
                "        other => format!(\"ERR unknown command {other:?}\"),\n",
                "    }\n",
                "}\n",
            ),
        )
        .unwrap();
        let v = mgmt_usage(&d.join("src/mgmt.rs"));
        let msgs: Vec<&str> = v.iter().map(|x| x.msg.as_str()).collect();
        assert_eq!(v.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("\"STATS\"")));
        assert!(msgs.iter().any(|m| m.contains("\"HEALTH\"")));
        assert!(msgs.iter().any(|m| m.contains("\"GHOST\"")));
    }
}
