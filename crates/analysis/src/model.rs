//! The item/block layer: structs (with fields), enums (with variants),
//! impl blocks, and functions (with body extents and call sites), parsed
//! from [`SourceFile`]s by brace tracking over blanked code. Line numbers
//! in the model are 0-based file indices; findings add 1 at report time.

use std::path::Path;

use crate::source::{leading_ident, rs_files, token_pos, SourceFile};

/// One struct field: `name` and the raw remainder of its declaring line
/// (enough to classify `Mutex<…>` / `RwLock<…>` / `Condvar` fields).
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: String,
}

#[derive(Debug, Clone)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
    pub file: usize,
    pub line: usize,
}

#[derive(Debug, Clone)]
pub struct EnumDef {
    pub name: String,
    pub variants: Vec<String>,
    pub file: usize,
    pub line: usize,
    pub in_test: bool,
}

/// One `fn` item. `body` spans from the line of the opening brace to the
/// line of the matching close (inclusive); trait-method declarations have
/// no body.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// Enclosing `impl` type, if the fn sits in an impl block.
    pub self_ty: Option<String>,
    pub file: usize,
    pub sig_line: usize,
    pub body: Option<(usize, usize)>,
    pub in_test: bool,
}

impl FnDef {
    /// `Type::name` or bare `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(…)` — a plain path call.
    Plain,
    /// `recv.foo(…)` — a method call on some receiver.
    Method,
    /// `Type::foo(…)` — qualified; the qualifier is captured.
    Qualified,
}

#[derive(Debug, Clone)]
pub struct CallSite {
    pub callee: String,
    /// Last path segment before `::callee` for qualified calls.
    pub qualifier: Option<String>,
    pub kind: CallKind,
    pub line: usize,
    /// Char index of the callee identifier within the line.
    pub pos: usize,
}

/// Whole-crate source model.
pub struct CrateModel {
    /// Crate directory name (`vni`, `daemon`, …).
    pub name: String,
    pub files: Vec<SourceFile>,
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    pub functions: Vec<FnDef>,
}

const FN_QUALIFIERS: &[&str] = &[
    "pub",
    "pub(crate)",
    "pub(super)",
    "pub(self)",
    "const",
    "async",
    "unsafe",
    "extern",
    "default",
];

fn is_fn_item_line(code: &str, fn_pos: usize) -> bool {
    code[..fn_pos]
        .split_whitespace()
        .all(|w| FN_QUALIFIERS.contains(&w) || w.starts_with("pub("))
}

/// Split a line into top-level (zero bracket depth) comma-separated
/// segments. Used for enum variant lists that share a line.
fn top_level_segments(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in line.char_indices() {
        match c {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ',' if depth <= 0 => {
                out.push(&line[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&line[start..]);
    out
}

impl CrateModel {
    /// Parse every `.rs` file under `dir/src`.
    pub fn parse(name: &str, dir: &Path) -> CrateModel {
        let files: Vec<SourceFile> = rs_files(&dir.join("src"))
            .iter()
            .filter_map(|f| SourceFile::load(f))
            .collect();
        Self::from_files(name, files)
    }

    /// Build the model from pre-scanned files (tests, fixtures).
    pub fn from_files(name: &str, files: Vec<SourceFile>) -> CrateModel {
        let mut m = CrateModel {
            name: name.to_string(),
            files,
            structs: Vec::new(),
            enums: Vec::new(),
            functions: Vec::new(),
        };
        for fi in 0..m.files.len() {
            m.parse_file(fi);
        }
        m
    }

    fn parse_file(&mut self, fi: usize) {
        let n = self.files[fi].code.len();
        // Pass 1: impl-block extents, so functions know their self type.
        // impl_ty[line] = Some(type) while inside an impl block.
        let mut impl_ty: Vec<Option<String>> = vec![None; n];
        {
            let f = &self.files[fi];
            let mut i = 0;
            while i < n {
                let line = &f.code[i];
                let t = line.trim_start();
                if t.starts_with("impl ") || t == "impl" || t.starts_with("impl<") {
                    if let Some(ty) = impl_self_type(t) {
                        let end = block_end(&f.code, i);
                        for cell in impl_ty.iter_mut().take(end + 1).skip(i) {
                            *cell = Some(ty.clone());
                        }
                        // Do not skip to `end`: nothing nests another impl,
                        // but stepping line-by-line keeps this robust.
                    }
                }
                i += 1;
            }
        }

        // Pass 2: items.
        let mut i = 0;
        while i < n {
            let (code_line, in_test) = {
                let f = &self.files[fi];
                (f.code[i].clone(), f.in_test[i])
            };
            if let Some(pos) = token_pos(&code_line, "struct") {
                if is_fn_item_line(&code_line, pos) {
                    if let Some(s) = self.parse_struct(fi, i, pos) {
                        let end = block_end(&self.files[fi].code, i);
                        self.structs.push(s);
                        i = end + 1;
                        continue;
                    }
                }
            }
            if let Some(pos) = token_pos(&code_line, "enum") {
                if is_fn_item_line(&code_line, pos) {
                    if let Some(e) = self.parse_enum(fi, i, pos, in_test) {
                        let end = block_end(&self.files[fi].code, i);
                        self.enums.push(e);
                        i = end + 1;
                        continue;
                    }
                }
            }
            if let Some(pos) = token_pos(&code_line, "fn") {
                if is_fn_item_line(&code_line, pos) {
                    if let Some(fd) = self.parse_fn(fi, i, pos, impl_ty[i].clone(), in_test) {
                        // Continue scanning *inside* the body: nested fns and
                        // (in pass terms) nothing else is item-scanned there,
                        // but stepping line-by-line finds closures' parents
                        // exactly once because `fn` tokens are item-gated.
                        self.functions.push(fd);
                    }
                }
            }
            i += 1;
        }
    }

    fn parse_struct(&self, fi: usize, start: usize, pos: usize) -> Option<StructDef> {
        let f = &self.files[fi];
        let after = &f.code[start][pos + "struct".len()..];
        let name = leading_ident(after)?;
        let mut fields = Vec::new();
        // Find the opening brace; a `;` first means tuple/unit struct.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = start;
        'body: while j < f.code.len() {
            let l = &f.code[j];
            let scan = if j == start { &l[pos..] } else { l.as_str() };
            for (ci, c) in scan.char_indices() {
                match c {
                    ';' if !opened && depth == 0 => break 'body,
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            break 'body;
                        }
                    }
                    _ => {}
                }
                // Collect `ident:` fields at depth 1.
                if opened && depth == 1 && c == ':' {
                    let before = &scan[..ci];
                    if let Some(id) = before
                        .rsplit(|ch: char| !(ch.is_alphanumeric() || ch == '_'))
                        .next()
                    {
                        if !id.is_empty()
                            && !id.chars().next().unwrap().is_numeric()
                            // `::` paths inside types are not field names.
                            && !scan[ci..].starts_with("::")
                            && !before.ends_with(':')
                        {
                            fields.push(FieldDef {
                                name: id.to_string(),
                                ty: scan[ci + 1..].trim().trim_end_matches(',').to_string(),
                            });
                        }
                    }
                }
            }
            j += 1;
        }
        Some(StructDef {
            name,
            fields,
            file: fi,
            line: start,
        })
    }

    fn parse_enum(&self, fi: usize, start: usize, pos: usize, in_test: bool) -> Option<EnumDef> {
        let f = &self.files[fi];
        let after = &f.code[start][pos + "enum".len()..];
        let name = leading_ident(after)?;
        let mut variants = Vec::new();
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = start;
        'body: while j < f.code.len() {
            let l = if j == start {
                &f.code[j][pos..]
            } else {
                f.code[j].as_str()
            };
            // Variant names live at depth 1. A line may hold several
            // (`A, B, C`) and may share the line with the opening or
            // closing brace, so slice the depth-1 region out of the line
            // before splitting on top-level commas.
            let mut d = depth;
            let mut region_start: Option<usize> = if opened && d == 1 { Some(0) } else { None };
            for (ci, c) in l.char_indices() {
                match c {
                    '{' => {
                        d += 1;
                        opened = true;
                        if d == 1 {
                            region_start = Some(ci + 1);
                        }
                    }
                    '}' => {
                        if d == 1 {
                            if let Some(rs) = region_start.take() {
                                collect_variants(&l[rs..ci], &mut variants);
                            }
                        }
                        d -= 1;
                        if opened && d == 0 {
                            break 'body;
                        }
                    }
                    ';' if !opened => break 'body,
                    _ => {}
                }
            }
            if let Some(rs) = region_start {
                collect_variants(&l[rs..], &mut variants);
            }
            depth = d;
            j += 1;
        }
        Some(EnumDef {
            name,
            variants,
            file: fi,
            line: start,
            in_test,
        })
    }

    fn parse_fn(
        &self,
        fi: usize,
        sig_line: usize,
        pos: usize,
        self_ty: Option<String>,
        in_test: bool,
    ) -> Option<FnDef> {
        let f = &self.files[fi];
        let name = leading_ident(&f.code[sig_line][pos + "fn".len()..])?;
        // Walk from the signature: the first `{` at paren-depth 0 opens the
        // body; a `;` first means a bodyless declaration.
        let mut paren = 0i32;
        let mut j = sig_line;
        let mut body = None;
        'sig: while j < f.code.len() {
            let l = if j == sig_line {
                &f.code[j][pos..]
            } else {
                f.code[j].as_str()
            };
            for c in l.chars() {
                match c {
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    ';' if paren == 0 => break 'sig,
                    '{' if paren == 0 => {
                        let end = block_end(&f.code, j);
                        body = Some((j, end));
                        break 'sig;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        Some(FnDef {
            name,
            self_ty,
            file: fi,
            sig_line,
            body,
            in_test,
        })
    }

    /// Call sites in one code line.
    pub fn calls_in_line(code: &str, line: usize) -> Vec<CallSite> {
        const KEYWORDS: &[&str] = &[
            "if", "while", "for", "match", "return", "fn", "loop", "move", "in", "as", "let",
            "else", "impl", "dyn", "where", "box", "unsafe", "async",
        ];
        let bytes: Vec<char> = code.chars().collect();
        let mut out = Vec::new();
        for (i, &c) in bytes.iter().enumerate() {
            if c != '(' {
                continue;
            }
            // Walk back over the callee identifier.
            let mut e = i;
            while e > 0 && (bytes[e - 1] == ' ') {
                e -= 1;
            }
            let mut s = e;
            while s > 0 && (bytes[s - 1].is_alphanumeric() || bytes[s - 1] == '_') {
                s -= 1;
            }
            if s == e {
                continue;
            }
            let callee: String = bytes[s..e].iter().collect();
            if callee.chars().next().unwrap().is_numeric()
                || KEYWORDS.contains(&callee.as_str())
                || callee.chars().next().unwrap().is_uppercase()
            {
                // Uppercase leading char: tuple-struct/variant construction.
                continue;
            }
            let (kind, qualifier) = if s >= 1 && bytes[s - 1] == '.' {
                (CallKind::Method, None)
            } else if s >= 2 && bytes[s - 1] == ':' && bytes[s - 2] == ':' {
                // Capture the path segment before `::`.
                let qe = s - 2;
                let mut qs = qe;
                while qs > 0 && (bytes[qs - 1].is_alphanumeric() || bytes[qs - 1] == '_') {
                    qs -= 1;
                }
                if qe > qs {
                    let q: String = bytes[qs..qe].iter().collect();
                    (CallKind::Qualified, Some(q))
                } else {
                    (CallKind::Qualified, None)
                }
            } else {
                (CallKind::Plain, None)
            };
            out.push(CallSite {
                callee,
                qualifier,
                kind,
                line,
                pos: s,
            });
        }
        out
    }

    /// Structs by name (there may be several across files; first wins is
    /// never relied on — callers collect all).
    pub fn structs_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a StructDef> + 'a {
        self.structs.iter().filter(move |s| s.name == name)
    }
}

fn collect_variants(region: &str, variants: &mut Vec<String>) {
    for seg in top_level_segments(region) {
        if let Some(id) = leading_ident(seg) {
            variants.push(id);
        }
    }
}

/// Line index of the `}` closing the first `{` at/after `start`.
/// Returns `start` if no brace opens (defensive).
pub fn block_end(code: &[String], start: usize) -> usize {
    let mut depth = 0i32;
    let mut opened = false;
    let mut j = start;
    while j < code.len() {
        for c in code[j].chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return j;
        }
        j += 1;
    }
    code.len().saturating_sub(1).max(start)
}

/// Self type of an `impl` header line: `impl Foo`, `impl<T> Foo<T>`,
/// `impl Trait for Foo`, `impl fmt::Debug for Foo`.
fn impl_self_type(header: &str) -> Option<String> {
    let mut rest = header.trim_start().strip_prefix("impl")?;
    // Skip a generic parameter list.
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    let rest = rest.trim_start();
    // `impl Trait for Type {` → the part after ` for `.
    let target = match rest.find(" for ") {
        Some(p) => &rest[p + 5..],
        None => rest,
    };
    let target = target.trim_start().trim_start_matches('&');
    // Strip leading path segments: `fmt::Debug for foo::Bar` → Bar.
    let mut id = leading_ident(target)?;
    let mut t = &target[id.len()..];
    while let Some(stripped) = t.strip_prefix("::") {
        match leading_ident(stripped) {
            Some(next) => {
                t = &stripped[next.len()..];
                id = next;
            }
            None => break,
        }
    }
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> CrateModel {
        CrateModel::from_files(
            "t",
            vec![SourceFile::from_text(Path::new("t/src/lib.rs"), src)],
        )
    }

    #[test]
    fn finds_structs_fields_and_impl_methods() {
        let m = model(concat!(
            "pub struct Hub {\n",
            "    inner: Arc<Mutex<BTreeMap<String, Snapshot>>>,\n",
            "    history: Mutex<History>,\n",
            "    cond: Condvar,\n",
            "}\n",
            "impl Hub {\n",
            "    pub fn update(&self) {\n",
            "        self.inner.lock();\n",
            "    }\n",
            "    fn helper(x: u32) -> u32 { x }\n",
            "}\n",
            "impl fmt::Debug for Hub {\n",
            "    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { todo!() }\n",
            "}\n",
            "fn free() {}\n",
        ));
        let s = &m.structs[0];
        assert_eq!(s.name, "Hub");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["inner", "history", "cond"]);
        assert!(s.fields[0].ty.contains("Mutex<"));
        let q: Vec<String> = m.functions.iter().map(|f| f.qualified()).collect();
        assert!(q.contains(&"Hub::update".to_string()), "{q:?}");
        assert!(q.contains(&"Hub::helper".to_string()));
        assert!(q.contains(&"Hub::fmt".to_string()));
        assert!(q.contains(&"free".to_string()));
        let upd = m.functions.iter().find(|f| f.name == "update").unwrap();
        assert_eq!(upd.body, Some((6, 8)));
    }

    #[test]
    fn enum_variants_multi_per_line_and_single_line() {
        let m = model(concat!(
            "pub enum Multi {\n",
            "    A, B,\n",
            "    C { x: (u8, u8) },\n",
            "    D(Vec<u8>), E,\n",
            "}\n",
            "pub enum OneLine { P, Q }\n",
        ));
        let multi = m.enums.iter().find(|e| e.name == "Multi").unwrap();
        assert_eq!(multi.variants, vec!["A", "B", "C", "D", "E"]);
        let one = m.enums.iter().find(|e| e.name == "OneLine").unwrap();
        assert_eq!(one.variants, vec!["P", "Q"]);
    }

    #[test]
    fn fn_decl_without_body_and_multiline_signature() {
        let m = model(concat!(
            "pub trait T {\n",
            "    fn decl(&self) -> u32;\n",
            "    fn with_default(&self) -> u32 { 1 }\n",
            "}\n",
            "fn multi(\n",
            "    a: u32,\n",
            "    b: u32,\n",
            ") -> u32 {\n",
            "    a + b\n",
            "}\n",
        ));
        let decl = m.functions.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        let dflt = m
            .functions
            .iter()
            .find(|f| f.name == "with_default")
            .unwrap();
        assert_eq!(dflt.body, Some((2, 2)));
        let multi = m.functions.iter().find(|f| f.name == "multi").unwrap();
        assert_eq!(multi.body, Some((7, 9)));
    }

    #[test]
    fn call_sites_classified() {
        let calls =
            CrateModel::calls_in_line("self.deliver(m, pkt); helper(1); Fabric::emit(x)", 7);
        let names: Vec<(&str, CallKind)> =
            calls.iter().map(|c| (c.callee.as_str(), c.kind)).collect();
        assert_eq!(
            names,
            vec![
                ("deliver", CallKind::Method),
                ("helper", CallKind::Plain),
                ("emit", CallKind::Qualified),
            ]
        );
        assert_eq!(calls[2].qualifier.as_deref(), Some("Fabric"));
        // Macros and constructions are not calls.
        assert!(CrateModel::calls_in_line("println!(\"x\"); Some(1)", 0).is_empty());
    }

    #[test]
    fn test_region_functions_are_marked() {
        let m = model(concat!(
            "fn prod() {}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() {}\n",
            "}\n",
        ));
        assert!(
            !m.functions
                .iter()
                .find(|f| f.name == "prod")
                .unwrap()
                .in_test
        );
        assert!(m.functions.iter().find(|f| f.name == "t").unwrap().in_test);
    }
}
