//! The lexical layer of the analysis framework: hand-rolled (no `syn`
//! offline) but with enough Rust lexing — nested block comments,
//! string/raw-string/char literals, `#[cfg(test)]` regions — to make token
//! judgments sound. Every transformation preserves line structure, so a
//! finding's line number is always the real source line.

use std::fs;
use std::path::{Path, PathBuf};

/// A file prepared for token judgments.
pub struct SourceFile {
    pub path: PathBuf,
    /// Raw source lines (for `allow` markers and reporting).
    pub raw: Vec<String>,
    /// Comments *and* string/char literal bodies blanked.
    pub code: Vec<String>,
    /// Comments blanked, string literals kept (for literal extraction).
    pub code_str: Vec<String>,
    /// Line lies inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Scan a file from disk; `None` when it cannot be read.
    pub fn load(path: &Path) -> Option<SourceFile> {
        let text = fs::read_to_string(path).ok()?;
        Some(SourceFile::from_text(path, &text))
    }

    /// Scan from in-memory text (tests, property generators).
    pub fn from_text(path: &Path, text: &str) -> SourceFile {
        let code_text = blank(text, true);
        let code_str_text = blank(text, false);
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let in_test = test_regions(&code);
        SourceFile {
            path: path.to_path_buf(),
            raw: text.lines().map(str::to_string).collect(),
            code,
            code_str: code_str_text.lines().map(str::to_string).collect(),
            in_test,
        }
    }

    /// The raw line carries marker `m` on this line, or the line above is a
    /// comment-only line carrying it (the two placements
    /// `// lint: allow(..)` accepts — a *trailing* marker only covers its
    /// own line).
    pub fn allowed(&self, line_idx: usize, marker: &str) -> bool {
        if self.raw[line_idx].contains(marker) {
            return true;
        }
        if line_idx == 0 {
            return false;
        }
        let above = self.raw[line_idx - 1].trim_start();
        above.starts_with("//") && above.contains(marker)
    }
}

/// Blank comments (and optionally literal bodies) out of `text`, preserving
/// line structure so line numbers survive. Every `\n` of the input appears
/// at the same offset-in-line-count in the output.
pub fn blank(text: &str, blank_literals: bool) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let mut st = St::Code;
    let bytes: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    // Line comment: blank to end of line.
                    while i < bytes.len() && bytes[i] != '\n' {
                        out.push(' ');
                        i += 1;
                    }
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                'r' if next == Some('"') || (next == Some('#')) => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        // Emit (or blank) the opening `r##"` delimiters.
                        while i <= j {
                            out.push(if blank_literals { ' ' } else { bytes[i] });
                            i += 1;
                        }
                        st = St::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                    i += 1;
                }
                '"' => {
                    out.push('"');
                    st = St::Str;
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // '\x7f' style: blank until closing quote.
                        out.push('\'');
                        i += 2;
                        out.push(' ');
                        while i < bytes.len() && bytes[i] != '\'' {
                            out.push(if bytes[i] == '\n' { '\n' } else { ' ' });
                            i += 1;
                        }
                        if i < bytes.len() {
                            out.push('\'');
                            i += 1;
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        out.push('\'');
                        out.push(if blank_literals {
                            ' '
                        } else {
                            next.unwrap_or(' ')
                        });
                        out.push('\'');
                        i += 3;
                    } else {
                        out.push('\''); // lifetime
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            St::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::Block(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push(if blank_literals { ' ' } else { c });
                    if let Some(n) = next {
                        out.push(if blank_literals && n != '\n' { ' ' } else { n });
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    out.push('"');
                    st = St::Code;
                    i += 1;
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(if blank_literals { ' ' } else { c });
                    i += 1;
                }
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if bytes.get(i + 1 + h as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                            i += 1;
                        }
                        st = St::Code;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
        }
    }
    out
}

/// Mark lines belonging to `#[cfg(test)]` items by brace tracking.
pub fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // Find the item's opening brace, then its extent.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                in_test[j] = true;
                for c in code[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

/// All `.rs` files under `dir`, recursively, sorted for stable output.
pub fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(rd) = fs::read_dir(&d) else { continue };
        for e in rd.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// `needle` occurs in `hay` as a whole token (not a sub-identifier).
pub fn token_in(hay: &str, needle: &str) -> bool {
    token_pos(hay, needle).is_some()
}

/// Byte offset of the first whole-token occurrence of `needle` in `hay`.
pub fn token_pos(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before = hay[..start].chars().next_back();
        let after = hay[end..].chars().next();
        let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_ident(before) && !is_ident(after) {
            return Some(start);
        }
        from = end;
    }
    None
}

/// Leading identifier of `s` (after trimming), if any.
pub fn leading_ident(s: &str) -> Option<String> {
    let t = s.trim_start();
    let id: String = t
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if id.is_empty() || !t.starts_with(id.chars().next().unwrap()) {
        None
    } else {
        Some(id)
    }
}

/// Extract `"CAPS"` literals from a `code_str` line.
pub fn caps_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(a) = rest.find('"') {
        let Some(b) = rest[a + 1..].find('"') else {
            break;
        };
        let lit = &rest[a + 1..a + 1 + b];
        if !lit.is_empty() && lit.chars().all(|c| c.is_ascii_uppercase()) {
            out.push(lit.to_string());
        }
        rest = &rest[a + b + 2..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_preserves_line_count_across_constructs() {
        let text = concat!(
            "fn f() {\n",
            "    // comment with \"string\" and Instant::now\n",
            "    let s = \"multi\n",
            "line\";\n",
            "    let r = r#\"raw\n",
            "with # inside\"#;\n",
            "    /* block\n",
            "       /* nested */\n",
            "    */\n",
            "}\n",
        );
        for lits in [true, false] {
            let b = blank(text, lits);
            assert_eq!(b.lines().count(), text.lines().count());
        }
        let b = blank(text, true);
        assert!(!b.contains("comment"));
        assert!(!b.contains("multi"));
        assert!(!b.contains("raw"));
        assert!(!b.contains("nested"));
    }

    #[test]
    fn token_pos_respects_ident_boundaries() {
        assert!(token_in("x.lock()", "lock"));
        assert!(!token_in("x.unlock()", "lock"));
        assert!(!token_in("lockstep", "lock"));
        assert_eq!(token_pos("a lock b lock", "lock"), Some(2));
    }

    #[test]
    fn allowed_marker_here_or_above() {
        let f = SourceFile::from_text(
            Path::new("t.rs"),
            "// lint: allow(x)\nlet a = 1;\nlet b = 2; // lint: allow(x)\nlet c = 3;\n",
        );
        assert!(f.allowed(1, "lint: allow(x)"));
        assert!(f.allowed(2, "lint: allow(x)"));
        assert!(!f.allowed(3, "lint: allow(x)"));
    }
}
