//! Panic-surface audit: `unwrap`/`expect`/`panic!`-family macros and
//! indexing expressions in the protocol crates, outside test code. A
//! daemon that panics mid-protocol is a *fail-stop the paper did not
//! schedule* — the checkpoint/recovery machinery only covers crashes the
//! membership layer can observe and reason about, so the protocol crates'
//! panic surface is baselined per file and burned down, never silently
//! grown.

use crate::model::CrateModel;
use std::path::PathBuf;

/// Crates whose `src/` is audited (by directory name under `crates/`).
pub const PANIC_CRATES: &[&str] = &["vni", "mpi", "ensemble", "checkpoint", "daemon", "events"];

#[derive(Debug, Clone)]
pub struct PanicSite {
    pub file: PathBuf,
    pub line: usize,
    pub what: &'static str,
}

const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!", "panic!"),
    ("unreachable!", "unreachable!"),
    ("todo!", "todo!"),
    ("unimplemented!", "unimplemented!"),
];

/// All panic sites in a crate's non-test source.
pub fn panic_sites(model: &CrateModel) -> Vec<PanicSite> {
    let mut out = Vec::new();
    for f in &model.files {
        for (i, code) in f.code.iter().enumerate() {
            if f.in_test[i] {
                continue;
            }
            for &(tok, what) in PANIC_TOKENS {
                let mut from = 0;
                while let Some(p) = code[from..].find(tok) {
                    let start = from + p;
                    from = start + tok.len();
                    // Macro tokens need an ident boundary on the left
                    // (`core::panic!` ok, `my_panic!` not a panic).
                    if !tok.starts_with('.') {
                        let before = code[..start].chars().next_back();
                        if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                            continue;
                        }
                    }
                    out.push(PanicSite {
                        file: f.path.clone(),
                        line: i,
                        what,
                    });
                }
            }
            out.extend(index_sites(code).into_iter().map(|_| PanicSite {
                file: f.path.clone(),
                line: i,
                what: "indexing",
            }));
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Positions of indexing expressions (`x[..]`, `v[i]`, `f()[0]`) on one
/// blanked code line: a `[` whose previous non-space char continues an
/// expression. Attribute lines are skipped wholesale.
fn index_sites(code: &str) -> Vec<usize> {
    let t = code.trim_start();
    if t.starts_with('#') {
        return Vec::new();
    }
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in bytes.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let mut j = i;
        while j > 0 && bytes[j - 1] == b' ' {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        let prev = bytes[j - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            // Exclude keywords that can directly precede an array literal.
            let mut s = j;
            while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                s -= 1;
            }
            let word = &code[s..j];
            if matches!(word, "return" | "in" | "else" | "match" | "break") {
                continue;
            }
            out.push(i);
        }
    }
    out
}

/// Stable per-file count key, relative to `root` when possible.
pub fn rel_key(file: &std::path::Path, root: &std::path::Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .display()
        .to_string()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::Path;

    fn sites(src: &str) -> Vec<&'static str> {
        let model = CrateModel::from_files(
            "t",
            vec![SourceFile::from_text(Path::new("t/src/lib.rs"), src)],
        );
        panic_sites(&model).into_iter().map(|s| s.what).collect()
    }

    #[test]
    fn finds_each_token_kind_outside_tests() {
        let got = sites(concat!(
            "fn f(v: &[u8]) -> u8 {\n",
            "    let x = maybe().unwrap();\n",
            "    let y = other().expect(\"reason\");\n",
            "    if x > 9 { panic!(\"boom\") }\n",
            "    v[0]\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { let _ = maybe().unwrap(); }\n",
            "}\n",
        ));
        assert_eq!(got, vec!["unwrap", "expect", "panic!", "indexing"]);
    }

    #[test]
    fn ignores_attributes_types_and_comments() {
        let got = sites(concat!(
            "#[derive(Clone)]\n",
            "pub struct S { buf: [u8; 16] }\n",
            "// a comment: v[0].unwrap() panic!\n",
            "fn g() -> [u8; 2] { [0, 1] }\n",
            "fn my_panic!() {}\n",
        ));
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn slicing_counts_as_indexing() {
        let got = sites("fn f(b: &[u8]) -> &[u8] { &b[..4] }\n");
        assert_eq!(got, vec!["indexing"]);
    }
}
