//! Lock-order and blocking-while-locked analysis.
//!
//! Lock *classes* are struct fields of `Mutex`/`RwLock` type, named
//! `<crate>::<Struct>.<field>` (every `vni::Inbox.q` instance shares one
//! class — cross-instance orders within a class show up as self-edges).
//! Per function we extract acquisition sites with guard scopes (a
//! `let`-bound guard lives to the end of its block or an explicit
//! `drop(guard)`; a temporary guard is line-scoped), then propagate
//! acquisitions through resolved intra-crate calls to a fixpoint, so a
//! guard held across `self.deliver(..)` picks up every lock `deliver`
//! (transitively) takes. Edges `A -> B` mean "B acquired while A held";
//! cycles in that graph are potential deadlocks, reported with both
//! acquisition chains.
//!
//! The same machinery drives the blocking-while-locked pass: blocking ops
//! (channel `recv`, condvar waits, `thread::sleep`, thread `join`, file
//! I/O) found — directly or through calls — inside the scope of a held
//! fabric-shard or daemon-state guard are findings. A condvar wait is
//! exempt with respect to the innermost held guard (that guard *is* the
//! condvar's paired mutex; waiting releases it).
//!
//! Known limitations (deliberate, documented): call resolution is
//! intra-crate and name-based with receiver-type heuristics — unresolved
//! call and lock sites are *counted* in the stats rather than silently
//! ignored; guards returned from helper functions are attributed to the
//! helper, not the caller's scope; `match guard { .. }` temporaries are
//! line-scoped.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::model::{CallKind, CrateModel};
use crate::report::Finding;
use crate::source::token_in;

/// Escape hatch: an acquisition line (or the line above) carrying this
/// marker is removed from both passes — the triage reason belongs in the
/// comment.
pub const ALLOW_LOCK_ORDER: &str = "lint: allow(lock-order)";
/// Escape hatch for one blocking site (or call line).
pub const ALLOW_BLOCKING: &str = "lint: allow(blocking-while-locked)";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

/// One discovered lock field.
#[derive(Debug, Clone)]
pub struct LockField {
    pub strukt: String,
    pub field: String,
    pub kind: LockKind,
    pub class: String,
}

/// `A -> B`: B was acquired while A was held, with the acquisition chain
/// that proves it.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub a: String,
    pub b: String,
    pub witness: Vec<String>,
    pub file: PathBuf,
    pub line: usize,
}

#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    pub classes: Vec<String>,
    pub edges: Vec<LockEdge>,
}

/// A potential deadlock: `a -> b` somewhere, `b -> .. -> a` somewhere else.
#[derive(Debug, Clone)]
pub struct Cycle {
    pub a: String,
    pub b: String,
    /// Chain establishing `a -> b`.
    pub forward: Vec<String>,
    /// Chains establishing the return path `b -> .. -> a` (empty for a
    /// self-cycle `a -> a`).
    pub back: Vec<String>,
    pub file: PathBuf,
    pub line: usize,
}

impl LockGraph {
    /// Mutation-test helper: the same graph minus every `a -> b` edge.
    pub fn without_edge(&self, a: &str, b: &str) -> LockGraph {
        LockGraph {
            classes: self.classes.clone(),
            edges: self
                .edges
                .iter()
                .filter(|e| !(e.a == a && e.b == b))
                .cloned()
                .collect(),
        }
    }

    /// All potential-deadlock cycles. Each unordered class pair on a cycle
    /// is reported once (anchored at the smaller class name); self-edges
    /// are reported as their own cycles.
    pub fn cycles(&self) -> Vec<Cycle> {
        // Representative edge per ordered pair.
        let mut rep: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
        for e in &self.edges {
            rep.entry((e.a.as_str(), e.b.as_str())).or_insert(e);
        }
        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for (&(a, b), &edge) in &rep {
            if a == b {
                out.push(Cycle {
                    a: a.to_string(),
                    b: b.to_string(),
                    forward: edge.witness.clone(),
                    back: Vec::new(),
                    file: edge.file.clone(),
                    line: edge.line,
                });
                continue;
            }
            if let Some(path) = self.path(&rep, b, a) {
                let key = if a < b {
                    (a.to_string(), b.to_string())
                } else {
                    (b.to_string(), a.to_string())
                };
                if !seen.insert(key) {
                    continue;
                }
                let mut back = Vec::new();
                for e in path {
                    back.extend(e.witness.iter().cloned());
                }
                out.push(Cycle {
                    a: a.to_string(),
                    b: b.to_string(),
                    forward: edge.witness.clone(),
                    back,
                    file: edge.file.clone(),
                    line: edge.line,
                });
            }
        }
        out
    }

    /// BFS shortest path `from -> .. -> to` over representative edges.
    fn path<'g>(
        &self,
        rep: &BTreeMap<(&str, &str), &'g LockEdge>,
        from: &str,
        to: &str,
    ) -> Option<Vec<&'g LockEdge>> {
        let mut prev: BTreeMap<&str, &'g LockEdge> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            if n == to {
                // Reconstruct.
                let mut path = Vec::new();
                let mut cur = to;
                while cur != from {
                    let e = prev[cur];
                    path.push(e);
                    cur = e.a.as_str();
                }
                path.reverse();
                return Some(path);
            }
            for (&(a, b), &e) in rep.range((n, "")..) {
                if a != n {
                    break;
                }
                if b != from && !prev.contains_key(b) {
                    prev.insert(b, e);
                    queue.push_back(b);
                }
            }
        }
        None
    }
}

/// Which lock classes the blocking pass polices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Watched {
    /// Workspace mode: fabric-shard (`vni::`) and daemon-state
    /// (`daemon::`) classes.
    VniDaemon,
    /// Fixture / single-crate mode: every class.
    All,
}

impl Watched {
    fn covers(&self, class: &str) -> bool {
        match self {
            Watched::All => true,
            Watched::VniDaemon => class.starts_with("vni::") || class.starts_with("daemon::"),
        }
    }
}

#[derive(Debug, Clone, Default)]
pub struct LockStats {
    pub functions: usize,
    pub unresolved_locks: usize,
}

pub struct LockAnalysis {
    pub graph: LockGraph,
    pub blocking: Vec<Finding>,
    pub fields: Vec<LockField>,
    pub stats: LockStats,
}

// ---------------------------------------------------------------------------
// Token tables
// ---------------------------------------------------------------------------

const LOCK_TOKENS: &[(&str, LockKind)] = &[
    (".lock()", LockKind::Mutex),
    (".read()", LockKind::RwLock),
    (".write()", LockKind::RwLock),
];

/// Blocking ops. `.send(` is deliberately absent: the workspace's channels
/// are unbounded crossbeam senders (never block); the fabric's own
/// port-send path is covered through the lock graph instead.
const BLOCKING_TOKENS: &[(&str, &str)] = &[
    ("thread::sleep", "thread::sleep"),
    (".recv()", "channel recv"),
    (".recv_timeout(", "channel recv_timeout"),
    (".join()", "join"),
    ("File::open(", "file I/O"),
    ("File::create(", "file I/O"),
    ("fs::read", "file I/O"),
    ("fs::write", "file I/O"),
    (".read_to_string(", "file I/O"),
    ("OpenOptions::new", "file I/O"),
];

const WAIT_TOKENS: &[(&str, &str)] = &[
    (".wait(", "condvar wait"),
    (".wait_for(", "condvar wait_for"),
    (".wait_while(", "condvar wait_while"),
];

/// Method names too generic to resolve by bare-name uniqueness (std
/// collection / iterator vocabulary); they still resolve when the
/// receiver's type is inferable.
const STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "send",
    "recv",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "next",
    "iter",
    "into_iter",
    "clone",
    "drain",
    "extend",
    "take",
    "entry",
    "split",
    "join",
    "write",
    "read",
    "lock",
    "flush",
    "wait",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "or_else",
    "ok",
    "err",
    "min",
    "max",
    "abs",
    "to_string",
    "into",
    "from",
    "new",
    "retain",
    "sort",
    "dedup",
    "last",
    "first",
    "count",
    "sum",
    "collect",
    "close",
    "drop",
    "get_or_insert_with",
];

// ---------------------------------------------------------------------------
// Per-crate lookup tables
// ---------------------------------------------------------------------------

struct CrateMaps {
    /// field name -> lock fields with that name.
    lock_fields: BTreeMap<String, Vec<LockField>>,
    /// field name -> (struct, type string) for *all* fields (type hints).
    all_fields: BTreeMap<String, Vec<(String, String)>>,
    struct_names: BTreeSet<String>,
    /// (self type, method) -> local fn indices.
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// free fn name -> local fn indices.
    free: BTreeMap<String, Vec<usize>>,
    /// any fn name -> local fn indices (fallback resolution).
    by_name: BTreeMap<String, Vec<usize>>,
    /// structs that have a Condvar field.
    condvar_structs: BTreeSet<String>,
}

fn field_lock_kind(ty: &str) -> Option<LockKind> {
    if ty.contains("Mutex<") {
        Some(LockKind::Mutex)
    } else if ty.contains("RwLock<") {
        Some(LockKind::RwLock)
    } else if token_in(ty, "Condvar") {
        Some(LockKind::Condvar)
    } else {
        None
    }
}

fn crate_maps(model: &CrateModel) -> CrateMaps {
    let mut m = CrateMaps {
        lock_fields: BTreeMap::new(),
        all_fields: BTreeMap::new(),
        struct_names: BTreeSet::new(),
        methods: BTreeMap::new(),
        free: BTreeMap::new(),
        by_name: BTreeMap::new(),
        condvar_structs: BTreeSet::new(),
    };
    for s in &model.structs {
        m.struct_names.insert(s.name.clone());
        for f in &s.fields {
            m.all_fields
                .entry(f.name.clone())
                .or_default()
                .push((s.name.clone(), f.ty.clone()));
            if let Some(kind) = field_lock_kind(&f.ty) {
                if kind == LockKind::Condvar {
                    m.condvar_structs.insert(s.name.clone());
                }
                m.lock_fields
                    .entry(f.name.clone())
                    .or_default()
                    .push(LockField {
                        strukt: s.name.clone(),
                        field: f.name.clone(),
                        kind,
                        class: format!("{}::{}.{}", model.name, s.name, f.name),
                    });
            }
        }
    }
    for (i, f) in model.functions.iter().enumerate() {
        match &f.self_ty {
            Some(t) => {
                m.methods
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
            None => {
                m.free.entry(f.name.clone()).or_default().push(i);
            }
        }
        m.by_name.entry(f.name.clone()).or_default().push(i);
    }
    m
}

// ---------------------------------------------------------------------------
// Receiver chains and type hints
// ---------------------------------------------------------------------------

/// Walk backwards from `dot` (the `.` starting a method call) collecting
/// the receiver's identifier segments, closest first; balanced `(..)` /
/// `[..]` groups are skipped. `m.links.get(&k).unwrap()` at the final dot
/// gives `["unwrap", "get", "links", "m"]`.
fn receiver_chain(bytes: &[u8], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = dot;
    loop {
        // Skip balanced call/index groups.
        while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let close = bytes[i - 1];
            let open = if close == b')' { b'(' } else { b'[' };
            let mut depth = 0;
            i -= 1;
            loop {
                if bytes[i] == close {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return out;
                }
                i -= 1;
            }
        }
        let e = i;
        let mut s = i;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        if s == e {
            break;
        }
        out.push(String::from_utf8_lossy(&bytes[s..e]).into_owned());
        i = s;
        if i >= 1 && bytes[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        if i >= 2 && bytes[i - 1] == b':' && bytes[i - 2] == b':' {
            i -= 2;
            continue;
        }
        break;
    }
    out
}

/// Crate-struct type hints present in one line: direct struct-name tokens,
/// plus struct names mentioned in the type of any `.field` the line touches.
fn hints_in_line(line: &str, maps: &CrateMaps) -> Vec<String> {
    let mut out = Vec::new();
    for s in &maps.struct_names {
        if token_in(line, s) {
            out.push(s.clone());
        }
    }
    for (fname, entries) in &maps.all_fields {
        if dot_field_in(line, fname) {
            for (_, ty) in entries {
                for s in &maps.struct_names {
                    if token_in(ty, s) && !out.contains(s) {
                        out.push(s.clone());
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// `.field` appears in `line` (field access, not a bare ident).
fn dot_field_in(line: &str, field: &str) -> bool {
    let pat = format!(".{field}");
    let mut from = 0;
    while let Some(p) = line[from..].find(&pat) {
        let start = from + p;
        let end = start + pat.len();
        let after = line[end..].chars().next();
        let ok_after = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok_after {
            return true;
        }
        from = end;
    }
    false
}

/// Lines to mine for binding hints of local `var` before `upto`: each line
/// mentioning the token, widened by up to 3 following lines when the
/// binding continues past the line end (`=`, `{` or `(` trailers).
fn binding_lines(code: &[String], start: usize, upto: usize, var: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (j, line) in code.iter().enumerate().take(upto + 1).skip(start) {
        if !token_in(line, var) {
            continue;
        }
        out.push(j);
        let t = line.trim_end();
        if t.ends_with('=') || t.ends_with('{') || t.ends_with('(') || t.ends_with("=>") {
            for k in 1..=3 {
                if j + k <= upto {
                    out.push(j + k);
                }
            }
        }
        // Match-arm / if-let bindings: the scrutinee sits just above.
        let tt = line.trim_start();
        if (tt.contains(&format!("Some({var})")) || tt.contains(&format!("Ok({var})"))) && j > start
        {
            out.push(j - 1);
            if j >= start + 2 {
                out.push(j - 2);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------------
// Per-function extraction
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Acq {
    /// Index into the global class list.
    class: usize,
    line: usize,
    pos: usize,
    scope_end: usize,
    site: String,
}

#[derive(Debug, Clone)]
struct Blk {
    desc: &'static str,
    line: usize,
    pos: usize,
    is_wait: bool,
    site: String,
}

#[derive(Debug, Clone)]
struct RCall {
    callee: usize,
    line: usize,
    pos: usize,
    site: String,
}

#[derive(Default)]
struct FnData {
    acqs: Vec<Acq>,
    blks: Vec<Blk>,
    calls: Vec<RCall>,
}

fn in_scope(a: &Acq, line: usize, pos: usize) -> bool {
    if line == a.line {
        return pos > a.pos;
    }
    line > a.line && line <= a.scope_end
}

/// End line of a guard's scope: the enclosing block's close, or an
/// explicit `drop(guard)`.
fn guard_scope_end(
    code: &[String],
    body_end: usize,
    line: usize,
    after_pos: usize,
    guard: &str,
) -> usize {
    let mut depth = 0i32;
    for j in line..=body_end.min(code.len() - 1) {
        let text: &str = if j == line {
            &code[j][after_pos.min(code[j].len())..]
        } else {
            &code[j]
        };
        // drop(guard) ends the scope on this line.
        let mut from = 0;
        while let Some(p) = text[from..].find("drop(") {
            let start = from + p;
            let inner = text[start + 5..].split(')').next().unwrap_or("");
            let before = text[..start].chars().next_back();
            let boundary = !before.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if boundary && inner.trim() == guard {
                return j;
            }
            from = start + 5;
        }
        for c in text.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    body_end
}

/// The `let` guard variable of an acquisition, if the statement binds one.
fn guard_var(prefix: &str) -> Option<String> {
    let t = prefix.trim();
    if !t.ends_with('=') {
        return None;
    }
    let words: Vec<&str> = t.split_whitespace().collect();
    match words.as_slice() {
        ["let", name, "="] => Some((*name).to_string()),
        ["let", "mut", name, "="] => Some((*name).to_string()),
        _ => None,
    }
}

fn loc(file: &std::path::Path, line: usize) -> String {
    format!("{}:{}", file.display(), line + 1)
}

// ---------------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------------

/// Run the lock passes over a set of crate models.
pub fn analyze(models: &[CrateModel], watched: Watched) -> LockAnalysis {
    let maps: Vec<CrateMaps> = models.iter().map(crate_maps).collect();

    // Global class list.
    let mut classes: Vec<String> = Vec::new();
    let mut class_idx: BTreeMap<String, usize> = BTreeMap::new();
    let mut fields: Vec<LockField> = Vec::new();
    for m in &maps {
        for lfs in m.lock_fields.values() {
            for lf in lfs {
                if lf.kind == LockKind::Condvar {
                    continue;
                }
                if !class_idx.contains_key(&lf.class) {
                    class_idx.insert(lf.class.clone(), classes.len());
                    classes.push(lf.class.clone());
                }
                fields.push(lf.clone());
            }
        }
    }

    // Global function table.
    let mut gfns: Vec<(usize, usize)> = Vec::new(); // (crate, local fn)
    let mut gidx: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (ci, m) in models.iter().enumerate() {
        for fi in 0..m.functions.len() {
            gidx.insert((ci, fi), gfns.len());
            gfns.push((ci, fi));
        }
    }

    let mut stats = LockStats::default();
    let mut data: Vec<FnData> = Vec::with_capacity(gfns.len());
    for &(ci, fi) in &gfns {
        data.push(extract_fn(
            models, &maps, ci, fi, &class_idx, &gidx, &mut stats,
        ));
    }
    stats.functions = gfns.len();

    // Fixpoint: transitive acquisitions and blocking ops per function.
    let mut trans_acq: Vec<BTreeMap<usize, Vec<String>>> = vec![BTreeMap::new(); gfns.len()];
    let mut trans_blk: Vec<BTreeMap<String, Vec<String>>> = vec![BTreeMap::new(); gfns.len()];
    for (g, d) in data.iter().enumerate() {
        for a in &d.acqs {
            trans_acq[g]
                .entry(a.class)
                .or_insert_with(|| vec![a.site.clone()]);
        }
        for b in &d.blks {
            trans_blk[g]
                .entry(b.desc.to_string())
                .or_insert_with(|| vec![b.site.clone()]);
        }
    }
    loop {
        let mut changed = false;
        for (g, d) in data.iter().enumerate() {
            for c in &d.calls {
                let acqs: Vec<(usize, Vec<String>)> = trans_acq[c.callee]
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                for (class, chain) in acqs {
                    if let Entry::Vacant(e) = trans_acq[g].entry(class) {
                        let mut w = vec![c.site.clone()];
                        w.extend(chain.iter().take(6).cloned());
                        e.insert(w);
                        changed = true;
                    }
                }
                let blks: Vec<(String, Vec<String>)> = trans_blk[c.callee]
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                for (desc, chain) in blks {
                    if let Entry::Vacant(e) = trans_blk[g].entry(desc) {
                        let mut w = vec![c.site.clone()];
                        w.extend(chain.iter().take(6).cloned());
                        e.insert(w);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges and blocking findings.
    let mut edge_map: BTreeMap<(usize, usize, String, usize), Vec<String>> = BTreeMap::new();
    let mut blocking: Vec<Finding> = Vec::new();
    let mut blk_seen: BTreeSet<(String, String, String)> = BTreeSet::new();
    for (g, d) in data.iter().enumerate() {
        let (ci, fi) = gfns[g];
        let model = &models[ci];
        let fdef = &model.functions[fi];
        if fdef.in_test {
            continue;
        }
        let file = &model.files[fdef.file].path;
        let qual = fdef.qualified();
        for a in &d.acqs {
            // Nested local acquisitions.
            for b in &d.acqs {
                if std::ptr::eq(a, b) || !in_scope(a, b.line, b.pos) {
                    continue;
                }
                edge_map
                    .entry((a.class, b.class, file.display().to_string(), a.line + 1))
                    .or_insert_with(|| vec![a.site.clone(), b.site.clone()]);
            }
            // Acquisitions reached through calls under the guard.
            for c in &d.calls {
                if !in_scope(a, c.line, c.pos) {
                    continue;
                }
                for (&class, chain) in &trans_acq[c.callee] {
                    let mut w = vec![a.site.clone(), c.site.clone()];
                    w.extend(chain.iter().take(6).cloned());
                    edge_map
                        .entry((a.class, class, file.display().to_string(), a.line + 1))
                        .or_insert(w);
                }
            }
            // Blocking ops while this guard is held.
            if !watched.covers(&classes[a.class]) {
                continue;
            }
            for b in &d.blks {
                if !in_scope(a, b.line, b.pos) {
                    continue;
                }
                if b.is_wait && innermost(&d.acqs, b.line, b.pos) == Some(a as *const Acq) {
                    // The innermost guard is the condvar's paired mutex.
                    continue;
                }
                if blk_seen.insert((qual.clone(), b.desc.to_string(), classes[a.class].clone())) {
                    let mut f = Finding::new(
                        "blocking-while-locked",
                        file.clone(),
                        b.line + 1,
                        format!(
                            "{} while holding `{}` — a blocked holder stalls every \
                             contender of that lock",
                            b.desc, classes[a.class]
                        ),
                    );
                    f.chains = vec![a.site.clone(), b.site.clone()];
                    f.subject = qual.clone();
                    f.detail = b.desc.to_string();
                    blocking.push(f);
                }
            }
            for c in &d.calls {
                if !in_scope(a, c.line, c.pos) {
                    continue;
                }
                for (desc, chain) in &trans_blk[c.callee] {
                    if blk_seen.insert((qual.clone(), desc.clone(), classes[a.class].clone())) {
                        let mut f = Finding::new(
                            "blocking-while-locked",
                            file.clone(),
                            c.line + 1,
                            format!(
                                "call may block ({desc}) while holding `{}`",
                                classes[a.class]
                            ),
                        );
                        f.chains = vec![a.site.clone(), c.site.clone()];
                        f.chains.extend(chain.iter().take(6).cloned());
                        f.subject = qual.clone();
                        f.detail = desc.clone();
                        blocking.push(f);
                    }
                }
            }
        }
    }

    let mut edges = Vec::new();
    for ((a, b, file, line), witness) in edge_map {
        edges.push(LockEdge {
            a: classes[a].clone(),
            b: classes[b].clone(),
            witness,
            file: PathBuf::from(file),
            line,
        });
    }
    LockAnalysis {
        graph: LockGraph { classes, edges },
        blocking,
        fields,
        stats,
    }
}

fn innermost(acqs: &[Acq], line: usize, pos: usize) -> Option<*const Acq> {
    acqs.iter()
        .filter(|a| in_scope(a, line, pos))
        .max_by_key(|a| (a.line, a.pos))
        .map(|a| a as *const Acq)
}

#[allow(clippy::too_many_arguments)]
fn extract_fn(
    models: &[CrateModel],
    maps: &[CrateMaps],
    ci: usize,
    fi: usize,
    class_idx: &BTreeMap<String, usize>,
    gidx: &BTreeMap<(usize, usize), usize>,
    stats: &mut LockStats,
) -> FnData {
    let model = &models[ci];
    let m = &maps[ci];
    let fdef = &model.functions[fi];
    let mut d = FnData::default();
    let Some((body_start, body_end)) = fdef.body else {
        return d;
    };
    if fdef.in_test {
        return d;
    }
    let sf = &model.files[fdef.file];
    let qual = fdef.qualified();

    for j in body_start..=body_end.min(sf.code.len() - 1) {
        let line = &sf.code[j];
        let bytes = line.as_bytes();

        // Lock acquisitions.
        for &(tok, kind) in LOCK_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let dot = from + p;
                from = dot + tok.len();
                if sf.allowed(j, ALLOW_LOCK_ORDER) {
                    continue;
                }
                match resolve_lock(
                    m,
                    fdef.self_ty.as_deref(),
                    &sf.code,
                    fdef.sig_line,
                    j,
                    bytes,
                    dot,
                    kind,
                ) {
                    Some(lf) => {
                        let guard = guard_var(&line[..chain_start(bytes, dot)]);
                        let scope_end = match &guard {
                            Some(gv) => guard_scope_end(&sf.code, body_end, j, dot + tok.len(), gv),
                            None => j,
                        };
                        d.acqs.push(Acq {
                            class: class_idx[&lf.class],
                            line: j,
                            pos: dot,
                            scope_end,
                            site: format!("{qual} acquires {} at {}", lf.class, loc(&sf.path, j)),
                        });
                    }
                    None => stats.unresolved_locks += 1,
                }
            }
        }

        // Blocking ops.
        for &(tok, desc) in BLOCKING_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let pos = from + p;
                from = pos + tok.len();
                if sf.allowed(j, ALLOW_BLOCKING) {
                    continue;
                }
                d.blks.push(Blk {
                    desc,
                    line: j,
                    pos,
                    is_wait: false,
                    site: format!("{desc} in {qual} at {}", loc(&sf.path, j)),
                });
            }
        }
        for &(tok, desc) in WAIT_TOKENS {
            let mut from = 0;
            while let Some(p) = line[from..].find(tok) {
                let pos = from + p;
                from = pos + tok.len();
                if sf.allowed(j, ALLOW_BLOCKING) {
                    continue;
                }
                d.blks.push(Blk {
                    desc,
                    line: j,
                    pos,
                    is_wait: true,
                    site: format!("{desc} in {qual} at {}", loc(&sf.path, j)),
                });
            }
        }

        // Calls.
        for call in CrateModel::calls_in_line(line, j) {
            let resolved = resolve_call(
                m,
                model,
                fdef.self_ty.as_deref(),
                &sf.code,
                fdef.sig_line,
                &call,
                bytes,
            );
            if let Some(local) = resolved {
                let callee_qual = model.functions[local].qualified();
                d.calls.push(RCall {
                    callee: gidx[&(ci, local)],
                    line: j,
                    pos: call.pos,
                    site: format!("{qual} -> {callee_qual} at {}", loc(&sf.path, j)),
                });
            }
        }
    }
    d
}

/// Index where the receiver chain of the call at `dot` starts.
fn chain_start(bytes: &[u8], dot: usize) -> usize {
    let mut i = dot;
    loop {
        while i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let close = bytes[i - 1];
            let open = if close == b')' { b'(' } else { b'[' };
            let mut depth = 0;
            i -= 1;
            loop {
                if bytes[i] == close {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if i == 0 {
                    return 0;
                }
                i -= 1;
            }
        }
        let e = i;
        let mut s = i;
        while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
            s -= 1;
        }
        if s == e {
            return i;
        }
        i = s;
        if i >= 1 && bytes[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        if i >= 2 && bytes[i - 1] == b':' && bytes[i - 2] == b':' {
            i -= 2;
            continue;
        }
        return i;
    }
}

/// Resolve a `.lock()` / `.read()` / `.write()` receiver to a lock field.
#[allow(clippy::too_many_arguments)]
fn resolve_lock<'m>(
    m: &'m CrateMaps,
    self_ty: Option<&str>,
    code: &[String],
    sig_line: usize,
    line: usize,
    bytes: &[u8],
    dot: usize,
    kind: LockKind,
) -> Option<&'m LockField> {
    let chain = receiver_chain(bytes, dot);
    // Direct field segment match, closest first.
    for seg in &chain {
        if let Some(cands) = m.lock_fields.get(seg) {
            let of_kind: Vec<&LockField> = cands.iter().filter(|c| c.kind == kind).collect();
            if of_kind.is_empty() {
                continue;
            }
            if let Some(t) = self_ty {
                if let Some(hit) = of_kind.iter().find(|c| c.strukt == t) {
                    return Some(hit);
                }
            }
            let structs: BTreeSet<&str> = of_kind.iter().map(|c| c.strukt.as_str()).collect();
            if structs.len() == 1 {
                return Some(of_kind[0]);
            }
            return None; // ambiguous across structs
        }
    }
    // Local binding hint: `let link = .. m.links.get(..) ..`.
    if chain.len() == 1 && chain[0] != "self" {
        let var = &chain[0];
        let mut best: Option<&LockField> = None;
        for j in binding_lines(code, sig_line, line, var) {
            if j == line {
                continue;
            }
            for lfs in m.lock_fields.values() {
                for lf in lfs {
                    if lf.kind == kind && dot_field_in(&code[j], &lf.field) {
                        best = Some(lf);
                    }
                }
            }
        }
        if best.is_some() {
            return best;
        }
    }
    None
}

/// Resolve a call site to a local function index, confidently or not at all.
fn resolve_call(
    m: &CrateMaps,
    model: &CrateModel,
    self_ty: Option<&str>,
    code: &[String],
    sig_line: usize,
    call: &crate::model::CallSite,
    bytes: &[u8],
) -> Option<usize> {
    let name = call.callee.as_str();
    match call.kind {
        CallKind::Qualified => {
            let q = call.qualifier.as_deref()?;
            let ty = if q == "Self" { self_ty? } else { q };
            let v = m.methods.get(&(ty.to_string(), name.to_string()))?;
            (v.len() == 1).then(|| v[0])
        }
        CallKind::Plain => {
            let v = m.free.get(name)?;
            (v.len() == 1).then(|| v[0])
        }
        CallKind::Method => {
            let dot = call.pos.checked_sub(1)?;
            let chain = receiver_chain(bytes, dot);
            // `self.name(..)`.
            if chain.as_slice() == ["self"] {
                let t = self_ty?;
                let v = m.methods.get(&(t.to_string(), name.to_string()))?;
                return (v.len() == 1).then(|| v[0]);
            }
            // Receiver typed through a field: `self.inner.helper(..)`.
            if let Some(first) = chain.first() {
                if let Some(entries) = m.all_fields.get(first) {
                    let mut cands: BTreeSet<&str> = BTreeSet::new();
                    for (_, ty) in entries {
                        for s in &m.struct_names {
                            if token_in(ty, s)
                                && m.methods.contains_key(&(s.clone(), name.to_string()))
                            {
                                cands.insert(s.as_str());
                            }
                        }
                    }
                    if cands.len() == 1 {
                        let t = *cands.iter().next().unwrap();
                        let v = &m.methods[&(t.to_string(), name.to_string())];
                        return (v.len() == 1).then(|| v[0]);
                    }
                }
            }
            // Receiver typed through a local binding.
            if chain.len() == 1 && chain[0] != "self" {
                let var = &chain[0];
                let mut last: Option<usize> = None;
                for j in binding_lines(code, sig_line, call.line, var) {
                    if j == call.line {
                        continue;
                    }
                    let mut cands: BTreeSet<&str> = BTreeSet::new();
                    for s in hints_in_line(&code[j], m) {
                        if m.methods.contains_key(&(s.clone(), name.to_string())) {
                            if let Some(s_ref) = m.struct_names.get(&s) {
                                cands.insert(s_ref.as_str());
                            }
                        }
                    }
                    if cands.len() == 1 {
                        let t = *cands.iter().next().unwrap();
                        let v = &m.methods[&(t.to_string(), name.to_string())];
                        if v.len() == 1 {
                            last = Some(v[0]);
                        }
                    }
                }
                if last.is_some() {
                    return last;
                }
            }
            // Bare-name fallback: unique in crate and not std vocabulary.
            if STD_METHODS.contains(&name) {
                return None;
            }
            let v = m.by_name.get(name)?;
            let with_self: Vec<usize> = v
                .iter()
                .copied()
                .filter(|&i| model.functions[i].self_ty.is_some())
                .collect();
            (with_self.len() == 1).then(|| with_self[0])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CrateModel;
    use crate::source::SourceFile;
    use std::path::Path;

    fn run(src: &str) -> LockAnalysis {
        let model = CrateModel::from_files(
            "t",
            vec![SourceFile::from_text(Path::new("t/src/lib.rs"), src)],
        );
        analyze(&[model], Watched::All)
    }

    const TWO_LOCKS: &str = concat!(
        "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
        "impl S {\n",
        "    fn ab(&self) {\n",
        "        let ga = self.a.lock();\n",
        "        let gb = self.b.lock();\n",
        "        drop(gb); drop(ga);\n",
        "    }\n",
        "}\n",
    );

    #[test]
    fn nested_acquisition_makes_an_edge() {
        let la = run(TWO_LOCKS);
        assert_eq!(la.graph.edges.len(), 1, "{:?}", la.graph.edges);
        let e = &la.graph.edges[0];
        assert_eq!((e.a.as_str(), e.b.as_str()), ("t::S.a", "t::S.b"));
        assert!(la.graph.cycles().is_empty());
    }

    #[test]
    fn drop_ends_the_guard_scope() {
        let la = run(concat!(
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl S {\n",
            "    fn ok(&self) {\n",
            "        let ga = self.a.lock();\n",
            "        drop(ga);\n",
            "        let gb = self.b.lock();\n",
            "        drop(gb);\n",
            "    }\n",
            "}\n",
        ));
        assert!(la.graph.edges.is_empty(), "{:?}", la.graph.edges);
    }

    #[test]
    fn interprocedural_edge_through_a_self_call() {
        let la = run(concat!(
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl S {\n",
            "    fn outer(&self) {\n",
            "        let ga = self.a.lock();\n",
            "        self.inner_b();\n",
            "        drop(ga);\n",
            "    }\n",
            "    fn inner_b(&self) {\n",
            "        let gb = self.b.lock();\n",
            "        drop(gb);\n",
            "    }\n",
            "}\n",
        ));
        let pairs: Vec<(&str, &str)> = la
            .graph
            .edges
            .iter()
            .map(|e| (e.a.as_str(), e.b.as_str()))
            .collect();
        assert!(pairs.contains(&("t::S.a", "t::S.b")), "{pairs:?}");
        let e = la.graph.edges.iter().find(|e| e.b == "t::S.b").unwrap();
        assert!(e.witness.len() >= 3, "{:?}", e.witness);
    }

    #[test]
    fn cycle_detected_and_killed_by_edge_removal() {
        let la = run(concat!(
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl S {\n",
            "    fn ab(&self) {\n",
            "        let ga = self.a.lock();\n",
            "        let gb = self.b.lock();\n",
            "    }\n",
            "    fn ba(&self) {\n",
            "        let gb = self.b.lock();\n",
            "        let ga = self.a.lock();\n",
            "    }\n",
            "}\n",
        ));
        let cycles = la.graph.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(!cycles[0].forward.is_empty() && !cycles[0].back.is_empty());
        // Mutation: removing either direction removes the cycle.
        assert!(la
            .graph
            .without_edge("t::S.a", "t::S.b")
            .cycles()
            .is_empty());
        assert!(la
            .graph
            .without_edge("t::S.b", "t::S.a")
            .cycles()
            .is_empty());
    }

    #[test]
    fn allow_marker_suppresses_the_acquisition() {
        let la = run(concat!(
            "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
            "impl S {\n",
            "    fn ab(&self) {\n",
            "        let ga = self.a.lock();\n",
            "        let gb = self.b.lock(); // lint: allow(lock-order)\n",
            "    }\n",
            "}\n",
        ));
        assert!(la.graph.edges.is_empty(), "{:?}", la.graph.edges);
    }

    #[test]
    fn blocking_while_locked_flagged_but_paired_wait_exempt() {
        let la = run(concat!(
            "pub struct S { q: Mutex<u32>, cond: Condvar }\n",
            "impl S {\n",
            "    fn bad(&self) {\n",
            "        let g = self.q.lock();\n",
            "        std::thread::sleep(d);\n",
            "    }\n",
            "    fn pop_wait(&self) {\n",
            "        let mut g = self.q.lock();\n",
            "        self.cond.wait(&mut g);\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(la.blocking.len(), 1, "{:?}", la.blocking);
        assert_eq!(la.blocking[0].subject, "S::bad");
        assert_eq!(la.blocking[0].detail, "thread::sleep");
    }

    #[test]
    fn blocking_through_a_call_is_found_with_a_chain() {
        let la = run(concat!(
            "pub struct S { q: Mutex<u32> }\n",
            "impl S {\n",
            "    fn outer(&self) {\n",
            "        let g = self.q.lock();\n",
            "        self.slow_io();\n",
            "    }\n",
            "    fn slow_io(&self) {\n",
            "        let _ = std::fs::read(\"/tmp/x\");\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(la.blocking.len(), 1, "{:?}", la.blocking);
        assert!(
            la.blocking[0].chains.len() >= 3,
            "{:?}",
            la.blocking[0].chains
        );
    }

    #[test]
    fn rwlock_read_resolves_but_io_write_does_not() {
        let la = run(concat!(
            "pub struct S { map: RwLock<u32> }\n",
            "impl S {\n",
            "    fn r(&self) { let g = self.map.read(); }\n",
            "    fn io(&self, w: &mut W) { w.write(); }\n",
            "}\n",
        ));
        // `.read()` resolved to the RwLock field; `w.write()` has no RwLock
        // receiver and is counted unresolved instead of inventing a class.
        assert_eq!(la.graph.classes, vec!["t::S.map".to_string()]);
        assert_eq!(la.stats.unresolved_locks, 1);
    }

    #[test]
    fn local_binding_resolves_lock_field_through_a_getter_line() {
        let la = run(concat!(
            "pub struct M { links: Mutex<u32>, ports: u32 }\n",
            "pub struct S { m: M }\n",
            "impl S {\n",
            "    fn f(&self) {\n",
            "        let link = self.m.links;\n",
            "        let g = link.lock();\n",
            "    }\n",
            "}\n",
        ));
        assert_eq!(la.graph.classes, vec!["t::M.links".to_string()]);
        assert_eq!(la.stats.unresolved_locks, 0);
    }
}
