//! `starfish-analysis`: offline multi-pass static analysis over the
//! workspace source, grown out of `verify::lint`'s 3-rule line scanner and
//! re-exported through the same `starfish-lint` binary.
//!
//! Layers, bottom up:
//!
//! - [`source`] — lexical layer: comment/string blanking that preserves
//!   line numbers, `#[cfg(test)]` regions, token predicates.
//! - [`model`] — item layer: structs (with fields), enums (with variants),
//!   impl blocks, functions (with body extents and call sites).
//! - [`locks`] — lock-order graph + cycle detection and the
//!   blocking-while-locked pass.
//! - [`panics`] — panic-surface audit over the protocol crates.
//! - [`rules`] — the original wall-clock / wire-enum-coverage / mgmt-usage
//!   rules, re-hosted on the model.
//! - [`baseline`] / [`report`] — the committed triage file and the
//!   human + JSON outputs.
//!
//! Two drivers: [`analyze_workspace`] (CI mode: all passes, gated on
//! `analysis-baseline.toml`) and [`analyze_crate`] (fixture mode: all
//! passes on one crate directory, no baseline — every finding reported).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub mod baseline;
pub mod locks;
pub mod model;
pub mod panics;
pub mod report;
pub mod rules;
pub mod source;

pub use baseline::Baseline;
pub use locks::{LockGraph, Watched};
pub use model::CrateModel;
pub use report::{Finding, Report};

/// Parse models for every crate under `root/crates/`, sorted by name.
pub fn workspace_models(root: &Path) -> Vec<CrateModel> {
    let crates = root.join("crates");
    let mut dirs: Vec<PathBuf> = match fs::read_dir(&crates) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(_) => Vec::new(),
    };
    dirs.sort();
    dirs.iter()
        .map(|d| {
            let name = d
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            CrateModel::parse(&name, d)
        })
        .collect()
}

/// CI mode: all passes over the workspace, findings gated on the committed
/// baseline. `Err` means the baseline itself is unreadable (always fatal).
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let bl = Baseline::load(&root.join("analysis-baseline.toml"))?;
    let models = workspace_models(root);
    let mut report = Report::default();
    let mut baselined = 0usize;

    // Lock passes.
    let la = locks::analyze(&models, Watched::VniDaemon);
    let mut graph = la.graph;
    let before = graph.edges.len();
    graph.edges.retain(|e| !bl.allows_edge(&e.a, &e.b));
    baselined += before - graph.edges.len();
    for c in graph.cycles() {
        report.findings.push(cycle_finding(&c));
    }
    for f in la.blocking {
        if bl.allows_blocking(&f.subject, &f.detail) {
            baselined += 1;
        } else {
            report.findings.push(f);
        }
    }

    // Panic surface (baselined per file).
    let mut panic_total = 0usize;
    let mut seen_keys = Vec::new();
    for m in &models {
        if !panics::PANIC_CRATES.contains(&m.name.as_str()) {
            continue;
        }
        let sites = panics::panic_sites(m);
        panic_total += sites.len();
        let (findings, notes, keys, shadowed) = audit_panics(&sites, &bl, root);
        report.findings.extend(findings);
        report.notes.extend(notes);
        seen_keys.extend(keys);
        baselined += shadowed;
    }
    for key in bl.panic_surface.keys() {
        if !seen_keys.contains(key) {
            report.notes.push(format!(
                "panic-surface baseline entry `{key}` matches no audited file — remove it"
            ));
        }
    }

    // Legacy rules.
    for name in rules::DETERMINISTIC_CRATES {
        report.findings.extend(rules::wall_clock(
            &root.join("crates").join(name).join("src"),
        ));
    }
    for m in &models {
        report.findings.extend(rules::wire_enum_coverage(
            &root.join("crates").join(&m.name),
        ));
    }
    report
        .findings
        .extend(rules::mgmt_usage(&root.join("crates/daemon/src/mgmt.rs")));

    finish(
        &mut report,
        &models,
        &graph,
        &la.stats,
        panic_total,
        baselined,
    );
    Ok(report)
}

/// Fixture mode: every pass on one crate directory, no baseline, every
/// class watched. This is what `starfish-lint <dir>` runs and what the
/// seeded `fixtures/badcrate` must fail.
pub fn analyze_crate(dir: &Path) -> Report {
    let name = dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let models = vec![CrateModel::parse(&name, dir)];
    let mut report = Report::default();

    let la = locks::analyze(&models, Watched::All);
    for c in la.graph.cycles() {
        report.findings.push(cycle_finding(&c));
    }
    report.findings.extend(la.blocking);

    let sites = panics::panic_sites(&models[0]);
    let panic_total = sites.len();
    let (findings, _notes, _keys, _) = audit_panics(&sites, &Baseline::empty(), dir);
    report.findings.extend(findings);

    report.findings.extend(rules::wall_clock(&dir.join("src")));
    report.findings.extend(rules::wire_enum_coverage(dir));
    let mgmt = dir.join("src/mgmt.rs");
    if mgmt.exists() {
        report.findings.extend(rules::mgmt_usage(&mgmt));
    }

    finish(&mut report, &models, &la.graph, &la.stats, panic_total, 0);
    report
}

fn cycle_finding(c: &locks::Cycle) -> Finding {
    let mut f = Finding::new(
        "lock-order",
        c.file.clone(),
        c.line,
        if c.a == c.b {
            format!(
                "potential self-deadlock: `{}` re-acquired while already held \
                 (annotate `// {}` with the reason, or baseline the edge, if \
                 the two instances are provably distinct)",
                c.a,
                locks::ALLOW_LOCK_ORDER
            )
        } else {
            format!(
                "potential deadlock: `{}` and `{}` are acquired in both orders",
                c.a, c.b
            )
        },
    );
    f.subject = format!("{} -> {}", c.a, c.b);
    f.chains = c.forward.clone();
    if !c.back.is_empty() {
        f.chains.push("-- reverse order --".to_string());
        f.chains.extend(c.back.iter().cloned());
    }
    f
}

/// Compare one crate's panic sites against the baseline. Returns
/// (findings, notes, keys seen, sites shadowed by the baseline).
fn audit_panics(
    sites: &[panics::PanicSite],
    bl: &Baseline,
    root: &Path,
) -> (Vec<Finding>, Vec<String>, Vec<String>, usize) {
    let mut per_file: BTreeMap<String, Vec<&panics::PanicSite>> = BTreeMap::new();
    for s in sites {
        per_file
            .entry(panics::rel_key(&s.file, root))
            .or_default()
            .push(s);
    }
    let mut findings = Vec::new();
    let mut notes = Vec::new();
    let mut keys = Vec::new();
    let mut shadowed = 0usize;
    for (key, sites) in &per_file {
        keys.push(key.clone());
        let allowed = bl.panic_surface.get(key).copied().unwrap_or(0);
        let n = sites.len();
        if n > allowed {
            let head: Vec<String> = sites
                .iter()
                .take(5)
                .map(|s| format!("{} at line {}", s.what, s.line + 1))
                .collect();
            let mut f = Finding::new(
                "panic-surface",
                sites[0].file.clone(),
                sites[0].line + 1,
                format!(
                    "{n} panic site(s), baseline allows {allowed} — handle the error \
                     or raise the baseline with a triage reason ({})",
                    head.join(", ")
                ),
            );
            f.subject = key.clone();
            f.detail = n.to_string();
            findings.push(f);
        } else {
            shadowed += n;
            if n < allowed {
                notes.push(format!(
                    "panic-surface baseline for `{key}` is stale ({n} site(s), {allowed} allowed) \
                     — tighten it"
                ));
            }
        }
    }
    (findings, notes, keys, shadowed)
}

fn finish(
    report: &mut Report,
    models: &[CrateModel],
    graph: &LockGraph,
    lstats: &locks::LockStats,
    panic_sites: usize,
    baselined: usize,
) {
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    report.stats.crates = models.iter().map(|m| m.name.clone()).collect();
    report.stats.files = models.iter().map(|m| m.files.len()).sum();
    report.stats.functions = lstats.functions;
    report.stats.lock_classes = graph.classes.len();
    report.stats.lock_edges = graph.edges.len();
    report.stats.unresolved_locks = lstats.unresolved_locks;
    report.stats.panic_sites = panic_sites;
    report.stats.baselined = baselined;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_crate(name: &str, lib: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("starfish-analysis-lib-{name}"));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(d.join("src")).unwrap();
        fs::write(d.join("src/lib.rs"), lib).unwrap();
        d
    }

    #[test]
    fn analyze_crate_reports_cycles_blocking_and_panics() {
        let d = fixture_crate(
            "all-passes",
            concat!(
                "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n",
                "impl S {\n",
                "    fn ab(&self) { let ga = self.a.lock(); let gb = self.b.lock(); }\n",
                "    fn ba(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }\n",
                "    fn blk(&self) { let g = self.a.lock(); std::thread::sleep(d); }\n",
                "    fn oops(&self) -> u32 { self.maybe().unwrap() }\n",
                "}\n",
            ),
        );
        let r = analyze_crate(&d);
        let rules: Vec<&str> = r.findings.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"lock-order"), "{rules:?}");
        assert!(rules.contains(&"blocking-while-locked"), "{rules:?}");
        assert!(rules.contains(&"panic-surface"), "{rules:?}");
        assert!(r.stats.lock_classes >= 2);
    }

    #[test]
    fn workspace_mode_baseline_gates_blocking_and_edges() {
        // A crate named `vni` so its classes are watched in workspace mode.
        let root = std::env::temp_dir().join("starfish-analysis-lib-ws");
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/vni/src")).unwrap();
        fs::write(
            root.join("crates/vni/src/lib.rs"),
            concat!(
                "pub struct S { a: Mutex<u32> }\n",
                "impl S {\n",
                "    fn blk(&self) { let g = self.a.lock(); std::thread::sleep(d); }\n",
                "}\n",
            ),
        )
        .unwrap();
        let r = analyze_workspace(&root).unwrap();
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, "blocking-while-locked");

        fs::write(
            root.join("analysis-baseline.toml"),
            concat!(
                "[[blocking-while-locked]]\n",
                "function = \"S::blk\"\n",
                "op = \"thread::sleep\"\n",
                "reason = \"test triage\"\n",
            ),
        )
        .unwrap();
        let r2 = analyze_workspace(&root).unwrap();
        assert!(r2.is_clean(), "{:?}", r2.findings);
        assert_eq!(r2.stats.baselined, 1);
    }

    #[test]
    fn malformed_baseline_is_fatal() {
        let root = std::env::temp_dir().join("starfish-analysis-lib-badbl");
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates")).unwrap();
        fs::write(root.join("analysis-baseline.toml"), "[[mystery]]\n").unwrap();
        assert!(analyze_workspace(&root).is_err());
    }
}
