//! Lock-graph snapshot fixture: three lock classes forming one 3-cycle,
//! with one interprocedural hop (`ab` reaches `b` only through `grab_b`).
//! `tests/lock_graph.rs` snapshots the extracted graph and proves the
//! cycle report dies when one edge is removed (the mutation test). Not a
//! workspace member; scanned textually, never compiled.

pub struct Hub {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl Hub {
    /// `a` then (via a call) `b`.
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        *ga + self.grab_b()
    }

    fn grab_b(&self) -> u32 {
        let gb = self.b.lock();
        *gb
    }

    /// `b` then `c`.
    pub fn bc(&self) -> u32 {
        let gb = self.b.lock();
        let gc = self.c.lock();
        *gb + *gc
    }

    /// `c` then `a` — closes the cycle.
    pub fn ca(&self) -> u32 {
        let gc = self.c.lock();
        let ga = self.a.lock();
        *gc + *ga
    }
}
