//! The trace context: the few words of causal metadata a message carries so
//! one logical operation is stitchable across processes and nodes.
//!
//! The context is deliberately tiny and fixed-size (four `u64`s) so the MPI
//! fast path can append it to the wire envelope without allocation, and
//! deliberately *optional*: a frame without a context (or one parsed by a
//! peer that does not understand it) is a perfectly valid frame — see
//! [`MsgHeader::parse`](../../starfish_mpi/wire/struct.MsgHeader.html),
//! which skips the length-prefixed extension region unconditionally.

use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::Result;

/// Causal metadata stamped on a message by the sending recorder.
///
/// `span == 0` is the reserved "no context" sentinel ([`TraceCtx::NONE`]):
/// recorders never allocate span id 0, so an all-zero context decodes as
/// "the sender was not tracing".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Id of the logical operation (the root span) this message belongs to.
    pub trace: u64,
    /// Id of this message's own send span — globally unique, the key the
    /// reassembler uses to match a receive back to its send.
    pub span: u64,
    /// The sender's enclosing span (0 = this send is a root).
    pub parent: u64,
    /// The sender's Lamport clock at send time; the receiver folds it in
    /// (`max(local, remote) + 1`) so clocks respect happens-before.
    pub lamport: u64,
}

impl TraceCtx {
    /// The absent context (all zero; `span == 0` is the discriminant).
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        span: 0,
        parent: 0,
        lamport: 0,
    };

    /// Serialized length on the wire.
    pub const WIRE_LEN: usize = 32;

    /// True if this is the "no context" sentinel.
    pub fn is_none(&self) -> bool {
        self.span == 0
    }

    /// True if this context carries real causal metadata.
    pub fn is_some(&self) -> bool {
        self.span != 0
    }
}

impl Encode for TraceCtx {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.trace);
        enc.put_u64(self.span);
        enc.put_u64(self.parent);
        enc.put_u64(self.lamport);
    }
}

impl Decode for TraceCtx {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TraceCtx {
            trace: dec.get_u64()?,
            span: dec.get_u64()?,
            parent: dec.get_u64()?,
            lamport: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::codec::roundtrip;

    #[test]
    fn roundtrips_and_has_fixed_len() {
        let ctx = TraceCtx {
            trace: 1,
            span: 2,
            parent: 3,
            lamport: 4,
        };
        assert_eq!(roundtrip(&ctx).unwrap(), ctx);
        let mut enc = Encoder::new();
        ctx.encode(&mut enc);
        assert_eq!(enc.len(), TraceCtx::WIRE_LEN);
    }

    #[test]
    fn none_sentinel() {
        assert!(TraceCtx::NONE.is_none());
        assert!(TraceCtx {
            span: 9,
            ..TraceCtx::NONE
        }
        .is_some());
    }
}
