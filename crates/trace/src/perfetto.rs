//! Chrome-trace / Perfetto JSON export and a structural validator.
//!
//! The exporter emits the JSON object format (`{"traceEvents": [...]}`)
//! that both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load: one "process" per dumped ring, `B`/`E` slices for phases, short
//! `X` slices for sends/receives with `s`/`f` flow events stitching each
//! message's send to its receive across tracks. Timestamps are virtual
//! microseconds.
//!
//! The workspace has no serde (offline shims only), so the module also
//! carries a small recursive-descent JSON parser used by
//! [`validate`] — the schema check CI runs over every exported file — and
//! by tests.

use std::fmt::Write as _;

use crate::event::EventKind;
use crate::recorder::ProcTrace;

/// Escape a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Export dumped rings as a Chrome-trace JSON object.
pub fn export(traces: &[ProcTrace]) -> String {
    // Flow ends are only emitted when their start is present: a bounded
    // ring may have evicted the send, and a restarted sender's replaced
    // ring no longer holds the spans that surviving receivers recorded.
    let mut sent_spans = std::collections::BTreeSet::new();
    for t in traces {
        for e in &t.events {
            if let EventKind::Send { ctx, .. } = &e.kind {
                if ctx.is_some() {
                    sent_spans.insert(ctx.span);
                }
            }
        }
    }
    let mut ev = Vec::new();
    for (p, t) in traces.iter().enumerate() {
        let pid = p + 1;
        ev.push(format!(
            r#"{{"ph":"M","pid":{pid},"tid":1,"name":"process_name","args":{{"name":"{}"}}}}"#,
            esc(&t.scope)
        ));
        for e in &t.events {
            // Virtual nanoseconds -> fractional microseconds.
            let ts = e.vt.as_nanos() as f64 / 1000.0;
            let common = format!(r#""pid":{pid},"tid":1,"ts":{ts:.3}"#);
            let lam = e.lamport;
            match &e.kind {
                EventKind::Send {
                    peer,
                    context,
                    tag,
                    bytes,
                    ctx,
                } => {
                    ev.push(format!(
                        r#"{{"name":"send r{peer} t{tag}","cat":"msg","ph":"X","dur":1,{common},"args":{{"lamport":{lam},"context":{context},"bytes":{bytes},"span":{}}}}}"#,
                        ctx.span
                    ));
                    if ctx.is_some() {
                        ev.push(format!(
                            r#"{{"name":"msg","cat":"flow","ph":"s","id":{},{common}}}"#,
                            ctx.span
                        ));
                    }
                }
                EventKind::Recv {
                    peer,
                    context,
                    tag,
                    bytes,
                    ctx,
                } => {
                    ev.push(format!(
                        r#"{{"name":"recv r{peer} t{tag}","cat":"msg","ph":"X","dur":1,{common},"args":{{"lamport":{lam},"context":{context},"bytes":{bytes},"span":{}}}}}"#,
                        ctx.span
                    ));
                    if ctx.is_some() && sent_spans.contains(&ctx.span) {
                        ev.push(format!(
                            r#"{{"name":"msg","cat":"flow","ph":"f","bp":"e","id":{},{common}}}"#,
                            ctx.span
                        ));
                    }
                }
                EventKind::PhaseBegin { name } => {
                    ev.push(format!(
                        r#"{{"name":"{}","cat":"phase","ph":"B",{common},"args":{{"lamport":{lam}}}}}"#,
                        esc(name)
                    ));
                }
                EventKind::PhaseEnd { name } => {
                    ev.push(format!(
                        r#"{{"name":"{}","cat":"phase","ph":"E",{common},"args":{{"lamport":{lam}}}}}"#,
                        esc(name)
                    ));
                }
                EventKind::ViewChange { view, members } => {
                    ev.push(format!(
                        r#"{{"name":"view v{view}","cat":"membership","ph":"i","s":"p",{common},"args":{{"lamport":{lam},"members":{members}}}}}"#
                    ));
                }
                EventKind::Mark { name, detail } => {
                    ev.push(format!(
                        r#"{{"name":"{}","cat":"mark","ph":"i","s":"t",{common},"args":{{"lamport":{lam},"detail":"{}"}}}}"#,
                        esc(name),
                        esc(detail)
                    ));
                }
                EventKind::Fault { desc } => {
                    ev.push(format!(
                        r#"{{"name":"fault: {}","cat":"fault","ph":"i","s":"g",{common},"args":{{"lamport":{lam}}}}}"#,
                        esc(desc)
                    ));
                }
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n",
        ev.join(",\n")
    )
}

// ---- minimal JSON parsing, for the schema check --------------------------

/// A parsed JSON value (just enough for validation and tests).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char, self.i, self.b[self.i] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape \\{}", e as char)),
                    }
                }
                c => {
                    // Reassemble multi-byte UTF-8 sequences verbatim.
                    let len = match c {
                        0x00..=0x7f => 0,
                        0xc0..=0xdf => 1,
                        0xe0..=0xef => 2,
                        _ => 3,
                    };
                    let start = self.i - 1;
                    self.i += len;
                    let chunk = self
                        .b
                        .get(start..self.i)
                        .ok_or_else(|| "truncated utf-8".to_string())?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                c => return Err(format!("expected , or ] found {:?}", c as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                c => return Err(format!("expected , or }} found {:?}", c as char)),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(v)
}

/// What [`validate`] measured about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    pub events: usize,
    pub processes: usize,
    pub flows: usize,
}

/// Structural schema check of an exported Chrome-trace file: a JSON object
/// with a `traceEvents` array whose members all carry a known `ph`, numeric
/// `pid`/`tid`, a numeric `ts` on every non-metadata event, and whose flow
/// ends (`f`) all match an emitted flow start (`s`). This is the check the
/// CI trace job runs over the example's export.
pub fn validate(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    let mut procs = std::collections::BTreeSet::new();
    let mut starts = std::collections::BTreeSet::new();
    let mut ends = Vec::new();
    let mut open: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if !matches!(ph, "B" | "E" | "X" | "i" | "I" | "s" | "f" | "t" | "M") {
            return Err(format!("event {i}: unknown ph {ph:?}"));
        }
        let pid = e
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric pid"))?;
        e.get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric tid"))?;
        procs.insert(pid as u64);
        if ph != "M" {
            let ts = e
                .get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: missing numeric ts"))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("event {i}: bad ts {ts}"));
            }
        }
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        match ph {
            "s" | "f" => {
                let id = e
                    .get("id")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: flow without id"))?
                    as u64;
                if ph == "s" {
                    starts.insert(id);
                } else {
                    ends.push((i, id));
                }
            }
            "B" => *open.entry(pid as u64).or_default() += 1,
            "E" => {
                let n = open.entry(pid as u64).or_default();
                if *n == 0 {
                    return Err(format!("event {i}: E without matching B on pid {pid}"));
                }
                *n -= 1;
            }
            _ => {}
        }
    }
    for (i, id) in &ends {
        if !starts.contains(id) {
            return Err(format!("event {i}: flow end {id} has no start"));
        }
    }
    if let Some((pid, _)) = open.iter().find(|(_, n)| **n != 0) {
        return Err(format!("unclosed B slice on pid {pid}"));
    }
    Ok(TraceSummary {
        events: events.len(),
        processes: procs.len(),
        flows: starts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceCtx;
    use crate::recorder::FlightRecorder;
    use starfish_util::VirtualTime;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::from_nanos(n)
    }

    #[test]
    fn export_of_a_real_exchange_validates() {
        let a = FlightRecorder::new("app0.r0", 64);
        let b = FlightRecorder::new("app0.r1", 64);
        a.phase_begin(vt(5), "round");
        let ctx = a.on_send(vt(10), 1, 1, 7, 64);
        b.on_recv(vt(20), 0, 1, 7, 64, ctx);
        b.on_recv(vt(25), 3, 1, 9, 8, TraceCtx::NONE);
        a.phase_end(vt(30), "round");
        a.view_change(vt(40), 2, 3);
        a.mark(vt(50), "ckpt.commit", "index 1");
        a.fault(vt(60), "partition n0|n1");
        let json = export(&[a.dump(), b.dump()]);
        let sum = validate(&json).expect("exported trace must validate");
        assert_eq!(sum.processes, 2);
        assert_eq!(sum.flows, 1);
        assert!(sum.events >= 9);
    }

    #[test]
    fn validator_rejects_structural_damage() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents":{}}"#).is_err());
        assert!(validate(r#"{"traceEvents":[{"ph":"Z","pid":1,"tid":1,"name":"x"}]}"#).is_err());
        // flow end without start
        assert!(validate(
            r#"{"traceEvents":[{"ph":"f","bp":"e","id":9,"pid":1,"tid":1,"ts":1,"name":"m"}]}"#
        )
        .is_err());
        // unbalanced B
        assert!(
            validate(r#"{"traceEvents":[{"ph":"B","pid":1,"tid":1,"ts":1,"name":"p"}]}"#).is_err()
        );
        // minimal valid file
        assert!(validate(
            r#"{"traceEvents":[{"ph":"i","s":"t","pid":1,"tid":1,"ts":0,"name":"x"}]}"#
        )
        .is_ok());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"q\"\\\nA","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "q\"\\\nA");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{\"a\":1} extra").is_err());
    }
}
