//! The per-process flight recorder: an always-on, bounded ring of
//! [`TraceEvent`]s plus the process's Lamport clock.
//!
//! Design constraints, in order:
//!
//! 1. **Cheap when off.** A disabled recorder is a `None` — every record
//!    call is one branch, no lock, no allocation. The MPI fast path keeps
//!    its seed-era cost.
//! 2. **Cheap when on.** One uncontended `parking_lot` mutex acquisition
//!    per event, no allocation for send/receive events (their fields are
//!    plain words), ring eviction instead of growth. The measured per-event
//!    cost is committed in `BENCH_trace.json`.
//! 3. **Never lossy about being lossy.** When the ring is full the oldest
//!    event is evicted and `dropped` is incremented; `seq` keeps counting,
//!    so a dump always says exactly how much history is missing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use starfish_util::VirtualTime;

use crate::context::TraceCtx;
use crate::event::{EventKind, TraceEvent};

/// Default ring capacity (events) of recorders created by the cluster.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One process's dumped ring: what the reassembler and exporters consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcTrace {
    /// The recorder's scope (`"app1.r0"`, `"n2"`, `"chaos"`, ...).
    pub scope: String,
    /// Events evicted from the ring before this dump.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

struct State {
    ring: VecDeque<TraceEvent>,
    /// Next event index (total events ever recorded).
    seq: u64,
    /// The process Lamport clock.
    lamport: u64,
    /// Causal cursor: the trace/span subsequent sends attach to. Set by
    /// the latest delivered traced message or an open phase.
    cur_trace: u64,
    cur_parent: u64,
    /// Next span id suffix.
    span_ctr: u64,
}

struct Inner {
    scope: String,
    /// High bits of every span id minted here (derived from the scope), so
    /// spans are unique across the recorders of one cluster.
    span_base: u64,
    cap: usize,
    state: Mutex<State>,
    dropped: AtomicU64,
}

/// Handle to a flight recorder. Cheap to clone; all clones share the ring.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

/// FNV-1a, the same cheap stable hash the rest of the workspace idiom uses
/// for deterministic non-cryptographic ids.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl FlightRecorder {
    /// Create an enabled recorder with the given ring capacity.
    pub fn new(scope: &str, cap: usize) -> FlightRecorder {
        FlightRecorder::with_incarnation(scope, cap, 0)
    }

    /// Like [`FlightRecorder::new`], but salting the span-id namespace with
    /// an incarnation number. A restarted process re-registers its scope
    /// (replacing the dead ring), yet surviving peers still hold receive
    /// events stamped with the old incarnation's span ids; a distinct
    /// namespace per incarnation keeps the reassembler from pairing those
    /// stale receives with the new incarnation's sends.
    pub fn with_incarnation(scope: &str, cap: usize, incarnation: u64) -> FlightRecorder {
        // Reserve 24 bits for the per-recorder counter; keep the top bit
        // set so a real span id can never collide with the 0 sentinel.
        let span_base =
            (fnv1a(scope).wrapping_add(incarnation.wrapping_mul(0x9e37_79b9_7f4a_7c15)) << 24)
                | (1 << 63);
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                scope: scope.to_string(),
                span_base,
                cap: cap.max(1),
                state: Mutex::new(State {
                    ring: VecDeque::new(),
                    seq: 0,
                    lamport: 0,
                    cur_trace: 0,
                    cur_parent: 0,
                    span_ctr: 0,
                }),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A recorder that records nothing (one branch per call).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recorder's scope; empty for a disabled recorder.
    pub fn scope(&self) -> &str {
        self.inner.as_ref().map(|i| i.scope.as_str()).unwrap_or("")
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.dropped.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().ring.len())
            .unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current Lamport clock value.
    pub fn lamport(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.state.lock().lamport)
            .unwrap_or(0)
    }

    fn push(inner: &Inner, state: &mut State, vt: VirtualTime, kind: EventKind) {
        state.lamport += 1;
        let ev = TraceEvent {
            seq: state.seq,
            lamport: state.lamport,
            vt,
            kind,
        };
        state.seq += 1;
        if state.ring.len() == inner.cap {
            state.ring.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        state.ring.push_back(ev);
    }

    /// Record a send and mint the context to stamp on the wire. Returns
    /// [`TraceCtx::NONE`] when disabled, so callers can pass the result to
    /// the framing layer unconditionally.
    pub fn on_send(
        &self,
        vt: VirtualTime,
        peer: u32,
        context: u32,
        tag: u64,
        bytes: usize,
    ) -> TraceCtx {
        let Some(inner) = &self.inner else {
            return TraceCtx::NONE;
        };
        let mut s = inner.state.lock();
        s.span_ctr += 1;
        let span = inner.span_base | (s.span_ctr & 0xff_ffff);
        let ctx = TraceCtx {
            trace: if s.cur_trace != 0 { s.cur_trace } else { span },
            span,
            parent: s.cur_parent,
            // `lamport + 1` is the value the Send event below is stamped
            // with; the wire carries the same value so the receiver's
            // `max + 1` lands strictly after it.
            lamport: s.lamport + 1,
        };
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::Send {
                peer,
                context,
                tag,
                bytes: bytes as u32,
                ctx,
            },
        );
        ctx
    }

    /// Record a delivered message. Folds the sender's Lamport clock in
    /// and moves the causal cursor to the sender's span, so work this
    /// process does next is attributed to the arriving operation.
    pub fn on_recv(
        &self,
        vt: VirtualTime,
        peer: u32,
        context: u32,
        tag: u64,
        bytes: usize,
        ctx: TraceCtx,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        if ctx.is_some() {
            s.lamport = s.lamport.max(ctx.lamport);
            s.cur_trace = ctx.trace;
            s.cur_parent = ctx.span;
        }
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::Recv {
                peer,
                context,
                tag,
                bytes: bytes as u32,
                ctx,
            },
        );
    }

    /// Open a named phase; sends recorded until the matching
    /// [`phase_end`](Self::phase_end) parent to it.
    pub fn phase_begin(&self, vt: VirtualTime, name: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        s.span_ctr += 1;
        let span = inner.span_base | (s.span_ctr & 0xff_ffff);
        if s.cur_trace == 0 {
            s.cur_trace = span;
        }
        s.cur_parent = span;
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::PhaseBegin {
                name: name.to_string(),
            },
        );
    }

    /// Close the innermost open phase of `name` and reset the causal
    /// cursor.
    pub fn phase_end(&self, vt: VirtualTime, name: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        s.cur_trace = 0;
        s.cur_parent = 0;
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::PhaseEnd {
                name: name.to_string(),
            },
        );
    }

    /// Record a membership view installation.
    pub fn view_change(&self, vt: VirtualTime, view: u64, members: u32) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        Self::push(inner, &mut s, vt, EventKind::ViewChange { view, members });
    }

    /// Record a point annotation.
    pub fn mark(&self, vt: VirtualTime, name: &str, detail: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::Mark {
                name: name.to_string(),
                detail: detail.to_string(),
            },
        );
    }

    /// Record an injected fault.
    pub fn fault(&self, vt: VirtualTime, desc: &str) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut s = inner.state.lock();
        Self::push(
            inner,
            &mut s,
            vt,
            EventKind::Fault {
                desc: desc.to_string(),
            },
        );
    }

    /// Snapshot the ring (oldest first).
    pub fn dump(&self) -> ProcTrace {
        match &self.inner {
            None => ProcTrace {
                scope: String::new(),
                dropped: 0,
                events: Vec::new(),
            },
            Some(inner) => {
                let s = inner.state.lock();
                ProcTrace {
                    scope: inner.scope.clone(),
                    dropped: inner.dropped.load(Ordering::Relaxed),
                    events: s.ring.iter().cloned().collect(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::from_nanos(n)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::disabled();
        assert!(r.on_send(vt(1), 0, 1, 0, 8).is_none());
        r.on_recv(vt(2), 0, 1, 0, 8, TraceCtx::NONE);
        assert_eq!(r.len(), 0);
        assert_eq!(r.dump().events.len(), 0);
    }

    #[test]
    fn lamport_is_strictly_monotone_per_recorder() {
        let r = FlightRecorder::new("app0.r0", 64);
        r.on_send(vt(1), 1, 1, 7, 8);
        r.mark(vt(2), "x", "");
        r.on_recv(vt(3), 1, 1, 7, 8, TraceCtx::NONE);
        let d = r.dump();
        for w in d.events.windows(2) {
            assert!(w[1].lamport > w[0].lamport);
        }
    }

    #[test]
    fn recv_folds_in_the_sender_clock() {
        let a = FlightRecorder::new("app0.r0", 64);
        let b = FlightRecorder::new("app0.r1", 64);
        // Advance a's clock well past b's.
        for _ in 0..10 {
            a.mark(vt(1), "tick", "");
        }
        let ctx = a.on_send(vt(2), 1, 1, 0, 4);
        b.on_recv(vt(3), 0, 1, 0, 4, ctx);
        let recv = b.dump().events.pop().unwrap();
        assert!(
            recv.lamport > ctx.lamport,
            "receive must land strictly after the send ({} vs {})",
            recv.lamport,
            ctx.lamport
        );
    }

    #[test]
    fn ring_evicts_and_counts_drops_exactly() {
        let r = FlightRecorder::new("app0.r0", 8);
        for i in 0..100 {
            r.mark(vt(i), "m", "");
        }
        let d = r.dump();
        assert_eq!(d.events.len(), 8);
        assert_eq!(d.dropped, 92);
        assert_eq!(r.dropped(), 92);
        // seq keeps counting across evictions.
        assert_eq!(d.events.first().unwrap().seq, 92);
        assert_eq!(d.events.last().unwrap().seq, 99);
    }

    #[test]
    fn spans_are_unique_across_scopes() {
        let a = FlightRecorder::new("app0.r0", 16);
        let b = FlightRecorder::new("app0.r1", 16);
        let ca = a.on_send(vt(1), 1, 1, 0, 1);
        let cb = b.on_send(vt(1), 0, 1, 0, 1);
        assert_ne!(ca.span, cb.span);
        assert!(ca.is_some() && cb.is_some());
    }

    #[test]
    fn sends_inside_a_phase_parent_to_it() {
        let r = FlightRecorder::new("app0.r0", 16);
        let free = r.on_send(vt(1), 1, 1, 0, 1);
        assert_eq!(free.parent, 0);
        r.phase_begin(vt(2), "ckpt.round");
        let inside = r.on_send(vt(3), 1, 1, 0, 1);
        assert_ne!(inside.parent, 0);
        assert_eq!(inside.trace, inside.parent);
        r.phase_end(vt(4), "ckpt.round");
        let after = r.on_send(vt(5), 1, 1, 0, 1);
        assert_eq!(after.parent, 0);
    }
}
