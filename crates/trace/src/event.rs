//! Structured flight-recorder events.

use starfish_util::VirtualTime;

use crate::context::TraceCtx;

/// One recorded event. `seq` and `lamport` are both strictly monotone per
/// recorder; `lamport` additionally respects cross-process happens-before
/// (a receive folds the sender's clock in before stamping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-recorder event index (survives ring eviction: the index of the
    /// oldest retained event tells you how many were dropped before it).
    pub seq: u64,
    /// Lamport timestamp.
    pub lamport: u64,
    /// Virtual time the event was recorded at.
    pub vt: VirtualTime,
    pub kind: EventKind,
}

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A message left this process. `ctx` is the context stamped on the
    /// wire (its `span` is the id a matching `Recv` will carry).
    Send {
        peer: u32,
        context: u32,
        tag: u64,
        bytes: u32,
        ctx: TraceCtx,
    },
    /// A message was delivered to this process. `ctx` is what arrived on
    /// the wire ([`TraceCtx::NONE`] if the sender was not tracing).
    Recv {
        peer: u32,
        context: u32,
        tag: u64,
        bytes: u32,
        ctx: TraceCtx,
    },
    /// A named phase opened (collective phase, checkpoint protocol phase).
    /// Paired with a later `PhaseEnd` of the same name on this recorder.
    PhaseBegin { name: String },
    /// The matching close of a `PhaseBegin`.
    PhaseEnd { name: String },
    /// A membership view was installed at this node's ensemble endpoint.
    ViewChange { view: u64, members: u32 },
    /// A point annotation (checkpoint markers, protocol milestones).
    Mark { name: String, detail: String },
    /// A fault was injected (chaos harness, heartbeat chaos).
    Fault { desc: String },
}

impl TraceEvent {
    /// One-line rendering used by the `TRACE DUMP|TAIL` management
    /// commands and the `.trace.json` sidecar summaries.
    pub fn summary(&self) -> String {
        let body = match &self.kind {
            EventKind::Send {
                peer,
                context,
                tag,
                bytes,
                ctx,
            } => format!(
                "send -> r{peer} ctx{context} tag{tag} {bytes}B span={:x}",
                ctx.span
            ),
            EventKind::Recv {
                peer,
                context,
                tag,
                bytes,
                ctx,
            } => {
                if ctx.is_some() {
                    format!(
                        "recv <- r{peer} ctx{context} tag{tag} {bytes}B span={:x}",
                        ctx.span
                    )
                } else {
                    format!("recv <- r{peer} ctx{context} tag{tag} {bytes}B (untraced)")
                }
            }
            EventKind::PhaseBegin { name } => format!("begin {name}"),
            EventKind::PhaseEnd { name } => format!("end {name}"),
            EventKind::ViewChange { view, members } => {
                format!("view v{view} ({members} members)")
            }
            EventKind::Mark { name, detail } => {
                if detail.is_empty() {
                    format!("mark {name}")
                } else {
                    format!("mark {name}: {detail}")
                }
            }
            EventKind::Fault { desc } => format!("fault {desc}"),
        };
        format!(
            "#{} L{} @{}us {}",
            self.seq,
            self.lamport,
            self.vt.as_nanos() / 1_000,
            body
        )
    }
}
