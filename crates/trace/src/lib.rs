//! # starfish-trace — causal distributed tracing
//!
//! The observability layer that turns "what happened" (metrics, chaos
//! oracles) into "why": every process carries an always-on, bounded
//! [`FlightRecorder`] of structured events stamped with a Lamport clock;
//! every message carries a tiny optional [`TraceCtx`] (trace id, parent
//! span, logical clock) in a length-prefixed wire extension, so one logical
//! operation is stitchable across nodes. [`reassemble`] merges dumped rings
//! into a happens-before DAG, checks its invariants, and computes critical
//! paths; [`perfetto::export`] renders the whole thing as Chrome-trace JSON
//! that `ui.perfetto.dev` loads directly.
//!
//! Layering: this crate depends only on `starfish-util`, so every layer —
//! vni, mpi, ensemble, checkpoint, daemon, chaos — can record into it.
//!
//! See `OBSERVABILITY.md` at the repository root for the wire layout and a
//! worked debugging walkthrough.

pub mod context;
pub mod event;
pub mod hub;
pub mod perfetto;
pub mod reassemble;
pub mod recorder;

pub use context::TraceCtx;
pub use event::{EventKind, TraceEvent};
pub use hub::TraceHub;
pub use reassemble::{reassemble, Dag, NodeRef, PathStep};
pub use recorder::{FlightRecorder, ProcTrace, DEFAULT_CAPACITY};
