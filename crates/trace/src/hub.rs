//! Cluster-wide registry of flight recorders.
//!
//! The simulated cluster is one process, so recorders do not need to ship
//! their rings over the wire: every daemon and application process
//! registers its recorder here under its scope (`"n2"`, `"app1.r0"`), and
//! any management session can dump, tail or reassemble them — the same
//! shape [`StatsHub`](../../starfish_daemon/stats/struct.StatsHub.html)
//! gives the metrics path.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::recorder::{FlightRecorder, ProcTrace};

/// Shared table of live recorders, keyed by scope. Cheap to clone.
#[derive(Clone, Default)]
pub struct TraceHub {
    inner: Arc<Mutex<BTreeMap<String, FlightRecorder>>>,
}

impl TraceHub {
    pub fn new() -> Self {
        TraceHub::default()
    }

    /// Register (or replace — a restarted rank re-registers) a recorder.
    /// Disabled recorders are ignored.
    pub fn register(&self, rec: FlightRecorder) {
        if rec.is_enabled() {
            self.inner.lock().insert(rec.scope().to_string(), rec);
        }
    }

    /// All registered scopes, in order.
    pub fn scopes(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// The recorder of one scope.
    pub fn get(&self, scope: &str) -> Option<FlightRecorder> {
        self.inner.lock().get(scope).cloned()
    }

    /// Dump every recorder's ring, ordered by scope.
    pub fn dump_all(&self) -> Vec<ProcTrace> {
        self.inner.lock().values().map(|r| r.dump()).collect()
    }

    /// Dump the rings of every scope starting with `prefix` (e.g.
    /// `"app1."` for one application's ranks).
    pub fn dump_prefix(&self, prefix: &str) -> Vec<ProcTrace> {
        self.inner
            .lock()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, r)| r.dump())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::VirtualTime;

    #[test]
    fn registers_and_dumps_by_prefix() {
        let hub = TraceHub::new();
        for scope in ["app1.r0", "app1.r1", "app2.r0", "n0"] {
            let r = FlightRecorder::new(scope, 16);
            r.mark(VirtualTime::from_nanos(1), "hello", scope);
            hub.register(r);
        }
        hub.register(FlightRecorder::disabled()); // no-op
        assert_eq!(hub.scopes().len(), 4);
        assert_eq!(hub.dump_prefix("app1.").len(), 2);
        assert_eq!(hub.dump_all().len(), 4);
        assert!(hub.get("n0").is_some());
        assert!(hub.get("n9").is_none());
    }
}
