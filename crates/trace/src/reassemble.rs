//! Reassembly: merge per-process rings into a happens-before DAG.
//!
//! Nodes are the retained events of every dumped ring; edges are
//!
//! * **program order** — consecutive events of one process, and
//! * **message order** — a `Send` to the `Recv` that carried its span id.
//!
//! The DAG supports the two invariants the chaos acceptance test pins
//! (acyclicity, per-process Lamport monotonicity plus Lamport respecting
//! every edge) and the critical-path query the `TRACE PATH` management
//! command exposes: the causal chain ending at the latest event that
//! crosses the most process boundaries — the chain you read to answer
//! "what did the slow round actually wait on".

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent};
use crate::recorder::ProcTrace;

/// One node of the happens-before DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    /// Index into the dumped traces.
    pub proc: usize,
    /// Index into that trace's `events`.
    pub idx: usize,
}

/// The reassembled happens-before DAG over a set of dumped rings.
pub struct Dag {
    pub traces: Vec<ProcTrace>,
    pub nodes: Vec<NodeRef>,
    /// Edges as (from, to) indices into `nodes`.
    pub edges: Vec<(usize, usize)>,
    /// How many of `edges` are cross-process message edges.
    pub message_edges: usize,
}

/// One step of a rendered critical path.
#[derive(Debug, Clone)]
pub struct PathStep {
    pub scope: String,
    pub event: TraceEvent,
}

/// Build the happens-before DAG of the given dumps.
pub fn reassemble(traces: Vec<ProcTrace>) -> Dag {
    let mut nodes = Vec::new();
    let mut edges = Vec::new();
    // span id -> node index of the Send that minted it.
    let mut send_of: HashMap<u64, usize> = HashMap::new();
    for (p, t) in traces.iter().enumerate() {
        for (i, ev) in t.events.iter().enumerate() {
            let n = nodes.len();
            nodes.push(NodeRef { proc: p, idx: i });
            if i > 0 {
                edges.push((n - 1, n));
            }
            if let EventKind::Send { ctx, .. } = &ev.kind {
                send_of.insert(ctx.span, n);
            }
        }
    }
    let mut message_edges = 0;
    for (n, nr) in nodes.iter().enumerate() {
        let ev = &traces[nr.proc].events[nr.idx];
        if let EventKind::Recv { ctx, .. } = &ev.kind {
            if ctx.is_some() {
                if let Some(&s) = send_of.get(&ctx.span) {
                    edges.push((s, n));
                    message_edges += 1;
                }
                // A send evicted from its ring (or a dead node's ring not
                // dumped) leaves a dangling receive: still a valid node,
                // just without its cross-process edge.
            }
        }
    }
    Dag {
        traces,
        nodes,
        edges,
        message_edges,
    }
}

impl Dag {
    fn event(&self, n: usize) -> &TraceEvent {
        let nr = self.nodes[n];
        &self.traces[nr.proc].events[nr.idx]
    }

    /// Kahn topological sort; `None` if the graph has a cycle.
    fn topo(&self) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.nodes.len()];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            indeg[b] += 1;
            out[a].push(b);
        }
        let mut stack: Vec<usize> = (0..self.nodes.len()).filter(|&n| indeg[n] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = stack.pop() {
            order.push(n);
            for &m in &out[n] {
                indeg[m] -= 1;
                if indeg[m] == 0 {
                    stack.push(m);
                }
            }
        }
        (order.len() == self.nodes.len()).then_some(order)
    }

    /// True iff the happens-before relation is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topo().is_some()
    }

    /// True iff every process's Lamport clock is strictly increasing in
    /// ring order. (Virtual time is deliberately *not* required to be
    /// monotone: a retransmitted control mark is replayed at its original
    /// virtual departure time.)
    pub fn lamport_monotone(&self) -> bool {
        self.traces
            .iter()
            .all(|t| t.events.windows(2).all(|w| w[1].lamport > w[0].lamport))
    }

    /// Full consistency check: acyclic, per-process monotone, and Lamport
    /// strictly increasing along every edge (the clock respects
    /// happens-before). Returns a description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        if !self.lamport_monotone() {
            return Err("a per-process Lamport sequence is not strictly increasing".into());
        }
        for &(a, b) in &self.edges {
            let (ea, eb) = (self.event(a), self.event(b));
            if ea.lamport >= eb.lamport {
                return Err(format!(
                    "edge violates Lamport order: {} !< {} ({} -> {})",
                    ea.lamport,
                    eb.lamport,
                    self.traces[self.nodes[a].proc].scope,
                    self.traces[self.nodes[b].proc].scope,
                ));
            }
        }
        if !self.is_acyclic() {
            return Err("happens-before graph has a cycle".into());
        }
        Ok(())
    }

    /// The causal chain ending at the globally latest event, preferring
    /// (in order) chains that cross more process boundaries, then longer
    /// chains. Empty if there are no events.
    pub fn critical_path(&self) -> Vec<PathStep> {
        let Some(order) = self.topo() else {
            return Vec::new();
        };
        let mut preds: Vec<Vec<(usize, bool)>> = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            let cross = self.nodes[a].proc != self.nodes[b].proc;
            preds[b].push((a, cross));
        }
        // best[n] = (message hops, total hops, predecessor)
        let mut best: Vec<(u64, u64, Option<usize>)> = vec![(0, 0, None); self.nodes.len()];
        for &n in &order {
            for &(p, cross) in &preds[n] {
                let cand = (best[p].0 + cross as u64, best[p].1 + 1, Some(p));
                if (cand.0, cand.1) > (best[n].0, best[n].1) {
                    best[n] = cand;
                }
            }
        }
        let Some(mut cur) = (0..self.nodes.len()).max_by_key(|&n| {
            let ev = self.event(n);
            (ev.vt, best[n].0, best[n].1)
        }) else {
            return Vec::new();
        };
        let mut path = Vec::new();
        loop {
            let nr = self.nodes[cur];
            path.push(PathStep {
                scope: self.traces[nr.proc].scope.clone(),
                event: self.event(cur).clone(),
            });
            match best[cur].2 {
                Some(p) => cur = p,
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Render the critical path one step per line.
    pub fn render_path(&self) -> String {
        let path = self.critical_path();
        let mut out = String::new();
        for step in &path {
            out.push_str(&format!("{:<12} {}\n", step.scope, step.event.summary()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceCtx;
    use crate::recorder::FlightRecorder;
    use starfish_util::VirtualTime;

    fn vt(n: u64) -> VirtualTime {
        VirtualTime::from_nanos(n)
    }

    /// Two processes, one message each way: the DAG must be acyclic, obey
    /// Lamport order, and the critical path must cross processes.
    #[test]
    fn cross_process_chain_reassembles() {
        let a = FlightRecorder::new("r0", 64);
        let b = FlightRecorder::new("r1", 64);
        let c1 = a.on_send(vt(10), 1, 1, 7, 8);
        b.on_recv(vt(20), 0, 1, 7, 8, c1);
        let c2 = b.on_send(vt(30), 0, 1, 8, 8);
        a.on_recv(vt(40), 1, 1, 8, 8, c2);
        let dag = reassemble(vec![a.dump(), b.dump()]);
        assert_eq!(dag.message_edges, 2);
        dag.check().unwrap();
        let path = dag.critical_path();
        assert_eq!(path.len(), 4, "send->recv->send->recv chain");
        assert_eq!(path[0].scope, "r0");
        assert_eq!(path.last().unwrap().scope, "r0");
    }

    /// A receive whose send was evicted (or whose sender died) dangles but
    /// does not corrupt the graph.
    #[test]
    fn dangling_recv_is_tolerated() {
        let b = FlightRecorder::new("r1", 64);
        b.on_recv(
            vt(5),
            0,
            1,
            7,
            8,
            TraceCtx {
                trace: 99,
                span: 99,
                parent: 0,
                lamport: 50,
            },
        );
        b.mark(vt(6), "after", "");
        let dag = reassemble(vec![b.dump()]);
        assert_eq!(dag.message_edges, 0);
        dag.check().unwrap();
    }

    /// An artificially corrupted ring (non-monotone Lamport) is reported.
    #[test]
    fn corrupted_ring_fails_check() {
        let a = FlightRecorder::new("r0", 64);
        a.mark(vt(1), "x", "");
        a.mark(vt(2), "y", "");
        let mut d = a.dump();
        d.events[1].lamport = 0;
        let dag = reassemble(vec![d]);
        assert!(dag.check().is_err());
    }
}
