//! Concurrency model tests for the [`FlightRecorder`] ring.
//!
//! Written against the `loom` API: under the real crate (CI images that
//! patch it in) every interleaving is explored exhaustively; under the
//! offline stand-in the closure runs as a many-schedule stress loop. The
//! assertions are interleaving-universal either way:
//!
//! * no event is lost unaccounted — `len() + dropped()` equals the number
//!   of recording calls, whatever the arrival order;
//! * the ring's `seq` and Lamport stamps are strictly increasing in dump
//!   order (the per-ring lock must serialize stamping and eviction
//!   atomically; a torn push would fork or repeat a stamp);
//! * eviction takes the oldest entry first — the retained window is the
//!   contiguous tail of the sequence space.

use loom::sync::Arc;
use loom::thread;
use starfish_trace::FlightRecorder;
use starfish_util::VirtualTime;

const THREADS: usize = 3;
const PER_THREAD: usize = 4;
const CAP: usize = 6; // smaller than THREADS * PER_THREAD: eviction is live

#[test]
fn concurrent_marks_never_tear_the_ring() {
    loom::model(|| {
        let rec = Arc::new(FlightRecorder::new("loom.r0", CAP));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    for k in 0..PER_THREAD {
                        rec.mark(
                            VirtualTime((t * PER_THREAD + k) as u64),
                            "loom",
                            "concurrent mark",
                        );
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let total = (THREADS * PER_THREAD) as u64;
        assert_eq!(rec.len() as u64 + rec.dropped(), total);
        assert_eq!(rec.len(), CAP);

        let dump = rec.dump();
        assert_eq!(dump.events.len(), CAP);
        for w in dump.events.windows(2) {
            assert!(w[0].seq < w[1].seq, "seq tear: {:?} then {:?}", w[0], w[1]);
            assert!(
                w[0].lamport < w[1].lamport,
                "lamport tear: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        // Oldest-first eviction: the survivors are the contiguous tail.
        assert_eq!(dump.events[0].seq, total - CAP as u64);
        assert_eq!(dump.events.last().unwrap().seq, total - 1);
    });
}

#[test]
fn concurrent_send_recv_spans_stay_unique() {
    loom::model(|| {
        let rec = Arc::new(FlightRecorder::new("loom.r1", 64));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let rec = Arc::clone(&rec);
                thread::spawn(move || {
                    let mut spans = Vec::new();
                    for k in 0..PER_THREAD {
                        let ctx = rec.on_send(
                            VirtualTime(k as u64),
                            t as u32,
                            0,
                            (t * PER_THREAD + k) as u64,
                            8,
                        );
                        spans.push(ctx.span);
                    }
                    spans
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        // Span ids seed the cross-process happens-before reassembly; a
        // duplicate mints two sends that alias one edge.
        assert_eq!(all.len(), before, "duplicate span ids minted");
        assert_eq!(rec.len(), THREADS * PER_THREAD);
    });
}
