//! The object bus of an application process (paper §2.2).
//!
//! "All modules communicate by posting events on an object bus that invokes
//! the corresponding event handlers at each of the listening module. Using
//! an object bus allows us to completely decouple the modules."
//!
//! Our bus carries the paper's non-data event classes between the group
//! handler, the C/R module and the application module: lightweight
//! membership views, relayed coordination messages, and C/R protocol
//! messages. Crucially, *data* messages never touch it — they use the fast
//! data path straight into the MPI module (the design decision Figure 6 and
//! the `ablation_fastpath` benchmark justify). Each posted event costs
//! [`BUS_EVENT_COST`] of virtual time (handler dispatch on the era's
//! hardware), which is exactly the cost the fast path avoids per data
//! message.

use std::collections::VecDeque;

use bytes::Bytes;
use starfish_lwgroups::LwView;
use starfish_util::{Rank, VirtualTime};

/// Dispatch cost of one bus event on the prototype (handler lookup +
/// invocation in bytecode).
pub const BUS_EVENT_COST: VirtualTime = VirtualTime(15_000);

/// Event topics on the bus (one queue per listening module input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusTopic {
    /// Lightweight membership events → application module (view upcalls).
    Membership,
    /// Coordination messages → application module.
    Coordination,
    /// C/R protocol messages → checkpoint/restart module.
    CheckpointRestart,
}

/// One event on the bus.
#[derive(Debug, Clone)]
pub enum BusEvent {
    View {
        view: LwView,
        vt: VirtualTime,
    },
    Coord {
        from: Rank,
        body: Bytes,
        vt: VirtualTime,
    },
    Cr {
        from: Rank,
        body: Bytes,
        vt: VirtualTime,
    },
}

impl BusEvent {
    pub fn topic(&self) -> BusTopic {
        match self {
            BusEvent::View { .. } => BusTopic::Membership,
            BusEvent::Coord { .. } => BusTopic::Coordination,
            BusEvent::Cr { .. } => BusTopic::CheckpointRestart,
        }
    }
}

/// The per-process object bus. Modules post events; listeners drain their
/// topic queue at their next activation (the runtime's scheduler drives
/// module activations at service points).
#[derive(Debug, Default)]
pub struct Bus {
    membership: VecDeque<BusEvent>,
    coordination: VecDeque<BusEvent>,
    cr: VecDeque<BusEvent>,
    /// Statistics: events posted per topic (for the taxonomy audit and the
    /// fast-path ablation).
    pub posted: u64,
}

impl Bus {
    pub fn new() -> Self {
        Bus::default()
    }

    /// Post an event; the caller charges [`BUS_EVENT_COST`] to its clock.
    pub fn post(&mut self, ev: BusEvent) {
        self.posted += 1;
        match ev.topic() {
            BusTopic::Membership => self.membership.push_back(ev),
            BusTopic::Coordination => self.coordination.push_back(ev),
            BusTopic::CheckpointRestart => self.cr.push_back(ev),
        }
    }

    /// Drain one event from a topic queue.
    pub fn take(&mut self, topic: BusTopic) -> Option<BusEvent> {
        match topic {
            BusTopic::Membership => self.membership.pop_front(),
            BusTopic::Coordination => self.coordination.pop_front(),
            BusTopic::CheckpointRestart => self.cr.pop_front(),
        }
    }

    pub fn len(&self, topic: BusTopic) -> usize {
        match topic {
            BusTopic::Membership => self.membership.len(),
            BusTopic::Coordination => self.coordination.len(),
            BusTopic::CheckpointRestart => self.cr.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.membership.is_empty() && self.coordination.is_empty() && self.cr.is_empty()
    }

    /// Drop everything (rollback: queued events belong to the abandoned
    /// execution).
    pub fn clear(&mut self) {
        self.membership.clear();
        self.coordination.clear();
        self.cr.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::{GroupId, ViewId};

    fn view_ev() -> BusEvent {
        BusEvent::View {
            view: LwView {
                gid: GroupId(1),
                id: ViewId(1),
                members: vec![],
            },
            vt: VirtualTime::ZERO,
        }
    }

    #[test]
    fn topics_are_separate_queues() {
        let mut bus = Bus::new();
        bus.post(view_ev());
        bus.post(BusEvent::Coord {
            from: Rank(1),
            body: Bytes::from_static(b"c"),
            vt: VirtualTime::ZERO,
        });
        bus.post(BusEvent::Cr {
            from: Rank(2),
            body: Bytes::from_static(b"k"),
            vt: VirtualTime::ZERO,
        });
        assert_eq!(bus.posted, 3);
        assert_eq!(bus.len(BusTopic::Membership), 1);
        assert_eq!(bus.len(BusTopic::Coordination), 1);
        assert_eq!(bus.len(BusTopic::CheckpointRestart), 1);
        assert!(matches!(
            bus.take(BusTopic::Coordination),
            Some(BusEvent::Coord { .. })
        ));
        assert!(bus.take(BusTopic::Coordination).is_none());
        assert!(!bus.is_empty());
        bus.clear();
        assert!(bus.is_empty());
    }

    #[test]
    fn fifo_within_topic() {
        let mut bus = Bus::new();
        for i in 0..3u8 {
            bus.post(BusEvent::Coord {
                from: Rank(i as u32),
                body: Bytes::from_static(b"x"),
                vt: VirtualTime::ZERO,
            });
        }
        for i in 0..3u32 {
            match bus.take(BusTopic::Coordination) {
                Some(BusEvent::Coord { from, .. }) => assert_eq!(from, Rank(i)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
