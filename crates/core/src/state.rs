//! The checkpointable-state programming model.
//!
//! In the paper, VM-level checkpointing snapshots the OCaml heap, so *all*
//! application state is captured transparently. Our substitution (DESIGN.md)
//! is a registered state container: application state that must survive a
//! checkpoint implements [`Checkpointable`], and every
//! [`Ctx::safepoint`](crate::Ctx::safepoint) hands the runtime a view of it.
//! Restart re-enters the application's `run` function, which rebuilds its
//! working state from [`Ctx::restored`](crate::Ctx::restored).

use starfish_checkpoint::CkptValue;
use starfish_util::{Error, Result};

/// Application state that can be captured into (and rebuilt from) the
/// portable checkpoint value model.
pub trait Checkpointable {
    /// Serialize the current state (the "heap walk").
    fn save(&self) -> CkptValue;
}

impl Checkpointable for CkptValue {
    fn save(&self) -> CkptValue {
        self.clone()
    }
}

/// Helpers for pulling typed fields back out of a restored [`CkptValue`].
pub trait CkptValueExt {
    fn req_int(&self, field: &str) -> Result<i64>;
    fn req_float(&self, field: &str) -> Result<f64>;
    fn req_float_array(&self, field: &str) -> Result<Vec<f64>>;
    fn req_int_array(&self, field: &str) -> Result<Vec<i64>>;
    fn req_str(&self, field: &str) -> Result<String>;
}

impl CkptValueExt for CkptValue {
    fn req_int(&self, field: &str) -> Result<i64> {
        self.field(field)
            .and_then(|v| v.as_int())
            .ok_or_else(|| Error::checkpoint(format!("missing int field {field:?}")))
    }

    fn req_float(&self, field: &str) -> Result<f64> {
        self.field(field)
            .and_then(|v| v.as_float())
            .ok_or_else(|| Error::checkpoint(format!("missing float field {field:?}")))
    }

    fn req_float_array(&self, field: &str) -> Result<Vec<f64>> {
        self.field(field)
            .and_then(|v| v.as_float_array())
            .map(|s| s.to_vec())
            .ok_or_else(|| Error::checkpoint(format!("missing float array {field:?}")))
    }

    fn req_int_array(&self, field: &str) -> Result<Vec<i64>> {
        self.field(field)
            .and_then(|v| v.as_int_array())
            .map(|s| s.to_vec())
            .ok_or_else(|| Error::checkpoint(format!("missing int array {field:?}")))
    }

    fn req_str(&self, field: &str) -> Result<String> {
        self.field(field)
            .and_then(|v| v.as_str())
            .map(str::to_owned)
            .ok_or_else(|| Error::checkpoint(format!("missing string field {field:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckptvalue_is_trivially_checkpointable() {
        let v = CkptValue::Int(7);
        assert_eq!(v.save(), v);
    }

    #[test]
    fn typed_field_extraction() {
        let v = CkptValue::record(vec![
            ("step", CkptValue::Int(4)),
            ("x", CkptValue::Float(0.5)),
            ("grid", CkptValue::FloatArray(vec![1.0])),
            ("name", CkptValue::Str("s".into())),
        ]);
        assert_eq!(v.req_int("step").unwrap(), 4);
        assert_eq!(v.req_float("x").unwrap(), 0.5);
        assert_eq!(v.req_float_array("grid").unwrap(), vec![1.0]);
        assert_eq!(v.req_str("name").unwrap(), "s");
        assert!(v.req_int("missing").is_err());
        assert!(v.req_int("x").is_err(), "type mismatch is an error");
    }
}
