//! The cluster: the user-facing entry point of starfish-rs.
//!
//! A [`Cluster`] is the whole simulated installation: the interconnect
//! fabric, one daemon per node, shared stable checkpoint storage, and the
//! program registry. It exposes the operations the paper's clients have —
//! submit/suspend/resume/delete/checkpoint applications, administrate nodes
//! — plus the fault-injection surface the evaluation needs (crash nodes,
//! partition links, add nodes on the fly).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use std::time::Duration;

use starfish_checkpoint::backend::{CkptBackend, StoreHub};
use starfish_checkpoint::store::CkptStore;
use starfish_checkpoint::CkptValue;
use starfish_daemon::config::{AppSpec, AppStatus, ClusterConfig};
use starfish_daemon::{CfgCmd, CkptProto, Daemon, DaemonConfig, FtPolicy, LevelKind, MgmtSession};
use starfish_ensemble::{HeartbeatCfg, HeartbeatChaos};
use starfish_events::{EventBus, EventKind};
use starfish_mpi::RankDirectory;
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, Error, NodeId, Rank, Result};
use starfish_vni::{BipMyrinet, Fabric, LayerCosts, NetworkModel, TcpEthernet};

use crate::ctx::Ctx;
use crate::host::{AppRegistry, DirRegistry, RuntimeHost, RuntimeKnobs};
use crate::runtime::Outputs;

/// Per-submission options (policy, checkpoint level, protocol, store).
#[derive(Debug, Clone, Copy)]
pub struct SubmitOpts {
    pub policy: FtPolicy,
    pub level: LevelKind,
    pub proto: CkptProto,
    pub backend: CkptBackend,
}

impl Default for SubmitOpts {
    fn default() -> Self {
        SubmitOpts {
            policy: FtPolicy::Restart,
            level: LevelKind::Vm,
            proto: CkptProto::StopAndSync,
            backend: CkptBackend::Disk,
        }
    }
}

impl SubmitOpts {
    pub fn policy(mut self, p: FtPolicy) -> Self {
        self.policy = p;
        self
    }
    pub fn level(mut self, l: LevelKind) -> Self {
        self.level = l;
        self
    }
    pub fn proto(mut self, p: CkptProto) -> Self {
        self.proto = p;
        self
    }
    /// Checkpoint store backend: stable disk (default) or the diskless
    /// peer-memory replica store with `k` copies per fragment.
    pub fn backend(mut self, b: CkptBackend) -> Self {
        self.backend = b;
        self
    }
    /// Shorthand for [`backend`](SubmitOpts::backend) with
    /// `CkptBackend::Replica { k }`.
    pub fn replica(self, k: u8) -> Self {
        self.backend(CkptBackend::Replica { k })
    }
}

/// Builder for a [`Cluster`].
pub struct ClusterBuilder {
    node_archs: Vec<u8>,
    model: Box<dyn NetworkModel>,
    layers: LayerCosts,
    trace: TraceSink,
    knobs: RuntimeKnobs,
    heartbeat: Option<HeartbeatCfg>,
    heartbeat_chaos: Option<HeartbeatChaos>,
    trace_cap: usize,
    /// Event-bus ring capacity per daemon; 0 disables the bus.
    events_cap: usize,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            node_archs: vec![0, 0],
            model: Box::new(BipMyrinet),
            layers: LayerCosts::prototype(),
            trace: TraceSink::disabled(),
            knobs: RuntimeKnobs::default(),
            heartbeat: None,
            heartbeat_chaos: None,
            trace_cap: starfish_trace::DEFAULT_CAPACITY,
            events_cap: starfish_events::bus::DEFAULT_CAPACITY,
        }
    }
}

impl ClusterBuilder {
    /// `n` nodes of the default machine type (the paper's P-II Linux boxes).
    pub fn nodes(mut self, n: u32) -> Self {
        self.node_archs = vec![0; n as usize];
        self
    }

    /// Explicit per-node machine types (indexes into
    /// [`starfish_checkpoint::MACHINES`], Table 2) — a heterogeneous
    /// cluster.
    pub fn node_archs(mut self, archs: &[u8]) -> Self {
        self.node_archs = archs.to_vec();
        self
    }

    /// Use the BIP/Myrinet interconnect model (default).
    pub fn network_bip(mut self) -> Self {
        self.model = Box::new(BipMyrinet);
        self
    }

    /// Use the TCP/IP over Fast Ethernet model.
    pub fn network_tcp(mut self) -> Self {
        self.model = Box::new(TcpEthernet);
        self
    }

    /// Use an arbitrary interconnect model (e.g. the ServerNet port).
    pub fn network(mut self, model: Box<dyn NetworkModel>) -> Self {
        self.model = model;
        self
    }

    /// Override the software layer costs (zero for pure-logic tests).
    pub fn layers(mut self, layers: LayerCosts) -> Self {
        self.layers = layers;
        self
    }

    /// Attach a message-taxonomy trace sink.
    pub fn trace(mut self, trace: TraceSink) -> Self {
        self.trace = trace;
        self
    }

    /// Runtime knobs (ablations).
    pub fn knobs(mut self, knobs: RuntimeKnobs) -> Self {
        self.knobs = knobs;
        self
    }

    /// Size of each process's flight-recorder ring (events retained per
    /// daemon / per rank). Recording is on by default; see
    /// [`no_flight_recorder`](ClusterBuilder::no_flight_recorder).
    pub fn flight_recorder(mut self, events: usize) -> Self {
        self.trace_cap = events;
        self
    }

    /// Disable the causal flight recorder entirely (one predicted branch
    /// per would-be event remains; see BENCH_trace.json).
    pub fn no_flight_recorder(mut self) -> Self {
        self.trace_cap = 0;
        self
    }

    /// Ring capacity of each daemon's cluster event bus (events retained
    /// for `EVENTS TAIL` / postmortem slices; drops are counted exactly).
    /// The bus is on by default; see
    /// [`no_event_bus`](ClusterBuilder::no_event_bus).
    pub fn event_bus(mut self, capacity: usize) -> Self {
        self.events_cap = capacity;
        self
    }

    /// Disable the cluster event bus entirely (publishes become no-ops;
    /// postmortem bundles lose their event slice).
    pub fn no_event_bus(mut self) -> Self {
        self.events_cap = 0;
        self
    }

    /// Enable heartbeat failure detection on every daemon's ensemble stack
    /// (needed to notice *silent* crashes, which emit no fabric event).
    pub fn heartbeat(mut self, interval: Duration, timeout: Duration) -> Self {
        self.heartbeat = Some(HeartbeatCfg { interval, timeout });
        self
    }

    /// Seeded chaos on the heartbeat path (beacon rounds skipped with
    /// probability `skip_p`); only meaningful together with [`heartbeat`].
    ///
    /// [`heartbeat`]: ClusterBuilder::heartbeat
    pub fn heartbeat_chaos(mut self, seed: u64, skip_p: f64) -> Self {
        self.heartbeat_chaos = Some(HeartbeatChaos { seed, skip_p });
        self
    }

    /// Build and boot the cluster: all daemons started and converged on the
    /// full node set.
    pub fn build(self) -> Result<Cluster> {
        let fabric = Fabric::new(self.model, self.layers);
        // One shared registry for cluster infrastructure (fabric, ensemble,
        // daemons): every daemon piggybacks it under the single "cluster"
        // stats scope, so replace-on-update keeps the aggregate exact.
        let metrics = starfish_telemetry::Registry::new();
        fabric.attach_metrics(metrics.clone());
        self.trace
            .attach_metrics(std::sync::Arc::new(metrics.clone()));
        let store = StoreHub::new();
        let registry = AppRegistry::new();
        let dirs = DirRegistry::default();
        let outputs = Outputs::new();
        let trace_hub = starfish_trace::TraceHub::new();
        let n = self.node_archs.len() as u32;
        let mut daemons = Vec::new();
        for (i, arch_index) in self.node_archs.iter().enumerate() {
            let node = NodeId(i as u32);
            fabric.add_node(node);
            let host = RuntimeHost {
                node,
                arch: starfish_checkpoint::MACHINES
                    .get(*arch_index as usize)
                    .copied()
                    .unwrap_or(starfish_checkpoint::arch::DEFAULT_ARCH),
                fabric: fabric.clone(),
                registry: registry.clone(),
                dirs: dirs.clone(),
                store: store.clone(),
                outputs: outputs.clone(),
                trace: self.trace.clone(),
                knobs: self.knobs,
                trace_hub: trace_hub.clone(),
                trace_cap: self.trace_cap,
            };
            let mut dc = DaemonConfig::new(node);
            dc.arch_index = *arch_index;
            dc.trace = self.trace.clone();
            dc.ensemble.trace = self.trace.clone();
            dc.ensemble.heartbeat = self.heartbeat;
            dc.ensemble.chaos = self.heartbeat_chaos;
            dc.metrics = Some(metrics.clone());
            dc.ensemble.metrics = Some(metrics.clone());
            if self.trace_cap > 0 {
                dc.recorder =
                    starfish_trace::FlightRecorder::new(&format!("{node}"), self.trace_cap);
            }
            dc.events = if self.events_cap > 0 {
                EventBus::with_capacity(self.events_cap)
            } else {
                EventBus::disabled()
            };
            dc.trace_hub = trace_hub.clone();
            let d = Daemon::start(
                &fabric,
                dc,
                if i == 0 { None } else { Some(NodeId(0)) },
                Box::new(host),
                store.clone(),
            )?;
            // Sequential boot keeps daemon ids and join order deterministic.
            d.wait_config(Duration::from_secs(30), |c| c.up_nodes().len() == i + 1)?;
            daemons.push(d);
        }
        for d in &daemons {
            d.wait_config(Duration::from_secs(30), |c| {
                c.up_nodes().len() == n as usize
            })?;
        }
        Ok(Cluster {
            fabric,
            daemons: parking_lot::Mutex::new(daemons),
            store,
            registry,
            dirs,
            outputs,
            trace: self.trace,
            knobs: self.knobs,
            metrics,
            heartbeat: self.heartbeat,
            heartbeat_chaos: self.heartbeat_chaos,
            trace_hub,
            trace_cap: self.trace_cap,
            events_cap: self.events_cap,
            next_token: AtomicU64::new(1),
            next_node: AtomicU32::new(n),
        })
    }
}

/// A running Starfish cluster.
pub struct Cluster {
    fabric: Fabric,
    daemons: parking_lot::Mutex<Vec<Daemon>>,
    store: StoreHub,
    registry: AppRegistry,
    dirs: DirRegistry,
    outputs: Outputs,
    trace: TraceSink,
    knobs: RuntimeKnobs,
    metrics: starfish_telemetry::Registry,
    heartbeat: Option<HeartbeatCfg>,
    heartbeat_chaos: Option<HeartbeatChaos>,
    trace_hub: starfish_trace::TraceHub,
    trace_cap: usize,
    events_cap: usize,
    next_token: AtomicU64,
    next_node: AtomicU32,
}

impl Cluster {
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The interconnect fabric (fault injection lives here too).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Shared stable (disk) checkpoint storage — the NFS side of the hub.
    pub fn store(&self) -> &CkptStore {
        self.store.nfs()
    }

    /// The full checkpoint store hub: stable disk plus the diskless
    /// peer-memory replica backend, with per-app routing policies.
    pub fn ckpt_hub(&self) -> &StoreHub {
        &self.store
    }

    /// A live daemon handle (for management sessions and status queries).
    pub fn daemon(&self) -> Daemon {
        let ds = self.daemons.lock();
        for d in ds.iter() {
            if self
                .fabric
                .node_status(d.node())
                .map(|s| s.reachable())
                .unwrap_or(false)
            {
                return d.clone();
            }
        }
        ds[0].clone()
    }

    /// Daemon of a specific node.
    pub fn daemon_of(&self, node: NodeId) -> Option<Daemon> {
        self.daemons
            .lock()
            .iter()
            .find(|d| d.node() == node)
            .cloned()
    }

    /// Open a management/user session against a live daemon (the ASCII
    /// protocol of paper §3.1.1).
    pub fn session(&self) -> MgmtSession {
        let seed = self.next_token.fetch_add(1, Ordering::Relaxed);
        MgmtSession::connect(self.daemon(), seed)
    }

    /// Register an application program under a name, cluster-wide.
    pub fn register_app(
        &self,
        name: &str,
        f: impl Fn(&mut Ctx<'_>) -> Result<()> + Send + Sync + 'static,
    ) {
        self.registry.register(name, f);
    }

    /// Submit a registered program with `size` ranks.
    pub fn submit(&self, name: &str, size: u32, opts: SubmitOpts) -> Result<AppId> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed) << 20 | 0xA11C0;
        let spec = AppSpec {
            name: name.to_string(),
            size,
            policy: opts.policy,
            level: opts.level,
            proto: opts.proto,
            backend: opts.backend,
            owner: "cluster".to_string(),
            token,
        };
        let d = self.daemon();
        d.issue(CfgCmd::Submit { spec })?;
        let cfg = d.wait_config(Duration::from_secs(30), |c| {
            c.find_app_by_token(token).is_some()
        })?;
        Ok(cfg.find_app_by_token(token).expect("just checked").id)
    }

    /// The replicated configuration as the contacted daemon sees it.
    pub fn config(&self) -> ClusterConfig {
        self.daemon().config()
    }

    /// Status of an application.
    pub fn app_status(&self, app: AppId) -> Option<AppStatus> {
        self.config().apps.get(&app).map(|a| a.status)
    }

    /// Block until the application reaches `Done` (every rank finished).
    pub fn wait_app_done(&self, app: AppId, timeout: Duration) -> Result<()> {
        self.daemon()
            .wait_config(timeout, |c| {
                c.apps
                    .get(&app)
                    .map(|a| a.status == AppStatus::Done)
                    .unwrap_or(false)
            })
            .map(|_| ())
    }

    /// Block until `pred` holds on the application's replicated entry.
    pub fn wait_app(
        &self,
        app: AppId,
        timeout: Duration,
        mut pred: impl FnMut(&starfish_daemon::config::AppEntry) -> bool,
    ) -> Result<()> {
        self.daemon()
            .wait_config(timeout, |c| {
                c.apps.get(&app).map(&mut pred).unwrap_or(false)
            })
            .map(|_| ())
    }

    /// Trigger a system-initiated checkpoint of an application.
    pub fn checkpoint(&self, app: AppId) -> Result<()> {
        self.daemon().issue(CfgCmd::TriggerCkpt { app })
    }

    /// Enable *system-initiated checkpointing* (paper §1): every `interval`
    /// of real time, a checkpoint round is triggered for each running
    /// application — "programs that do not wish to handle these upcalls can
    /// simply ignore them ... such programs will only enjoy part of Starfish
    /// capability, e.g., system initiated checkpointing". Returns a guard;
    /// dropping it stops the driver.
    pub fn enable_auto_checkpoint(&self, interval: Duration) -> AutoCheckpoint {
        let daemon = self.daemon();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("starfish-auto-ckpt".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    if stop2.load(Ordering::Relaxed) {
                        return;
                    }
                    let cfg = daemon.config();
                    for app in cfg.apps.values() {
                        if app.status == AppStatus::Running {
                            let _ = daemon.issue(CfgCmd::TriggerCkpt { app: app.id });
                        }
                    }
                }
            })
            .expect("spawn auto-checkpoint driver");
        AutoCheckpoint {
            stop,
            _handle: handle,
        }
    }

    /// Suspend / resume / delete an application.
    pub fn suspend(&self, app: AppId) -> Result<()> {
        self.daemon().issue(CfgCmd::Suspend { app })
    }

    pub fn resume(&self, app: AppId) -> Result<()> {
        self.daemon().issue(CfgCmd::ResumeApp { app })
    }

    pub fn delete(&self, app: AppId) -> Result<()> {
        self.daemon().issue(CfgCmd::Delete { app })
    }

    /// Migrate one rank to another node (paper §3.2.1): takes a coordinated
    /// checkpoint first (warm migration), then moves the rank; the whole
    /// application resumes from that checkpoint with the rank on its new
    /// home.
    pub fn migrate(&self, app: AppId, rank: Rank, to: NodeId) -> Result<()> {
        let entry = self
            .config()
            .apps
            .get(&app)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("{app}")))?;
        let ranks: Vec<Rank> = (0..entry.spec.size).map(Rank).collect();
        let before = self.store.latest_common_index(app, &ranks);
        self.checkpoint(app)?;
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while self.store.latest_common_index(app, &ranks) <= before {
            if std::time::Instant::now() > deadline {
                return Err(Error::timeout("pre-migration checkpoint"));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let idx = self.store.latest_common_index(app, &ranks);
        self.daemon().issue(starfish_daemon::CfgCmd::Migrate {
            app,
            rank,
            node: to,
            line: vec![idx; ranks.len()],
        })
    }

    /// Crash a node (fail-stop fault injection). The injection itself is
    /// published to the event bus via a surviving daemon, so postmortems
    /// can correlate recoveries with the faults that caused them.
    pub fn crash_node(&self, node: NodeId) {
        self.fabric.crash_node(node);
        let _ = self.daemon().publish_event(EventKind::FaultInjected {
            desc: format!("crash {node}"),
        });
    }

    /// Administratively disable / enable a node.
    pub fn disable_node(&self, node: NodeId) -> Result<()> {
        self.fabric.disable_node(node);
        self.daemon().issue(CfgCmd::DisableNode { node })
    }

    pub fn enable_node(&self, node: NodeId) -> Result<()> {
        self.fabric.enable_node(node);
        self.daemon().issue(CfgCmd::EnableNode { node })
    }

    /// Add a brand-new node to the running cluster (paper §3.1.2
    /// dynamicity). Returns its id once the whole cluster knows it.
    pub fn add_node(&self, arch_index: u8) -> Result<NodeId> {
        let node = NodeId(self.next_node.fetch_add(1, Ordering::Relaxed));
        self.boot_daemon(node, arch_index)?;
        Ok(node)
    }

    /// Restart the daemon of a crashed node (the paper's "recovering
    /// workstation rejoins the cluster"): the node comes back up on the
    /// fabric with the *same* identity and a fresh daemon joins through a
    /// surviving contact. The replicated configuration keeps the NodeId, so
    /// placement decisions made before the crash stay meaningful.
    pub fn restart_node(&self, node: NodeId) -> Result<()> {
        if self
            .fabric
            .node_status(node)
            .map(|s| s.reachable())
            .unwrap_or(false)
        {
            return Err(Error::invalid_arg(format!("{node:?} is still up")));
        }
        // Recover the machine type the node booted with; a restarted box is
        // the same hardware.
        let arch = self.config().arch_of(node);
        let arch_index = starfish_checkpoint::MACHINES
            .iter()
            .position(|a| *a == arch)
            .unwrap_or(0) as u8;
        // Drop the dead daemon handle before booting its replacement.
        self.daemons.lock().retain(|d| d.node() != node);
        let _ = self.daemon().publish_event(EventKind::FaultInjected {
            desc: format!("restart {node}"),
        });
        self.boot_daemon(node, arch_index)
    }

    /// Boot a daemon for `node` and join it through a live contact; shared
    /// tail of [`add_node`](Cluster::add_node) and
    /// [`restart_node`](Cluster::restart_node).
    fn boot_daemon(&self, node: NodeId, arch_index: u8) -> Result<()> {
        self.fabric.add_node(node);
        let host = RuntimeHost {
            node,
            arch: starfish_checkpoint::MACHINES
                .get(arch_index as usize)
                .copied()
                .unwrap_or(starfish_checkpoint::arch::DEFAULT_ARCH),
            fabric: self.fabric.clone(),
            registry: self.registry.clone(),
            dirs: self.dirs.clone(),
            store: self.store.clone(),
            outputs: self.outputs.clone(),
            trace: self.trace.clone(),
            knobs: self.knobs,
            trace_hub: self.trace_hub.clone(),
            trace_cap: self.trace_cap,
        };
        let mut dc = DaemonConfig::new(node);
        dc.arch_index = arch_index;
        dc.trace = self.trace.clone();
        dc.ensemble.trace = self.trace.clone();
        dc.ensemble.heartbeat = self.heartbeat;
        dc.ensemble.chaos = self.heartbeat_chaos;
        dc.metrics = Some(self.metrics.clone());
        dc.ensemble.metrics = Some(self.metrics.clone());
        if self.trace_cap > 0 {
            dc.recorder = starfish_trace::FlightRecorder::new(&format!("{node}"), self.trace_cap);
        }
        dc.events = if self.events_cap > 0 {
            EventBus::with_capacity(self.events_cap)
        } else {
            EventBus::disabled()
        };
        dc.trace_hub = self.trace_hub.clone();
        let contact = self.daemon().node();
        let d = Daemon::start(
            &self.fabric,
            dc,
            Some(contact),
            Box::new(host),
            self.store.clone(),
        )?;
        d.wait_config(Duration::from_secs(30), |c| {
            c.nodes.contains_key(&node) && c.up_nodes().contains(&node)
        })?;
        self.daemons.lock().push(d);
        Ok(())
    }

    /// Values published by a rank (in publish order).
    pub fn outputs(&self, app: AppId, rank: Rank) -> Vec<CkptValue> {
        self.outputs.get(app, rank)
    }

    /// Wait for a rank to publish at least `n` values.
    pub fn wait_outputs(
        &self,
        app: AppId,
        rank: Rank,
        n: usize,
        timeout: Duration,
    ) -> Result<Vec<CkptValue>> {
        self.outputs.wait_count(app, rank, n, timeout)
    }

    /// The placement directory of an application (diagnostics).
    pub fn directory(&self, app: AppId) -> Option<RankDirectory> {
        self.dirs.get(app)
    }

    /// The message-taxonomy trace attached at build time.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The cluster-wide flight-recorder registry: one causal event ring per
    /// daemon (`"n<id>"`) and per application rank (`"app<A>.r<R>"`). Dump
    /// and [`reassemble`](starfish_trace::reassemble) them, or use the
    /// `TRACE` management commands.
    pub fn trace_hub(&self) -> &starfish_trace::TraceHub {
        &self.trace_hub
    }

    /// The shared cluster-infrastructure telemetry registry (fabric, trace,
    /// ensemble, daemons). Per-process registries are separate; their
    /// snapshots arrive via the daemons' `StatsHub` (see [`Cluster::stats`]).
    pub fn metrics(&self) -> &starfish_telemetry::Registry {
        &self.metrics
    }

    /// The stats hub of the first daemon — the cluster-wide aggregate view
    /// (all daemons converge on the same contents via the ordered cast path).
    pub fn stats(&self) -> starfish_daemon::StatsHub {
        let d = self.daemon();
        d.stats().clone()
    }

    /// The cluster event bus of a live daemon: the sequenced record of
    /// membership, checkpoint and recovery events (`EVENTS` over mgmt, or
    /// subscribe with [`EventBus::subscribe`]).
    pub fn events(&self) -> EventBus {
        self.daemon().events().clone()
    }

    /// The recovery postmortem bundle of `app` on a live daemon, if one has
    /// been assembled (also served by the `POSTMORTEM` mgmt command and
    /// written to `target/postmortems/` by the view coordinator).
    pub fn postmortem(&self, app: AppId) -> Option<starfish_events::Postmortem> {
        self.daemon().postmortem(app)
    }
}

/// Guard for the system-initiated checkpoint driver; dropping it stops the
/// periodic triggering.
pub struct AutoCheckpoint {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    _handle: std::thread::JoinHandle<()>,
}

impl Drop for AutoCheckpoint {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cfg = self.config();
        write!(
            f,
            "Cluster({} nodes, {} apps)",
            cfg.nodes.len(),
            cfg.apps.len()
        )
    }
}

#[allow(dead_code)]
fn _assert_traits() {
    fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<Cluster>();
}

// keep Error in the public surface referenced
#[allow(unused_imports)]
use Error as _ErrorAlias;
