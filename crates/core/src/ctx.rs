//! The application programming interface (the paper's §1 "API" discussion).
//!
//! A [`Ctx`] is handed to the application closure. It offers:
//!
//! * **standard MPI downcalls** — send/recv (blocking and non-blocking),
//!   probe, and the collectives — so unmodified MPI-style programs run
//!   unchanged;
//! * **Starfish extension downcalls** — [`Ctx::safepoint`] (service point +
//!   system-initiated checkpoint opportunity), [`Ctx::checkpoint`]
//!   (user-initiated checkpoint), [`Ctx::publish`] (result reporting),
//!   [`Ctx::advance`] (model application compute time);
//! * **Starfish upcalls** — [`Ctx::take_view`] (membership-change
//!   notifications for dynamically adaptable programs) and
//!   [`Ctx::take_coord`] (coordination messages). Programs that ignore the
//!   upcalls keep the conventional MPI model (paper §3.2.2: "applications
//!   that cannot utilize view changes simply do not register listeners").
//!
//! ## Programming-model contract
//!
//! * State that must survive a checkpoint is captured via the
//!   [`Checkpointable`] passed to [`Ctx::safepoint`]/[`Ctx::checkpoint`];
//!   on restart, [`Ctx::restored`] returns the recovered value.
//! * Iteration-structured programs should call `safepoint` once per
//!   iteration; checkpoints and reconfigurations take effect there.
//! * Every `Ctx` call can return [`Error::Interrupted`]; propagate it with
//!   `?`. The runtime catches it and re-enters `run` after the rollback.

use std::time::Duration;

use bytes::Bytes;

use starfish_checkpoint::CkptValue;
use starfish_daemon::{CkptProto, ProcUp, RelayKind};
use starfish_lwgroups::LwView;
use starfish_mpi::collectives as coll;
use starfish_mpi::wire::WORLD_CONTEXT;
use starfish_mpi::{Comm, RecvdMsg, ReduceOp, Request};
use starfish_util::{Error, Rank, Result, VirtualTime};

use crate::bus::{BusEvent, BusTopic};
use crate::runtime::{CrEngine, ProcessRuntime};
use crate::state::Checkpointable;

/// A membership-change notification delivered to the application.
#[derive(Debug, Clone)]
pub struct ViewNotice {
    /// The lightweight (node-level) view of this application's group.
    pub lw: LwView,
    /// Ranks that currently have a live process (derived from the placement
    /// directory).
    pub alive: Vec<Rank>,
    pub vt: VirtualTime,
}

/// The application's window onto the Starfish runtime.
pub struct Ctx<'a> {
    pub(crate) rt: &'a mut ProcessRuntime,
}

/// A sub-communicator created by [`Ctx::comm_split`] or [`Ctx::comm_dup`]
/// (MPI-2 communicator management). Owned by the application; pass it to
/// the `sub_*` collective operations.
#[derive(Debug, Clone)]
pub struct SubComm {
    comm: Comm,
}

impl SubComm {
    /// This process's rank within the sub-communicator.
    pub fn rank(&self) -> Rank {
        self.comm.rank()
    }

    /// Number of members.
    pub fn size(&self) -> u32 {
        self.comm.size()
    }

    /// Members as world ranks.
    pub fn members(&self) -> &[Rank] {
        self.comm.members()
    }
}

/// How long a send retries while the destination's port is not yet bound
/// (peer still spawning / restarting).
const SEND_GRACE: Duration = Duration::from_secs(20);

impl Ctx<'_> {
    // ---- identity & environment -------------------------------------------

    /// This process's world rank.
    pub fn rank(&self) -> Rank {
        self.rt.rank
    }

    /// Number of ranks in the application.
    pub fn size(&self) -> u32 {
        self.rt.size
    }

    pub fn app(&self) -> starfish_util::AppId {
        self.rt.app
    }

    /// The machine type this process runs on (Table 2).
    pub fn arch(&self) -> starfish_checkpoint::Arch {
        self.rt.arch
    }

    /// Current virtual time.
    pub fn time(&self) -> VirtualTime {
        self.rt.clock.now()
    }

    /// Model `cost` of application compute (advances virtual time only).
    pub fn advance(&mut self, cost: VirtualTime) {
        self.rt.clock.advance(cost);
    }

    /// The state recovered from the checkpoint this incarnation restarted
    /// from, if any. Returns the value once; later calls give `None`.
    pub fn restored(&mut self) -> Option<CkptValue> {
        self.rt.restored.take()
    }

    /// Publish a result visible to the cluster owner (tests/benches).
    pub fn publish(&mut self, v: CkptValue) {
        self.rt.outputs.publish(self.rt.app, self.rt.rank, v);
    }

    /// Ranks with a live process right now.
    pub fn alive_ranks(&self) -> Vec<Rank> {
        let dir = self.rt.mpi.directory();
        (0..self.rt.size)
            .map(Rank)
            .filter(|r| dir.node_of(*r).is_ok())
            .collect()
    }

    // ---- point-to-point ------------------------------------------------------

    /// Blocking eager send to a world rank. If a stop-and-sync round is in
    /// progress, the send is *held* until the round commits — the rule that
    /// makes checkpoints taken inside blocking calls consistent (see
    /// `ProcessRuntime::cached_state`).
    pub fn send(&mut self, dst: Rank, tag: u64, data: &[u8]) -> Result<()> {
        self.hold_while_stopped()?;
        self.rt.note_first_send();
        let deadline = std::time::Instant::now() + SEND_GRACE;
        loop {
            match self
                .rt
                .mpi
                .send_world(&mut self.rt.clock, dst, WORLD_CONTEXT, tag, data)
            {
                Ok(()) => return Ok(()),
                // Peer not bound yet (still spawning/restarting): retry.
                Err(Error::NotFound(_)) | Err(Error::Unreachable(_))
                    if std::time::Instant::now() < deadline =>
                {
                    self.rt.service(None)?;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocking receive with wildcards (`None` = any source / any tag).
    pub fn recv(&mut self, src: Option<Rank>, tag: Option<u64>) -> Result<RecvdMsg> {
        self.recv_on(WORLD_CONTEXT, src, tag)
    }

    pub(crate) fn recv_on(
        &mut self,
        context: u32,
        src: Option<Rank>,
        tag: Option<u64>,
    ) -> Result<RecvdMsg> {
        loop {
            match self.rt.mpi.recv_world_timeout(
                &mut self.rt.clock,
                context,
                src,
                tag,
                Duration::from_millis(100),
            ) {
                Ok(m) => {
                    self.note_receive(context, &m);
                    return Ok(m);
                }
                Err(Error::Timeout(_)) | Err(Error::Interrupted(_)) => {
                    // Service interrupts, then keep waiting (the runtime's
                    // service points inside blocking receives).
                    self.rt.service(None)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Blocking receive with an explicit real-time bound.
    pub fn recv_timeout(
        &mut self,
        src: Option<Rank>,
        tag: Option<u64>,
        timeout: Duration,
    ) -> Result<RecvdMsg> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remain = deadline
                .checked_duration_since(std::time::Instant::now())
                .ok_or_else(|| Error::timeout("ctx recv"))?;
            match self.rt.mpi.recv_world_timeout(
                &mut self.rt.clock,
                WORLD_CONTEXT,
                src,
                tag,
                remain.min(Duration::from_millis(100)),
            ) {
                Ok(m) => {
                    self.note_receive(WORLD_CONTEXT, &m);
                    return Ok(m);
                }
                Err(Error::Timeout(_)) | Err(Error::Interrupted(_)) => {
                    self.rt.service(None)?;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self, src: Option<Rank>, tag: Option<u64>) -> Result<Option<RecvdMsg>> {
        self.rt.service(None)?;
        let got = self
            .rt
            .mpi
            .try_recv_world(&mut self.rt.clock, WORLD_CONTEXT, src, tag)?;
        if let Some(m) = &got {
            self.note_receive(WORLD_CONTEXT, m);
        }
        Ok(got)
    }

    /// Non-blocking send (eager: completes immediately).
    pub fn isend(&mut self, dst: Rank, tag: u64, data: &[u8]) -> Result<Request> {
        self.send(dst, tag, data)?;
        Ok(Request::Send {
            vt: self.rt.clock.now(),
        })
    }

    /// Post a non-blocking receive; complete with [`Ctx::wait`].
    pub fn irecv(&mut self, src: Option<Rank>, tag: Option<u64>) -> Request {
        self.rt.mpi.irecv_world(WORLD_CONTEXT, src, tag)
    }

    /// Complete a request (receive requests block; rendezvous sends pump
    /// the endpoint until the payload is granted and pushed).
    pub fn wait(&mut self, req: Request) -> Result<Option<RecvdMsg>> {
        match req {
            Request::Send { .. } | Request::RndvSend { .. } => {
                self.rt.mpi.wait(&mut self.rt.clock, req)
            }
            Request::Recv { context, src, tag } => Ok(Some(self.recv_on(context, src, tag)?)),
        }
    }

    /// `MPI_Iprobe`.
    pub fn iprobe(&mut self, src: Option<Rank>, tag: Option<u64>) -> Result<bool> {
        self.rt.service(None)?;
        self.rt
            .mpi
            .iprobe(&mut self.rt.clock, WORLD_CONTEXT, src, tag)
    }

    /// Bookkeeping common to every consumed message: the consumption log
    /// backing cached-state checkpoints, the uncoordinated-C/R dependency
    /// log, and the fast-path-ablation bus charge.
    fn note_receive(&mut self, context: u32, m: &RecvdMsg) {
        self.rt.consumed_total += 1;
        self.rt.consumed_log.push((
            starfish_mpi::wire::MsgHeader {
                src: m.src,
                context,
                tag: m.tag,
                epoch: self.rt.mpi.epoch(),
                interval: m.interval,
                seq: 0,
                flags: 0,
            },
            m.data.clone(),
        ));
        if self.rt.bus_data_path {
            // Ablation: pretend data messages ride the object bus.
            self.rt.clock.advance(crate::bus::BUS_EVENT_COST);
        }
        if let CrEngine::Indep(e) = &mut self.rt.cr.engine {
            let dep = e.on_data_received(m.src, m.interval);
            self.rt.store.log_dep(self.rt.app, dep);
        }
    }

    // ---- collectives -----------------------------------------------------------
    //
    // Implemented over the serviceable ctx primitives (not the raw endpoint
    // collectives) so that a rank blocked inside a collective still
    // participates in checkpoint rounds, suspension and rollback. The
    // algorithms mirror `starfish_mpi::collectives` (binomial trees,
    // dissemination barrier); tags live in the same reserved space. Every
    // operation exists on the world communicator and on application-created
    // sub-communicators ([`SubComm`], from [`Ctx::comm_split`]/[`Ctx::comm_dup`]).

    /// Hold here while a stop-and-sync round has this process stopped.
    fn hold_while_stopped(&mut self) -> Result<()> {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while self.rt.cr.stopped {
            if std::time::Instant::now() > deadline {
                return Err(Error::timeout("quiesce never completed"));
            }
            self.rt.service(None)?;
            if self.rt.cr.stopped {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Ok(())
    }

    fn csend(&mut self, context: u32, dst_world: Rank, tag: u64, data: &[u8]) -> Result<()> {
        self.hold_while_stopped()?;
        let deadline = std::time::Instant::now() + SEND_GRACE;
        loop {
            match self
                .rt
                .mpi
                .send_world(&mut self.rt.clock, dst_world, context, tag, data)
            {
                Ok(()) => return Ok(()),
                Err(Error::NotFound(_)) | Err(Error::Unreachable(_))
                    if std::time::Instant::now() < deadline =>
                {
                    self.rt.service(None)?;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                        eprintln!(
                            "[rt {}.{}] csend FAILED dst={dst_world} tag={tag:#x} err={e:?}",
                            self.rt.app, self.rt.rank
                        );
                    }
                    return Err(e);
                }
            }
        }
    }

    fn crecv(&mut self, context: u32, src_world: Rank, tag: u64) -> Result<RecvdMsg> {
        self.recv_on(context, Some(src_world), Some(tag))
    }

    /// Run `f` with the world communicator checked out (only its collective
    /// sequence number mutates).
    fn with_world<R>(&mut self, f: impl FnOnce(&mut Self, &mut Comm) -> Result<R>) -> Result<R> {
        let mut comm = self.rt.comm.clone();
        let r = f(self, &mut comm);
        self.rt.comm.coll_seq = comm.coll_seq;
        r
    }

    fn next_coll_tag(comm: &mut Comm, op: u8) -> u64 {
        let seq = comm.coll_seq;
        comm.coll_seq += 1;
        (1u64 << 63) | ((op as u64) << 48) | (seq & 0xFFFF_FFFF_FFFF)
    }

    fn barrier_in(&mut self, comm: &mut Comm) -> Result<()> {
        let n = comm.size() as usize;
        let me = comm.rank().index();
        let context = comm.context();
        let tag_base = Self::next_coll_tag(comm, 1);
        let mut k = 1usize;
        let mut round = 0u64;
        while k < n {
            let to = comm.world_rank(Rank(((me + k) % n) as u32))?;
            let from = comm.world_rank(Rank(((me + n - k) % n) as u32))?;
            self.csend(context, to, tag_base + (round << 32), &[])?;
            self.crecv(context, from, tag_base + (round << 32))?;
            k <<= 1;
            round += 1;
        }
        Ok(())
    }

    fn bcast_in(&mut self, comm: &mut Comm, root: Rank, data: Vec<u8>) -> Result<Vec<u8>> {
        let n = comm.size() as usize;
        let me = comm.rank().index();
        let context = comm.context();
        let tag = Self::next_coll_tag(comm, 2);
        if n == 1 {
            return Ok(data);
        }
        let vr = (me + n - root.index()) % n;
        let mut buf = data;
        let mut mask = 1usize;
        while mask < n {
            if vr & mask != 0 {
                let src = comm.world_rank(Rank(((me + n - mask) % n) as u32))?;
                buf = self.crecv(context, src, tag)?.data.to_vec();
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr + mask < n {
                let dst = comm.world_rank(Rank(((me + mask) % n) as u32))?;
                self.csend(context, dst, tag, &buf)?;
            }
            mask >>= 1;
        }
        Ok(buf)
    }

    fn reduce_in<T: coll::PodNum>(
        &mut self,
        comm: &mut Comm,
        root: Rank,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Option<Vec<T>>> {
        let n = comm.size() as usize;
        let me = comm.rank().index();
        let context = comm.context();
        let tag = Self::next_coll_tag(comm, 3);
        let vr = (me + n - root.index()) % n;
        let mut acc: Vec<T> = data.to_vec();
        let mut mask = 1usize;
        while mask < n {
            if vr & mask == 0 {
                let peer_vr = vr | mask;
                if peer_vr < n {
                    let src = comm.world_rank(Rank(((peer_vr + root.index()) % n) as u32))?;
                    let m = self.crecv(context, src, tag)?;
                    let other: Vec<T> = coll::decode_slice(&m.data)?;
                    if other.len() != acc.len() {
                        return Err(Error::invalid_arg("reduce buffers differ in length"));
                    }
                    for (a, b) in acc.iter_mut().zip(other) {
                        *a = T::reduce(op, *a, b);
                    }
                }
            } else {
                let peer_vr = vr ^ mask;
                let dst = comm.world_rank(Rank(((peer_vr + root.index()) % n) as u32))?;
                self.csend(context, dst, tag, &coll::encode_slice(&acc))?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    fn allreduce_in<T: coll::PodNum>(
        &mut self,
        comm: &mut Comm,
        data: &[T],
        op: ReduceOp,
    ) -> Result<Vec<T>> {
        let reduced = self.reduce_in(comm, Rank(0), data, op)?;
        let bytes = self.bcast_in(
            comm,
            Rank(0),
            reduced.map(|v| coll::encode_slice(&v)).unwrap_or_default(),
        )?;
        coll::decode_slice(&bytes)
    }

    fn gather_in(
        &mut self,
        comm: &mut Comm,
        root: Rank,
        data: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>> {
        let n = comm.size() as usize;
        let me = comm.rank();
        let context = comm.context();
        let tag = Self::next_coll_tag(comm, 4);
        if me == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
            out[me.index()] = data.to_vec();
            for (i, slot) in out.iter_mut().enumerate() {
                if i == me.index() {
                    continue;
                }
                let src = comm.world_rank(Rank(i as u32))?;
                let m = self.crecv(context, src, tag)?;
                *slot = m.data.to_vec();
            }
            Ok(Some(out))
        } else {
            let dst = comm.world_rank(root)?;
            self.csend(context, dst, tag, data)?;
            Ok(None)
        }
    }

    fn scatter_in(
        &mut self,
        comm: &mut Comm,
        root: Rank,
        data: Option<Vec<Vec<u8>>>,
    ) -> Result<Vec<u8>> {
        let n = comm.size() as usize;
        let me = comm.rank();
        let context = comm.context();
        let tag = Self::next_coll_tag(comm, 5);
        if me == root {
            let blobs =
                data.ok_or_else(|| Error::invalid_arg("scatter root must supply the blobs"))?;
            if blobs.len() != n {
                return Err(Error::invalid_arg(format!(
                    "scatter needs {n} blobs, got {}",
                    blobs.len()
                )));
            }
            for (i, blob) in blobs.iter().enumerate() {
                if i != me.index() {
                    let dst = comm.world_rank(Rank(i as u32))?;
                    self.csend(context, dst, tag, blob)?;
                }
            }
            Ok(blobs[me.index()].clone())
        } else {
            let src = comm.world_rank(root)?;
            Ok(self.crecv(context, src, tag)?.data.to_vec())
        }
    }

    fn allgather_in(&mut self, comm: &mut Comm, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        let gathered = self.gather_in(comm, Rank(0), data)?;
        let framed = gathered.map(|blobs| {
            let mut out = Vec::new();
            out.extend_from_slice(&(blobs.len() as u32).to_be_bytes());
            for b in &blobs {
                out.extend_from_slice(&(b.len() as u32).to_be_bytes());
                out.extend_from_slice(b);
            }
            out
        });
        let bytes = self.bcast_in(comm, Rank(0), framed.unwrap_or_default())?;
        let mut out = Vec::new();
        if bytes.len() < 4 {
            return Err(Error::codec("allgather frame too short"));
        }
        let count = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let mut pos = 4usize;
        for _ in 0..count {
            if pos + 4 > bytes.len() {
                return Err(Error::codec("allgather frame truncated"));
            }
            let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + len > bytes.len() {
                return Err(Error::codec("allgather frame truncated"));
            }
            out.push(bytes[pos..pos + len].to_vec());
            pos += len;
        }
        Ok(out)
    }

    fn alltoall_in(&mut self, comm: &mut Comm, send: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let n = comm.size() as usize;
        let me = comm.rank().index();
        let context = comm.context();
        if send.len() != n {
            return Err(Error::invalid_arg(format!(
                "alltoall needs {n} blobs, got {}",
                send.len()
            )));
        }
        let tag = Self::next_coll_tag(comm, 7);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        out[me] = send[me].clone();
        for r in 1..n {
            let dst_i = (me + r) % n;
            let src_i = (me + n - r) % n;
            let dst = comm.world_rank(Rank(dst_i as u32))?;
            let src = comm.world_rank(Rank(src_i as u32))?;
            self.csend(context, dst, tag, &send[dst_i])?;
            let m = self.crecv(context, src, tag)?;
            out[src_i] = m.data.to_vec();
        }
        Ok(out)
    }

    fn scan_in(&mut self, comm: &mut Comm, data: &[i64], op: ReduceOp) -> Result<Vec<i64>> {
        let n = comm.size() as usize;
        let me = comm.rank().index();
        let context = comm.context();
        let tag = Self::next_coll_tag(comm, 8);
        let mut acc: Vec<i64> = data.to_vec();
        if me > 0 {
            let src = comm.world_rank(Rank((me - 1) as u32))?;
            let m = self.crecv(context, src, tag)?;
            let prev: Vec<i64> = coll::decode_slice(&m.data)?;
            for (a, p) in acc.iter_mut().zip(prev) {
                *a = <i64 as coll::PodNum>::reduce(op, p, *a);
            }
        }
        if me + 1 < n {
            let dst = comm.world_rank(Rank((me + 1) as u32))?;
            self.csend(context, dst, tag, &coll::encode_slice(&acc))?;
        }
        Ok(acc)
    }

    // -- world-communicator API --------------------------------------------------

    /// `MPI_Barrier` over the world communicator.
    pub fn barrier(&mut self) -> Result<()> {
        self.with_world(|c, comm| c.barrier_in(comm))
    }

    /// `MPI_Bcast` of raw bytes from `root`.
    pub fn bcast(&mut self, root: Rank, data: Vec<u8>) -> Result<Vec<u8>> {
        self.with_world(|c, comm| c.bcast_in(comm, root, data))
    }

    /// `MPI_Allreduce` over f64 element-wise.
    pub fn allreduce_f64(&mut self, data: &[f64], op: ReduceOp) -> Result<Vec<f64>> {
        self.with_world(|c, comm| c.allreduce_in(comm, data, op))
    }

    /// `MPI_Allreduce` over i64 element-wise.
    pub fn allreduce_i64(&mut self, data: &[i64], op: ReduceOp) -> Result<Vec<i64>> {
        self.with_world(|c, comm| c.allreduce_in(comm, data, op))
    }

    /// `MPI_Reduce` to `root` (Some at root, None elsewhere).
    pub fn reduce_f64(
        &mut self,
        root: Rank,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Option<Vec<f64>>> {
        self.with_world(|c, comm| c.reduce_in(comm, root, data, op))
    }

    /// `MPI_Gather` of byte blobs to `root`.
    pub fn gather(&mut self, root: Rank, data: &[u8]) -> Result<Option<Vec<Vec<u8>>>> {
        self.with_world(|c, comm| c.gather_in(comm, root, data))
    }

    /// `MPI_Scatter` from `root`.
    pub fn scatter(&mut self, root: Rank, data: Option<Vec<Vec<u8>>>) -> Result<Vec<u8>> {
        self.with_world(|c, comm| c.scatter_in(comm, root, data))
    }

    /// `MPI_Allgather` of byte blobs.
    pub fn allgather(&mut self, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        self.with_world(|c, comm| c.allgather_in(comm, data))
    }

    /// `MPI_Alltoall` of per-destination blobs.
    pub fn alltoall(&mut self, send: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        self.with_world(|c, comm| c.alltoall_in(comm, send))
    }

    /// `MPI_Scan` (inclusive prefix) over i64.
    pub fn scan_i64(&mut self, data: &[i64], op: ReduceOp) -> Result<Vec<i64>> {
        self.with_world(|c, comm| c.scan_in(comm, data, op))
    }

    // -- sub-communicators (MPI-2 comm management) --------------------------------

    /// `MPI_Comm_split`: ranks with the same `color` form a new
    /// communicator, ordered by `(key, world rank)`. Returns `None` for
    /// `color == None` (MPI_UNDEFINED). Collective over the world
    /// communicator.
    ///
    /// Sub-communicators are plain values owned by the application; if one
    /// must survive a checkpoint, recreate it after restore (the split is
    /// deterministic) — the world communicator's state is checkpointed
    /// automatically.
    pub fn comm_split(&mut self, color: Option<u32>, key: u32) -> Result<Option<SubComm>> {
        let mut mine = Vec::with_capacity(8);
        mine.extend_from_slice(&color.unwrap_or(u32::MAX).to_be_bytes());
        mine.extend_from_slice(&key.to_be_bytes());
        let all = self.allgather(&mine)?;
        let Some(my_color) = color else {
            return Ok(None);
        };
        let mut members: Vec<(u32, Rank)> = Vec::new();
        for (i, blob) in all.iter().enumerate() {
            if blob.len() != 8 {
                return Err(Error::codec("bad split blob"));
            }
            let c = u32::from_be_bytes(blob[0..4].try_into().unwrap());
            let k = u32::from_be_bytes(blob[4..8].try_into().unwrap());
            if c == my_color {
                members.push((k, Rank(i as u32)));
            }
        }
        members.sort();
        let world_members: Vec<Rank> = members.into_iter().map(|(_, r)| r).collect();
        let ctxid = starfish_mpi::comm::derive_context(
            self.rt.comm.context(),
            my_color.wrapping_mul(2654435761).wrapping_add(9),
        );
        Ok(Some(SubComm {
            comm: Comm::from_members(ctxid, world_members, self.rt.rank)?,
        }))
    }

    /// `MPI_Comm_dup` of the world communicator: same members, isolated
    /// traffic.
    pub fn comm_dup(&mut self) -> SubComm {
        SubComm {
            comm: self.rt.comm.dup(),
        }
    }

    /// Barrier over a sub-communicator.
    pub fn sub_barrier(&mut self, sub: &mut SubComm) -> Result<()> {
        self.barrier_in(&mut sub.comm)
    }

    /// Broadcast over a sub-communicator (`root` is a sub-communicator rank).
    pub fn sub_bcast(&mut self, sub: &mut SubComm, root: Rank, data: Vec<u8>) -> Result<Vec<u8>> {
        self.bcast_in(&mut sub.comm, root, data)
    }

    /// Allreduce over a sub-communicator.
    pub fn sub_allreduce_f64(
        &mut self,
        sub: &mut SubComm,
        data: &[f64],
        op: ReduceOp,
    ) -> Result<Vec<f64>> {
        self.allreduce_in(&mut sub.comm, data, op)
    }

    /// Allreduce over a sub-communicator (i64).
    pub fn sub_allreduce_i64(
        &mut self,
        sub: &mut SubComm,
        data: &[i64],
        op: ReduceOp,
    ) -> Result<Vec<i64>> {
        self.allreduce_in(&mut sub.comm, data, op)
    }

    /// Gather over a sub-communicator.
    pub fn sub_gather(
        &mut self,
        sub: &mut SubComm,
        root: Rank,
        data: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>> {
        self.gather_in(&mut sub.comm, root, data)
    }

    /// Allgather over a sub-communicator.
    pub fn sub_allgather(&mut self, sub: &mut SubComm, data: &[u8]) -> Result<Vec<Vec<u8>>> {
        self.allgather_in(&mut sub.comm, data)
    }

    // ---- Starfish extensions ------------------------------------------------------

    /// Service point: handle daemon messages, participate in checkpoint
    /// rounds, honor suspension. `state` is the application's registered
    /// checkpointable state. Call once per iteration.
    pub fn safepoint(&mut self, state: &dyn Checkpointable) -> Result<()> {
        self.rt.safepoint(state)
    }

    /// User-initiated checkpoint (a Starfish extension downcall): the round
    /// coordinator (rank 0 by convention) triggers a full distributed
    /// checkpoint and blocks until it commits, returning the round's virtual
    /// duration. Other ranks participate through their safepoints. On other
    /// ranks, this behaves like [`Ctx::safepoint`] and returns zero.
    pub fn checkpoint(&mut self, state: &dyn Checkpointable) -> Result<VirtualTime> {
        let start = self.rt.clock.now();
        let is_initiator = match &self.rt.cr.engine {
            CrEngine::Sync(e) => e.is_coordinator(),
            CrEngine::Cl(e) => e.is_initiator(),
            CrEngine::Indep(_) => true, // no coordination: everyone local
        };
        if !is_initiator {
            // Collective participation: stay at this service point until a
            // round has been completed locally (image written and, for
            // stop-and-sync, the resume received).
            self.rt.cached_state = Some((state.save(), self.rt.comm.coll_seq));
            let before = self.rt.cr.last_index;
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            // Exit as soon as this round's image landed; if the *next* round
            // has already stopped us, the following context call completes
            // it via `hold_while_stopped`.
            while self.rt.cr.last_index == before {
                if std::time::Instant::now() > deadline {
                    if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                        if let CrEngine::Sync(e) = &self.rt.cr.engine {
                            eprintln!(
                                "[rt {}.{}] member stuck (epoch {}): {:?}",
                                self.rt.app,
                                self.rt.rank,
                                self.rt.mpi.epoch(),
                                e
                            );
                        }
                    }
                    return Err(Error::timeout("checkpoint round never reached this rank"));
                }
                self.rt.service(Some(state))?;
                std::thread::sleep(Duration::from_millis(1));
            }
            return Ok(self.rt.clock.now() - start);
        }
        self.rt.cached_state = Some((state.save(), self.rt.comm.coll_seq));
        let next = self.rt.cr.last_index + 1;
        let committed_before = self.rt.cr.committed;
        let effects = match &mut self.rt.cr.engine {
            CrEngine::Sync(e) => e.start(next),
            CrEngine::Cl(e) => e.start(next),
            CrEngine::Indep(e) => e.take_checkpoint(),
        };
        {
            let mut s: Option<&dyn Checkpointable> = Some(state);
            self.rt.run_effects(effects, &mut s)?;
        }
        // Independent: no distributed phase; the local write is it.
        if matches!(self.rt.cr.engine, CrEngine::Indep(_)) {
            return Ok(self.rt.clock.now() - start);
        }
        // Wait until the round commits (the engine reports Committed).
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while self.rt.cr.committed == committed_before {
            if std::time::Instant::now() > deadline {
                if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                    if let CrEngine::Sync(e) = &self.rt.cr.engine {
                        eprintln!(
                            "[rt {}.{}] commit stuck (epoch {}): {:?}",
                            self.rt.app,
                            self.rt.rank,
                            self.rt.mpi.epoch(),
                            e
                        );
                    }
                }
                return Err(Error::timeout("checkpoint round never committed"));
            }
            self.rt.service(Some(state))?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(self.rt.clock.now() - start)
    }

    /// Number of committed checkpoint rounds this process coordinated.
    pub fn committed_rounds(&self) -> u64 {
        self.rt.cr.committed
    }

    /// Highest checkpoint index written locally.
    pub fn last_checkpoint_index(&self) -> u64 {
        self.rt.cr.last_index
    }

    /// Broadcast a coordination message to the application's other ranks
    /// (via the daemons, with Ensemble's delivery guarantees — paper §2.2).
    pub fn coord_cast(&mut self, body: Bytes) -> Result<()> {
        self.rt.send_up(ProcUp::Cast {
            kind: RelayKind::Coordination,
            body,
            vt: self.rt.clock.now(),
        });
        Ok(())
    }

    /// Take the next pending coordination message, if any.
    pub fn take_coord(&mut self) -> Result<Option<(Rank, Bytes)>> {
        self.rt.service(None)?;
        Ok(self.rt.bus.take(BusTopic::Coordination).map(|ev| match ev {
            BusEvent::Coord { from, body, .. } => (from, body),
            _ => unreachable!("coordination queue holds Coord events"),
        }))
    }

    /// Take the next membership-change notification, if any (the paper's
    /// view upcall; programs that never call this keep plain MPI
    /// semantics).
    pub fn take_view(&mut self) -> Result<Option<ViewNotice>> {
        self.rt.service(None)?;
        Ok(self.rt.bus.take(BusTopic::Membership).map(|ev| match ev {
            BusEvent::View { view, vt } => ViewNotice {
                lw: view,
                alive: (0..self.rt.size)
                    .map(Rank)
                    .filter(|r| self.rt.mpi.directory().node_of(*r).is_ok())
                    .collect(),
                vt,
            },
            _ => unreachable!("membership queue holds View events"),
        }))
    }

    /// The distributed C/R protocol this application runs.
    pub fn ckpt_proto(&self) -> CkptProto {
        self.rt.entry.spec.proto
    }
}
