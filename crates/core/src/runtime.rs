//! The application-process runtime (paper §2.2, figure 1).
//!
//! One [`ProcessRuntime`] hosts one MPI rank. Its five modules are:
//!
//! * the **application part** — the user closure, executed on this thread;
//! * the **MPI module** — [`starfish_mpi::MpiEndpoint`], reached through the
//!   *fast data path* (direct calls, no bus dispatch);
//! * the **VNI** — inside the MPI endpoint (port + polling thread);
//! * the **group handler** — the forwarder that turns daemon messages into
//!   object-bus events;
//! * the **C/R module** — `CrModule`, the protocol engines plus image
//!   capture/restore.
//!
//! The runtime's *scheduler* is cooperative: non-data events are processed
//! at **service points** — every blocking receive slice and every explicit
//! [`Ctx::safepoint`](crate::Ctx::safepoint). Checkpoints are taken only at
//! safepoints (with the registered state in hand), mirroring VM-safepoint
//! checkpointing; the runtime documentation of `Ctx` spells out the
//! programming-model contract (iteration-structured programs call
//! `safepoint` once per iteration).
//!
//! ## Restart semantics
//!
//! A rollback (local decision or daemon-ordered) makes every context call
//! return [`Error::Interrupted`]; the application propagates it out of its
//! `run` function, and the runtime re-enters `run` with
//! [`Ctx::restored`](crate::Ctx::restored) populated from the recovery-line
//! image (state + channel contents + collective sequence number). Stale
//! messages from the rolled-back execution are discarded by the epoch filter
//! in the MPI layer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use starfish_checkpoint::backend::{CkptBackend, StoreHub};
use starfish_checkpoint::image::{ChannelMsg, CkptImage, CkptLevel};
use starfish_checkpoint::proto::chandy_lamport::{ChandyLamport, ClPhase};
use starfish_checkpoint::proto::independent::Independent;
use starfish_checkpoint::proto::stop_and_sync::StopAndSync;
use starfish_checkpoint::proto::{CrEffect, CrMsg, SyncCostModel};
use starfish_checkpoint::{Arch, CkptValue, DiskModel};
use starfish_daemon::config::AppEntry;
use starfish_daemon::{CkptProto, LevelKind, ProcDown, ProcUp, RelayKind};
use starfish_mpi::wire::MsgHeader;
use starfish_mpi::{Comm, MpiEndpoint};
use starfish_telemetry::{metric, Registry};
use starfish_util::codec::{Decode, Encode};
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, Error, NodeId, Rank, Result, VClock, VirtualTime};

use crate::bus::{Bus, BusEvent, BUS_EVENT_COST};
use crate::state::Checkpointable;

/// Throughput of representation conversion on restore (byte-swapping /
/// word-resizing a heap image on the era's hardware).
pub const CONVERT_BW: f64 = 25.0e6;

type OutputMap = HashMap<(AppId, Rank), Vec<CkptValue>>;

/// Per-process published results, visible to the cluster owner (tests,
/// examples, benches read these).
#[derive(Clone, Default)]
pub struct Outputs {
    inner: Arc<Mutex<OutputMap>>,
}

impl Outputs {
    pub fn new() -> Self {
        Outputs::default()
    }

    pub fn publish(&self, app: AppId, rank: Rank, v: CkptValue) {
        self.inner.lock().entry((app, rank)).or_default().push(v);
    }

    pub fn get(&self, app: AppId, rank: Rank) -> Vec<CkptValue> {
        self.inner
            .lock()
            .get(&(app, rank))
            .cloned()
            .unwrap_or_default()
    }

    pub fn count(&self, app: AppId, rank: Rank) -> usize {
        self.inner
            .lock()
            .get(&(app, rank))
            .map(|v| v.len())
            .unwrap_or(0)
    }

    /// Wait (real time) until `rank` has published at least `n` values.
    pub fn wait_count(
        &self,
        app: AppId,
        rank: Rank,
        n: usize,
        timeout: Duration,
    ) -> Result<Vec<CkptValue>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let got = self.get(app, rank);
            if got.len() >= n {
                return Ok(got);
            }
            if std::time::Instant::now() >= deadline {
                return Err(Error::timeout(format!(
                    "outputs of {app}.{rank}: have {}, want {n}",
                    got.len()
                )));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// The checkpoint/restart module of one process.
pub(crate) struct CrModule {
    pub engine: CrEngine,
    /// Stop-and-sync: application held at its service point.
    pub stopped: bool,
    /// Chandy–Lamport: state snapshot waiting for the remaining markers.
    pub pending_cl: Option<PendingCl>,
    /// Highest checkpoint index written locally.
    pub last_index: u64,
    /// Rounds committed (coordinator only).
    pub committed: u64,
}

pub(crate) enum CrEngine {
    Sync(StopAndSync),
    Cl(ChandyLamport),
    Indep(Independent),
}

pub(crate) struct PendingCl {
    pub index: u64,
    pub state: CkptValue,
    pub taken_at: VirtualTime,
}

impl CrModule {
    fn new(proto: CkptProto, me: Rank, size: u32, start_index: u64) -> Self {
        let ranks: Vec<Rank> = (0..size).map(Rank).collect();
        let engine = match proto {
            CkptProto::StopAndSync => CrEngine::Sync(StopAndSync::new(me, ranks)),
            CkptProto::ChandyLamport => CrEngine::Cl(ChandyLamport::new(me, ranks)),
            CkptProto::Independent => {
                let mut e = Independent::new(me);
                e.rollback_to(start_index);
                CrEngine::Indep(e)
            }
        };
        CrModule {
            engine,
            stopped: false,
            pending_cl: None,
            last_index: start_index,
            committed: 0,
        }
    }
}

/// One application process (runs on its own OS thread).
pub struct ProcessRuntime {
    pub(crate) app: AppId,
    pub(crate) rank: Rank,
    pub(crate) size: u32,
    #[allow(dead_code)] // diagnostics / future placement-aware features
    pub(crate) node: NodeId,
    pub(crate) arch: Arch,
    pub(crate) entry: AppEntry,
    pub(crate) mpi: MpiEndpoint,
    pub(crate) comm: Comm,
    pub(crate) clock: VClock,
    pub(crate) down_rx: Receiver<ProcDown>,
    pub(crate) up_tx: Sender<(AppId, Rank, ProcUp)>,
    pub(crate) store: StoreHub,
    pub(crate) outputs: Outputs,
    #[allow(dead_code)] // carried for future process-level tracing
    pub(crate) trace: TraceSink,
    pub(crate) bus: Bus,
    pub(crate) cr: CrModule,
    pub(crate) disk: DiskModel,
    pub(crate) abort_flag: Arc<AtomicBool>,

    pub(crate) restored: Option<CkptValue>,
    pub(crate) restart_to: Option<u64>,
    /// Epoch ordered with a pending rollback (applied at load_checkpoint).
    pub(crate) pending_epoch: Option<starfish_util::Epoch>,
    pub(crate) suspended: bool,
    pub(crate) killed: bool,
    /// `(state, coll_seq)` cached at the last safepoint. When a checkpoint
    /// must be taken while the application is blocked in a communication
    /// call (no live state in hand), this pair is captured instead, together
    /// with the [`consumed_log`](Self::consumed_log): the restored process
    /// rewinds to the safepoint and replays exactly the messages the
    /// abandoned execution had consumed, so the cut stays consistent.
    pub(crate) cached_state: Option<(CkptValue, u64)>,
    /// Every data message consumed since the last safepoint (message log
    /// backing the cached-state capture; cleared at each safepoint).
    pub(crate) consumed_log: Vec<(MsgHeader, Bytes)>,

    /// Ablation: route data-message delivery through the object bus,
    /// charging [`BUS_EVENT_COST`] per message (what the fast path avoids).
    pub(crate) bus_data_path: bool,
    /// Independent checkpointing: auto-checkpoint every N safepoints.
    pub(crate) indep_every: Option<u64>,
    pub(crate) safepoint_count: u64,
    /// C/R data-path marks whose destination port was not bound yet (peer
    /// mid-restart); retried at every service point with their original
    /// virtual send time.
    pub(crate) pending_marks: Vec<(Rank, Bytes, VirtualTime)>,

    /// This process's telemetry registry (also installed in the MPI
    /// endpoint); snapshots flush to the daemon at round commits,
    /// restores, and completion.
    pub(crate) metrics: Registry,
    /// Virtual time this incarnation's current checkpoint round began
    /// (set at local capture, cleared at commit/resume).
    pub(crate) round_started: Option<VirtualTime>,
    /// Forensic baselines: `(vt, consumed-message count)` at each committed
    /// checkpoint index. A rollback to index `i` is measured against these
    /// — rollback depth in virtual time, and messages consumed past the
    /// line that the rollback discards.
    pub(crate) ckpt_marks: std::collections::BTreeMap<u64, (VirtualTime, u64)>,
    /// Monotone count of data messages consumed since the last restore.
    pub(crate) consumed_total: u64,
    /// Set when a restore completes; taken by the first outbound send (the
    /// respawn-to-first-send forensic phase).
    pub(crate) restored_at: Option<VirtualTime>,
}

/// How often blocking loops wake to service interrupts (real time).
const SERVICE_SLICE: Duration = Duration::from_millis(50);

impl ProcessRuntime {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        entry: AppEntry,
        rank: Rank,
        node: NodeId,
        arch: Arch,
        mpi: MpiEndpoint,
        down_rx: Receiver<ProcDown>,
        up_tx: Sender<(AppId, Rank, ProcUp)>,
        store: StoreHub,
        outputs: Outputs,
        trace: TraceSink,
        spawn_vt: VirtualTime,
        restore_from: u64,
        bus_data_path: bool,
        indep_every: Option<u64>,
        metrics: Registry,
    ) -> ProcessRuntime {
        let app = entry.id;
        let size = entry.spec.size;
        let disk = match entry.spec.level {
            LevelKind::Native => DiskModel::ide_1999(),
            LevelKind::Vm => DiskModel::vm_buffered(),
        };
        let abort_flag = Arc::new(AtomicBool::new(false));
        let mut mpi = mpi;
        mpi.set_abort_flag(abort_flag.clone());
        mpi.set_metrics(metrics.clone());
        let proto = entry.spec.proto;
        ProcessRuntime {
            app,
            rank,
            size,
            node,
            arch,
            entry,
            mpi,
            comm: Comm::world(size, rank),
            clock: VClock::starting_at(spawn_vt),
            down_rx,
            up_tx,
            store,
            outputs,
            trace,
            bus: Bus::new(),
            cr: CrModule::new(proto, rank, size, restore_from),
            disk,
            abort_flag,
            restored: None,
            pending_epoch: None,
            restart_to: if restore_from > 0 {
                Some(restore_from)
            } else {
                None
            },
            suspended: false,
            killed: false,
            cached_state: None,
            consumed_log: Vec::new(),
            bus_data_path,
            indep_every,
            safepoint_count: 0,
            pending_marks: Vec::new(),
            metrics,
            round_started: None,
            ckpt_marks: std::collections::BTreeMap::from([(0, (spawn_vt, 0))]),
            consumed_total: 0,
            restored_at: None,
        }
    }

    /// First outbound send after a restore closes the respawn-to-first-send
    /// forensic window (no-op on every later send).
    pub(crate) fn note_first_send(&mut self) {
        if let Some(t) = self.restored_at.take() {
            let now = self.clock.now();
            self.metrics
                .record_vt(metric::RECOVERY_RESPAWN_SEND_NS, now - t);
            self.metrics
                .span_record("recovery.respawn_send", "", t, now);
        }
    }

    /// Close out the current checkpoint round, if one is open. Called from
    /// both `Resume` and `Committed` (with `take()`) because their order
    /// differs between coordinator and members — whichever fires first ends
    /// the member's view of the round.
    fn note_round_done(&mut self) {
        if let Some(started) = self.round_started.take() {
            let now = self.clock.now();
            self.metrics.record_vt(metric::CKPT_ROUND_NS, now - started);
            let index = self.cr.last_index;
            self.metrics
                .span_record("ckpt.round", &format!("index {index}"), started, now);
            self.mpi.recorder().phase_end(now, "ckpt.round");
        }
    }

    /// Ship the cumulative registry snapshot up to the daemon, which casts
    /// it cluster-wide (scope `"app<A>.r<R>"`).
    pub(crate) fn flush_stats(&self) {
        self.send_up(ProcUp::Stats {
            snap: self.metrics.snapshot(),
            vt: self.clock.now(),
        });
    }

    pub(crate) fn send_up(&self, msg: ProcUp) {
        let _ = self.up_tx.send((self.app, self.rank, msg));
    }

    // ---- service points --------------------------------------------------------

    /// Drain daemon messages and C/R marks, run protocol engines, execute
    /// effects. `state` enables live checkpoint capture (safepoints);
    /// without it the cached safepoint state is captured instead.
    pub(crate) fn service(&mut self, mut state: Option<&dyn Checkpointable>) -> Result<()> {
        // Retry any C/R marks whose destination was not yet reachable,
        // preserving their original virtual send times.
        if !self.pending_marks.is_empty() {
            let pending = std::mem::take(&mut self.pending_marks);
            for (to, body, at) in pending {
                if let Err(e) = self.mpi.resend_ctrl_mark_at(at, to, &body) {
                    if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                        eprintln!(
                            "[rt {}.{}] mark retry -> {to} failed: {e:?}",
                            self.app, self.rank
                        );
                    }
                    self.pending_marks.push((to, body, at));
                }
            }
        }
        // Data-path marks first: they belong to an *earlier* protocol stage
        // than anything the daemons relay (e.g. a peer's Saved can arrive in
        // real time before the flush mark that gates our own capture, and
        // merging its later timestamp first would artificially serialize the
        // round in virtual time).
        self.pump_marks(&mut state)?;
        loop {
            match self.down_rx.try_recv() {
                Ok(msg) => self.handle_down(msg, &mut state)?,
                Err(channel::TryRecvError::Empty) => break,
                Err(channel::TryRecvError::Disconnected) => {
                    // Daemon gone: our node crashed or the app was torn down.
                    self.killed = true;
                    return Err(Error::interrupted("daemon connection lost"));
                }
            }
        }
        self.pump_marks(&mut state)?;
        if self.suspended {
            self.park()?;
        }
        Ok(())
    }

    fn handle_down(
        &mut self,
        msg: ProcDown,
        state: &mut Option<&dyn Checkpointable>,
    ) -> Result<()> {
        match msg {
            ProcDown::LwView { view, vt } => {
                self.clock.merge(vt);
                self.clock.advance(BUS_EVENT_COST);
                self.bus.post(BusEvent::View {
                    view,
                    vt: self.clock.now(),
                });
            }
            ProcDown::Relay {
                kind: RelayKind::Coordination,
                from,
                body,
                vt,
            } => {
                self.clock.merge(vt);
                self.clock.advance(BUS_EVENT_COST);
                self.bus.post(BusEvent::Coord {
                    from,
                    body,
                    vt: self.clock.now(),
                });
            }
            ProcDown::Relay {
                kind: RelayKind::CheckpointRestart,
                from,
                body,
                vt,
            } => {
                self.clock.merge(vt);
                self.clock.advance(BUS_EVENT_COST);
                if let Ok(m) = CrMsg::decode_from_bytes(&body) {
                    let effects = match &mut self.cr.engine {
                        CrEngine::Sync(e) => e.on_msg(from, &m),
                        CrEngine::Cl(e) => e.on_msg(from, &m),
                        CrEngine::Indep(_) => Vec::new(),
                    };
                    self.run_effects(effects, state)?;
                }
            }
            ProcDown::StartCheckpoint { vt } => {
                self.clock.merge(vt);
                let next = self.cr.last_index + 1;
                let effects = match &mut self.cr.engine {
                    CrEngine::Sync(e)
                        if e.is_coordinator()
                            && e.phase()
                                == starfish_checkpoint::proto::stop_and_sync::Phase::Running =>
                    {
                        e.start(next)
                    }
                    CrEngine::Cl(e) if e.is_initiator() && e.phase() == ClPhase::Idle => {
                        e.start(next)
                    }
                    CrEngine::Indep(e) => e.take_checkpoint(),
                    _ => Vec::new(),
                };
                self.run_effects(effects, state)?;
            }
            ProcDown::Suspend { vt } => {
                self.clock.merge(vt);
                self.suspended = true;
            }
            ProcDown::Resume { vt } => {
                self.clock.merge(vt);
                self.suspended = false;
            }
            ProcDown::Rollback { index, epoch, vt } => {
                self.clock.merge(vt);
                // Rollback depth: virtual time and consumed messages past
                // the recovery line that this rollback discards.
                let now = self.clock.now();
                let (line_vt, line_consumed) = self
                    .ckpt_marks
                    .get(&index)
                    .copied()
                    .unwrap_or((VirtualTime::ZERO, 0));
                self.metrics
                    .record_vt(metric::RECOVERY_ROLLBACK_VT_NS, now - line_vt);
                self.metrics.record(
                    metric::RECOVERY_LOST_MSGS,
                    self.consumed_total.saturating_sub(line_consumed),
                );
                self.pending_epoch = Some(epoch);
                self.restart_to = Some(index);
                self.bus.clear();
                return Err(Error::interrupted("rollback ordered by daemon"));
            }
            ProcDown::Kill { vt } => {
                self.clock.merge(vt);
                self.killed = true;
                return Err(Error::interrupted("killed by daemon"));
            }
        }
        Ok(())
    }

    /// Pump C/R data-path marks (flush marks / markers) into the engines.
    fn pump_marks(&mut self, state: &mut Option<&dyn Checkpointable>) -> Result<()> {
        let marks = self.mpi.pump_ctrl(&mut self.clock);
        for (from, body, vt) in marks {
            self.clock.merge(vt);
            let Ok(m) = CrMsg::decode_from_bytes(&body) else {
                continue;
            };
            if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                eprintln!("[rt {}.{}] mark <- {from}: {m:?}", self.app, self.rank);
            }
            let effects = match (&mut self.cr.engine, &m) {
                (CrEngine::Sync(e), CrMsg::FlushMark { index }) => e.on_flush_mark(from, *index),
                (CrEngine::Cl(e), CrMsg::Marker { index }) => e.on_marker(from, *index),
                _ => Vec::new(),
            };
            self.run_effects(effects, state)?;
        }
        Ok(())
    }

    pub(crate) fn run_effects(
        &mut self,
        effects: Vec<CrEffect>,
        state: &mut Option<&dyn Checkpointable>,
    ) -> Result<()> {
        for eff in effects {
            match eff {
                CrEffect::Send { to, msg } => {
                    self.send_up(ProcUp::SendTo {
                        kind: RelayKind::CheckpointRestart,
                        to,
                        body: msg.encode_to_bytes(),
                        vt: self.clock.now(),
                    });
                }
                CrEffect::Broadcast { msg } => {
                    self.send_up(ProcUp::Cast {
                        kind: RelayKind::CheckpointRestart,
                        body: msg.encode_to_bytes(),
                        vt: self.clock.now(),
                    });
                }
                CrEffect::DataMark { to, msg } => {
                    // Channel capture assumes everything in flight precedes
                    // the marks on the wire: push any rendezvous payloads
                    // still parked awaiting CTS *before* the mark, so the
                    // per-link FIFO delivers them ahead of it (receivers
                    // merge unsolicited DATA like a granted push).
                    self.mpi.push_pending_rendezvous(&mut self.clock);
                    if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                        eprintln!(
                            "[rt {}.{}] DataMark -> {to}: {msg:?} (epoch {})",
                            self.app,
                            self.rank,
                            self.mpi.epoch()
                        );
                    }
                    let body = msg.encode_to_bytes();
                    self.mpi
                        .recorder()
                        .mark(self.clock.now(), "cr.mark", &msg.trace_label());
                    if let Err(e) = self.mpi.send_ctrl_mark(&mut self.clock, to, &body) {
                        if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                            eprintln!(
                                "[rt {}.{}] DataMark -> {to} FAILED: {e:?}",
                                self.app, self.rank
                            );
                        }
                        let _ = &e;
                        // Peer mid-restart (port not bound yet) or crashed:
                        // keep retrying at service points. Genuinely dead
                        // peers are resolved by the membership layer (the
                        // round is rebuilt after the restart decision).
                        self.pending_marks.push((to, body, self.clock.now()));
                    }
                }
                CrEffect::BeginQuiesce { .. } => {
                    self.cr.stopped = true;
                }
                CrEffect::TakeCheckpoint { index } => {
                    if self.round_started.is_none() {
                        self.round_started = Some(self.clock.now());
                        self.mpi
                            .recorder()
                            .phase_begin(self.clock.now(), "ckpt.round");
                    }
                    match state {
                        Some(s) => {
                            // Live capture at a safepoint: nothing consumed since.
                            let v = s.save();
                            let seq = self.comm.coll_seq;
                            self.cached_state = Some((v.clone(), seq));
                            self.consumed_log.clear();
                            self.take_checkpoint_value(index, v, seq, Vec::new())?;
                        }
                        None => {
                            // Blocked in a communication call: rewind to the
                            // cached safepoint and log the consumed messages so
                            // the restored incarnation can replay them.
                            let (v, seq) =
                                self.cached_state.clone().unwrap_or((CkptValue::Unit, 0));
                            let replay = self.consumed_log.clone();
                            self.take_checkpoint_value(index, v, seq, replay)?;
                        }
                    }
                }
                CrEffect::RecordChannel { from } => self.mpi.start_recording(from),
                CrEffect::StopRecord { from } => self.mpi.stop_recording(from),
                CrEffect::Resume { .. } => {
                    self.cr.stopped = false;
                    // Member's view of the round ends here; make its layer
                    // histograms and checkpoint costs visible cluster-wide.
                    self.note_round_done();
                    self.flush_stats();
                }
                CrEffect::Committed { index } => {
                    // The coordinator charges the fitted daemon-coordination
                    // overhead for the distributed phase (EXPERIMENTS.md).
                    let nodes = self.participating_nodes();
                    let sync_cost = match self.entry.spec.level {
                        LevelKind::Native => SyncCostModel::native_sync(nodes),
                        LevelKind::Vm => SyncCostModel::vm_sync(nodes),
                    };
                    self.clock.advance(sync_cost);
                    self.cr.committed += 1;
                    self.metrics.inc(metric::CKPT_ROUNDS);
                    self.note_round_done();
                    self.mpi.recorder().mark(
                        self.clock.now(),
                        "ckpt.committed",
                        &format!("index {index}"),
                    );
                    self.ckpt_marks
                        .insert(index, (self.clock.now(), self.consumed_total));
                    self.send_up(ProcUp::CkptCommitted {
                        index,
                        vt: self.clock.now(),
                    });
                    self.flush_stats();
                }
            }
        }
        // Chandy–Lamport: finalize the image once all markers are in (the
        // engine already emitted its Saved message; here we persist the
        // state snapshot plus the recorded channel contents).
        let cl_complete = matches!(
            &self.cr.engine,
            CrEngine::Cl(e) if e.phase() == ClPhase::Complete || e.phase() == ClPhase::Idle
        );
        if cl_complete {
            if let Some(p) = self.cr.pending_cl.take() {
                let channel = self.take_recorded_channel();
                self.write_image(p.index, p.state, channel, p.taken_at)?;
            }
        }
        Ok(())
    }

    fn participating_nodes(&self) -> usize {
        let mut nodes = self.entry.placement.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    fn take_recorded_channel(&mut self) -> Vec<ChannelMsg> {
        self.mpi
            .take_recorded()
            .into_iter()
            .map(|(h, b)| ChannelMsg {
                src: h.src,
                dst: self.rank,
                context: h.context,
                tag: h.tag,
                payload: b.to_vec(),
            })
            .collect()
    }

    /// Capture a local checkpoint at `index` with the given state value,
    /// the collective sequence number matching that state, and any consumed
    /// messages the restored incarnation must replay.
    fn take_checkpoint_value(
        &mut self,
        index: u64,
        user_state: CkptValue,
        coll_seq: u64,
        replay: Vec<(MsgHeader, Bytes)>,
    ) -> Result<()> {
        let wrapped = CkptValue::Record(vec![
            ("__coll_seq".to_string(), CkptValue::Int(coll_seq as i64)),
            ("__user".to_string(), user_state),
        ]);
        match &mut self.cr.engine {
            CrEngine::Cl(_) => {
                // State snapshots now; channel recording completes later.
                self.cr.pending_cl = Some(PendingCl {
                    index,
                    state: wrapped,
                    taken_at: self.clock.now(),
                });
                // Serialization cost is charged at finalization (write).
                Ok(())
            }
            _ => {
                // Stop-and-sync / independent: the channel is the replay log
                // (messages consumed past the capture point) plus whatever
                // is unconsumed right now (stop-and-sync guarantees the
                // latter is all remaining in-flight traffic).
                let channel: Vec<ChannelMsg> = replay
                    .into_iter()
                    .chain(self.mpi.snapshot_channel(&mut self.clock))
                    .map(|(h, b)| ChannelMsg {
                        src: h.src,
                        dst: self.rank,
                        context: h.context,
                        tag: h.tag,
                        payload: b.to_vec(),
                    })
                    .collect();
                let taken_at = self.clock.now();
                self.write_image(index, wrapped, channel, taken_at)?;
                let effects = match &mut self.cr.engine {
                    CrEngine::Sync(e) => e.on_saved(index),
                    CrEngine::Indep(e) => {
                        self.mpi.piggyback_interval = e.current_interval();
                        Vec::new()
                    }
                    CrEngine::Cl(_) => unreachable!(),
                };
                let mut no_state: Option<&dyn Checkpointable> = None;
                self.run_effects(effects, &mut no_state)
            }
        }
    }

    fn write_image(
        &mut self,
        index: u64,
        state: CkptValue,
        channel: Vec<ChannelMsg>,
        taken_at: VirtualTime,
    ) -> Result<()> {
        let level = match self.entry.spec.level {
            LevelKind::Native => CkptLevel::Native { arch: self.arch },
            LevelKind::Vm => CkptLevel::Vm { arch: self.arch },
        };
        let img = CkptImage::capture(
            self.app,
            self.rank,
            self.entry.epoch,
            index,
            level,
            &state,
            channel,
            taken_at,
        )?;
        if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
            eprintln!(
                "[rt {}.{}] write_image idx={index} start_vt={} bytes={}",
                self.app,
                self.rank,
                self.clock.now(),
                img.total_bytes()
            );
        }
        let bytes = img.total_bytes();
        // Disk-backed apps pay the (modeled) stable-storage write; replica
        // apps instead push fragments to peer memory over the fabric and pay
        // the serialized NIC cost reported by the replica store.
        let write_cost = match self.store.put_timed(img) {
            Some(receipt) => {
                self.metrics
                    .add(metric::CKPT_FRAGMENTS_STORED, u64::from(receipt.fragments));
                self.metrics
                    .record(metric::CKPT_REPLICATION_BYTES, receipt.replicated_bytes);
                receipt.cost
            }
            None => self.disk.write_time(bytes),
        };
        self.clock.advance(write_cost);
        self.metrics.record(metric::CKPT_IMAGE_BYTES, bytes);
        self.metrics.record_vt(metric::CKPT_WRITE_NS, write_cost);
        self.metrics.span_record(
            "ckpt.write",
            &format!("index {index}, {bytes} B"),
            taken_at,
            self.clock.now(),
        );
        self.cr.last_index = index;
        // For the CL path, emitting Saved is the engine's business; for
        // stop-and-sync, on_saved is invoked by the caller.
        Ok(())
    }

    /// Hold here while the application is administratively suspended.
    fn park(&mut self) -> Result<()> {
        while self.suspended {
            match self.down_rx.recv_timeout(SERVICE_SLICE) {
                Ok(msg) => {
                    let mut no_state: Option<&dyn Checkpointable> = None;
                    self.handle_down(msg, &mut no_state)?;
                }
                Err(channel::RecvTimeoutError::Timeout) => {}
                Err(channel::RecvTimeoutError::Disconnected) => {
                    self.killed = true;
                    return Err(Error::interrupted("daemon connection lost"));
                }
            }
        }
        Ok(())
    }

    /// Full safepoint: service everything; if a stop-and-sync round is in
    /// progress, hold here (quiesce) until it commits.
    pub(crate) fn safepoint(&mut self, state: &dyn Checkpointable) -> Result<()> {
        self.safepoint_count += 1;
        self.cached_state = Some((state.save(), self.comm.coll_seq));
        self.consumed_log.clear();
        self.service(Some(state))?;
        // Independent auto-checkpointing.
        if let (Some(every), CrEngine::Indep(_)) = (self.indep_every, &self.cr.engine) {
            if every > 0 && self.safepoint_count.is_multiple_of(every) {
                let effects = match &mut self.cr.engine {
                    CrEngine::Indep(e) => e.take_checkpoint(),
                    _ => unreachable!(),
                };
                let mut s = Some(state);
                self.run_effects(effects, &mut s)?;
            }
        }
        // Stop-and-sync quiesce: the application stays here until Resume.
        let hold_deadline = std::time::Instant::now() + Duration::from_secs(60);
        while self.cr.stopped {
            if std::time::Instant::now() > hold_deadline {
                if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                    if let CrEngine::Sync(e) = &self.cr.engine {
                        eprintln!(
                            "[rt {}.{}] quiesce stuck (epoch {}): {:?}",
                            self.app,
                            self.rank,
                            self.mpi.epoch(),
                            e
                        );
                    }
                }
                return Err(Error::timeout("quiesce never completed"));
            }
            self.service(Some(state))?;
            if self.cr.stopped {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        Ok(())
    }

    // ---- restart ---------------------------------------------------------------

    /// Load (or reset to) checkpoint `index` before (re-)entering the
    /// application code.
    pub(crate) fn load_checkpoint(&mut self, index: u64) {
        self.abort_flag.store(false, Ordering::Relaxed);
        self.bus.clear();
        self.suspended = false;
        self.cached_state = None;
        self.consumed_log.clear();
        self.pending_marks.clear();
        // Drop forensic marks past the restored line and rewind the
        // consumed counter to the line's value.
        self.ckpt_marks.split_off(&(index + 1));
        self.consumed_total = self.ckpt_marks.get(&index).map(|m| m.1).unwrap_or(0);
        if let Some(e) = self.pending_epoch.take() {
            self.mpi.set_epoch(e);
        }
        self.comm = Comm::world(self.size, self.rank);
        self.cr = CrModule::new(self.entry.spec.proto, self.rank, self.size, index);
        self.mpi.piggyback_interval = index;
        if index == 0 {
            self.restored = None;
            self.mpi.restore_channel(Vec::new(), self.clock.now());
            return;
        }
        // Replica-backed apps reassemble the image from surviving peers at
        // fabric speed (parallel per-source fetch, parity rebuild if a
        // fragment was fully lost); disk apps read it back from stable
        // storage at the modeled disk rate.
        let replica = matches!(self.store.backend_of(self.app), CkptBackend::Replica { .. });
        let (img, fetch_cost) = if replica {
            match self
                .store
                .fetch_timed(self.app, self.rank, index, self.node)
            {
                Some(f) => {
                    self.metrics.add(
                        metric::CKPT_FRAGMENTS_FETCHED,
                        u64::from(f.fragments_fetched),
                    );
                    self.metrics
                        .add(metric::CKPT_PARITY_REBUILDS, u64::from(f.parity_rebuilds));
                    (Some(f.img), Some(f.cost))
                }
                None => (None, None),
            }
        } else {
            (self.store.get(self.app, self.rank, index), None)
        };
        let Some(img) = img else {
            // No such image (e.g. recovery line at 0 for this rank): fresh.
            self.restored = None;
            self.mpi.restore_channel(Vec::new(), self.clock.now());
            self.cr = CrModule::new(self.entry.spec.proto, self.rank, self.size, 0);
            self.mpi.piggyback_interval = 0;
            return;
        };
        match img.restore_state(self.arch) {
            Ok((value, report)) => {
                // Restore costs: read the image back (peer fetch or disk),
                // plus representation conversion when the saving machine
                // differed.
                match fetch_cost {
                    Some(c) => {
                        self.clock.advance(c);
                        self.metrics.record_vt(metric::RECOVERY_FETCH_NS, c);
                    }
                    None => {
                        self.clock.advance(self.disk.read_time(img.total_bytes()));
                    }
                }
                if !report.identical() {
                    self.clock
                        .advance(VirtualTime::transfer(report.body_bytes, CONVERT_BW));
                }
                if let Some(CkptValue::Int(seq)) = value.field("__coll_seq") {
                    // (restored through the wrapper written by take_checkpoint)
                    self.comm.coll_seq = *seq as u64;
                }
                self.restored = value.field("__user").cloned();
                let msgs: Vec<(MsgHeader, Bytes)> = img
                    .channel
                    .iter()
                    .map(|m| {
                        (
                            MsgHeader {
                                src: m.src,
                                context: m.context,
                                tag: m.tag,
                                epoch: self.mpi.epoch(),
                                interval: 0,
                                seq: 0,
                                flags: 0,
                            },
                            Bytes::from(m.payload.clone()),
                        )
                    })
                    .collect();
                self.mpi.restore_channel(msgs, self.clock.now());
            }
            Err(_) => {
                // Unrestorable here (native image on a different machine):
                // start fresh — the paper's native-level restriction.
                self.restored = None;
                self.mpi.restore_channel(Vec::new(), self.clock.now());
                self.cr = CrModule::new(self.entry.spec.proto, self.rank, self.size, 0);
                self.mpi.piggyback_interval = 0;
            }
        }
    }
}

/// The process main loop: run the user code, re-entering after rollbacks.
pub(crate) fn process_main(mut rt: ProcessRuntime, run: Arc<crate::host::AppFn>) {
    // Spawn a forwarder that mirrors Rollback/Kill into the abort flag so
    // blocking MPI waits preempt promptly.
    let (fwd_tx, fwd_rx) = channel::unbounded();
    let outer_rx = std::mem::replace(&mut rt.down_rx, fwd_rx);
    let flag = rt.abort_flag.clone();
    std::thread::Builder::new()
        .name(format!("gh-{}-{}", rt.app, rt.rank))
        .spawn(move || {
            for msg in outer_rx.iter() {
                if matches!(msg, ProcDown::Rollback { .. } | ProcDown::Kill { .. }) {
                    flag.store(true, Ordering::Relaxed);
                }
                if fwd_tx.send(msg).is_err() {
                    return;
                }
            }
        })
        .expect("spawn group-handler forwarder");

    let dbg = std::env::var_os("STARFISH_RT_DEBUG").is_some();
    loop {
        if let Some(idx) = rt.restart_to.take() {
            if dbg {
                eprintln!("[rt {}.{}] load_checkpoint({idx})", rt.app, rt.rank);
            }
            let started = rt.clock.now();
            rt.mpi.recorder().phase_begin(started, "recovery.restore");
            rt.load_checkpoint(idx);
            let now = rt.clock.now();
            rt.metrics.inc(metric::RECOVERY_RESTARTS);
            rt.metrics
                .record_vt(metric::RECOVERY_RESTORE_NS, now - started);
            rt.metrics
                .span_record("recovery.restore", &format!("to index {idx}"), started, now);
            rt.mpi.recorder().phase_end(now, "recovery.restore");
            rt.restored_at = Some(now);
            rt.flush_stats();
        }
        if dbg {
            eprintln!(
                "[rt {}.{}] entering run (restored={})",
                rt.app,
                rt.rank,
                rt.restored.is_some()
            );
        }
        let result = {
            let mut ctx = crate::ctx::Ctx { rt: &mut rt };
            run(&mut ctx)
        };
        if dbg {
            eprintln!(
                "[rt {}.{}] run -> {:?} killed={} restart_to={:?}",
                rt.app,
                rt.rank,
                result.as_ref().err(),
                rt.killed,
                rt.restart_to
            );
        }
        match result {
            Ok(()) => {
                rt.flush_stats();
                rt.send_up(ProcUp::Done { vt: rt.clock.now() });
                return;
            }
            Err(Error::Interrupted(_)) => {
                if rt.killed {
                    return;
                }
                if rt.restart_to.is_none() {
                    // Interrupted without a pending rollback: poll for one
                    // briefly (the Rollback may be right behind the abort).
                    let deadline = std::time::Instant::now() + Duration::from_secs(10);
                    while rt.restart_to.is_none() && !rt.killed {
                        if std::time::Instant::now() > deadline {
                            return;
                        }
                        let _ = rt.service(None);
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    if rt.killed {
                        return;
                    }
                }
                continue;
            }
            Err(_other) => {
                // Node crash mid-run or a fatal application error: exit.
                // (A crashed node's daemon is gone too, so nobody is left to
                // notify; the membership layer reports the loss.)
                return;
            }
        }
    }
}
