//! # starfish — a fault-tolerant, dynamic MPI runtime for clusters of
//! workstations
//!
//! A production-quality Rust reproduction of *"Starfish: Fault-Tolerant
//! Dynamic MPI Programs on Clusters of Workstations"* (Agbaria & Friedman,
//! HPDC 1999). See the repository's `DESIGN.md` for the complete system
//! inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ## Quick start
//!
//! ```
//! use starfish::{Cluster, CkptValue, SubmitOpts};
//!
//! // A 2-node cluster on the simulated BIP/Myrinet interconnect.
//! let cluster = Cluster::builder().nodes(2).network_bip().build().unwrap();
//!
//! // Register an MPI program: rank 0 pings, rank 1 pongs.
//! cluster.register_app("ping", |ctx| {
//!     if ctx.rank().0 == 0 {
//!         ctx.send(starfish::Rank(1), 7, b"ping")?;
//!         let m = ctx.recv(Some(starfish::Rank(1)), Some(8))?;
//!         ctx.publish(CkptValue::Str(
//!             String::from_utf8_lossy(&m.data).into_owned(),
//!         ));
//!     } else {
//!         let m = ctx.recv(Some(starfish::Rank(0)), Some(7))?;
//!         assert_eq!(&m.data[..], b"ping");
//!         ctx.send(starfish::Rank(0), 8, b"pong")?;
//!     }
//!     Ok(())
//! });
//!
//! let app = cluster.submit("ping", 2, SubmitOpts::default()).unwrap();
//! cluster.wait_app_done(app, std::time::Duration::from_secs(30)).unwrap();
//! let out = cluster.outputs(app, starfish::Rank(0));
//! assert_eq!(out[0], CkptValue::Str("pong".into()));
//! ```
//!
//! ## Architecture (paper figure 1)
//!
//! * Each node of the simulated cluster runs a **Starfish daemon**
//!   ([`starfish_daemon`]); all daemons form a process group under our
//!   Ensemble-style group-communication system ([`starfish_ensemble`]).
//! * Each application process runs the five-module runtime of the paper:
//!   group handler, application part (your closure), checkpoint/restart
//!   module, MPI module and the virtual network interface, connected by an
//!   object bus ([`bus`]) — with a separate **fast data path** between the
//!   application and MPI for data messages.
//! * Fault tolerance: coordinated (stop-and-sync, Chandy–Lamport) and
//!   uncoordinated checkpointing with automatic restart from the recovery
//!   line, or view-change notifications for trivially parallel programs
//!   ([`SubmitOpts`]).
//! * Heterogeneity: per-node machine types (Table 2) with VM-level
//!   checkpoint conversion on restore.

pub mod bus;
pub mod cluster;
pub mod ctx;
pub mod host;
pub mod runtime;
pub mod state;

pub use bus::{Bus, BusTopic};
pub use cluster::{AutoCheckpoint, Cluster, ClusterBuilder, SubmitOpts};
pub use ctx::{Ctx, SubComm, ViewNotice};
pub use host::RuntimeKnobs;
pub use state::Checkpointable;

// Re-exports for downstream convenience.
pub use starfish_checkpoint::{Arch, CkptValue, DiskModel, Endianness, MACHINES};
pub use starfish_daemon::{AppStatus, CkptProto, FtPolicy, LevelKind, MgmtSession};
pub use starfish_mpi::{RecvMode, ReduceOp};
pub use starfish_util::{AppId, Epoch, Error, NodeId, Rank, Result, VirtualTime};
pub use starfish_vni::{BipMyrinet, Ideal, NetworkModel, ServerNetVia, TcpEthernet};

#[cfg(test)]
mod tests;
