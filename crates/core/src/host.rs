//! The runtime node host: bridges the daemon's placement decisions to real
//! application-process threads.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_checkpoint::backend::StoreHub;
use starfish_checkpoint::Arch;
use starfish_daemon::config::AppEntry;
use starfish_daemon::{NodeHost, ProcSpec};
use starfish_mpi::{MpiEndpoint, RankDirectory, RecvMode};
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, NodeId, Rank, Result};
use starfish_vni::Fabric;

use crate::ctx::Ctx;
use crate::runtime::{process_main, Outputs, ProcessRuntime};

/// The registered application programs, shared cluster-wide (stands in for
/// the executables an admin would install on every node).
#[derive(Clone, Default)]
pub struct AppRegistry {
    inner: Arc<Mutex<HashMap<String, Arc<AppFn>>>>,
}

pub type AppFn = dyn Fn(&mut Ctx<'_>) -> Result<()> + Send + Sync;

impl AppRegistry {
    pub fn new() -> Self {
        AppRegistry::default()
    }

    pub fn register(
        &self,
        name: &str,
        f: impl Fn(&mut Ctx<'_>) -> Result<()> + Send + Sync + 'static,
    ) {
        self.inner.lock().insert(name.to_string(), Arc::new(f));
    }

    pub fn get(&self, name: &str) -> Option<Arc<AppFn>> {
        self.inner.lock().get(name).cloned()
    }
}

/// Cluster-wide registry of per-application placement directories.
#[derive(Clone, Default)]
pub struct DirRegistry {
    inner: Arc<Mutex<HashMap<AppId, RankDirectory>>>,
}

impl DirRegistry {
    pub fn get_or_create(&self, app: AppId, size: usize) -> RankDirectory {
        self.inner
            .lock()
            .entry(app)
            .or_insert_with(|| RankDirectory::new(size))
            .clone()
    }

    pub fn get(&self, app: AppId) -> Option<RankDirectory> {
        self.inner.lock().get(&app).cloned()
    }
}

/// Knobs that apply to every process spawned on the cluster (ablations and
/// policy defaults).
#[derive(Clone, Copy, Debug)]
pub struct RuntimeKnobs {
    /// Use the polling thread (paper design) or direct port reads
    /// (ablation).
    pub recv_mode: RecvMode,
    /// Route data messages through the object bus (ablation; default off =
    /// fast path).
    pub bus_data_path: bool,
    /// Independent protocol: auto-checkpoint every N safepoints (None =
    /// only explicit checkpoints).
    pub indep_every: Option<u64>,
}

impl Default for RuntimeKnobs {
    fn default() -> Self {
        RuntimeKnobs {
            recv_mode: RecvMode::Polled,
            bus_data_path: false,
            indep_every: None,
        }
    }
}

/// One node's host: implements the daemon's spawn interface with real
/// process threads.
pub struct RuntimeHost {
    pub node: NodeId,
    pub arch: Arch,
    pub fabric: Fabric,
    pub registry: AppRegistry,
    pub dirs: DirRegistry,
    pub store: StoreHub,
    pub outputs: Outputs,
    pub trace: TraceSink,
    pub knobs: RuntimeKnobs,
    /// Cluster-wide flight-recorder registry; every spawned rank registers
    /// its ring here under `"app<A>.r<R>"`.
    pub trace_hub: starfish_trace::TraceHub,
    /// Ring capacity for per-rank flight recorders (0 = recording off).
    pub trace_cap: usize,
}

impl NodeHost for RuntimeHost {
    fn placement_update(&self, entry: &AppEntry) {
        let dir = self.dirs.get_or_create(entry.id, entry.spec.size as usize);
        for (r, n) in entry.placement.iter().enumerate() {
            dir.place(Rank(r as u32), *n);
        }
        dir.set_epoch(entry.epoch);
    }

    fn spawn(&self, spec: ProcSpec) {
        let Some(run) = self.registry.get(&spec.entry.spec.name) else {
            // Unknown program: nothing to start (the submission stays
            // "running" but empty; a real system would reject at submit).
            return;
        };
        let dir = self
            .dirs
            .get_or_create(spec.app, spec.entry.spec.size as usize);
        let mut mpi = match MpiEndpoint::new(
            &self.fabric,
            spec.app,
            spec.rank,
            dir,
            self.knobs.recv_mode,
            self.trace.clone(),
        ) {
            Ok(ep) => ep,
            Err(_) => return, // node going down while spawning
        };
        if self.trace_cap > 0 {
            // A restarted incarnation re-registers under the same scope,
            // replacing the dead ring; the epoch salts the span namespace
            // so stale receives held by survivors never match its spans.
            let rec = starfish_trace::FlightRecorder::with_incarnation(
                &format!("{}.{}", spec.app, spec.rank),
                self.trace_cap,
                u64::from(spec.entry.epoch.0),
            );
            self.trace_hub.register(rec.clone());
            mpi.set_recorder(rec);
        }
        let rt = ProcessRuntime::new(
            spec.entry,
            spec.rank,
            spec.node,
            self.arch,
            mpi,
            spec.down_rx,
            spec.up_tx,
            self.store.clone(),
            self.outputs.clone(),
            self.trace.clone(),
            spec.spawn_vt,
            spec.restore_from,
            self.knobs.bus_data_path,
            self.knobs.indep_every,
            starfish_telemetry::Registry::new(),
        );
        std::thread::Builder::new()
            .name(format!("app-{}-{}", spec.app, spec.rank))
            .spawn(move || process_main(rt, run))
            .expect("spawn application process");
    }

    fn rank_lost(&self, app: AppId, rank: Rank) {
        if let Some(dir) = self.dirs.get(app) {
            dir.unplace(rank);
        }
    }
}
