//! End-to-end scenario tests of the full Starfish stack (cluster boot →
//! daemons → application processes → C/R → recovery).

use std::time::Duration;

use starfish_checkpoint::CkptValue;
use starfish_daemon::{CkptProto, FtPolicy, LevelKind};
use starfish_mpi::ReduceOp;
use starfish_util::{AppId, Rank, VirtualTime};

use crate::cluster::{Cluster, SubmitOpts};
use crate::state::CkptValueExt;

const T: Duration = Duration::from_secs(60);

#[test]
fn ring_pass_completes() {
    let cluster = Cluster::builder().nodes(3).network_bip().build().unwrap();
    cluster.register_app("ring", |ctx| {
        let n = ctx.size();
        let me = ctx.rank().0;
        // Pass a counter around the ring twice.
        if me == 0 {
            ctx.send(Rank(1 % n), 1, &[1])?;
            let m = ctx.recv(Some(Rank(n - 1)), Some(1))?;
            ctx.publish(CkptValue::Int(m.data[0] as i64));
        } else {
            let m = ctx.recv(Some(Rank(me - 1)), Some(1))?;
            ctx.send(Rank((me + 1) % n), 1, &[m.data[0] + 1])?;
        }
        Ok(())
    });
    let app = cluster
        .submit("ring", 3, SubmitOpts::default().policy(FtPolicy::Kill))
        .unwrap();
    cluster.wait_app_done(app, T).unwrap();
    assert_eq!(cluster.outputs(app, Rank(0)), vec![CkptValue::Int(3)]);
}

#[test]
fn collectives_work_through_ctx() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("coll", |ctx| {
        let r = ctx.rank().0 as f64;
        ctx.barrier()?;
        let sum = ctx.allreduce_f64(&[r + 1.0], ReduceOp::Sum)?;
        let all = ctx.allgather(&[ctx.rank().0 as u8])?;
        ctx.publish(CkptValue::Float(sum[0]));
        ctx.publish(CkptValue::Int(all.len() as i64));
        Ok(())
    });
    let app = cluster
        .submit("coll", 4, SubmitOpts::default().policy(FtPolicy::Kill))
        .unwrap();
    cluster.wait_app_done(app, T).unwrap();
    for r in 0..4 {
        let out = cluster.outputs(app, Rank(r));
        assert_eq!(out[0], CkptValue::Float(1.0 + 2.0 + 3.0 + 4.0));
        assert_eq!(out[1], CkptValue::Int(4));
    }
}

#[test]
fn user_initiated_checkpoint_round_commits() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("ckpt", |ctx| {
        let state = CkptValue::record(vec![("iter", CkptValue::Int(1))]);
        let dt = ctx.checkpoint(&state)?;
        if ctx.rank().0 == 0 {
            ctx.publish(CkptValue::Float(dt.as_secs_f64()));
        }
        ctx.barrier()?;
        Ok(())
    });
    let app = cluster.submit("ckpt", 2, SubmitOpts::default()).unwrap();
    cluster.wait_app_done(app, T).unwrap();
    // Both ranks stored checkpoint index 1.
    assert_eq!(cluster.store().latest_index(app, Rank(0)), 1);
    assert_eq!(cluster.store().latest_index(app, Rank(1)), 1);
    // Rank 0 measured a positive round time that includes at least the
    // VM-level image write (~7.7ms single node; here 2 nodes + sync).
    let out = cluster.outputs(app, Rank(0));
    let secs = out[0].as_float().unwrap();
    assert!(secs > 0.005, "round time {secs}s too small");
}

/// The headline fault-tolerance scenario: crash a node mid-run, watch the
/// system restart from the last coordinated checkpoint, and check the final
/// answer matches a failure-free execution.
#[test]
fn crash_restart_from_checkpoint_preserves_result() {
    let cluster = Cluster::builder().nodes(3).build().unwrap();
    cluster.register_app("survivor", |ctx| {
        let me = ctx.rank();
        let mut iter;
        let mut acc;
        match ctx.restored() {
            Some(v) => {
                iter = v.req_int("iter")?;
                acc = v.req_int("acc")?;
                ctx.publish(CkptValue::Str(format!("restored@{iter}")));
            }
            None => {
                iter = 0;
                acc = 0;
            }
        }
        while iter < 6 {
            let state = CkptValue::record(vec![
                ("iter", CkptValue::Int(iter)),
                ("acc", CkptValue::Int(acc)),
            ]);
            if iter == 3 && me.0 == 0 {
                // Coordinated checkpoint mid-run.
                ctx.checkpoint(&state)?;
            } else {
                ctx.safepoint(&state)?;
            }
            // One "compute + exchange" step: global sum of ranks. The real
            // sleep keeps the run alive long enough for the injected crash.
            std::thread::sleep(Duration::from_millis(25));
            let sums = ctx.allreduce_i64(&[me.0 as i64 + 1], ReduceOp::Sum)?;
            acc += sums[0];
            iter += 1;
        }
        ctx.publish(CkptValue::Int(acc));
        Ok(())
    });
    let app = cluster
        .submit("survivor", 3, SubmitOpts::default())
        .unwrap();

    // Let it checkpoint (all ranks at index 1), then kill a node.
    let deadline = std::time::Instant::now() + T;
    while cluster
        .store()
        .latest_common_index(app, &[Rank(0), Rank(1), Rank(2)])
        < 1
    {
        assert!(
            std::time::Instant::now() < deadline,
            "checkpoint never landed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let victim = cluster.config().apps[&app].placement[1];
    cluster.crash_node(victim);

    cluster.wait_app_done(app, T).unwrap();
    // Expected: 6 iterations × (1+2+3) = 36, identical to failure-free.
    for r in 0..3 {
        let out = cluster.outputs(app, Rank(r));
        assert!(
            out.contains(&CkptValue::Int(36)),
            "rank {r} outputs {out:?}"
        );
    }
    // The restart actually happened from the checkpoint (not from scratch):
    // some rank published a restore marker.
    let restored_seen = (0..3).any(|r| {
        cluster
            .outputs(app, Rank(r))
            .iter()
            .any(|v| matches!(v, CkptValue::Str(s) if s.starts_with("restored@")))
    });
    assert!(
        restored_seen,
        "no rank reported restoring from a checkpoint"
    );
    // And the epoch was bumped exactly once.
    assert_eq!(cluster.config().apps[&app].epoch.0, 1);
}

#[test]
fn kill_policy_takes_app_down_on_crash() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("fragile", |ctx| {
        let state = CkptValue::Unit;
        loop {
            ctx.safepoint(&state)?;
            ctx.advance(VirtualTime::from_millis(1));
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let app = cluster
        .submit("fragile", 2, SubmitOpts::default().policy(FtPolicy::Kill))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let victim = cluster.config().apps[&app].placement[1];
    cluster.crash_node(victim);
    cluster
        .wait_app(app, T, |a| a.status == starfish_daemon::AppStatus::Killed)
        .unwrap();
}

/// Dynamicity (paper §3.2.1): a trivially parallel app under the NotifyView
/// policy repartitions over the survivors after a crash.
#[test]
fn notify_view_policy_repartitions() {
    let cluster = Cluster::builder().nodes(3).build().unwrap();
    cluster.register_app("adaptive", |ctx| {
        let state = CkptValue::Unit;
        // Work is 12 items; each alive rank owns a slice.
        let me = ctx.rank();
        let mut covered: Vec<i64> = Vec::new();
        for round in 0..40 {
            ctx.safepoint(&state)?;
            let alive = ctx.alive_ranks();
            if !alive.contains(&me) {
                break;
            }
            let k = alive.iter().position(|r| *r == me).unwrap();
            let share = 12 / alive.len();
            for item in (k * share)..((k + 1) * share) {
                if !covered.contains(&(item as i64)) {
                    covered.push(item as i64);
                }
            }
            // Round 20 publishes a progress marker so the test can inject
            // the failure in the middle.
            if round == 20 && me.0 == 0 {
                ctx.publish(CkptValue::Str("mid".into()));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        covered.sort_unstable();
        ctx.publish(CkptValue::IntArray(covered));
        Ok(())
    });
    let app = cluster
        .submit(
            "adaptive",
            3,
            SubmitOpts::default().policy(FtPolicy::NotifyView),
        )
        .unwrap();
    cluster.wait_outputs(app, Rank(0), 1, T).unwrap();
    let victim = cluster.config().apps[&app].placement[2];
    cluster.crash_node(victim);
    // Ranks 0 and 1 finish and together cover a larger share after the
    // crash (6 items each instead of 4).
    let out0 = cluster.wait_outputs(app, Rank(0), 2, T).unwrap();
    let out1 = cluster.wait_outputs(app, Rank(1), 1, T).unwrap();
    let cov0 = match &out0[1] {
        CkptValue::IntArray(v) => v.clone(),
        other => panic!("unexpected {other:?}"),
    };
    let cov1 = match &out1[0] {
        CkptValue::IntArray(v) => v.clone(),
        other => panic!("unexpected {other:?}"),
    };
    let mut union: Vec<i64> = cov0.iter().chain(cov1.iter()).copied().collect();
    union.sort_unstable();
    union.dedup();
    assert_eq!(
        union,
        (0..12).collect::<Vec<i64>>(),
        "full coverage after repartition"
    );
    assert!(
        cov0.len() >= 6,
        "rank 0 took over part of the lost share: {cov0:?}"
    );
}

#[test]
fn suspend_resume_via_cluster_api() {
    let cluster = Cluster::builder().nodes(1).build().unwrap();
    cluster.register_app("pausable", |ctx| {
        let state = CkptValue::Unit;
        for i in 0..30 {
            ctx.safepoint(&state)?;
            if i == 5 {
                ctx.publish(CkptValue::Int(5));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        ctx.publish(CkptValue::Str("done".into()));
        Ok(())
    });
    let app = cluster
        .submit("pausable", 1, SubmitOpts::default())
        .unwrap();
    cluster.wait_outputs(app, Rank(0), 1, T).unwrap();
    cluster.suspend(app).unwrap();
    cluster
        .wait_app(app, T, |a| {
            a.status == starfish_daemon::AppStatus::Suspended
        })
        .unwrap();
    // While suspended it must not finish.
    std::thread::sleep(Duration::from_millis(150));
    assert_ne!(
        cluster.app_status(app),
        Some(starfish_daemon::AppStatus::Done)
    );
    cluster.resume(app).unwrap();
    cluster.wait_app_done(app, T).unwrap();
}

#[test]
fn independent_checkpoints_have_no_coordination() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("indep", |ctx| {
        let me = ctx.rank().0 as i64;
        let state = CkptValue::record(vec![("me", CkptValue::Int(me))]);
        // Each rank checkpoints independently: no Stop/Resume round.
        let dt = ctx.checkpoint(&state)?;
        ctx.publish(CkptValue::Float(dt.as_secs_f64()));
        Ok(())
    });
    let app = cluster
        .submit(
            "indep",
            2,
            SubmitOpts::default().proto(CkptProto::Independent),
        )
        .unwrap();
    cluster.wait_app_done(app, T).unwrap();
    assert_eq!(cluster.store().latest_index(app, Rank(0)), 1);
    assert_eq!(cluster.store().latest_index(app, Rank(1)), 1);
    // Local-only cost: well under the coordinated round times.
    let dt0 = cluster.outputs(app, Rank(0))[0].as_float().unwrap();
    assert!(dt0 > 0.0 && dt0 < 0.05, "independent ckpt took {dt0}s");
}

#[test]
fn chandy_lamport_round_commits_without_stopping() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("cl", |ctx| {
        let state = CkptValue::record(vec![("x", CkptValue::Int(9))]);
        let me = ctx.rank().0;
        // Keep traffic flowing while the snapshot happens.
        for i in 0..10u64 {
            if me == 0 && i == 3 {
                ctx.checkpoint(&state)?;
            } else {
                ctx.safepoint(&state)?;
            }
            let peer = Rank(1 - me);
            ctx.send(peer, 40 + i, &[i as u8])?;
            let m = ctx.recv(Some(peer), Some(40 + i))?;
            assert_eq!(m.data[0], i as u8);
        }
        Ok(())
    });
    let app = cluster
        .submit(
            "cl",
            2,
            SubmitOpts::default().proto(CkptProto::ChandyLamport),
        )
        .unwrap();
    cluster.wait_app_done(app, T).unwrap();
    assert_eq!(cluster.store().latest_index(app, Rank(0)), 1);
    assert_eq!(cluster.store().latest_index(app, Rank(1)), 1);
}

#[test]
fn native_level_checkpoint_images_are_bigger() {
    let cluster = Cluster::builder().nodes(1).build().unwrap();
    cluster.register_app("nat", |ctx| {
        let state = CkptValue::Unit;
        ctx.checkpoint(&state)?;
        Ok(())
    });
    let app_vm = cluster
        .submit("nat", 1, SubmitOpts::default().level(LevelKind::Vm))
        .unwrap();
    cluster.wait_app_done(app_vm, T).unwrap();
    let app_nat = cluster
        .submit("nat", 1, SubmitOpts::default().level(LevelKind::Native))
        .unwrap();
    cluster.wait_app_done(app_nat, T).unwrap();
    let vm = cluster.store().latest(app_vm, Rank(0)).unwrap();
    let nat = cluster.store().latest(app_nat, Rank(0)).unwrap();
    // Paper §5: 260 KB vs 632 KB for the empty program.
    assert!(vm.total_bytes() >= 260 * 1024 && vm.total_bytes() < 261 * 1024);
    assert!(nat.total_bytes() >= 632 * 1024 && nat.total_bytes() < 633 * 1024);
}

#[test]
fn dynamic_node_addition_expands_cluster() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    let new = cluster.add_node(1).unwrap(); // a SunOS big-endian box
    let cfg = cluster.config();
    assert!(cfg.nodes.contains_key(&new));
    assert_eq!(cfg.up_nodes().len(), 3);
    // New submissions can land on it.
    cluster.register_app("hello", |ctx| {
        ctx.publish(CkptValue::Int(ctx.rank().0 as i64));
        Ok(())
    });
    let app = cluster.submit("hello", 3, SubmitOpts::default()).unwrap();
    cluster.wait_app_done(app, T).unwrap();
    assert!(cluster.config().apps[&app].placement.contains(&new));
}

#[test]
fn mgmt_session_drives_whole_lifecycle() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("job", |ctx| {
        let state = CkptValue::Unit;
        for _ in 0..5 {
            ctx.safepoint(&state)?;
        }
        Ok(())
    });
    let mut s = cluster.session();
    assert!(s.handle_line("LOGIN USER carol").starts_with("OK"));
    let resp = s.handle_line("SUBMIT job 2 POLICY kill");
    assert!(resp.starts_with("OK submitted"), "{resp}");
    let status = s.handle_line("STATUS");
    assert!(status.contains("job"), "{status}");
}

/// Robustness: crash the same workload at several different points in its
/// execution (before, during and after checkpoints); the answer must always
/// match the failure-free run.
#[test]
fn crash_at_various_times_always_recovers() {
    for delay_ms in [20u64, 80, 160, 240] {
        let cluster = Cluster::builder().nodes(3).build().unwrap();
        cluster.register_app("robust", |ctx| {
            let me = ctx.rank();
            let (mut iter, mut acc) = match ctx.restored() {
                Some(v) => (
                    v.req_int("iter").unwrap_or(0),
                    v.req_int("acc").unwrap_or(0),
                ),
                None => (0, 0),
            };
            while iter < 10 {
                let state = CkptValue::record(vec![
                    ("iter", CkptValue::Int(iter)),
                    ("acc", CkptValue::Int(acc)),
                ]);
                if iter % 3 == 0 && iter > 0 {
                    ctx.checkpoint(&state)?;
                } else {
                    ctx.safepoint(&state)?;
                }
                std::thread::sleep(Duration::from_millis(10));
                let s = ctx.allreduce_i64(&[me.0 as i64 + 1], ReduceOp::Sum)?;
                acc += s[0];
                iter += 1;
            }
            ctx.publish(CkptValue::Int(acc));
            Ok(())
        });
        let app = cluster.submit("robust", 3, SubmitOpts::default()).unwrap();
        std::thread::sleep(Duration::from_millis(delay_ms));
        // Crash whichever node currently hosts rank 1.
        let victim = cluster.config().apps[&app].placement[1];
        cluster.crash_node(victim);
        cluster
            .wait_app_done(app, Duration::from_secs(120))
            .unwrap();
        for r in 0..3 {
            let out = cluster.outputs(app, Rank(r));
            assert!(
                out.contains(&CkptValue::Int(60)), // 10 × (1+2+3)
                "delay {delay_ms}ms, rank {r}: {out:?}"
            );
        }
    }
}

/// Stop-and-sync checkpoint with a *rendezvous* transfer in flight: rank 0
/// isends a payload over the rendezvous threshold (RTS out, payload parked
/// awaiting CTS — rank 1 has not posted the receive yet) and then starts a
/// coordinated round. The flush protocol must push the parked payload ahead
/// of its marks so channel capture sees it, and the payload must arrive
/// intact exactly once after the round.
#[test]
fn checkpoint_with_rendezvous_in_flight_loses_nothing() {
    const LEN: usize = 192 * 1024; // over DEFAULT_RNDV_THRESHOLD (64 KiB)
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("bigsend", |ctx| {
        let me = ctx.rank().0;
        let state = CkptValue::Unit;
        if me == 0 {
            let payload: Vec<u8> = (0..LEN).map(|i| (i % 251) as u8).collect();
            // RTS leaves, payload parks: no receive is posted on rank 1.
            let req = ctx.isend(Rank(1), 7, &payload)?;
            ctx.checkpoint(&state)?;
            ctx.wait(req)?;
            ctx.barrier()?;
        } else {
            // Let rank 0 park the transfer and start the round first.
            std::thread::sleep(Duration::from_millis(50));
            let m = ctx.recv(Some(Rank(0)), Some(7))?;
            let intact = m.data.len() == LEN
                && m.data
                    .iter()
                    .enumerate()
                    .all(|(i, b)| *b == (i % 251) as u8);
            ctx.publish(CkptValue::Int(intact as i64));
            ctx.barrier()?;
        }
        Ok(())
    });
    let app = cluster.submit("bigsend", 2, SubmitOpts::default()).unwrap();
    cluster.wait_app_done(app, T).unwrap();
    assert_eq!(cluster.outputs(app, Rank(1)), vec![CkptValue::Int(1)]);
    assert_eq!(cluster.store().latest_index(app, Rank(0)), 1);
    assert_eq!(cluster.store().latest_index(app, Rank(1)), 1);
}

/// Diskless checkpointing end to end: a replica-backed app checkpoints into
/// peer memory (nothing touches the stable store), a node dies, and the
/// recovery line is reassembled entirely from surviving peers.
#[test]
fn replica_backend_recovers_from_peer_memory_after_crash() {
    let cluster = Cluster::builder().nodes(4).build().unwrap();
    cluster.register_app("diskless", |ctx| {
        let me = ctx.rank();
        let (mut iter, mut acc) = match ctx.restored() {
            Some(v) => {
                ctx.publish(CkptValue::Str(format!("restored@{}", v.req_int("iter")?)));
                (v.req_int("iter")?, v.req_int("acc")?)
            }
            None => (0, 0),
        };
        while iter < 6 {
            let state = CkptValue::record(vec![
                ("iter", CkptValue::Int(iter)),
                ("acc", CkptValue::Int(acc)),
            ]);
            if iter == 3 && me.0 == 0 {
                ctx.checkpoint(&state)?;
            } else {
                ctx.safepoint(&state)?;
            }
            std::thread::sleep(Duration::from_millis(25));
            let sums = ctx.allreduce_i64(&[me.0 as i64 + 1], ReduceOp::Sum)?;
            acc += sums[0];
            iter += 1;
        }
        ctx.publish(CkptValue::Int(acc));
        Ok(())
    });
    let app = cluster
        .submit("diskless", 3, SubmitOpts::default().replica(2))
        .unwrap();
    let ranks = [Rank(0), Rank(1), Rank(2)];

    // Wait for the coordinated round to land in peer memory.
    let deadline = std::time::Instant::now() + T;
    while cluster.ckpt_hub().latest_common_index(app, &ranks) < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "replica checkpoint never landed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // The stable store saw none of it, and every rank is replicated.
    for r in ranks {
        assert_eq!(cluster.store().latest_index(app, r), 0, "disk used for {r}");
    }
    let health = cluster.ckpt_hub().replica().health(app);
    assert_eq!(health.len(), 3);
    assert!(health.iter().all(|h| h.recoverable && !h.under_replicated));

    let victim = cluster.config().apps[&app].placement[1];
    cluster.crash_node(victim);

    cluster.wait_app_done(app, T).unwrap();
    // Same answer as failure-free: 6 iterations × (1+2+3) = 36.
    for r in ranks {
        let out = cluster.outputs(app, r);
        assert!(
            out.contains(&CkptValue::Int(36)),
            "rank {r} outputs {out:?}"
        );
    }
    // The restart really came out of peer memory, not from scratch.
    let restored_seen = ranks.iter().any(|r| {
        cluster
            .outputs(app, *r)
            .iter()
            .any(|v| matches!(v, CkptValue::Str(s) if s.starts_with("restored@")))
    });
    assert!(restored_seen, "no rank restored from the replica store");
    assert_eq!(cluster.config().apps[&app].epoch.0, 1);
}

/// The management-protocol spelling of the same policy: `SUBMIT … STORE
/// replica:2` must route the round into peer memory and `CKPT STATUS`
/// must show the fragments — the path the paper's GUI drives.
#[test]
fn mgmt_submitted_replica_app_lands_fragments_in_peer_memory() {
    let cluster = Cluster::builder().nodes(3).build().unwrap();
    cluster.register_app("soak", |ctx| {
        let state = CkptValue::Unit;
        for _ in 0..400 {
            ctx.safepoint(&state)?;
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    });
    let mut s = cluster.session();
    assert!(s.handle_line("LOGIN USER alice").starts_with("OK"));
    let resp = s.handle_line("SUBMIT soak 2 POLICY restart LEVEL vm PROTO sync STORE replica:2");
    assert!(resp.starts_with("OK submitted"), "{resp}");
    let id = resp.split_whitespace().nth(2).unwrap().to_string();
    let app = AppId(id.trim_start_matches("app").parse().unwrap());
    assert!(s.handle_line(&format!("CHECKPOINT {id}")).starts_with("OK"));

    let ranks = [Rank(0), Rank(1)];
    let deadline = std::time::Instant::now() + T;
    while cluster.ckpt_hub().latest_common_index(app, &ranks) < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "mgmt-submitted replica checkpoint never landed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for r in ranks {
        assert_eq!(cluster.store().latest_index(app, r), 0, "disk used for {r}");
    }
    let status = s.handle_line(&format!("CKPT STATUS {id}"));
    assert!(status.contains("backend=replica:2"), "{status}");
    assert!(!status.contains("no fragments"), "{status}");
    assert!(s.handle_line(&format!("DELETE {id}")).starts_with("OK"));
}

/// Checkpoint while heavy point-to-point traffic is in flight: nothing is
/// lost or duplicated across the round.
#[test]
fn checkpoint_under_heavy_traffic_loses_nothing() {
    let cluster = Cluster::builder().nodes(2).build().unwrap();
    cluster.register_app("firehose", |ctx| {
        let me = ctx.rank().0;
        let state = CkptValue::Unit;
        const N: u64 = 200;
        if me == 0 {
            // Blast messages, checkpoint mid-stream, keep blasting.
            for i in 0..N / 2 {
                ctx.send(Rank(1), i, &i.to_be_bytes())?;
            }
            ctx.checkpoint(&state)?;
            for i in N / 2..N {
                ctx.send(Rank(1), i, &i.to_be_bytes())?;
            }
            ctx.barrier()?;
        } else {
            // Consume everything, participating in the round when it comes.
            let mut sum = 0u64;
            for i in 0..N {
                let m = ctx.recv(Some(Rank(0)), Some(i))?;
                sum += u64::from_be_bytes(m.data[..8].try_into().unwrap());
            }
            ctx.publish(CkptValue::Int(sum as i64));
            ctx.barrier()?;
        }
        Ok(())
    });
    let app = cluster
        .submit("firehose", 2, SubmitOpts::default())
        .unwrap();
    cluster.wait_app_done(app, Duration::from_secs(60)).unwrap();
    let expect: u64 = (0..200u64).sum();
    assert_eq!(
        cluster.outputs(app, Rank(1)),
        vec![CkptValue::Int(expect as i64)]
    );
}
