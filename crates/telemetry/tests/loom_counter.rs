//! Concurrency model tests for the sharded [`Counter`] and [`Gauge`].
//!
//! Same contract as `trace/tests/loom_recorder.rs`: written against the
//! `loom` API so CI images with the real crate explore interleavings
//! exhaustively; the offline stand-in runs a many-schedule stress loop.
//! Assertions are interleaving-universal: a sharded counter must never
//! lose an increment (each shard is an independent atomic; the only way to
//! drop one is a torn read-modify-write, which `fetch_add` excludes), and
//! a quiesced read must be exact, not approximate.

use loom::sync::Arc;
use loom::thread;
use starfish_telemetry::{Counter, Gauge};

const THREADS: usize = 4;
const PER_THREAD: u64 = 25;

#[test]
fn concurrent_adds_are_never_lost() {
    loom::model(|| {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                        thread::yield_now();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    });
}

#[test]
fn gauge_deltas_balance_out() {
    loom::model(|| {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let g = Arc::clone(&g);
                thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        g.add(3);
                        g.add(-3);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Every +3 paired with a −3: any lost or doubled delta shows here.
        assert_eq!(g.get(), 0);
    });
}
