//! Property coverage for the aggregation algebra the cluster relies on:
//! cross-scope [`Snapshot`] merging must be commutative and associative
//! (daemons fold per-scope snapshots in whatever order the total order
//! happens to deliver them), and both bounded trace rings must account for
//! every eviction exactly — a ring may never claim more retained events
//! than it kept, nor fewer drops than the `trace.dropped` counter saw.

use proptest::prelude::*;
use starfish_telemetry::{metric, HistSnap, Registry, Snapshot};
use starfish_trace::FlightRecorder;
use starfish_util::trace::{ActorKind, MsgClass, TraceSink};
use starfish_util::VirtualTime;

// ---- generators --------------------------------------------------------------

fn arb_hist() -> impl Strategy<Value = HistSnap> {
    (
        proptest::collection::vec((0u8..64, 1u64..100), 0..4),
        0u64..1_000,
    )
        .prop_map(|(raw, sum)| {
            let buckets = dedup_by_key(raw);
            let count = buckets.iter().map(|&(_, c)| c).sum();
            let max = buckets.iter().map(|&(b, _)| 1u64 << b.min(62)).max();
            HistSnap {
                count,
                sum,
                max: max.unwrap_or(0),
                buckets,
            }
        })
}

/// Sort by key and keep the first value per key: snapshots index their
/// sparse tables by metric id, so generated tables must not repeat keys.
fn dedup_by_key<K: Ord + Copy, V>(mut pairs: Vec<(K, V)>) -> Vec<(K, V)> {
    pairs.sort_by_key(|&(k, _)| k);
    pairs.dedup_by_key(|&mut (k, _)| k);
    pairs
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        proptest::collection::vec((0u16..24, 1u64..1_000), 0..6),
        proptest::collection::vec((0u16..24, -50i64..50), 0..6),
        proptest::collection::vec((0u16..24, arb_hist()), 0..3),
    )
        .prop_map(|(counters, gauges, hists)| Snapshot {
            counters: dedup_by_key(counters),
            gauges: dedup_by_key(gauges),
            hists: dedup_by_key(hists),
            timeline: Vec::new(),
        })
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Histogram bucket lists may differ in ordering depending on merge order;
/// compare them as multisets alongside the scalar fields.
fn canonical(mut s: Snapshot) -> Snapshot {
    for (_, h) in &mut s.hists {
        h.buckets.sort_unstable();
    }
    s.timeline
        .sort_by(|x, y| (x.start_vt, &x.name).cmp(&(y.start_vt, &y.name)));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snapshot_merge_is_commutative(a in arb_snapshot(), b in arb_snapshot()) {
        prop_assert_eq!(canonical(merged(&a, &b)), canonical(merged(&b, &a)));
    }

    #[test]
    fn snapshot_merge_is_associative(
        a in arb_snapshot(),
        b in arb_snapshot(),
        c in arb_snapshot(),
    ) {
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(canonical(left), canonical(right));
    }

    /// The util-level message ring: every eviction increments both the
    /// sink's own `dropped` tally and the hooked `trace.dropped` counter,
    /// and retained + dropped always equals the number recorded.
    #[test]
    fn message_ring_drops_match_the_trace_dropped_counter(
        cap in 1usize..32,
        records in 0usize..200,
    ) {
        let sink = TraceSink::enabled(cap);
        let reg = Registry::new();
        sink.attach_metrics(std::sync::Arc::new(reg.clone()));
        for _ in 0..records {
            sink.record(MsgClass::Data, ActorKind::AppProcess, ActorKind::Daemon, "fast-path", 8);
        }
        let expected_drops = records.saturating_sub(cap) as u64;
        prop_assert_eq!(sink.dropped(), expected_drops);
        prop_assert_eq!(reg.counter(metric::TRACE_DROPPED), expected_drops);
        prop_assert!(sink.dropped() <= reg.counter(metric::TRACE_DROPPED));
        prop_assert_eq!(sink.events().len() as u64 + sink.dropped(), records as u64);
    }

    /// The flight recorder's ring: exact drop accounting under arbitrary
    /// event mixes — `len() + dropped()` equals the number of events fed in,
    /// and the ring never under-reports drops.
    #[test]
    fn flight_recorder_accounts_for_every_eviction(
        cap in 1usize..48,
        kinds in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let rec = FlightRecorder::new("prop", cap);
        for (i, k) in kinds.iter().enumerate() {
            let vt = VirtualTime::from_nanos((i as u64 + 1) * 10);
            match k {
                0 => { let _ = rec.on_send(vt, 0, 0, 1, 64); }
                1 => rec.phase_begin(vt, "p"),
                2 => rec.mark(vt, "m", "detail"),
                _ => rec.fault(vt, "injected"),
            }
        }
        let expected_drops = kinds.len().saturating_sub(cap) as u64;
        prop_assert_eq!(rec.dropped(), expected_drops);
        prop_assert_eq!(rec.len() as u64 + rec.dropped(), kinds.len() as u64);
        let dump = rec.dump();
        prop_assert_eq!(dump.events.len(), rec.len());
        prop_assert_eq!(dump.dropped, rec.dropped());
    }
}
