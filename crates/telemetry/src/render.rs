//! ASCII rendering for the management protocol (`STATS`, `TIMELINE`).
//!
//! One metric (or span) per line, machine-greppable, in the same plain
//! style as the rest of the management protocol.

use crate::metric::{MetricId, MetricKind, Unit, DEFS};
use crate::snapshot::Snapshot;
use crate::timeline::TimelineEvent;

fn unit_suffix(unit: Unit) -> &'static str {
    match unit {
        Unit::Count => "",
        Unit::Bytes => "B",
        Unit::VirtualNanos => "vns",
        Unit::WallNanos => "ns",
    }
}

/// Render every touched metric, one `name value` line each, in
/// registry-table order. Histograms render count/p50/p95/p99/max/mean.
pub fn render_stats(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (idx, def) in DEFS.iter().enumerate() {
        let id = MetricId(idx as u16);
        let suffix = unit_suffix(def.unit);
        match def.kind {
            MetricKind::Counter => {
                let v = snap.counter(id);
                if v != 0 {
                    out.push_str(&format!("{} {}{}\n", def.name, v, suffix));
                }
            }
            MetricKind::Gauge => {
                let v = snap.gauge(id);
                if v != 0 {
                    out.push_str(&format!("{} {}{}\n", def.name, v, suffix));
                }
            }
            MetricKind::Histogram => {
                if let Some(h) = snap.hist(id) {
                    out.push_str(&format!(
                        "{} count={} p50={}{s} p95={}{s} p99={}{s} max={}{s} mean={:.1}{s}\n",
                        def.name,
                        h.count,
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.max,
                        h.mean(),
                        s = suffix,
                    ));
                }
            }
        }
    }
    out
}

/// Render timeline spans, oldest first:
/// `+<start_us>us <name> <detail> vt=<start>..<end>ms (<dur>ms, wall <w>us)`.
pub fn render_timeline(events: &[TimelineEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!(
            "+{}us {} {} vt={:.3}..{:.3}ms ({:.3}ms, wall {}us)\n",
            ev.start_wall_us,
            ev.name,
            if ev.detail.is_empty() {
                "-"
            } else {
                &ev.detail
            },
            ev.start_vt.as_millis_f64(),
            ev.end_vt.as_millis_f64(),
            ev.vt_duration().as_millis_f64(),
            ev.wall_duration_us(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::*;
    use crate::Registry;
    use starfish_util::time::VirtualTime;

    #[test]
    fn stats_renders_touched_metrics_only() {
        let r = Registry::new();
        r.add(MSG_COUNT_DATA, 10);
        r.add(MSG_BYTES_DATA, 1000);
        r.record(VNI_WIRE_NS, 500);
        let text = render_stats(&r.snapshot());
        assert!(text.contains("msg.count.data 10\n"), "{text}");
        assert!(text.contains("msg.bytes.data 1000B\n"), "{text}");
        assert!(text.contains("vni.wire_ns count=1"), "{text}");
        assert!(!text.contains("msg.count.control"), "{text}");
    }

    #[test]
    fn timeline_renders_spans() {
        let r = Registry::new();
        r.span_record(
            "view.change",
            "view=2",
            VirtualTime::from_millis(1),
            VirtualTime::from_millis(3),
        );
        let text = render_timeline(&r.timeline_events());
        assert!(
            text.contains("view.change view=2 vt=1.000..3.000ms"),
            "{text}"
        );
    }
}
