//! Multi-phase span recording, stamped in virtual and wall time.
//!
//! Checkpoint rounds, view changes, and recoveries are phases, not point
//! events. A [`Timeline`] records each as a span with a start and end in
//! both clocks: virtual time (what the modelled 1999 cluster would have
//! measured) and wall-clock micros since the timeline epoch (what the
//! simulating host actually spent). The `TIMELINE <app>` management
//! command renders these.

use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::Mutex;
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::time::VirtualTime;
use starfish_util::Result;

/// Handle for a span opened with [`Timeline::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Phase name, e.g. `"ckpt.round"`, `"view.change"`, `"recovery"`.
    pub name: String,
    /// Free-form annotation, e.g. the app name or checkpoint round.
    pub detail: String,
    pub start_vt: VirtualTime,
    pub end_vt: VirtualTime,
    /// Wall-clock micros since the timeline epoch.
    pub start_wall_us: u64,
    pub end_wall_us: u64,
}

impl TimelineEvent {
    pub fn vt_duration(&self) -> VirtualTime {
        self.end_vt.since(self.start_vt)
    }

    pub fn wall_duration_us(&self) -> u64 {
        self.end_wall_us.saturating_sub(self.start_wall_us)
    }
}

impl Encode for TimelineEvent {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_str(&self.detail);
        enc.put_u64(self.start_vt.as_nanos());
        enc.put_u64(self.end_vt.as_nanos());
        enc.put_u64(self.start_wall_us);
        enc.put_u64(self.end_wall_us);
    }
}

impl Decode for TimelineEvent {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(TimelineEvent {
            name: dec.get_str()?,
            detail: dec.get_str()?,
            start_vt: VirtualTime::from_nanos(dec.get_u64()?),
            end_vt: VirtualTime::from_nanos(dec.get_u64()?),
            start_wall_us: dec.get_u64()?,
            end_wall_us: dec.get_u64()?,
        })
    }
}

struct OpenSpan {
    id: SpanId,
    name: String,
    detail: String,
    start_vt: VirtualTime,
    start_wall_us: u64,
}

struct Inner {
    next_id: u64,
    open: Vec<OpenSpan>,
    done: VecDeque<TimelineEvent>,
    cap: usize,
    dropped: u64,
}

/// Bounded recorder of phase spans. Clones share state via the owning
/// [`crate::Registry`]; the ring keeps the most recent `cap` completed
/// spans.
pub struct Timeline {
    epoch: Instant,
    inner: Mutex<Inner>,
}

pub const DEFAULT_SPAN_CAP: usize = 1024;

impl Default for Timeline {
    fn default() -> Self {
        Timeline::with_capacity(DEFAULT_SPAN_CAP)
    }
}

impl Timeline {
    pub fn new() -> Self {
        Timeline::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Timeline {
            epoch: Instant::now(),
            inner: Mutex::new(Inner {
                next_id: 1,
                open: Vec::new(),
                done: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
            }),
        }
    }

    fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Open a span. `vt` is the virtual-time stamp of the phase start.
    pub fn begin(&self, name: &str, detail: &str, vt: VirtualTime) -> SpanId {
        let wall = self.wall_us();
        let mut g = self.inner.lock();
        let id = SpanId(g.next_id);
        g.next_id += 1;
        g.open.push(OpenSpan {
            id,
            name: name.to_string(),
            detail: detail.to_string(),
            start_vt: vt,
            start_wall_us: wall,
        });
        id
    }

    /// Close a span. Unknown ids (already closed, or from before a restart)
    /// are ignored.
    pub fn end(&self, id: SpanId, vt: VirtualTime) {
        let wall = self.wall_us();
        let mut g = self.inner.lock();
        let Some(pos) = g.open.iter().position(|s| s.id == id) else {
            return;
        };
        let span = g.open.swap_remove(pos);
        let ev = TimelineEvent {
            name: span.name,
            detail: span.detail,
            start_vt: span.start_vt,
            end_vt: vt,
            start_wall_us: span.start_wall_us,
            end_wall_us: wall,
        };
        push_done(&mut g, ev);
    }

    /// Record a complete span in one call (for phases timed externally).
    pub fn record(&self, name: &str, detail: &str, start_vt: VirtualTime, end_vt: VirtualTime) {
        let wall = self.wall_us();
        let mut g = self.inner.lock();
        let ev = TimelineEvent {
            name: name.to_string(),
            detail: detail.to_string(),
            start_vt,
            end_vt,
            start_wall_us: wall,
            end_wall_us: wall,
        };
        push_done(&mut g, ev);
    }

    /// Completed spans, oldest first.
    pub fn events(&self) -> Vec<TimelineEvent> {
        self.inner.lock().done.iter().cloned().collect()
    }

    /// Spans evicted by the bounded ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

fn push_done(g: &mut Inner, ev: TimelineEvent) {
    if g.done.len() == g.cap {
        g.done.pop_front();
        g.dropped += 1;
    }
    g.done.push_back(ev);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_produces_event() {
        let t = Timeline::new();
        let id = t.begin("ckpt.round", "app=demo r=1", VirtualTime::from_millis(5));
        t.end(id, VirtualTime::from_millis(9));
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "ckpt.round");
        assert_eq!(evs[0].vt_duration(), VirtualTime::from_millis(4));
    }

    #[test]
    fn unknown_span_end_is_ignored() {
        let t = Timeline::new();
        t.end(SpanId(99), VirtualTime::ZERO);
        assert!(t.events().is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let t = Timeline::with_capacity(4);
        for i in 0..10 {
            t.record(
                "phase",
                &format!("i={i}"),
                VirtualTime::ZERO,
                VirtualTime::ZERO,
            );
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].detail, "i=6");
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn event_codec_roundtrip() {
        let ev = TimelineEvent {
            name: "recovery".into(),
            detail: "app=x".into(),
            start_vt: VirtualTime::from_micros(3),
            end_vt: VirtualTime::from_micros(8),
            start_wall_us: 100,
            end_wall_us: 250,
        };
        assert_eq!(starfish_util::codec::roundtrip(&ev).unwrap(), ev);
    }
}
