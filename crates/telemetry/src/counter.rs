//! Sharded lock-free counters and gauges.
//!
//! Counters are striped across cache-line-padded atomic shards so
//! concurrent writers on the MPI fast path do not contend on one cache
//! line; reads sum the shards. Each thread hashes to a stable shard via a
//! thread-local ticket.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

const SHARDS: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotonically increasing, sharded counter.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TICKET: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TICKET.with(|t| {
        let mut v = t.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed) as usize % SHARDS;
            t.set(v);
        }
        v
    })
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum over all shards. Concurrent adds may or may not be included.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A point-in-time signed value (queue depths, live process counts).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_value() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads as u64 * per_thread);
    }
}
