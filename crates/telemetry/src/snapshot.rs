//! Wire-encodable registry dumps.
//!
//! A [`Snapshot`] is the unit the daemons ship over the totally ordered
//! ensemble path: sparse (only touched metrics), cumulative (later
//! snapshots from the same scope *replace* earlier ones; snapshots from
//! *different* scopes merge additively), and self-describing via the
//! static [`crate::metric::DEFS`] table.

use crate::histogram::HistSnap;
use crate::metric::MetricId;
use crate::timeline::TimelineEvent;
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::Result;

#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(metric index, total)` for counters with nonzero totals.
    pub counters: Vec<(u16, u64)>,
    /// `(metric index, value)` for gauges that were ever set.
    pub gauges: Vec<(u16, i64)>,
    /// `(metric index, state)` for histograms with at least one sample.
    pub hists: Vec<(u16, HistSnap)>,
    /// Completed timeline spans.
    pub timeline: Vec<TimelineEvent>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.timeline.is_empty()
    }

    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters
            .iter()
            .find(|&&(i, _)| i == id.0)
            .map_or(0, |&(_, v)| v)
    }

    pub fn gauge(&self, id: MetricId) -> i64 {
        self.gauges
            .iter()
            .find(|&&(i, _)| i == id.0)
            .map_or(0, |&(_, v)| v)
    }

    pub fn hist(&self, id: MetricId) -> Option<&HistSnap> {
        self.hists.iter().find(|&&(i, _)| i == id.0).map(|(_, h)| h)
    }

    /// Additive merge of a snapshot from a *different* scope: counters and
    /// gauges sum, histograms accumulate, timelines concatenate (sorted by
    /// caller if needed).
    pub fn merge(&mut self, other: &Snapshot) {
        for &(i, v) in &other.counters {
            match self.counters.binary_search_by_key(&i, |&(k, _)| k) {
                Ok(pos) => self.counters[pos].1 += v,
                Err(pos) => self.counters.insert(pos, (i, v)),
            }
        }
        for &(i, v) in &other.gauges {
            match self.gauges.binary_search_by_key(&i, |&(k, _)| k) {
                Ok(pos) => self.gauges[pos].1 += v,
                Err(pos) => self.gauges.insert(pos, (i, v)),
            }
        }
        for (i, h) in &other.hists {
            match self.hists.binary_search_by_key(i, |(k, _)| *k) {
                Ok(pos) => self.hists[pos].1.merge(h),
                Err(pos) => self.hists.insert(pos, (*i, h.clone())),
            }
        }
        self.timeline.extend(other.timeline.iter().cloned());
    }
}

impl Encode for Snapshot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u16(self.counters.len() as u16);
        for &(i, v) in &self.counters {
            enc.put_u16(i);
            enc.put_u64(v);
        }
        enc.put_u16(self.gauges.len() as u16);
        for &(i, v) in &self.gauges {
            enc.put_u16(i);
            enc.put_i64(v);
        }
        enc.put_u16(self.hists.len() as u16);
        for (i, h) in &self.hists {
            enc.put_u16(*i);
            h.encode(enc);
        }
        enc.put_u32(self.timeline.len() as u32);
        for ev in &self.timeline {
            ev.encode(enc);
        }
    }
}

impl Decode for Snapshot {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let nc = dec.get_u16()? as usize;
        let mut counters = Vec::with_capacity(nc.min(256));
        for _ in 0..nc {
            let i = dec.get_u16()?;
            let v = dec.get_u64()?;
            counters.push((i, v));
        }
        let ng = dec.get_u16()? as usize;
        let mut gauges = Vec::with_capacity(ng.min(256));
        for _ in 0..ng {
            let i = dec.get_u16()?;
            let v = dec.get_i64()?;
            gauges.push((i, v));
        }
        let nh = dec.get_u16()? as usize;
        let mut hists = Vec::with_capacity(nh.min(256));
        for _ in 0..nh {
            let i = dec.get_u16()?;
            let h = HistSnap::decode(dec)?;
            hists.push((i, h));
        }
        let nt = dec.get_u32()? as usize;
        let mut timeline = Vec::with_capacity(nt.min(1024));
        for _ in 0..nt {
            timeline.push(TimelineEvent::decode(dec)?);
        }
        Ok(Snapshot {
            counters,
            gauges,
            hists,
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric;
    use starfish_util::time::VirtualTime;

    #[test]
    fn merge_sums_counters_and_hists() {
        let mut a = Snapshot {
            counters: vec![(0, 5), (3, 1)],
            gauges: vec![(1, 2)],
            hists: vec![(
                2,
                HistSnap {
                    count: 1,
                    sum: 8,
                    max: 8,
                    buckets: vec![(4, 1)],
                },
            )],
            timeline: vec![],
        };
        let b = Snapshot {
            counters: vec![(0, 7), (9, 2)],
            gauges: vec![(1, 3), (5, -1)],
            hists: vec![(
                2,
                HistSnap {
                    count: 2,
                    sum: 6,
                    max: 4,
                    buckets: vec![(2, 1), (3, 1)],
                },
            )],
            timeline: vec![TimelineEvent {
                name: "x".into(),
                detail: String::new(),
                start_vt: VirtualTime::ZERO,
                end_vt: VirtualTime::ZERO,
                start_wall_us: 0,
                end_wall_us: 0,
            }],
        };
        a.merge(&b);
        assert_eq!(a.counter(metric::MSG_COUNT_CONTROL), 12); // id 0
        assert_eq!(a.counters, vec![(0, 12), (3, 1), (9, 2)]);
        assert_eq!(a.gauges, vec![(1, 5), (5, -1)]);
        let h = a.hist(crate::MetricId(2)).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 8);
        assert_eq!(a.timeline.len(), 1);
    }

    #[test]
    fn codec_roundtrip() {
        let snap = Snapshot {
            counters: vec![(0, u64::MAX), (12, 3)],
            gauges: vec![(7, -42)],
            hists: vec![(
                13,
                HistSnap {
                    count: 9,
                    sum: 900,
                    max: 500,
                    buckets: vec![(1, 4), (9, 5)],
                },
            )],
            timeline: vec![TimelineEvent {
                name: "view.change".into(),
                detail: "view=3".into(),
                start_vt: VirtualTime::from_micros(1),
                end_vt: VirtualTime::from_micros(2),
                start_wall_us: 10,
                end_wall_us: 20,
            }],
        };
        assert_eq!(starfish_util::codec::roundtrip(&snap).unwrap(), snap);
    }
}
