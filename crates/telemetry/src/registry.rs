//! Per-node / per-process metric registries.
//!
//! A [`Registry`] owns one slot per entry in [`crate::metric::DEFS`]:
//! counters and gauges are lock-free, histograms are lock-free, and the
//! timeline takes a short mutex only when a phase completes. Cloning a
//! registry is an `Arc` bump, so one handle threads through the whole
//! stack (fabric, MPI endpoints, ensemble, checkpoint engine) without
//! plumbing costs.

use std::sync::Arc;

use crate::counter::{Counter, Gauge};
use crate::histogram::Histogram;
use crate::metric::{self, MetricId, MetricKind};
use crate::snapshot::Snapshot;
use crate::timeline::{SpanId, Timeline, TimelineEvent};
use starfish_util::time::VirtualTime;

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Inner {
    slots: Vec<Slot>,
    timeline: Timeline,
}

/// A cheap-to-clone handle on a full set of metric slots.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::with_timeline_capacity(crate::timeline::DEFAULT_SPAN_CAP)
    }

    pub fn with_timeline_capacity(cap: usize) -> Self {
        let slots = metric::DEFS
            .iter()
            .map(|def| match def.kind {
                MetricKind::Counter => Slot::Counter(Counter::new()),
                MetricKind::Gauge => Slot::Gauge(Gauge::new()),
                MetricKind::Histogram => Slot::Histogram(Histogram::new()),
            })
            .collect();
        Registry {
            inner: Arc::new(Inner {
                slots,
                timeline: Timeline::with_capacity(cap),
            }),
        }
    }

    /// True when `other` is a clone of this registry (same slots).
    pub fn same_as(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    // --- counters ---------------------------------------------------------

    #[inline]
    pub fn inc(&self, id: MetricId) {
        self.add(id, 1);
    }

    #[inline]
    pub fn add(&self, id: MetricId, n: u64) {
        if let Slot::Counter(c) = &self.inner.slots[id.0 as usize] {
            c.add(n);
        } else {
            debug_assert!(false, "{} is not a counter", id.name());
        }
    }

    pub fn counter(&self, id: MetricId) -> u64 {
        match &self.inner.slots[id.0 as usize] {
            Slot::Counter(c) => c.get(),
            _ => 0,
        }
    }

    // --- gauges -----------------------------------------------------------

    pub fn gauge_set(&self, id: MetricId, v: i64) {
        if let Slot::Gauge(g) = &self.inner.slots[id.0 as usize] {
            g.set(v);
        } else {
            debug_assert!(false, "{} is not a gauge", id.name());
        }
    }

    pub fn gauge_add(&self, id: MetricId, delta: i64) {
        if let Slot::Gauge(g) = &self.inner.slots[id.0 as usize] {
            g.add(delta);
        } else {
            debug_assert!(false, "{} is not a gauge", id.name());
        }
    }

    pub fn gauge(&self, id: MetricId) -> i64 {
        match &self.inner.slots[id.0 as usize] {
            Slot::Gauge(g) => g.get(),
            _ => 0,
        }
    }

    // --- histograms -------------------------------------------------------

    #[inline]
    pub fn record(&self, id: MetricId, value: u64) {
        if let Slot::Histogram(h) = &self.inner.slots[id.0 as usize] {
            h.record(value);
        } else {
            debug_assert!(false, "{} is not a histogram", id.name());
        }
    }

    /// Record a virtual-time duration in nanoseconds.
    #[inline]
    pub fn record_vt(&self, id: MetricId, d: VirtualTime) {
        self.record(id, d.as_nanos());
    }

    pub fn hist_count(&self, id: MetricId) -> u64 {
        match &self.inner.slots[id.0 as usize] {
            Slot::Histogram(h) => h.count(),
            _ => 0,
        }
    }

    // --- timeline ---------------------------------------------------------

    pub fn span_begin(&self, name: &str, detail: &str, vt: VirtualTime) -> SpanId {
        self.inner.timeline.begin(name, detail, vt)
    }

    pub fn span_end(&self, id: SpanId, vt: VirtualTime) {
        self.inner.timeline.end(id, vt);
    }

    pub fn span_record(
        &self,
        name: &str,
        detail: &str,
        start_vt: VirtualTime,
        end_vt: VirtualTime,
    ) {
        self.inner.timeline.record(name, detail, start_vt, end_vt);
    }

    pub fn timeline_events(&self) -> Vec<TimelineEvent> {
        self.inner.timeline.events()
    }

    // --- snapshots --------------------------------------------------------

    /// Cumulative, non-destructive dump of every touched metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (i, slot) in self.inner.slots.iter().enumerate() {
            match slot {
                Slot::Counter(c) => {
                    let v = c.get();
                    if v != 0 {
                        snap.counters.push((i as u16, v));
                    }
                }
                Slot::Gauge(g) => {
                    let v = g.get();
                    if v != 0 {
                        snap.gauges.push((i as u16, v));
                    }
                }
                Slot::Histogram(h) => {
                    let s = h.snapshot();
                    if !s.is_empty() {
                        snap.hists.push((i as u16, s));
                    }
                }
            }
        }
        snap.timeline = self.inner.timeline.events();
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &metric::DEFS.len())
            .finish()
    }
}

impl starfish_util::trace::MsgCounter for Registry {
    fn on_message(&self, class: starfish_util::trace::MsgClass, bytes: usize) {
        self.inc(metric::msg_count(class));
        self.add(metric::msg_bytes(class), bytes as u64);
    }

    fn on_trace_dropped(&self) {
        self.inc(metric::TRACE_DROPPED);
    }

    fn on_trace_deduped(&self) {
        self.inc(metric::TRACE_DEDUPED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::*;

    #[test]
    fn clones_share_slots() {
        let r = Registry::new();
        let r2 = r.clone();
        r.inc(VNI_PACKETS);
        r2.add(VNI_PACKETS, 2);
        assert_eq!(r.counter(VNI_PACKETS), 3);
        assert!(r.same_as(&r2));
        assert!(!r.same_as(&Registry::new()));
    }

    #[test]
    fn snapshot_is_sparse_and_cumulative() {
        let r = Registry::new();
        assert!(r.snapshot().is_empty());
        r.inc(CKPT_ROUNDS);
        r.gauge_set(PROCS_RUNNING, 4);
        r.record(CKPT_IMAGE_BYTES, 4096);
        let s1 = r.snapshot();
        assert_eq!(s1.counters.len(), 1);
        assert_eq!(s1.counter(CKPT_ROUNDS), 1);
        assert_eq!(s1.gauge(PROCS_RUNNING), 4);
        assert_eq!(s1.hist(CKPT_IMAGE_BYTES).unwrap().count, 1);
        r.inc(CKPT_ROUNDS);
        assert_eq!(r.snapshot().counter(CKPT_ROUNDS), 2);
    }

    #[test]
    fn spans_land_in_snapshot() {
        let r = Registry::new();
        let id = r.span_begin("ckpt.round", "r=0", VirtualTime::ZERO);
        r.span_end(id, VirtualTime::from_micros(5));
        let snap = r.snapshot();
        assert_eq!(snap.timeline.len(), 1);
        assert_eq!(snap.timeline[0].name, "ckpt.round");
    }

    #[test]
    fn msg_counter_hook_feeds_table1() {
        use starfish_util::trace::{MsgClass, MsgCounter};
        let r = Registry::new();
        r.on_message(MsgClass::Data, 128);
        r.on_message(MsgClass::Data, 64);
        r.on_message(MsgClass::Control, 8);
        assert_eq!(r.counter(MSG_COUNT_DATA), 2);
        assert_eq!(r.counter(MSG_BYTES_DATA), 192);
        assert_eq!(r.counter(MSG_COUNT_CONTROL), 1);
    }
}
