//! The static metric registry: every metric the system emits, by identity.
//!
//! Metric identities are compile-time constants so recording is an array
//! index away and snapshots from different nodes aggregate without name
//! exchange. The taxonomy mirrors the paper: Table 1's six message classes
//! (counts and bytes), Figure 6's seven messaging layers, checkpoint and
//! recovery phase timings, and liveness bookkeeping.

use starfish_util::trace::MsgClass;

/// Identity of a metric: index into [`DEFS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(pub u16);

impl MetricId {
    pub fn def(self) -> &'static MetricDef {
        &DEFS[self.0 as usize]
    }

    pub fn name(self) -> &'static str {
        self.def().name
    }

    pub fn kind(self) -> MetricKind {
        self.def().kind
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

/// What a recorded value means (used only for rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    Count,
    Bytes,
    /// Nanoseconds of virtual time (the modelled 1999 hardware clock).
    VirtualNanos,
    /// Nanoseconds of wall-clock time on the simulating host.
    WallNanos,
}

#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    pub name: &'static str,
    pub kind: MetricKind,
    pub unit: Unit,
    pub help: &'static str,
}

macro_rules! metric_table {
    ( $( $konst:ident = ($name:expr, $kind:ident, $unit:ident, $help:expr); )* ) => {
        metric_table!(@step (0u16) [] $( $konst = ($name, $kind, $unit, $help); )*);
    };
    (@step ($idx:expr) [$($acc:tt)*]) => {
        /// Every metric in the system, indexed by [`MetricId`].
        pub const DEFS: &[MetricDef] = &[ $($acc)* ];
    };
    (@step ($idx:expr) [$($acc:tt)*]
        $konst:ident = ($name:expr, $kind:ident, $unit:ident, $help:expr);
        $($rest:tt)*
    ) => {
        pub const $konst: MetricId = MetricId($idx);
        metric_table!(@step ($idx + 1)
            [
                $($acc)*
                MetricDef {
                    name: $name,
                    kind: MetricKind::$kind,
                    unit: Unit::$unit,
                    help: $help,
                },
            ]
            $($rest)*);
    };
}

metric_table! {
    // --- Table 1: message counts/bytes by class (recorded via the trace
    // hook, so they cover every sanctioned path) -------------------------
    MSG_COUNT_CONTROL = ("msg.count.control", Counter, Count, "Control messages (daemon<->daemon, ensemble)");
    MSG_COUNT_COORDINATION = ("msg.count.coordination", Counter, Count, "Coordination messages relayed via daemons");
    MSG_COUNT_DATA = ("msg.count.data", Counter, Count, "Data messages on the MPI fast path");
    MSG_COUNT_LW_MEMBERSHIP = ("msg.count.lw-membership", Counter, Count, "Lightweight membership notifications");
    MSG_COUNT_CONFIGURATION = ("msg.count.configuration", Counter, Count, "Configuration messages daemon->process");
    MSG_COUNT_CKPT_RESTART = ("msg.count.checkpoint-restart", Counter, Count, "Checkpoint/restart protocol messages");
    MSG_BYTES_CONTROL = ("msg.bytes.control", Counter, Bytes, "Bytes of control messages");
    MSG_BYTES_COORDINATION = ("msg.bytes.coordination", Counter, Bytes, "Bytes of coordination messages");
    MSG_BYTES_DATA = ("msg.bytes.data", Counter, Bytes, "Bytes of data messages");
    MSG_BYTES_LW_MEMBERSHIP = ("msg.bytes.lw-membership", Counter, Bytes, "Bytes of lightweight membership messages");
    MSG_BYTES_CONFIGURATION = ("msg.bytes.configuration", Counter, Bytes, "Bytes of configuration messages");
    MSG_BYTES_CKPT_RESTART = ("msg.bytes.checkpoint-restart", Counter, Bytes, "Bytes of C/R protocol messages");

    // --- VNI / fabric ----------------------------------------------------
    VNI_PACKETS = ("vni.packets", Counter, Count, "Packets accepted by the fabric");
    VNI_WIRE_NS = ("vni.wire_ns", Histogram, VirtualNanos, "One-way wire latency per packet");
    VNI_PACKET_BYTES = ("vni.packet_bytes", Histogram, Bytes, "Payload size per packet");
    VNI_RECV_QUEUE_DEPTH = ("vni.recv_queue_depth", Gauge, Count, "Entries waiting in MPI receive queues");
    VNI_DROPPED = ("vni.dropped", Counter, Count, "Packets eaten by a link fault or a vanished destination");
    VNI_DUPLICATED = ("vni.duplicated", Counter, Count, "Extra packet copies minted by duplicate faults");
    VNI_DELAYED = ("vni.delayed", Counter, Count, "Packets whose arrival a delay fault postponed");
    VNI_HELD = ("vni.held", Counter, Count, "Packets parked in reorder buffers by a link fault");

    // --- Figure 6: per-layer costs of the messaging stack ----------------
    LAYER_APP_TO_MPI = ("layer.app_to_mpi", Histogram, VirtualNanos, "Application -> MPI library hand-off");
    LAYER_MPI_SEND = ("layer.mpi_send", Histogram, VirtualNanos, "MPI send-side processing");
    LAYER_VNI_SEND = ("layer.vni_send", Histogram, VirtualNanos, "VNI send-side processing");
    LAYER_POLL = ("layer.poll", Histogram, VirtualNanos, "Polling-thread dispatch");
    LAYER_VNI_RECV = ("layer.vni_recv", Histogram, VirtualNanos, "VNI receive-side processing");
    LAYER_MPI_RECV = ("layer.mpi_recv", Histogram, VirtualNanos, "MPI receive-side processing");
    LAYER_MPI_TO_APP = ("layer.mpi_to_app", Histogram, VirtualNanos, "MPI -> application hand-off");
    MPI_SEND_PATH_NS = ("mpi.send_path_ns", Histogram, VirtualNanos, "Total send-side software path");
    MPI_RECV_PATH_NS = ("mpi.recv_path_ns", Histogram, VirtualNanos, "Total receive-side software path");
    MPI_RETRANSMITS = ("mpi.retransmits", Counter, Count, "Messages re-sent by the reliability layer");
    MPI_DUP_DISCARDS = ("mpi.dup_discards", Counter, Count, "Duplicate deliveries discarded by sequence check");
    MPI_NACKS = ("mpi.nacks", Counter, Count, "Gap reports sent by the reliability layer");
    MPI_RNDV_SENDS = ("mpi.rndv_sends", Counter, Count, "Sends routed through the rendezvous protocol");
    MPI_RNDV_BYTES = ("mpi.rndv_bytes", Histogram, Bytes, "Payload size per rendezvous transfer");
    MPI_CTS_RESENDS = ("mpi.cts_resends", Counter, Count, "CTS grants re-sent while awaiting rendezvous data");
    MPI_CREDIT_FALLBACKS = ("mpi.credit_fallbacks", Counter, Count, "Eager sends forced to rendezvous by exhausted credit");

    // --- Collectives: algorithm selection + traffic accounting -----------
    // One counter per (operation, algorithm) pair so STATS shows the
    // selector's decisions directly; kept contiguous so the rendered
    // output groups them. The mapping lives with the selector
    // (starfish-mpi), which tests pin against these ids.
    COLL_ALGO_ALLREDUCE_REDUCE_BCAST = ("coll.algo.allreduce.reduce-bcast", Counter, Count, "Allreduce calls routed through the legacy reduce+bcast composition");
    COLL_ALGO_ALLREDUCE_RDOUBLE = ("coll.algo.allreduce.recursive-doubling", Counter, Count, "Allreduce calls routed through recursive doubling");
    COLL_ALGO_ALLREDUCE_RING = ("coll.algo.allreduce.ring", Counter, Count, "Allreduce calls routed through ring reduce-scatter + ring allgather");
    COLL_ALGO_ALLGATHER_GATHER_BCAST = ("coll.algo.allgather.gather-bcast", Counter, Count, "Allgather calls routed through the legacy gather+bcast composition");
    COLL_ALGO_ALLGATHER_BRUCK = ("coll.algo.allgather.bruck", Counter, Count, "Allgather calls routed through the Bruck log-step algorithm");
    COLL_ALGO_ALLGATHER_RING = ("coll.algo.allgather.ring", Counter, Count, "Allgather calls routed through the bandwidth-optimal ring");
    COLL_ALGO_BCAST_BINOMIAL = ("coll.algo.bcast.binomial", Counter, Count, "Bcast calls routed through the binomial tree");
    COLL_ALGO_BCAST_SCATTER_ALLGATHER = ("coll.algo.bcast.scatter-allgather", Counter, Count, "Bcast calls routed through scatter + ring allgather (van de Geijn)");
    COLL_BYTES_MOVED = ("coll.bytes_moved", Counter, Bytes, "Payload bytes this process placed on the wire inside collectives");
    COLL_SEGMENTS = ("coll.segments", Counter, Count, "Wire messages sent by chunk-aligned segmented collective phases");

    // --- Ensemble / membership ------------------------------------------
    ENSEMBLE_VIEW_CHANGES = ("ensemble.view_changes", Counter, Count, "Views installed by the main group");
    ENSEMBLE_VIEW_CHANGE_NS = ("ensemble.view_change_ns", Histogram, WallNanos, "Suspicion -> new view installation");
    ENSEMBLE_HEARTBEAT_MISSES = ("ensemble.heartbeat_misses", Counter, Count, "Heartbeat deadlines missed before suspicion");
    ENSEMBLE_CASTS = ("ensemble.casts", Counter, Count, "Totally ordered casts delivered");

    // --- Checkpoint / restart -------------------------------------------
    CKPT_ROUNDS = ("ckpt.rounds", Counter, Count, "Distributed checkpoint rounds committed");
    CKPT_IMAGE_BYTES = ("ckpt.image_bytes", Histogram, Bytes, "Checkpoint image size per rank");
    CKPT_WRITE_NS = ("ckpt.write_ns", Histogram, VirtualNanos, "Stable-storage write time per image");
    CKPT_ROUND_NS = ("ckpt.round_ns", Histogram, VirtualNanos, "Quiesce -> commit per checkpoint round");
    RECOVERY_RESTARTS = ("recovery.restarts", Counter, Count, "Application restarts after failures");
    RECOVERY_RESTORE_NS = ("recovery.restore_ns", Histogram, VirtualNanos, "Image load + rollback time per rank");
    CKPT_FRAGMENTS_STORED = ("ckpt.fragments_stored", Counter, Count, "Checkpoint fragments pushed to peer memory (replica backend)");
    CKPT_FRAGMENTS_FETCHED = ("ckpt.fragments_fetched", Counter, Count, "Checkpoint fragments pulled from peers during recovery");
    CKPT_REPLICATION_BYTES = ("ckpt.replication_bytes", Histogram, Bytes, "Bytes replicated to peers per checkpoint image");
    CKPT_PARITY_REBUILDS = ("ckpt.parity_rebuilds", Counter, Count, "Fragments reconstructed from XOR parity groups");
    RECOVERY_FETCH_NS = ("recovery.fetch_ns", Histogram, VirtualNanos, "Peer-memory image reassembly time per rank (replica backend)");

    // --- Daemon / liveness ----------------------------------------------
    PROCS_RUNNING = ("procs.running", Gauge, Count, "Application processes alive on this node");
    TRACE_DROPPED = ("trace.dropped", Counter, Count, "Trace events dropped by the bounded ring");
    TRACE_DEDUPED = ("trace.deduped", Counter, Count, "Trace events coalesced by deduplication");

    // --- Recovery forensics (event bus + postmortems) --------------------
    EVENTS_PUBLISHED = ("events.published", Counter, Count, "Cluster events appended to this node's event bus");
    EVENTS_DROPPED = ("events.dropped", Counter, Count, "Cluster events evicted from the bounded event ring");
    RECOVERY_DETECT_NS = ("recovery.detect_ns", Histogram, WallNanos, "Failure detection latency: last heartbeat heard to suspicion");
    RECOVERY_ROLLBACK_VT_NS = ("recovery.rollback_vt_ns", Histogram, VirtualNanos, "Rollback depth: virtual time between the recovery line and the rollback");
    RECOVERY_LOST_MSGS = ("recovery.lost_msgs", Histogram, Count, "Messages consumed since the recovery line that a rollback discards");
    RECOVERY_RESPAWN_SEND_NS = ("recovery.respawn_send_ns", Histogram, VirtualNanos, "Respawn-to-first-send: restore completion to first outbound message");
}

/// Table 1 message-count metric for a class.
pub fn msg_count(class: MsgClass) -> MetricId {
    match class {
        MsgClass::Control => MSG_COUNT_CONTROL,
        MsgClass::Coordination => MSG_COUNT_COORDINATION,
        MsgClass::Data => MSG_COUNT_DATA,
        MsgClass::LwMembership => MSG_COUNT_LW_MEMBERSHIP,
        MsgClass::Configuration => MSG_COUNT_CONFIGURATION,
        MsgClass::CheckpointRestart => MSG_COUNT_CKPT_RESTART,
    }
}

/// Table 1 message-bytes metric for a class.
pub fn msg_bytes(class: MsgClass) -> MetricId {
    match class {
        MsgClass::Control => MSG_BYTES_CONTROL,
        MsgClass::Coordination => MSG_BYTES_COORDINATION,
        MsgClass::Data => MSG_BYTES_DATA,
        MsgClass::LwMembership => MSG_BYTES_LW_MEMBERSHIP,
        MsgClass::Configuration => MSG_BYTES_CONFIGURATION,
        MsgClass::CheckpointRestart => MSG_BYTES_CKPT_RESTART,
    }
}

/// The seven Figure 6 layer histograms, send-to-receive order.
pub const LAYERS: [MetricId; 7] = [
    LAYER_APP_TO_MPI,
    LAYER_MPI_SEND,
    LAYER_VNI_SEND,
    LAYER_POLL,
    LAYER_VNI_RECV,
    LAYER_MPI_RECV,
    LAYER_MPI_TO_APP,
];

/// Iterator over every metric id.
pub fn all() -> impl Iterator<Item = MetricId> {
    (0..DEFS.len() as u16).map(MetricId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for def in DEFS {
            assert!(!def.name.is_empty());
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
        }
    }

    #[test]
    fn class_mappings_cover_all_six() {
        let mut counts = std::collections::BTreeSet::new();
        let mut bytes = std::collections::BTreeSet::new();
        for class in MsgClass::ALL {
            assert_eq!(msg_count(class).kind(), MetricKind::Counter);
            assert_eq!(msg_bytes(class).kind(), MetricKind::Counter);
            assert!(msg_count(class).name().starts_with("msg.count."));
            assert!(msg_bytes(class).name().starts_with("msg.bytes."));
            assert!(counts.insert(msg_count(class)), "mapping must be injective");
            assert!(bytes.insert(msg_bytes(class)), "mapping must be injective");
        }
    }

    /// The collective counters must stay one contiguous block: `STATS`
    /// renders in DEFS order, so contiguity is what groups them in the
    /// management output.
    #[test]
    fn coll_metrics_form_one_contiguous_block() {
        let ids: Vec<u16> = (0..DEFS.len() as u16)
            .filter(|i| DEFS[*i as usize].name.starts_with("coll."))
            .collect();
        assert_eq!(ids.len(), 10, "expected the full coll.* block");
        for w in ids.windows(2) {
            assert_eq!(w[1], w[0] + 1, "coll.* block must be contiguous");
        }
        assert_eq!(COLL_ALGO_ALLREDUCE_REDUCE_BCAST.0, ids[0]);
        assert_eq!(COLL_SEGMENTS.0, *ids.last().unwrap());
    }

    #[test]
    fn layer_table_matches_kinds() {
        for id in LAYERS {
            assert_eq!(id.kind(), MetricKind::Histogram);
        }
    }
}
