//! Log-bucketed histograms: power-of-two buckets, lock-free recording,
//! quantile estimates from bucket upper bounds.

use std::sync::atomic::{AtomicU64, Ordering};

use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::Result;

pub const BUCKETS: usize = 64;

/// Bucket index for a value: 0 holds zero, bucket `i >= 1` holds values in
/// `(2^(i-1) - 1, 2^i - 1]`, i.e. values up to `2^i - 1`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (inclusive).
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Lock-free log-bucketed histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); BUCKETS + 1].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn snapshot(&self) -> HistSnap {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                buckets.push((i as u8, v));
            }
        }
        HistSnap {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen, mergeable, wire-encodable histogram state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnap {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistSnap {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the first bucket at which the
    /// cumulative count reaches `q * count`. The true max is reported for
    /// `q >= 1`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                // Never report beyond the observed maximum.
                return bucket_bound(idx as usize).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Accumulates another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnap) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(idx, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += n,
                Err(pos) => self.buckets.insert(pos, (idx, n)),
            }
        }
    }
}

impl Encode for HistSnap {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.count);
        enc.put_u64(self.sum);
        enc.put_u64(self.max);
        enc.put_u16(self.buckets.len() as u16);
        for &(idx, n) in &self.buckets {
            enc.put_u8(idx);
            enc.put_u64(n);
        }
    }
}

impl Decode for HistSnap {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let count = dec.get_u64()?;
        let sum = dec.get_u64()?;
        let max = dec.get_u64()?;
        let n = dec.get_u16()? as usize;
        let mut buckets = Vec::with_capacity(n.min(BUCKETS + 1));
        for _ in 0..n {
            let idx = dec.get_u8()?;
            let cnt = dec.get_u64()?;
            buckets.push((idx, cnt));
        }
        Ok(HistSnap {
            count,
            sum,
            max,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Each bucket's upper bound maps back into that bucket, and the
        // next value up maps into the next bucket.
        for i in 1..63 {
            let bound = bucket_bound(i);
            assert_eq!(bucket_of(bound), i, "bound of bucket {i}");
            assert_eq!(bucket_of(bound + 1), i + 1, "first value past bucket {i}");
        }
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // p50 of 1..=1000 is ~500; log-bucket estimate must land within
        // the enclosing power-of-two bracket.
        assert!(s.p50() >= 500 && s.p50() <= 1023, "p50={}", s.p50());
        assert!(s.p99() >= 990, "p99={}", s.p99());
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100);
        b.record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 1110);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn snapshot_codec_roundtrip() {
        let h = Histogram::new();
        for v in [0, 1, 5, 1 << 20, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let bytes = s.encode_to_bytes();
        assert_eq!(HistSnap::decode_from_bytes(&bytes).unwrap(), s);
    }
}
