//! `starfish-telemetry`: the measurement substrate of the Starfish
//! reproduction.
//!
//! The paper's daemons "track application health", and every experimental
//! claim (Figures 3–6, Table 1) is a measurement of runtime behaviour.
//! This crate makes that observability first-class instead of ad hoc:
//!
//! * [`Counter`]/[`Gauge`] — sharded, lock-free, cheap enough for the MPI
//!   fast path;
//! * [`Histogram`] — log-bucketed latency/size distributions with
//!   p50/p95/p99/max;
//! * [`MetricId`] — a static registry of every metric the system emits
//!   (see [`metric::DEFS`]), so node snapshots aggregate by identity;
//! * [`Registry`] — a per-node (or per-process) handle owning one slot per
//!   metric, cloneable and shareable across threads;
//! * [`Timeline`] — multi-phase span recording (checkpoint rounds, view
//!   changes, recovery) stamped in both virtual time and wall time;
//! * [`Snapshot`] — a wire-encodable dump of a registry, mergeable across
//!   nodes; the daemons ship these over the totally ordered ensemble path
//!   and the management protocol renders the aggregate (`STATS`, `HEALTH`,
//!   `TIMELINE`).

pub mod counter;
pub mod histogram;
pub mod metric;
pub mod registry;
pub mod render;
pub mod snapshot;
pub mod timeline;

pub use counter::{Counter, Gauge};
pub use histogram::{HistSnap, Histogram};
pub use metric::{MetricDef, MetricId, MetricKind, Unit};
pub use registry::Registry;
pub use render::{render_stats, render_timeline};
pub use snapshot::Snapshot;
pub use timeline::{SpanId, Timeline, TimelineEvent};
