//! The scenario driver: replays a [`FaultPlan`] against an in-memory
//! cluster and records everything the oracles need.
//!
//! The MPI family (`run_mpi_scenario`) is **single-threaded and fully
//! deterministic**: direct-mode reliable endpoints on an `Ideal` fabric
//! with zero layer costs, every receive drained synchronously, every fault
//! decision drawn from seeded streams. Re-running a plan yields a
//! bit-identical [`ScenarioReport`] — the property the regression corpus
//! and the shrinker depend on.
//!
//! Each step the driver (1) fires the plan's due events, (2) lets every
//! rank drain its arrivals, (3) has every rank send one sequenced message
//! to a seed-chosen peer, and (4) takes a coordinated checkpoint round on
//! the plan's cadence. After the last step it *quiesces*: heals all
//! partitions, clears all link faults, then alternates reliability flushes
//! and drains until no data moves for three rounds and no packet is queued
//! anywhere — at which point the oracles judge the endstate.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use starfish_checkpoint::replica::{ReplicaNet, ReplicaStore};
use starfish_checkpoint::{CkptImage, CkptLevel, CkptStore, CkptValue, MACHINES};
use starfish_events::{ClusterEvent, EventKind, Phase, Postmortem, Rollback};
use starfish_mpi::{CtsCadence, MpiEndpoint, RankDirectory, RecvMode, WORLD_CONTEXT};
use starfish_trace::{FlightRecorder, ProcTrace};
use starfish_util::rng::DetRng;
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, Epoch, NodeId, Rank, VClock, VirtualTime};
use starfish_vni::{Fabric, FaultStats, Ideal, LayerCosts};

use crate::plan::{Event, FaultPlan};

/// Application id every scenario runs under.
pub const CHAOS_APP: AppId = AppId(7);

/// Traffic tag (a single flow per rank pair keeps oracles simple).
const TRAFFIC_TAG: u64 = 1;

/// Stream tag separating traffic choices from plan generation.
const TRAFFIC_STREAM: u64 = 0x5452_4146; // "TRAF"

/// Real-time bound on the quiescence phase; hitting it marks the report
/// `quiesced: false`, which the quiescence oracle turns into a violation.
const QUIESCE_DEADLINE: Duration = Duration::from_secs(20);

/// Everything a scenario run exposes to the oracles. `PartialEq` is the
/// determinism contract: two runs of one plan must compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioReport {
    /// Per directed rank pair: payload ids in send order (only sends the
    /// endpoint accepted — a rejected send never left the source).
    pub sent: BTreeMap<(u32, u32), Vec<u64>>,
    /// Per receiver: (source rank, payload id) in arrival order.
    pub recv: BTreeMap<u32, Vec<(u32, u64)>>,
    /// Sends rejected at the source (partitioned/crashed destination).
    pub send_rejects: u64,
    /// Fabric fault-layer accounting at the end of the run.
    pub stats: FaultStats,
    /// Packets still sitting in fabric queues after quiescence.
    pub queued: usize,
    /// Whether the quiescence loop converged before its deadline.
    pub quiesced: bool,
    /// Coordinated checkpoint rounds completed.
    pub ckpt_rounds: u64,
    /// Torn-image injections that hit an existing image.
    pub corruptions: u64,
    /// The recovery line (`latest_common_index`) over live ranks at the end.
    pub line: u64,
    /// Whether every live rank can actually read an image at `line`.
    pub line_restorable: bool,
    /// Ranks whose node crashed mid-run (oracles exclude their flows from
    /// completeness checks: a dead port eats frames by design).
    pub dead_ranks: Vec<u32>,
    /// Rendezvous transfers still awaiting CTS after quiescence (payload
    /// never left the sender). Zero on a converged run.
    pub rndv_pending: usize,
    /// Deliveries whose body did not match the sender's deterministic
    /// fill — a mis-spliced rendezvous DATA merge or torn payload.
    pub payload_corruptions: u64,
    /// The plan's `replica <k>` directive (`None` = legacy disk store).
    pub replica_k: Option<u8>,
    /// Distinct nodes that crashed at least once (a restart brings the
    /// node back empty, so its pre-crash replicas stay lost).
    pub nodes_lost: u32,
    /// Data fragments pushed to peer memory across all checkpoint rounds.
    pub replica_fragments: u64,
    /// Per-rank puts that could not reach full `k`-replica strength
    /// (fewer than `k` live peers at put time).
    pub replica_under_replicated: u64,
    /// Parity-group rebuilds needed while proving the final line
    /// restorable (0 ⇒ every fragment still had a live full copy).
    pub replica_parity_rebuilds: u64,
    /// Modeled failure-detection latency of the plan's *first* crash,
    /// vt-ns: from the crash to the first heartbeat tick at which the
    /// detector's silence window has expired. Present only when the plan
    /// declares a `heartbeat` and a node crashed; always bounded by
    /// `timeout + 2 * interval`.
    pub detect_ns: Option<u64>,
    /// Rollback depth a recovery from the final line would take: virtual
    /// time from the end of the run back to the line's checkpoint round.
    /// Present when a node crashed.
    pub rollback_depth_ns: Option<u64>,
    /// Accepted sends issued after the final line's round — the traffic a
    /// rollback to that line discards. Present when a node crashed.
    pub rollback_lost_msgs: Option<u64>,
    /// Modeled cost of reassembling every live rank's image at the line
    /// from peer memory (sum of per-rank parallel fetch costs, vt-ns).
    /// Present for replica-backed plans with a crash and a line > 0.
    pub restore_ns: Option<u64>,
}

/// Replay `plan` deterministically; see the module docs for the schedule.
pub fn run_mpi_scenario(plan: &FaultPlan) -> ScenarioReport {
    run_scenario_inner(plan, false).0
}

/// Replay `plan` with a flight recorder attached to every rank plus a
/// plan-level `"chaos"` recorder that logs the injected faults. Returns the
/// identical [`ScenarioReport`] a plain run produces (recorders never touch
/// virtual clocks, so the determinism contract is preserved) together with
/// the dumped rings, ready for [`starfish_trace::reassemble`] or
/// [`starfish_trace::perfetto::export`].
pub fn run_mpi_scenario_traced(plan: &FaultPlan) -> (ScenarioReport, Vec<ProcTrace>) {
    run_scenario_inner(plan, true)
}

fn run_scenario_inner(plan: &FaultPlan, traced: bool) -> (ScenarioReport, Vec<ProcTrace>) {
    let fabric = Fabric::new(Box::new(Ideal), LayerCosts::zero());
    for n in 0..plan.nodes {
        fabric.add_node(NodeId(n));
    }
    for f in &plan.faults {
        fabric.set_link_fault(NodeId(f.src), NodeId(f.dst), f.to_fault());
    }
    let store = CkptStore::new();
    // Diskless mode: a `replica <k>` directive swaps the stable store for
    // the in-memory replicated one; node crashes then take checkpoint
    // fragments with them, which is exactly what the diskless oracles probe.
    let replica: Option<(ReplicaStore, ReplicaNet, u8)> = plan.replica_k.map(|k| {
        let rs = ReplicaStore::new();
        rs.set_live(&(0..plan.nodes).map(NodeId).collect::<Vec<_>>());
        (rs, ReplicaNet::lan_1999(), k)
    });
    let placement: Vec<NodeId> = (0..plan.ranks).map(|r| NodeId(r % plan.nodes)).collect();
    let dir = RankDirectory::with_placement(&placement);
    let recorders: Vec<FlightRecorder> = (0..plan.ranks)
        .map(|r| {
            if traced {
                FlightRecorder::new(
                    &format!("{CHAOS_APP}.{}", Rank(r)),
                    starfish_trace::DEFAULT_CAPACITY,
                )
            } else {
                FlightRecorder::disabled()
            }
        })
        .collect();
    let chaos_rec = if traced {
        FlightRecorder::new("chaos", starfish_trace::DEFAULT_CAPACITY)
    } else {
        FlightRecorder::disabled()
    };
    let mut eps: Vec<MpiEndpoint> = (0..plan.ranks)
        .map(|r| {
            let mut ep = MpiEndpoint::new(
                &fabric,
                CHAOS_APP,
                Rank(r),
                dir.clone(),
                RecvMode::Direct,
                TraceSink::disabled(),
            )
            .expect("bind endpoint");
            ep.set_reliable(!plan.unreliable);
            ep.set_recorder(recorders[r as usize].clone());
            if let Some(t) = plan.rndv_threshold {
                ep.set_rendezvous_threshold(t as usize);
            }
            if let Some(c) = plan.rndv_chunk {
                ep.set_rendezvous_chunk_bytes(c as usize);
            }
            // Wall-clock CTS pacing would make re-grant counts (and thus
            // the fault layer's decision-stream consumption) depend on
            // scheduling; per-encounter pacing keeps replays bit-identical.
            ep.set_cts_cadence(CtsCadence::EveryEncounter);
            ep
        })
        .collect();
    let mut clocks: Vec<VClock> = (0..plan.ranks).map(|_| VClock::new()).collect();

    // Payload: id in the first 8 bytes (what the oracles track), padded to
    // the plan's size with a (rank, id)-derived fill so a misdelivered
    // rendezvous DATA merge could not go unnoticed.
    let payload_len = plan.payload.max(8) as usize;

    let mut rng = DetRng::new(plan.seed).derive(TRAFFIC_STREAM);
    let mut report = ScenarioReport::default();
    let mut next_id: Vec<u64> = vec![0; plan.ranks as usize];
    let mut dead: Vec<bool> = vec![false; plan.ranks as usize];
    let mut crashed_nodes: BTreeSet<u32> = BTreeSet::new();
    report.replica_k = plan.replica_k;
    // Forensic bookkeeping: when the first node died, and how many sends
    // had been accepted by the end of each checkpoint round (so the
    // rollback oracle can count the traffic a restore would discard).
    let mut first_crash_vt: Option<u64> = None;
    let mut accepted_total: u64 = 0;
    let mut sends_at_round: Vec<u64> = Vec::new();

    for step in 0..plan.steps {
        // The plan-level recorder stamps injections with a step-derived
        // virtual time (the driver's rank clocks are per-endpoint).
        let step_vt = VirtualTime::from_nanos((step as u64 + 1) * 1_000);
        for te in plan.events_at(step) {
            chaos_rec.fault(step_vt, &format!("@{step} {:?}", te.event));
            match te.event {
                Event::Partition(a, b) => fabric.partition(NodeId(a), NodeId(b)),
                Event::Heal(a, b) => fabric.heal(NodeId(a), NodeId(b)),
                Event::Crash(n) => {
                    fabric.crash_node(NodeId(n));
                    mark_dead(&mut dead, plan, n);
                    crashed_nodes.insert(n);
                    first_crash_vt.get_or_insert(step_vt.as_nanos());
                    if let Some((rs, _, _)) = &replica {
                        rs.node_down(NodeId(n));
                    }
                }
                Event::SilentCrash(n) => {
                    fabric.crash_node_silently(NodeId(n));
                    mark_dead(&mut dead, plan, n);
                    crashed_nodes.insert(n);
                    first_crash_vt.get_or_insert(step_vt.as_nanos());
                    if let Some((rs, _, _)) = &replica {
                        rs.node_down(NodeId(n));
                    }
                }
                // Restarting an application rank needs the full runtime's
                // recovery machinery; the ensemble/cluster family covers
                // it. Here a restart only revives the node on the wire —
                // with its memory wiped, so any checkpoint fragments it
                // hosted before the crash stay lost.
                Event::Restart(n) => {
                    fabric.add_node(NodeId(n));
                    if let Some((rs, _, _)) = &replica {
                        rs.node_wiped(NodeId(n));
                    }
                }
                Event::Corrupt { rank, index } => {
                    let hit = match &replica {
                        Some((rs, _, _)) => rs.corrupt_image(CHAOS_APP, Rank(rank), index),
                        None => store.corrupt_image(CHAOS_APP, Rank(rank), index),
                    };
                    if hit {
                        report.corruptions += 1;
                    }
                }
            }
        }

        for r in 0..plan.ranks as usize {
            if dead[r] {
                continue;
            }
            drain(&mut eps[r], &mut clocks[r], &mut report);
            // One message to a seed-chosen live-ish peer. The rng draw
            // happens unconditionally so the traffic schedule is a pure
            // function of the seed, independent of fault outcomes.
            let peer = rng.below(plan.ranks as u64) as u32;
            if peer == r as u32 {
                continue;
            }
            let id = next_id[r];
            let mut buf = vec![0u8; payload_len];
            buf[..8].copy_from_slice(&id.to_le_bytes());
            for (i, b) in buf[8..].iter_mut().enumerate() {
                *b = (id as u8) ^ (r as u8) ^ (i as u8);
            }
            let (ep, clock) = (&mut eps[r], &mut clocks[r]);
            // Fire and forget: an accepted rendezvous send's RTS is out and
            // its payload parked; the drain/quiescence pumping drives the
            // CTS → DATA completion, gated on `pending_rendezvous` below.
            match ep.isend_world(clock, Rank(peer), WORLD_CONTEXT, TRAFFIC_TAG, &buf) {
                Ok(_) => {
                    next_id[r] += 1;
                    accepted_total += 1;
                    report.sent.entry((r as u32, peer)).or_default().push(id);
                }
                Err(_) => report.send_rejects += 1,
            }
        }

        if plan.ckpt_every > 0 && (step + 1) % plan.ckpt_every == 0 {
            report.ckpt_rounds += 1;
            chaos_rec.mark(
                step_vt,
                "ckpt.round",
                &format!("index {}", report.ckpt_rounds),
            );
            for r in 0..plan.ranks {
                if dead[r as usize] {
                    continue;
                }
                let img = CkptImage::capture(
                    CHAOS_APP,
                    Rank(r),
                    Epoch(0),
                    report.ckpt_rounds,
                    CkptLevel::Vm { arch: MACHINES[0] },
                    &CkptValue::Int(report.ckpt_rounds as i64),
                    vec![],
                    clocks[r as usize].now(),
                )
                .expect("capture image");
                match &replica {
                    Some((rs, net, k)) => {
                        let receipt = rs.put_replicated(img, placement[r as usize], *k, net);
                        report.replica_fragments += u64::from(receipt.fragments);
                        if receipt.under_replicated {
                            report.replica_under_replicated += 1;
                        }
                    }
                    None => {
                        store.put(img);
                    }
                }
            }
            sends_at_round.push(accepted_total);
        }
    }

    // ---- quiescence: repair the wire, then drain to a fixed point -------
    for a in 0..plan.nodes {
        for b in a + 1..plan.nodes {
            fabric.heal(NodeId(a), NodeId(b));
        }
    }
    fabric.clear_all_link_faults();
    // The quiescence deadline is a real-time escape hatch for a hung run,
    // not part of the virtual-time schedule: a converging run never consults
    // it, so determinism is unaffected.
    let deadline = Instant::now() + QUIESCE_DEADLINE; // lint: allow(wall-clock)
    let mut quiet = 0u32;
    report.quiesced = true;
    let pending_rndv = |eps: &[MpiEndpoint], dead: &[bool]| -> usize {
        eps.iter()
            .zip(dead)
            .filter(|(_, d)| !**d)
            .map(|(e, _)| e.pending_rendezvous())
            .sum()
    };
    while quiet < 3 || fabric.queued_packets() > 0 || pending_rndv(&eps, &dead) > 0 {
        let overdue = Instant::now() > deadline; // lint: allow(wall-clock)
        if overdue {
            report.quiesced = false;
            break;
        }
        // Flush phase first, then drain phase: every Flush/NACK emitted
        // this round is consumed this round once the system has settled.
        for r in 0..plan.ranks as usize {
            if !dead[r] {
                eps[r].flush_reliable(&mut clocks[r]);
            }
        }
        let before: usize = report.recv.values().map(Vec::len).sum();
        for r in 0..plan.ranks as usize {
            if !dead[r] {
                drain(&mut eps[r], &mut clocks[r], &mut report);
            }
        }
        let after: usize = report.recv.values().map(Vec::len).sum();
        if after == before {
            quiet += 1;
        } else {
            quiet = 0;
        }
    }

    report.stats = fabric.fault_stats();
    report.queued = fabric.queued_packets();
    report.rndv_pending = pending_rndv(&eps, &dead);
    report.dead_ranks = (0..plan.ranks).filter(|r| dead[*r as usize]).collect();
    let live: Vec<Rank> = (0..plan.ranks)
        .filter(|r| !dead[*r as usize])
        .map(Rank)
        .collect();
    report.nodes_lost = crashed_nodes.len() as u32;
    let mut restore_cost_ns: u64 = 0;
    match &replica {
        Some((rs, net, _)) => {
            report.line = rs.latest_common_index(CHAOS_APP, &live);
            // Restorability is proven the hard way: actually reassemble
            // every live rank's image at the line from surviving peer
            // memory (parity rebuilds allowed), fetched to a live node.
            if report.line > 0 {
                let to = NodeId(live[0].0 % plan.nodes);
                let mut restorable = true;
                for r in &live {
                    match rs.fetch(CHAOS_APP, *r, report.line, to, net) {
                        Some(f) => {
                            report.replica_parity_rebuilds += u64::from(f.parity_rebuilds);
                            restore_cost_ns += f.cost.as_nanos();
                        }
                        None => restorable = false,
                    }
                }
                report.line_restorable = restorable;
            } else {
                report.line_restorable = true;
            }
        }
        None => {
            report.line = store.latest_common_index(CHAOS_APP, &live);
            report.line_restorable = report.line == 0
                || live
                    .iter()
                    .all(|r| store.get(CHAOS_APP, *r, report.line).is_some());
        }
    }
    // ---- recovery forensics: a pure function of (plan, schedule) --------
    // The model mirrors what the live daemon's forensics module measures,
    // but on the driver's synthetic clock (step s fires at (s+1) µs): the
    // numbers are exact, so the forensic oracles can assert equalities.
    if let Some(crash_vt) = first_crash_vt {
        if let Some((interval_us, timeout_us)) = plan.heartbeat {
            report.detect_ns = Some(modeled_detect_ns(
                crash_vt,
                interval_us * 1_000,
                timeout_us * 1_000,
            ));
        }
        let end_vt = plan.steps as u64 * 1_000;
        let line_vt = report.line * plan.ckpt_every as u64 * 1_000;
        report.rollback_depth_ns = Some(end_vt.saturating_sub(line_vt));
        let at_line = if report.line > 0 {
            sends_at_round[report.line as usize - 1]
        } else {
            0
        };
        report.rollback_lost_msgs = Some(accepted_total - at_line);
        if plan.replica_k.is_some() && report.line > 0 && report.line_restorable {
            report.restore_ns = Some(restore_cost_ns);
        }
    }
    let traces = if traced {
        let mut t: Vec<ProcTrace> = recorders.iter().map(|r| r.dump()).collect();
        t.push(chaos_rec.dump());
        t
    } else {
        Vec::new()
    };
    (report, traces)
}

/// The heartbeat detector model: beacons fire at every multiple of
/// `interval_ns`; the crash silences them after the tick at or before
/// `crash_vt`; suspicion fires at the first later tick by which the node
/// has been silent longer than `timeout_ns`. Worst case over crash phase:
/// `timeout + 2 * interval`.
fn modeled_detect_ns(crash_vt: u64, interval_ns: u64, timeout_ns: u64) -> u64 {
    let last_beacon = (crash_vt / interval_ns) * interval_ns;
    let suspect = ((last_beacon + timeout_ns) / interval_ns + 1) * interval_ns;
    suspect - crash_vt
}

/// Assemble the postmortem bundle for a completed scenario run: the same
/// JSON shape the live daemon writes on a recovery, but fed entirely by
/// the driver's deterministic model, so two replays of one plan yield
/// byte-identical bundles. `None` when the plan crashed no node — there
/// was nothing to recover from.
pub fn postmortem(plan: &FaultPlan, report: &ScenarioReport) -> Option<Postmortem> {
    let crashes: Vec<(u64, u32, bool)> = plan
        .events
        .iter()
        .filter_map(|te| {
            let vt = (te.step as u64 + 1) * 1_000;
            match te.event {
                Event::Crash(n) => Some((vt, n, false)),
                Event::SilentCrash(n) => Some((vt, n, true)),
                _ => None,
            }
        })
        .collect();
    let &(crash_vt, first_node, silent) = crashes.first()?;
    let end_vt = plan.steps as u64 * 1_000;
    // With a modeled heartbeat the death declaration may land *after* the
    // last step (the detector's silence window outlives a short run); the
    // recovery window extends to cover it.
    let dead_vt = crash_vt + report.detect_ns.unwrap_or(0);
    let complete_vt = end_vt.max(dead_vt);
    let live_ranks = plan.ranks as usize - report.dead_ranks.len();

    let mut pm = Postmortem::new(CHAOS_APP.to_string());
    pm.epoch = u64::from(report.nodes_lost);
    pm.store_backend = match plan.replica_k {
        Some(k) => format!("replica:{k}"),
        None => "disk".into(),
    };
    pm.trigger = format!(
        "node n{first_node} dead ({})",
        if silent && plan.heartbeat.is_some() {
            "heartbeat timeout"
        } else {
            "fail-stop"
        }
    );
    pm.begin_vt_ns = crash_vt;
    pm.complete_vt_ns = complete_vt;
    if let Some(d) = report.detect_ns {
        pm.phases.push(Phase::virt("detect", d));
    }
    if let Some(r) = report.restore_ns {
        pm.phases.push(Phase::virt("restore", r));
    }
    pm.phases.push(Phase::virt(
        "respawn-window",
        complete_vt.saturating_sub(crash_vt),
    ));
    pm.rollback = Rollback {
        line: vec![report.line; live_ranks],
        depth_vt_ns: report.rollback_depth_ns.unwrap_or(0),
        messages_lost: report.rollback_lost_msgs.unwrap_or(0),
    };

    // The modeled event sequence, in the order the live bus would carry it.
    let mut kinds: Vec<(u64, EventKind)> = Vec::new();
    for &(vt, n, s) in &crashes {
        kinds.push((
            vt,
            EventKind::FaultInjected {
                desc: format!("{} n{n}", if s { "silent-crash" } else { "crash" }),
            },
        ));
    }
    if let (Some(d), Some((interval_us, _))) = (report.detect_ns, plan.heartbeat) {
        // At suspicion the node has been silent since its last beacon.
        let i = interval_us * 1_000;
        let last_beacon = (crash_vt / i) * i;
        kinds.push((
            dead_vt,
            EventKind::NodeSuspected {
                node: NodeId(first_node),
                silent_ns: crash_vt + d - last_beacon,
            },
        ));
    }
    kinds.push((
        dead_vt,
        EventKind::NodeDead {
            node: NodeId(first_node),
        },
    ));
    kinds.push((
        dead_vt,
        EventKind::RecoveryBegin {
            app: CHAOS_APP,
            dead: vec![NodeId(first_node)],
        },
    ));
    kinds.push((
        dead_vt,
        EventKind::RecoveryRestore {
            app: CHAOS_APP,
            epoch: Epoch(report.nodes_lost),
            line: vec![report.line; live_ranks],
        },
    ));
    kinds.push((
        complete_vt,
        EventKind::RecoveryComplete {
            app: CHAOS_APP,
            epoch: Epoch(report.nodes_lost),
        },
    ));
    kinds.sort_by_key(|(vt, _)| *vt);
    pm.events = kinds
        .into_iter()
        .enumerate()
        .map(|(seq, (vt, kind))| ClusterEvent {
            seq: seq as u64,
            vt: VirtualTime::from_nanos(vt),
            origin: NodeId(0),
            kind,
        })
        .collect();
    // Causal slice: the plan's full injection schedule (what the chaos
    // flight recorder logs during a traced run).
    pm.trace = plan
        .events
        .iter()
        .map(|te| format!("chaos: @{} {:?}", te.step, te.event))
        .collect();
    Some(pm)
}

/// Where chaos bundles land (mirrors the daemon's postmortem directory):
/// `$STARFISH_POSTMORTEM_DIR`, else `target/postmortems/` at the workspace
/// root.
pub fn postmortem_dir() -> std::path::PathBuf {
    match std::env::var_os("STARFISH_POSTMORTEM_DIR") {
        Some(d) => std::path::PathBuf::from(d),
        None => std::path::PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/postmortems"
        )),
    }
}

/// Write the bundle for this plan under [`postmortem_dir`] as
/// `chaos-seed<seed>-e<epoch>.json`; returns the path.
pub fn write_postmortem(plan: &FaultPlan, pm: &Postmortem) -> std::io::Result<std::path::PathBuf> {
    let dir = postmortem_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("chaos-seed{}-e{}.json", plan.seed, pm.epoch));
    std::fs::write(&path, pm.to_json())?;
    Ok(path)
}

/// Mark every rank placed on node `n` dead.
fn mark_dead(dead: &mut [bool], plan: &FaultPlan, n: u32) {
    for r in 0..plan.ranks {
        if r % plan.nodes == n {
            dead[r as usize] = true;
        }
    }
}

/// Drain every matchable arrival at `ep` into the report.
fn drain(ep: &mut MpiEndpoint, clock: &mut VClock, report: &mut ScenarioReport) {
    while let Ok(Some(msg)) = ep.try_recv_world(clock, WORLD_CONTEXT, None, None) {
        let mut id = [0u8; 8];
        id.copy_from_slice(&msg.data[..8]);
        let id = u64::from_le_bytes(id);
        // The body past the id is a pure function of (sender, id): check it
        // so a mis-spliced rendezvous DATA merge cannot go unnoticed.
        let fill_ok = msg.data[8..]
            .iter()
            .enumerate()
            .all(|(i, b)| *b == (id as u8) ^ (msg.src.0 as u8) ^ (i as u8));
        if !fill_ok {
            report.payload_corruptions += 1;
        }
        report
            .recv
            .entry(ep.rank().0)
            .or_default()
            .push((msg.src.0, id));
    }
}
