//! Greedy plan shrinking: minimize a failing [`FaultPlan`] while a
//! predicate keeps failing.
//!
//! The local proptest stand-in samples cases but does not shrink, so the
//! chaos suite shrinks at the *plan* level instead — which is also a
//! better level: a plan is already a semantic description of the schedule,
//! so deleting an event or zeroing a probability is a meaningful
//! simplification, not a bytewise mutation. The shrinker runs removal
//! passes to a fixed point:
//!
//! 1. drop whole timed events, one at a time;
//! 2. drop whole link-fault specs;
//! 3. zero individual fault probabilities (drop/dup/delay/reorder);
//! 4. truncate the step count (binary descent);
//! 5. disable checkpointing;
//! 6. fall back from diskless replication to the disk store.
//!
//! Every candidate that still fails replaces the current plan, so the
//! result is 1-minimal with respect to these operations and — because the
//! driver is deterministic — replays the same violation forever.

use crate::plan::FaultPlan;

/// Shrink `plan` while `fails` holds. `fails(&plan)` must be true on
/// entry; the returned plan still fails and cannot be shrunk further by
/// the operations above.
pub fn minimize(plan: &FaultPlan, fails: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    assert!(fails(plan), "minimize() needs a failing plan to start from");
    let mut best = plan.clone();
    loop {
        let mut progressed = false;

        // 1. Remove timed events.
        let mut i = 0;
        while i < best.events.len() {
            let mut cand = best.clone();
            cand.events.remove(i);
            if fails(&cand) {
                best = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // 2. Remove whole link faults.
        let mut i = 0;
        while i < best.faults.len() {
            let mut cand = best.clone();
            cand.faults.remove(i);
            if fails(&cand) {
                best = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // 3. Zero individual probabilities of the remaining faults.
        for i in 0..best.faults.len() {
            for field in 0..4 {
                let mut cand = best.clone();
                let f = &mut cand.faults[i];
                let p = match field {
                    0 => &mut f.drop_p,
                    1 => &mut f.dup_p,
                    2 => &mut f.delay_p,
                    _ => &mut f.reorder_p,
                };
                if *p == 0.0 {
                    continue;
                }
                *p = 0.0;
                if fails(&cand) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // 4. Truncate steps (events past the new horizon go too).
        let mut lo = 1u32;
        while lo < best.steps {
            let mid = (lo + best.steps) / 2;
            let mut cand = best.clone();
            cand.steps = mid;
            cand.events.retain(|e| e.step < mid);
            if fails(&cand) {
                best = cand;
                progressed = true;
            } else {
                lo = mid + 1;
            }
        }

        // 5. Try dropping checkpointing entirely.
        if best.ckpt_every != 0 {
            let mut cand = best.clone();
            cand.ckpt_every = 0;
            if fails(&cand) {
                best = cand;
                progressed = true;
            }
        }

        // 6. Try falling back from diskless replication to the disk store
        // (a violation that survives on disk is not a replication bug).
        if best.replica_k.is_some() {
            let mut cand = best.clone();
            cand.replica_k = None;
            if fails(&cand) {
                best = cand;
                progressed = true;
            }
        }

        // 7. Try reverting to whole-transfer DATA frames (a violation that
        // survives without chunking is not a chunk-pipeline bug).
        if best.rndv_chunk.is_some() {
            let mut cand = best.clone();
            cand.rndv_chunk = None;
            if fails(&cand) {
                best = cand;
                progressed = true;
            }
        }

        if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Event, TimedEvent};

    /// Synthetic predicate: the "bug" needs a Corrupt event on rank 0 and
    /// at least 5 steps — everything else is noise the shrinker must shed.
    fn fails(p: &FaultPlan) -> bool {
        p.steps >= 5
            && p.events
                .iter()
                .any(|e| matches!(e.event, Event::Corrupt { rank: 0, .. }))
    }

    #[test]
    fn minimizes_to_the_failure_kernel() {
        let mut plan = FaultPlan::generate(3);
        plan.events.push(TimedEvent {
            step: 2,
            event: Event::Corrupt { rank: 0, index: 1 },
        });
        assert!(fails(&plan));
        let min = minimize(&plan, fails);
        assert!(fails(&min));
        assert_eq!(min.events.len(), 1, "noise events must be shed: {min}");
        assert!(min.faults.is_empty(), "faults are noise here: {min}");
        assert_eq!(min.steps, 5, "steps must reach the boundary: {min}");
        assert_eq!(min.ckpt_every, 0);
    }

    #[test]
    #[should_panic(expected = "needs a failing plan")]
    fn rejects_passing_plans() {
        let plan = FaultPlan::generate(0);
        minimize(&plan, |_| false);
    }
}
