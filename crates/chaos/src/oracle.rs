//! Invariant oracles: judgments over a [`ScenarioReport`] endstate.
//!
//! Six classes run against every MPI-family scenario:
//!
//! 1. **exactly-once** — every accepted send to a surviving rank is
//!    delivered exactly once (no loss the reliability layer failed to
//!    repair, no duplicate it failed to discard);
//! 2. **per-flow FIFO** — each (sender, receiver) flow is delivered in
//!    send order despite wire reordering and retransmission;
//! 3. **conservation** — the fabric fault layer accounts for every frame:
//!    `accepted + duplicated == delivered + dropped + held`, and nothing
//!    remains queued after quiescence;
//! 4. **recovery line** — the coordinated recovery line is *restorable*
//!    (every live rank can read an image at it) and torn images degrade it
//!    by at most one round each (no domino);
//! 5. **quiescence** — the scenario converges to a fixed point at all,
//!    with no rendezvous transfer left parked awaiting its CTS;
//! 6. **payload integrity** — every delivered body matches the sender's
//!    deterministic fill (a mis-spliced rendezvous DATA merge would show);
//! 7. **diskless recovery** — on `replica <k>` plans, losing at most
//!    `k−1` nodes must leave the full recovery line standing in peer
//!    memory (no disk exists to fall back on).
//!
//! The ensemble family adds **view agreement** and **total order** (see
//! `tests/ensemble_chaos.rs`). Oracles return violation strings rather
//! than panicking so the shrinker can use "still fails" as a predicate.

use crate::driver::ScenarioReport;

/// Run every oracle; an empty vector is a clean bill of health.
pub fn check_all(r: &ScenarioReport) -> Vec<String> {
    let mut v = Vec::new();
    v.extend(exactly_once(r));
    v.extend(fifo_order(r));
    v.extend(conservation(r));
    v.extend(recovery_line(r));
    v.extend(quiescence(r));
    v.extend(payload_integrity(r));
    v.extend(diskless_recovery(r));
    v
}

/// Oracle 1: accepted sends to surviving ranks are delivered exactly once.
pub fn exactly_once(r: &ScenarioReport) -> Option<String> {
    for ((src, dst), sent) in &r.sent {
        if r.dead_ranks.contains(src) || r.dead_ranks.contains(dst) {
            continue; // a dead port eats frames by design
        }
        let mut got: Vec<u64> = r
            .recv
            .get(dst)
            .map(|v| {
                v.iter()
                    .filter(|(s, _)| s == src)
                    .map(|(_, id)| *id)
                    .collect()
            })
            .unwrap_or_default();
        got.sort_unstable();
        let mut want = sent.clone();
        want.sort_unstable();
        if got != want {
            return Some(format!(
                "exactly-once violated on flow {src}->{dst}: sent {} ids, delivered {} ({})",
                want.len(),
                got.len(),
                diff_summary(&want, &got),
            ));
        }
    }
    None
}

/// Oracle 2: per-flow delivery order equals send order.
pub fn fifo_order(r: &ScenarioReport) -> Option<String> {
    for ((src, dst), sent) in &r.sent {
        if r.dead_ranks.contains(src) || r.dead_ranks.contains(dst) {
            continue;
        }
        let got: Vec<u64> = r
            .recv
            .get(dst)
            .map(|v| {
                v.iter()
                    .filter(|(s, _)| s == src)
                    .map(|(_, id)| *id)
                    .collect()
            })
            .unwrap_or_default();
        if got.len() == sent.len() && got != *sent {
            return Some(format!(
                "FIFO violated on flow {src}->{dst}: delivered {got:?}, sent {sent:?}"
            ));
        }
    }
    None
}

/// Oracle 3: fault-layer frame conservation, and an empty wire afterwards.
pub fn conservation(r: &ScenarioReport) -> Option<String> {
    if !r.stats.conserved() {
        return Some(format!(
            "conservation violated: accepted {} + duplicated {} != delivered {} + dropped {} + held {}",
            r.stats.accepted, r.stats.duplicated, r.stats.delivered, r.stats.dropped, r.stats.held
        ));
    }
    if r.quiesced && r.queued != 0 {
        return Some(format!(
            "conservation violated: {} packets still queued after quiescence",
            r.queued
        ));
    }
    None
}

/// Oracle 4: the recovery line is restorable and degrades gracefully.
pub fn recovery_line(r: &ScenarioReport) -> Option<String> {
    if !r.line_restorable {
        return Some(format!(
            "recovery line {} is not restorable by every live rank",
            r.line
        ));
    }
    // Each torn image can pull the jointly-readable line back at most one
    // round; anything steeper is a domino.
    if !r.dead_ranks.is_empty() {
        return None; // crashed ranks stop checkpointing; the bound shifts
    }
    if r.line + r.corruptions < r.ckpt_rounds {
        return Some(format!(
            "domino: line {} after {} rounds with only {} torn images",
            r.line, r.ckpt_rounds, r.corruptions
        ));
    }
    None
}

/// Oracle 5: the run converged before the quiescence deadline.
pub fn quiescence(r: &ScenarioReport) -> Option<String> {
    if !r.quiesced {
        return Some("scenario failed to quiesce before the deadline".into());
    }
    if r.rndv_pending != 0 {
        return Some(format!(
            "{} rendezvous transfers never pushed their payload",
            r.rndv_pending
        ));
    }
    None
}

/// Oracle 6: delivered bodies are byte-identical to what was sent (the
/// driver checks each delivery against the sender's deterministic fill —
/// the teeth behind the rendezvous DATA-merge path).
pub fn payload_integrity(r: &ScenarioReport) -> Option<String> {
    if r.payload_corruptions > 0 {
        return Some(format!(
            "{} delivered payloads had corrupted bodies",
            r.payload_corruptions
        ));
    }
    None
}

/// Oracle 7: the diskless store keeps its `k−1`-loss promise. When every
/// put reached full `k`-replica strength, nothing was torn, and fewer than
/// `k` distinct nodes crashed, every checkpoint round's images still have
/// at least one live copy per fragment — so the recovery line must equal
/// the number of rounds completed (live ranks checkpointed every round).
/// Restorability-from-peer-memory itself is enforced by oracle 4: for
/// replica plans the driver computes `line_restorable` by actually
/// reassembling each image from surviving fragments.
pub fn diskless_recovery(r: &ScenarioReport) -> Option<String> {
    let k = r.replica_k?;
    let promise_in_force =
        r.nodes_lost < u32::from(k) && r.replica_under_replicated == 0 && r.corruptions == 0;
    if promise_in_force && r.line < r.ckpt_rounds {
        return Some(format!(
            "diskless: {} rounds fully replicated at k={k} and only {} nodes lost, \
             yet the peer-memory line regressed to {}",
            r.ckpt_rounds, r.nodes_lost, r.line
        ));
    }
    None
}

fn diff_summary(want: &[u64], got: &[u64]) -> String {
    let missing: Vec<u64> = want.iter().filter(|w| !got.contains(w)).copied().collect();
    let extra: Vec<u64> = got.iter().filter(|g| !want.contains(g)).copied().collect();
    format!("missing {missing:?}, unexpected {extra:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_vni::FaultStats;

    fn clean_report() -> ScenarioReport {
        let mut r = ScenarioReport {
            quiesced: true,
            line_restorable: true,
            ..ScenarioReport::default()
        };
        r.sent.insert((0, 1), vec![0, 1, 2]);
        r.recv.insert(1, vec![(0, 0), (0, 1), (0, 2)]);
        r
    }

    #[test]
    fn clean_report_passes_all_oracles() {
        assert!(check_all(&clean_report()).is_empty());
    }

    #[test]
    fn lost_message_trips_exactly_once() {
        let mut r = clean_report();
        r.recv.get_mut(&1).unwrap().pop();
        let v = check_all(&r);
        assert!(v.iter().any(|m| m.contains("exactly-once")), "{v:?}");
    }

    #[test]
    fn duplicate_trips_exactly_once() {
        let mut r = clean_report();
        r.recv.get_mut(&1).unwrap().push((0, 2));
        assert!(exactly_once(&r).is_some());
    }

    #[test]
    fn swapped_delivery_trips_fifo_only() {
        let mut r = clean_report();
        r.recv.insert(1, vec![(0, 1), (0, 0), (0, 2)]);
        assert!(exactly_once(&r).is_none());
        assert!(fifo_order(&r).is_some());
    }

    #[test]
    fn unbalanced_stats_trip_conservation() {
        let mut r = clean_report();
        r.stats = FaultStats {
            accepted: 5,
            delivered: 3,
            ..FaultStats::default()
        };
        assert!(conservation(&r).is_some());
    }

    #[test]
    fn unrestorable_line_trips_recovery_oracle() {
        let mut r = clean_report();
        r.line = 2;
        r.line_restorable = false;
        assert!(recovery_line(&r).is_some());
    }

    #[test]
    fn steep_line_regression_is_a_domino() {
        let mut r = clean_report();
        r.ckpt_rounds = 5;
        r.corruptions = 1;
        r.line = 2; // one torn image may cost one round, not three
        r.line_restorable = true;
        assert!(recovery_line(&r).is_some());
    }

    #[test]
    fn diskless_line_regression_is_flagged_within_the_promise() {
        let mut r = clean_report();
        r.replica_k = Some(2);
        r.ckpt_rounds = 4;
        r.nodes_lost = 1; // k−1: the promise holds
        r.line = 2;
        assert!(diskless_recovery(&r).is_some());
        r.line = 4;
        assert!(diskless_recovery(&r).is_none());
    }

    #[test]
    fn diskless_promise_is_void_beyond_k_minus_1_or_under_replication() {
        let mut r = clean_report();
        r.replica_k = Some(2);
        r.ckpt_rounds = 4;
        r.line = 0;
        r.nodes_lost = 2; // ≥ k losses: regression is legitimate
        assert!(diskless_recovery(&r).is_none());
        r.nodes_lost = 1;
        r.replica_under_replicated = 3; // puts never reached strength k
        assert!(diskless_recovery(&r).is_none());
        r.replica_under_replicated = 0;
        r.corruptions = 1; // torn images excuse the line too
        assert!(diskless_recovery(&r).is_none());
        // Disk plans are never judged by this oracle.
        r.replica_k = None;
        r.corruptions = 0;
        assert!(diskless_recovery(&r).is_none());
    }

    #[test]
    fn dead_rank_flows_are_excluded() {
        let mut r = clean_report();
        r.recv.get_mut(&1).unwrap().clear();
        r.dead_ranks = vec![1];
        assert!(exactly_once(&r).is_none());
    }
}
