//! # starfish-chaos — deterministic fault-injection harness
//!
//! Starfish's claim (HPDC 1999) is that dynamic MPI programs survive
//! arbitrary node crashes, partitions, and membership churn. Hand-scripted
//! crash points exercise single protocol steps; this crate turns the claim
//! into a property checked under *adversarial schedules*:
//!
//! - [`plan::FaultPlan`] — a seeded, serializable DSL describing one
//!   schedule: per-link packet faults (drop / duplicate / delay / reorder,
//!   injected by the fabric's fault layer), timed partitions and heals,
//!   node crashes (fail-stop and silent), daemon restarts, and torn
//!   checkpoint images;
//! - [`driver`] — replays a plan against an in-memory cluster
//!   deterministically from a single `u64` seed and records the complete
//!   delivery trace;
//! - [`oracle`] — invariant oracles judged at quiescence: exactly-once
//!   delivery, per-flow FIFO, fault-layer frame conservation, recovery-line
//!   restorability (no domino), and convergence; the ensemble test family
//!   adds view agreement and total-order agreement;
//! - [`shrink`] — greedy plan minimization, so a failing random schedule
//!   shrinks to a few lines committed under `tests/regressions/`.
//!
//! See `CHAOS.md` at the repository root for the plan format and the
//! reproduction workflow.

pub mod driver;
pub mod oracle;
pub mod plan;
pub mod shrink;

pub use driver::{
    postmortem, postmortem_dir, run_mpi_scenario, run_mpi_scenario_traced, write_postmortem,
    ScenarioReport, CHAOS_APP,
};
pub use plan::{Event, FaultPlan, LinkFaultSpec, TimedEvent};
pub use shrink::minimize;
