//! The `FaultPlan` DSL: a seeded, serializable description of one
//! adversarial schedule.
//!
//! A plan is the *whole* input of a scenario — the cluster shape, the
//! per-link packet faults armed at boot, and the timed events fired as the
//! driver steps. Everything else (traffic, checkpoint cadence, fault
//! decisions) derives from `seed` through [`DetRng`] streams, so a plan
//! replays bit-for-bit: same plan, same delivery trace, same oracle
//! verdict. That property is what lets a failing random schedule be
//! shrunk to a few lines and committed under `tests/regressions/`.
//!
//! Plans serialize to a line-oriented text format (stable, diffable,
//! hand-editable):
//!
//! ```text
//! starfish-fault-plan v1
//! seed 42
//! nodes 3
//! ranks 4
//! steps 40
//! ckpt-every 8
//! payload 16384
//! rendezvous 4096
//! chunk 1024
//! fault 0->1 seed=7 drop=0.1 dup=0.05 delay=120us@0.1 reorder=0.2
//! @12 partition 0 2
//! @20 heal 0 2
//! @15 corrupt rank=1 index=2
//! ```

use std::fmt;

use starfish_util::rng::DetRng;
use starfish_util::VirtualTime;
use starfish_vni::LinkFault;

/// One directed link's armed packet faults (maps onto
/// [`starfish_vni::Fabric::set_link_fault`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultSpec {
    /// Source node index (into the plan's `nodes`).
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Seed of the link's decision streams.
    pub seed: u64,
    pub drop_p: f64,
    pub dup_p: f64,
    pub delay_p: f64,
    /// Extra virtual latency applied on a delay decision, microseconds.
    pub delay_us: u64,
    pub reorder_p: f64,
}

impl LinkFaultSpec {
    /// The fabric-level fault this spec arms.
    pub fn to_fault(&self) -> LinkFault {
        LinkFault::seeded(self.seed)
            .drop(self.drop_p)
            .duplicate(self.dup_p)
            .delay(self.delay_p, VirtualTime::from_micros(self.delay_us))
            .reorder(self.reorder_p)
    }
}

/// A timed action fired when the driver reaches its step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Fail-stop crash (fabric event emitted — perfect detector path).
    Crash(u32),
    /// Silent crash: ports close, no event; only heartbeats can tell.
    SilentCrash(u32),
    /// Cut the link between two nodes (both directions).
    Partition(u32, u32),
    /// Undo a partition.
    Heal(u32, u32),
    /// Restart a crashed node's daemon under the same identity.
    Restart(u32),
    /// Mark one rank's checkpoint image torn/corrupt on stable storage.
    Corrupt { rank: u32, index: u64 },
}

/// An [`Event`] scheduled at a driver step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    pub step: u32,
    pub event: Event,
}

/// A complete scenario description; see the module docs for the format.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed: drives traffic choices and, via derivation, everything
    /// the plan itself does not pin.
    pub seed: u64,
    /// Cluster size. Rank `r` lives on node `r % nodes`.
    pub nodes: u32,
    /// MPI world size.
    pub ranks: u32,
    /// Driver steps (each rank sends one message per step).
    pub steps: u32,
    /// Coordinated checkpoint cadence in steps; 0 disables checkpoints.
    pub ckpt_every: u32,
    /// Run the MPI endpoints with the reliability layer *disabled* (raw
    /// datagram semantics: drops are permanent, dups are delivered). Used by
    /// the `verify` crate's model-checker bridge to demonstrate, on the real
    /// driver, the exactly-once violations the checker derives for the
    /// flow-control-free protocol.
    pub unreliable: bool,
    /// Traffic payload size in bytes (≥ 8: the first 8 carry the id). The
    /// default 8-byte payload keeps legacy plans eager end to end.
    pub payload: u32,
    /// Per-endpoint rendezvous threshold override; `None` leaves the
    /// build default (effectively eager-only at chaos payload sizes).
    pub rndv_threshold: Option<u32>,
    /// Per-endpoint rendezvous DATA chunk size override; `None` keeps the
    /// build default (one chunk per transfer at chaos payload sizes).
    /// Shrinking it below `payload` splits every rendezvous transfer into a
    /// pipelined chunk train, so the armed link faults hit *individual*
    /// DATA chunks and the oracles judge the reassembly.
    pub rndv_chunk: Option<u32>,
    /// Diskless checkpointing: route images through the in-memory replica
    /// store with `k` copies per fragment instead of the stable disk store.
    /// `None` keeps the legacy disk path.
    pub replica_k: Option<u8>,
    /// Modeled failure-detector configuration `(interval, timeout)` in
    /// microseconds of virtual time. When set, the driver models heartbeat
    /// detection of the plan's first crash and reports the detection
    /// latency in [`crate::driver::ScenarioReport::detect_ns`]; the modeled
    /// latency is bounded by `timeout + 2 * interval`. `None` leaves the
    /// detector out of the forensic model (fail-stop semantics only).
    pub heartbeat: Option<(u64, u64)>,
    /// Collective-traffic mode: instead of the point-to-point traffic
    /// pattern, every step runs one instance of the named collective (e.g.
    /// `allreduce-ring`, `allgather-ring`) across all ranks, with the armed
    /// link faults hitting the algorithm's ring/doubling exchanges. `None`
    /// keeps the classic point-to-point traffic. The name is a single
    /// token; the ring-collective fault bank interprets it.
    pub collective: Option<String>,
    /// Per-link packet faults, armed before the first step.
    pub faults: Vec<LinkFaultSpec>,
    /// Timed events, fired when the driver reaches `step` (plan order
    /// within a step).
    pub events: Vec<TimedEvent>,
}

const HEADER: &str = "starfish-fault-plan v1";

impl FaultPlan {
    /// Generate a random-but-reproducible plan for the MPI scenario family:
    /// everything is drawn from `seed`, so the same seed always yields the
    /// same plan. Events are restricted to the recoverable set the MPI
    /// driver exercises (partition/heal and image corruption); probability
    /// mass is kept moderate so scenarios terminate.
    pub fn generate(seed: u64) -> FaultPlan {
        let mut rng = DetRng::new(seed).derive(PLAN_STREAM);
        let nodes = 2 + rng.below(3) as u32; // 2..=4
        let ranks = 2 + rng.below(5) as u32; // 2..=6
        let steps = 20 + rng.below(41) as u32; // 20..=60
        let ckpt_every = [0u32, 5, 8, 10][rng.below(4) as usize];

        // Arm faults on a few random directed inter-node links.
        let mut faults = Vec::new();
        let n_faults = rng.below(4); // 0..=3 faulty links
        for _ in 0..n_faults {
            let src = rng.below(nodes as u64) as u32;
            let mut dst = rng.below(nodes as u64) as u32;
            if dst == src {
                dst = (dst + 1) % nodes;
            }
            if faults
                .iter()
                .any(|f: &LinkFaultSpec| f.src == src && f.dst == dst)
            {
                continue;
            }
            faults.push(LinkFaultSpec {
                src,
                dst,
                seed: rng.below(1 << 32),
                drop_p: rng.below(25) as f64 / 100.0,  // 0..0.24
                dup_p: rng.below(20) as f64 / 100.0,   // 0..0.19
                delay_p: rng.below(30) as f64 / 100.0, // 0..0.29
                delay_us: 10 + rng.below(500),         // 10..509 µs
                reorder_p: rng.below(30) as f64 / 100.0, // 0..0.29
            });
        }

        // Timed events: paired partition/heal windows plus image
        // corruption. Windows are kept short so the reliability layer has
        // send opportunities on both sides.
        let mut events = Vec::new();
        let n_parts = rng.below(3); // 0..=2 partition windows
        for _ in 0..n_parts {
            if nodes < 2 {
                break;
            }
            let a = rng.below(nodes as u64) as u32;
            let mut b = rng.below(nodes as u64) as u32;
            if b == a {
                b = (b + 1) % nodes;
            }
            let at = rng.below(steps as u64 / 2) as u32;
            let dur = 1 + rng.below(steps as u64 / 4) as u32;
            events.push(TimedEvent {
                step: at,
                event: Event::Partition(a, b),
            });
            events.push(TimedEvent {
                step: at + dur,
                event: Event::Heal(a, b),
            });
        }
        if let Some(rounds) = steps.checked_div(ckpt_every).map(u64::from) {
            let n_corrupt = rng.below(3); // 0..=2 torn images
            for _ in 0..n_corrupt {
                if rounds == 0 {
                    break;
                }
                let index = 1 + rng.below(rounds);
                let rank = rng.below(ranks as u64) as u32;
                // Fire strictly after the image exists.
                let step = ((index as u32) * ckpt_every).min(steps - 1);
                events.push(TimedEvent {
                    step,
                    event: Event::Corrupt { rank, index },
                });
            }
        }
        events.sort_by_key(|e| e.step);

        FaultPlan {
            seed,
            nodes,
            ranks,
            steps,
            ckpt_every,
            unreliable: false,
            payload: 8,
            rndv_threshold: None,
            rndv_chunk: None,
            replica_k: None,
            heartbeat: None,
            collective: None,
            faults,
            events,
        }
    }

    /// Events due at `step`, in plan order.
    pub fn events_at(&self, step: u32) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }

    /// Parse the text format produced by [`fmt::Display`].
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some(h) if h == HEADER => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut plan = FaultPlan {
            seed: 0,
            nodes: 0,
            ranks: 0,
            steps: 0,
            ckpt_every: 0,
            unreliable: false,
            payload: 8,
            rndv_threshold: None,
            rndv_chunk: None,
            replica_k: None,
            heartbeat: None,
            collective: None,
            faults: Vec::new(),
            events: Vec::new(),
        };
        for line in lines {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts.next().unwrap_or("");
            let rest: Vec<&str> = parts.collect();
            let scalar = |rest: &[&str]| -> Result<u64, String> {
                rest.first()
                    .ok_or_else(|| format!("missing value: {line}"))?
                    .parse()
                    .map_err(|e| format!("{line}: {e}"))
            };
            match key {
                "seed" => plan.seed = scalar(&rest)?,
                "nodes" => plan.nodes = scalar(&rest)? as u32,
                "ranks" => plan.ranks = scalar(&rest)? as u32,
                "steps" => plan.steps = scalar(&rest)? as u32,
                "ckpt-every" => plan.ckpt_every = scalar(&rest)? as u32,
                "unreliable" => plan.unreliable = true,
                "payload" => plan.payload = scalar(&rest)? as u32,
                "rendezvous" => plan.rndv_threshold = Some(scalar(&rest)? as u32),
                "chunk" => {
                    let c = scalar(&rest)?;
                    if c == 0 || c > u32::MAX as u64 {
                        return Err(format!("chunk size out of range: {line}"));
                    }
                    plan.rndv_chunk = Some(c as u32);
                }
                "replica" => {
                    let k = scalar(&rest)?;
                    if k == 0 || k > u8::MAX as u64 {
                        return Err(format!("replica k out of range: {line}"));
                    }
                    plan.replica_k = Some(k as u8);
                }
                "heartbeat" => {
                    let interval = scalar(&rest)?;
                    let timeout = rest
                        .get(1)
                        .ok_or_else(|| format!("heartbeat needs <interval> <timeout>: {line}"))?
                        .parse::<u64>()
                        .map_err(|e| format!("{line}: {e}"))?;
                    if interval == 0 || timeout < interval {
                        return Err(format!(
                            "heartbeat needs interval > 0 and timeout >= interval: {line}"
                        ));
                    }
                    plan.heartbeat = Some((interval, timeout));
                }
                "collective" => {
                    let name = rest
                        .first()
                        .ok_or_else(|| format!("collective needs a name: {line}"))?;
                    plan.collective = Some((*name).to_string());
                }
                "fault" => plan.faults.push(parse_fault(line, &rest)?),
                k if k.starts_with('@') => {
                    let step: u32 = k[1..].parse().map_err(|e| format!("{line}: {e}"))?;
                    plan.events.push(TimedEvent {
                        step,
                        event: parse_event(line, &rest)?,
                    });
                }
                other => return Err(format!("unknown directive {other:?} in {line:?}")),
            }
        }
        if plan.nodes == 0 || plan.ranks == 0 {
            return Err("plan must declare nodes and ranks".into());
        }
        Ok(plan)
    }
}

fn parse_fault(line: &str, rest: &[&str]) -> Result<LinkFaultSpec, String> {
    let link = rest.first().ok_or_else(|| format!("bare fault: {line}"))?;
    let (src, dst) = link
        .split_once("->")
        .ok_or_else(|| format!("fault link must be src->dst: {line}"))?;
    let mut spec = LinkFaultSpec {
        src: src.parse().map_err(|e| format!("{line}: {e}"))?,
        dst: dst.parse().map_err(|e| format!("{line}: {e}"))?,
        seed: 0,
        drop_p: 0.0,
        dup_p: 0.0,
        delay_p: 0.0,
        delay_us: 0,
        reorder_p: 0.0,
    };
    for kv in &rest[1..] {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("fault attribute must be k=v: {kv}"))?;
        let fp = |v: &str| v.parse::<f64>().map_err(|e| format!("{kv}: {e}"));
        match k {
            "seed" => spec.seed = v.parse().map_err(|e| format!("{kv}: {e}"))?,
            "drop" => spec.drop_p = fp(v)?,
            "dup" => spec.dup_p = fp(v)?,
            "reorder" => spec.reorder_p = fp(v)?,
            "delay" => {
                // "120us@0.1": latency @ probability.
                let (us, p) = v
                    .split_once('@')
                    .ok_or_else(|| format!("delay must be <N>us@<p>: {kv}"))?;
                let us = us
                    .strip_suffix("us")
                    .ok_or_else(|| format!("delay must be <N>us@<p>: {kv}"))?;
                spec.delay_us = us.parse().map_err(|e| format!("{kv}: {e}"))?;
                spec.delay_p = fp(p)?;
            }
            other => return Err(format!("unknown fault attribute {other:?}")),
        }
    }
    Ok(spec)
}

fn parse_event(line: &str, rest: &[&str]) -> Result<Event, String> {
    let u = |s: &&str| -> Result<u32, String> { s.parse().map_err(|e| format!("{line}: {e}")) };
    match rest {
        ["crash", n] => Ok(Event::Crash(u(n)?)),
        ["silent-crash", n] => Ok(Event::SilentCrash(u(n)?)),
        ["restart", n] => Ok(Event::Restart(u(n)?)),
        ["partition", a, b] => Ok(Event::Partition(u(a)?, u(b)?)),
        ["heal", a, b] => Ok(Event::Heal(u(a)?, u(b)?)),
        ["corrupt", attrs @ ..] => {
            let (mut rank, mut index) = (None, None);
            for kv in attrs {
                match kv.split_once('=') {
                    Some(("rank", v)) => rank = v.parse().ok(),
                    Some(("index", v)) => index = v.parse().ok(),
                    _ => return Err(format!("bad corrupt attribute {kv:?}")),
                }
            }
            match (rank, index) {
                (Some(rank), Some(index)) => Ok(Event::Corrupt { rank, index }),
                _ => Err(format!("corrupt needs rank= and index=: {line}")),
            }
        }
        _ => Err(format!("unknown event: {line}")),
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{HEADER}")?;
        writeln!(f, "seed {}", self.seed)?;
        writeln!(f, "nodes {}", self.nodes)?;
        writeln!(f, "ranks {}", self.ranks)?;
        writeln!(f, "steps {}", self.steps)?;
        writeln!(f, "ckpt-every {}", self.ckpt_every)?;
        if self.unreliable {
            writeln!(f, "unreliable")?;
        }
        if self.payload != 8 {
            writeln!(f, "payload {}", self.payload)?;
        }
        if let Some(t) = self.rndv_threshold {
            writeln!(f, "rendezvous {t}")?;
        }
        if let Some(c) = self.rndv_chunk {
            writeln!(f, "chunk {c}")?;
        }
        if let Some(k) = self.replica_k {
            writeln!(f, "replica {k}")?;
        }
        if let Some((interval, timeout)) = self.heartbeat {
            writeln!(f, "heartbeat {interval} {timeout}")?;
        }
        if let Some(c) = &self.collective {
            writeln!(f, "collective {c}")?;
        }
        for s in &self.faults {
            writeln!(
                f,
                "fault {}->{} seed={} drop={} dup={} delay={}us@{} reorder={}",
                s.src, s.dst, s.seed, s.drop_p, s.dup_p, s.delay_us, s.delay_p, s.reorder_p
            )?;
        }
        for e in &self.events {
            match e.event {
                Event::Crash(n) => writeln!(f, "@{} crash {}", e.step, n)?,
                Event::SilentCrash(n) => writeln!(f, "@{} silent-crash {}", e.step, n)?,
                Event::Restart(n) => writeln!(f, "@{} restart {}", e.step, n)?,
                Event::Partition(a, b) => writeln!(f, "@{} partition {} {}", e.step, a, b)?,
                Event::Heal(a, b) => writeln!(f, "@{} heal {} {}", e.step, a, b)?,
                Event::Corrupt { rank, index } => {
                    writeln!(f, "@{} corrupt rank={} index={}", e.step, rank, index)?
                }
            }
        }
        Ok(())
    }
}

/// Stream tag separating plan generation from the driver's traffic stream.
const PLAN_STREAM: u64 = 0x504C_414E; // "PLAN"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(FaultPlan::generate(seed), FaultPlan::generate(seed));
        }
        assert_ne!(FaultPlan::generate(1), FaultPlan::generate(2));
    }

    #[test]
    fn display_parse_roundtrip() {
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed);
            let text = plan.to_string();
            let back = FaultPlan::parse(&text).unwrap();
            assert_eq!(plan, back, "roundtrip diverged for seed {seed}:\n{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("starfish-fault-plan v2\nseed 1").is_err());
        assert!(FaultPlan::parse("starfish-fault-plan v1\nwat 3").is_err());
        assert!(FaultPlan::parse("starfish-fault-plan v1\nseed 1").is_err()); // no shape
    }

    #[test]
    fn unreliable_directive_roundtrips() {
        let text = "starfish-fault-plan v1\nseed 1\nnodes 2\nranks 2\nsteps 6\nckpt-every 0\nunreliable\nfault 0->1 seed=1 drop=1 dup=0 delay=0us@0 reorder=0\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert!(plan.unreliable);
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // Absent directive defaults to the reliable endpoint configuration.
        assert!(!FaultPlan::generate(3).unreliable);
    }

    #[test]
    fn payload_and_rendezvous_directives_roundtrip() {
        let text = "starfish-fault-plan v1\nseed 2\nnodes 2\nranks 3\nsteps 8\nckpt-every 4\npayload 16384\nrendezvous 4096\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.payload, 16384);
        assert_eq!(plan.rndv_threshold, Some(4096));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // Absent directives keep legacy plans eager with id-only payloads.
        let legacy = FaultPlan::generate(5);
        assert_eq!(legacy.payload, 8);
        assert_eq!(legacy.rndv_threshold, None);
        assert_eq!(legacy.rndv_chunk, None);
    }

    #[test]
    fn chunk_directive_roundtrips_and_validates() {
        let text = "starfish-fault-plan v1\nseed 3\nnodes 2\nranks 2\nsteps 8\nckpt-every 0\npayload 16384\nrendezvous 4096\nchunk 1024\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.rndv_chunk, Some(1024));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // A zero chunk size would make no forward progress: rejected.
        let bad = text.replace("chunk 1024", "chunk 0");
        assert!(FaultPlan::parse(&bad).is_err());
    }

    #[test]
    fn replica_directive_roundtrips_and_validates() {
        let text = "starfish-fault-plan v1\nseed 4\nnodes 4\nranks 4\nsteps 12\nckpt-every 4\nreplica 2\n@6 crash 1\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.replica_k, Some(2));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // k=0 is meaningless (no copies) and rejected at parse time.
        let bad = text.replace("replica 2", "replica 0");
        assert!(FaultPlan::parse(&bad).is_err());
        // Absent directive keeps the legacy disk store.
        assert_eq!(FaultPlan::generate(6).replica_k, None);
    }

    #[test]
    fn heartbeat_directive_roundtrips_and_validates() {
        let text = "starfish-fault-plan v1\nseed 5\nnodes 3\nranks 3\nsteps 16\nckpt-every 4\nreplica 2\nheartbeat 200 800\n@9 silent-crash 1\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.heartbeat, Some((200, 800)));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // A zero interval or a timeout shorter than the interval cannot
        // model a detector: rejected at parse time.
        assert!(FaultPlan::parse(&text.replace("heartbeat 200 800", "heartbeat 0 800")).is_err());
        assert!(FaultPlan::parse(&text.replace("heartbeat 200 800", "heartbeat 200 100")).is_err());
        assert!(FaultPlan::parse(&text.replace("heartbeat 200 800", "heartbeat 200")).is_err());
        // Absent directive keeps fail-stop-only forensic semantics.
        assert_eq!(FaultPlan::generate(8).heartbeat, None);
    }

    #[test]
    fn collective_directive_roundtrips_and_validates() {
        let text = "starfish-fault-plan v1\nseed 7\nnodes 3\nranks 3\nsteps 10\nckpt-every 0\ncollective allreduce-ring\nfault 0->1 seed=9 drop=0.2 dup=0.1 delay=0us@0 reorder=0.2\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.collective.as_deref(), Some("allreduce-ring"));
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
        // A bare directive names nothing to run: rejected.
        assert!(
            FaultPlan::parse(&text.replace("collective allreduce-ring", "collective")).is_err()
        );
        // Absent directive keeps point-to-point traffic.
        assert_eq!(FaultPlan::generate(9).collective, None);
    }

    #[test]
    fn parse_accepts_comments_and_blank_lines() {
        let text = "starfish-fault-plan v1\n\n# adversarial schedule\nseed 9\nnodes 2\nranks 2\nsteps 10\nckpt-every 0\n@3 partition 0 1\n@5 heal 0 1\n";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.events.len(), 2);
        assert_eq!(plan.events[0].event, Event::Partition(0, 1));
    }

    #[test]
    fn generated_events_reference_declared_shape() {
        for seed in 0..100 {
            let p = FaultPlan::generate(seed);
            for f in &p.faults {
                assert!(f.src < p.nodes && f.dst < p.nodes && f.src != f.dst);
            }
            for e in &p.events {
                assert!(e.step < p.steps + p.steps / 4 + 2);
                match e.event {
                    Event::Partition(a, b) | Event::Heal(a, b) => {
                        assert!(a < p.nodes && b < p.nodes && a != b)
                    }
                    Event::Corrupt { rank, .. } => assert!(rank < p.ranks),
                    Event::Crash(n) | Event::SilentCrash(n) | Event::Restart(n) => {
                        assert!(n < p.nodes)
                    }
                }
            }
        }
    }
}
