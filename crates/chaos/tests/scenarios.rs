//! The seeded MPI scenario bank: ≥100 adversarial schedules, each judged
//! by all five oracle classes, plus replay-determinism pins and a
//! property-driven generator.
//!
//! Any failing plan is minimized with [`starfish_chaos::minimize`] and
//! written to `tests/regressions/shrunk-seed-<seed>.plan` before the test
//! fails, so a red run always leaves a small reproducible artifact behind
//! (CI uploads them; a human commits the interesting ones).

use proptest::prelude::*;
use starfish_chaos::{minimize, oracle, run_mpi_scenario, run_mpi_scenario_traced, FaultPlan};

/// Run one plan and return its violations (empty = healthy).
fn violations(plan: &FaultPlan) -> Vec<String> {
    oracle::check_all(&run_mpi_scenario(plan))
}

/// Shrink a failing plan and persist it for reproduction, together with a
/// reassembled causal trace of the minimized run (Perfetto JSON) so the
/// failure can be debugged without re-running anything.
fn report_failure(plan: &FaultPlan, first: &[String]) -> String {
    let min = minimize(plan, |p| !violations(p).is_empty());
    let why = violations(&min);
    let path = format!(
        "{}/tests/regressions/shrunk-seed-{}.plan",
        env!("CARGO_MANIFEST_DIR"),
        plan.seed
    );
    let body = format!("# violations: {why:?}\n{min}");
    let note = match std::fs::write(&path, &body) {
        Ok(()) => format!("shrunk plan written to {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    let (_, traces) = run_mpi_scenario_traced(&min);
    let trace_path = format!(
        "{}/tests/regressions/shrunk-seed-{}.trace.json",
        env!("CARGO_MANIFEST_DIR"),
        plan.seed
    );
    let trace_note = match std::fs::write(&trace_path, starfish_trace::perfetto::export(&traces)) {
        Ok(()) => format!("causal trace written to {trace_path}"),
        Err(e) => format!("could not write {trace_path}: {e}"),
    };
    format!(
        "plan seed {} violated {first:?}; {note}; {trace_note}\nminimized:\n{min}",
        plan.seed
    )
}

#[test]
fn hundred_seeded_scenarios_uphold_all_oracles() {
    for seed in 0..110u64 {
        let plan = FaultPlan::generate(seed);
        let v = violations(&plan);
        assert!(v.is_empty(), "{}", report_failure(&plan, &v));
    }
}

#[test]
fn replaying_a_seed_reproduces_the_identical_trace() {
    for seed in [3u64, 17, 42, 77, 104] {
        let plan = FaultPlan::generate(seed);
        let a = run_mpi_scenario(&plan);
        let b = run_mpi_scenario(&plan);
        assert_eq!(a, b, "seed {seed} diverged between identical runs");
    }
    // Different seeds must explore different schedules (the bank is not
    // accidentally degenerate).
    let a = run_mpi_scenario(&FaultPlan::generate(3));
    let b = run_mpi_scenario(&FaultPlan::generate(17));
    assert_ne!(a, b);
}

#[test]
fn scenarios_exercise_the_fault_machinery() {
    // The bank must actually stress the wire: across the first 40 seeds
    // the fault layer has to have dropped, duplicated, delayed and held
    // frames, rejected sends across partitions, and torn images.
    let mut dropped = 0u64;
    let mut duplicated = 0u64;
    let mut rejects = 0u64;
    let mut corruptions = 0u64;
    for seed in 0..40u64 {
        let r = run_mpi_scenario(&FaultPlan::generate(seed));
        dropped += r.stats.dropped;
        duplicated += r.stats.duplicated;
        rejects += r.send_rejects;
        corruptions += r.corruptions;
    }
    assert!(
        dropped > 0,
        "no drops across the bank — faults are not armed"
    );
    assert!(duplicated > 0, "no duplicates across the bank");
    assert!(rejects > 0, "no partitioned sends across the bank");
    assert!(corruptions > 0, "no torn images across the bank");
}

proptest! {
    /// Property-driven generation beyond the fixed bank: any seed in a
    /// wide range, optionally hardened with one extra partition window,
    /// must uphold every oracle. `PROPTEST_CASES` controls the budget.
    #[test]
    fn random_schedules_uphold_all_oracles(
        seed in 0u64..1_000_000,
        extra_partition in 0u8..2,
        window in 1u32..6,
    ) {
        let mut plan = FaultPlan::generate(seed);
        if extra_partition == 1 && plan.nodes >= 2 {
            let at = plan.steps / 3;
            plan.events.push(starfish_chaos::TimedEvent {
                step: at,
                event: starfish_chaos::Event::Partition(0, 1),
            });
            plan.events.push(starfish_chaos::TimedEvent {
                step: at + window,
                event: starfish_chaos::Event::Heal(0, 1),
            });
            plan.events.sort_by_key(|e| e.step);
        }
        let v = violations(&plan);
        prop_assert!(v.is_empty(), "{}", report_failure(&plan, &v));
    }
}
