//! Forensic oracles: the driver's modeled recovery numbers must match the
//! plan's detector configuration and the checkpoint oracle's recovery
//! line — exactly, and identically across replays. This is the chaos-side
//! half of the ISSUE-8 acceptance criteria (the live-cluster half lives in
//! `tests/integration_management.rs`).

use starfish_chaos::{postmortem, run_mpi_scenario, write_postmortem, FaultPlan};

/// A replica-backed plan that silently kills one node after two committed
/// checkpoint rounds, under a declared heartbeat detector.
fn forensic_plan(seed: u64) -> FaultPlan {
    let text = format!(
        "starfish-fault-plan v1\n\
         seed {seed}\n\
         nodes 4\n\
         ranks 4\n\
         steps 22\n\
         ckpt-every 8\n\
         replica 2\n\
         heartbeat 200 800\n\
         @18 silent-crash 1\n"
    );
    FaultPlan::parse(&text).unwrap()
}

#[test]
fn detection_latency_is_bounded_by_the_heartbeat_config() {
    for seed in 0..12 {
        let plan = forensic_plan(seed);
        let (interval_us, timeout_us) = plan.heartbeat.unwrap();
        let report = run_mpi_scenario(&plan);
        let detect = report.detect_ns.expect("heartbeat + crash => detect_ns");
        // The detector cannot fire before the silence window has expired,
        // and must fire within two beacon intervals past it.
        assert!(
            detect > timeout_us * 1_000 - interval_us * 1_000,
            "seed {seed}: detected implausibly fast: {detect} ns"
        );
        assert!(
            detect <= (timeout_us + 2 * interval_us) * 1_000,
            "seed {seed}: detection {detect} ns exceeds timeout + 2*interval"
        );
    }
}

#[test]
fn detection_is_absent_without_a_heartbeat_or_a_crash() {
    // Crash but no declared detector: fail-stop semantics, no detect_ns.
    let mut plan = forensic_plan(1);
    plan.heartbeat = None;
    let report = run_mpi_scenario(&plan);
    assert_eq!(report.detect_ns, None);
    assert!(report.rollback_depth_ns.is_some(), "crash still rolls back");

    // Detector but no crash: nothing to detect, no forensics at all.
    let mut calm = forensic_plan(2);
    calm.events.clear();
    let report = run_mpi_scenario(&calm);
    assert_eq!(report.detect_ns, None);
    assert_eq!(report.rollback_depth_ns, None);
    assert_eq!(report.rollback_lost_msgs, None);
    assert_eq!(report.restore_ns, None);
    assert!(postmortem(&calm, &report).is_none(), "no crash, no bundle");
}

#[test]
fn rollback_depth_matches_the_recovery_line_oracle() {
    for seed in 0..12 {
        let plan = forensic_plan(seed);
        let report = run_mpi_scenario(&plan);
        // Two rounds commit (steps 8 and 16) before the @18 crash; the
        // replica line over live ranks must be the oracle's line, and the
        // modeled depth must equal end-of-run minus that line's round, on
        // the driver's synthetic clock (step s fires at (s+1) µs).
        assert_eq!(report.line, 2, "seed {seed}");
        assert!(report.line_restorable, "seed {seed}: line not restorable");
        let end_vt = u64::from(plan.steps) * 1_000;
        let line_vt = report.line * u64::from(plan.ckpt_every) * 1_000;
        assert_eq!(
            report.rollback_depth_ns,
            Some(end_vt - line_vt),
            "seed {seed}"
        );
        // Every accepted send is accounted: lost-since-line can cover at
        // most the sends of the post-line steps (live ranks only).
        let total: u64 = report.sent.values().map(|v| v.len() as u64).sum();
        let lost = report.rollback_lost_msgs.unwrap();
        assert!(lost <= total, "seed {seed}: lost {lost} > total {total}");
        // Replica-backed line with a crash: the modeled reassembly cost is
        // present and nonzero (fragments move at fabric speed, not free).
        let restore = report.restore_ns.expect("replica line => restore_ns");
        assert!(restore > 0, "seed {seed}: restore cost is zero");
    }
}

#[test]
fn postmortem_bundle_is_byte_identical_across_replays() {
    let plan = forensic_plan(42);
    let (r1, r2) = (run_mpi_scenario(&plan), run_mpi_scenario(&plan));
    assert_eq!(r1, r2, "scenario replay diverged");
    let pm1 = postmortem(&plan, &r1).expect("crash => bundle");
    let pm2 = postmortem(&plan, &r2).unwrap();
    assert_eq!(pm1.to_json(), pm2.to_json(), "bundle replay diverged");

    // The bundle carries the acceptance-criteria numbers.
    assert_eq!(pm1.store_backend, "replica:2");
    assert!(pm1.trigger.contains("heartbeat timeout"), "{}", pm1.trigger);
    assert_eq!(pm1.phase_ns("detect"), r1.detect_ns);
    assert_eq!(pm1.phase_ns("restore"), r1.restore_ns);
    assert_eq!(pm1.rollback.depth_vt_ns, r1.rollback_depth_ns.unwrap());
    assert_eq!(pm1.rollback.messages_lost, r1.rollback_lost_msgs.unwrap());
    let live = plan.ranks as usize - r1.dead_ranks.len();
    assert_eq!(pm1.rollback.line, vec![r1.line; live]);
    // The event sequence is ordered and ends with recovery-complete.
    let labels: Vec<&str> = pm1.events.iter().map(|e| e.kind.label()).collect();
    assert!(labels.contains(&"fault-injected"));
    assert!(labels.contains(&"node-suspected"));
    assert_eq!(labels.last(), Some(&"recovery-complete"));
    assert!(pm1.events.windows(2).all(|w| w[0].vt <= w[1].vt));
}

#[test]
fn bundle_is_written_under_the_postmortem_dir() {
    let plan = forensic_plan(7);
    let report = run_mpi_scenario(&plan);
    let pm = postmortem(&plan, &report).unwrap();
    let path = write_postmortem(&plan, &pm).expect("write bundle");
    let body = std::fs::read_to_string(&path).unwrap();
    assert_eq!(body, pm.to_json());
    assert!(body.starts_with('{') && body.trim_end().ends_with('}'));
    assert!(
        path.file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("chaos-seed7-"),
        "unexpected bundle name {path:?}"
    );
}
