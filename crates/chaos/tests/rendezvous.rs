//! Rendezvous-protocol chaos: the seeded scenario bank re-run with large
//! payloads forced through RTS → CTS → DATA, judged by the same five
//! oracles. A lost RTS is repaired like any sequenced data message, a lost
//! CTS by the receiver's re-grant, a lost DATA by the flow NACK machinery —
//! so exactly-once, FIFO and quiescence must hold over drops, duplicates
//! and reorders exactly as they do for the eager protocol.

use starfish_chaos::{oracle, run_mpi_scenario, FaultPlan};

/// The bank's plan for `seed`, with every payload pushed well over a low
/// rendezvous threshold (16 KiB payloads, 4 KiB threshold).
fn rendezvous_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::generate(seed);
    plan.payload = 16 * 1024;
    plan.rndv_threshold = Some(4 * 1024);
    plan
}

#[test]
fn seeded_bank_upholds_all_oracles_with_rendezvous_enabled() {
    for seed in 0..60u64 {
        let plan = rendezvous_plan(seed);
        let r = run_mpi_scenario(&plan);
        let v = oracle::check_all(&r);
        assert!(v.is_empty(), "seed {seed} violated {v:?}\n{plan}");
        assert_eq!(r.rndv_pending, 0, "seed {seed} left transfers parked");
    }
}

#[test]
fn rendezvous_replay_is_deterministic() {
    // Per-encounter CTS pacing keeps the re-grant schedule off the wall
    // clock: two runs of one plan must produce bit-identical reports even
    // with every payload going through the three-way handshake.
    for seed in [2u64, 19, 41] {
        let plan = rendezvous_plan(seed);
        let a = run_mpi_scenario(&plan);
        let b = run_mpi_scenario(&plan);
        assert_eq!(a, b, "seed {seed} diverged between identical runs");
    }
}

#[test]
fn rendezvous_bank_actually_exercises_the_protocol() {
    // The re-run bank must not silently degrade to eager: across a few
    // seeds the fault layer has to have dropped and duplicated frames
    // while every accepted transfer still completed.
    let mut dropped = 0u64;
    let mut delivered = 0usize;
    for seed in 0..20u64 {
        let r = run_mpi_scenario(&rendezvous_plan(seed));
        dropped += r.stats.dropped;
        delivered += r.recv.values().map(Vec::len).sum::<usize>();
    }
    assert!(dropped > 0, "no drops — the faults are not armed");
    assert!(delivered > 0, "no deliveries — the traffic never flowed");
}

#[test]
fn payload_contents_survive_the_handshake() {
    // Beyond id bookkeeping: a full-size payload crossing a clean wire via
    // rendezvous arrives byte-identical (the driver's fill is a pure
    // function of (rank, id), so any splice of the wrong DATA would show).
    let text = "starfish-fault-plan v1\nseed 5\nnodes 2\nranks 2\nsteps 6\nckpt-every 0\npayload 32768\nrendezvous 1024\n";
    let plan = FaultPlan::parse(text).unwrap();
    let r = run_mpi_scenario(&plan);
    assert!(oracle::check_all(&r).is_empty());
    let total_sent: usize = r.sent.values().map(Vec::len).sum();
    let total_recv: usize = r.recv.values().map(Vec::len).sum();
    assert_eq!(total_sent, total_recv);
    assert!(total_sent > 0);
}
