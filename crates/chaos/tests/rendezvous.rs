//! Rendezvous-protocol chaos: the seeded scenario bank re-run with large
//! payloads forced through RTS → CTS → DATA, judged by the same five
//! oracles. A lost RTS is repaired like any sequenced data message, a lost
//! CTS by the receiver's re-grant, a lost DATA by the flow NACK machinery —
//! so exactly-once, FIFO and quiescence must hold over drops, duplicates
//! and reorders exactly as they do for the eager protocol.

use starfish_chaos::{oracle, run_mpi_scenario, FaultPlan};

/// The bank's plan for `seed`, with every payload pushed well over a low
/// rendezvous threshold (16 KiB payloads, 4 KiB threshold).
fn rendezvous_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::generate(seed);
    plan.payload = 16 * 1024;
    plan.rndv_threshold = Some(4 * 1024);
    plan
}

#[test]
fn seeded_bank_upholds_all_oracles_with_rendezvous_enabled() {
    for seed in 0..60u64 {
        let plan = rendezvous_plan(seed);
        let r = run_mpi_scenario(&plan);
        let v = oracle::check_all(&r);
        assert!(v.is_empty(), "seed {seed} violated {v:?}\n{plan}");
        assert_eq!(r.rndv_pending, 0, "seed {seed} left transfers parked");
    }
}

#[test]
fn rendezvous_replay_is_deterministic() {
    // Per-encounter CTS pacing keeps the re-grant schedule off the wall
    // clock: two runs of one plan must produce bit-identical reports even
    // with every payload going through the three-way handshake.
    for seed in [2u64, 19, 41] {
        let plan = rendezvous_plan(seed);
        let a = run_mpi_scenario(&plan);
        let b = run_mpi_scenario(&plan);
        assert_eq!(a, b, "seed {seed} diverged between identical runs");
    }
}

#[test]
fn rendezvous_bank_actually_exercises_the_protocol() {
    // The re-run bank must not silently degrade to eager: across a few
    // seeds the fault layer has to have dropped and duplicated frames
    // while every accepted transfer still completed.
    let mut dropped = 0u64;
    let mut delivered = 0usize;
    for seed in 0..20u64 {
        let r = run_mpi_scenario(&rendezvous_plan(seed));
        dropped += r.stats.dropped;
        delivered += r.recv.values().map(Vec::len).sum::<usize>();
    }
    assert!(dropped > 0, "no drops — the faults are not armed");
    assert!(delivered > 0, "no deliveries — the traffic never flowed");
}

#[test]
fn payload_contents_survive_the_handshake() {
    // Beyond id bookkeeping: a full-size payload crossing a clean wire via
    // rendezvous arrives byte-identical (the driver's fill is a pure
    // function of (rank, id), so any splice of the wrong DATA would show).
    let text = "starfish-fault-plan v1\nseed 5\nnodes 2\nranks 2\nsteps 6\nckpt-every 0\npayload 32768\nrendezvous 1024\n";
    let plan = FaultPlan::parse(text).unwrap();
    let r = run_mpi_scenario(&plan);
    assert!(oracle::check_all(&r).is_empty());
    let total_sent: usize = r.sent.values().map(Vec::len).sum();
    let total_recv: usize = r.recv.values().map(Vec::len).sum();
    assert_eq!(total_sent, total_recv);
    assert!(total_sent > 0);
}

// ---- chunk-level pipeline chaos --------------------------------------------
//
// The tests above force the three-way handshake but each transfer still
// fits one DATA frame. The plans below shrink the chunk size well under the
// payload so every transfer becomes a pipelined chunk train and the armed
// faults drop, duplicate and reorder *individual chunks*; the oracles —
// payload integrity in particular — then judge the reassembly byte for
// byte.

use starfish_mpi::{CtsCadence, MpiEndpoint, RankDirectory, RecvMode, WORLD_CONTEXT};
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, NodeId, Rank, VClock};
use starfish_vni::{Fabric, Ideal, LayerCosts, LinkFault};

/// The bank's plan for `seed` with 16 KiB payloads split into 1 KiB DATA
/// chunks (16 chunks per transfer).
fn chunked_plan(seed: u64) -> FaultPlan {
    let mut plan = rendezvous_plan(seed);
    plan.rndv_chunk = Some(1024);
    plan
}

#[test]
fn chunked_bank_upholds_all_oracles() {
    for seed in 0..30u64 {
        let plan = chunked_plan(seed);
        let r = run_mpi_scenario(&plan);
        let v = oracle::check_all(&r);
        assert!(v.is_empty(), "seed {seed} violated {v:?}\n{plan}");
        assert_eq!(r.rndv_pending, 0, "seed {seed} left transfers parked");
        assert_eq!(r.payload_corruptions, 0, "seed {seed} mis-reassembled");
    }
}

#[test]
fn chunked_replay_is_deterministic() {
    for seed in [3u64, 17, 29] {
        let plan = chunked_plan(seed);
        assert_eq!(
            run_mpi_scenario(&plan),
            run_mpi_scenario(&plan),
            "seed {seed} diverged between identical runs"
        );
    }
}

/// Chunking must actually multiply the frames the fault layer sees: the
/// same plan run with 1 KiB chunks consumes more per-packet fault
/// decisions (and here loses more frames) than the whole-transfer run.
/// If the chunk directive silently stopped reaching the endpoints, the
/// two reports would be identical and this test would catch it.
#[test]
fn chunk_faults_hit_individual_data_frames() {
    let text = "starfish-fault-plan v1\nseed 13\nnodes 2\nranks 2\nsteps 10\nckpt-every 0\npayload 16384\nrendezvous 1024\nfault 0->1 seed=5 drop=0.2 dup=0.1 delay=0us@0 reorder=0.2\nfault 1->0 seed=9 drop=0.2 dup=0.1 delay=0us@0 reorder=0.2\n";
    let whole = FaultPlan::parse(text).unwrap();
    let mut chunked = whole.clone();
    chunked.rndv_chunk = Some(1024);
    let rw = run_mpi_scenario(&whole);
    let rc = run_mpi_scenario(&chunked);
    for (r, label) in [(&rw, "whole"), (&rc, "chunked")] {
        assert!(oracle::check_all(r).is_empty(), "{label} run violated");
        assert!(r.stats.dropped > 0, "{label} run saw no drops");
    }
    assert!(
        rc.stats.dropped > rw.stats.dropped,
        "16 chunks per transfer must expose more frames to the drop \
         stream than one: whole={} chunked={}",
        rw.stats.dropped,
        rc.stats.dropped
    );
    // And every one of those extra losses was repaired: both runs
    // delivered the identical id streams.
    assert_eq!(rw.recv, rc.recv, "chunking changed what was delivered");
}

/// The checkpoint-safety invariant under chunking, mid-pipeline: a
/// stop-and-sync round that begins while a rendezvous transfer is
/// partially streamed (some chunks delivered, some dropped, the tail
/// still parked awaiting CTS) must not lose the message. The C/R
/// protocols' `DataMark` effect calls `push_pending_rendezvous` before
/// emitting flush marks — after that push and the reliability flushes,
/// the receiver reassembles the payload byte for byte.
#[test]
fn datamark_push_covers_partially_streamed_rendezvous() {
    let app = AppId(7);
    let fabric = Fabric::new(Box::new(Ideal), LayerCosts::zero());
    fabric.add_node(NodeId(0));
    fabric.add_node(NodeId(1));
    let dir = RankDirectory::with_placement(&[NodeId(0), NodeId(1)]);
    let mk = |rank: u32| {
        let mut ep = MpiEndpoint::new(
            &fabric,
            app,
            Rank(rank),
            dir.clone(),
            RecvMode::Direct,
            TraceSink::disabled(),
        )
        .expect("bind endpoint");
        ep.set_rendezvous_threshold(64);
        ep.set_rendezvous_chunk_bytes(256);
        ep.set_cts_cadence(CtsCadence::EveryEncounter);
        ep
    };
    let (mut a, mut b) = (mk(0), mk(1));
    let (mut ca, mut cb) = (VClock::new(), VClock::new());
    // A lossy forward link tears holes in the chunk train mid-pipeline.
    fabric.set_link_fault(NodeId(0), NodeId(1), LinkFault::seeded(9).drop(0.5));
    let payload: Vec<u8> = (0..4096u32)
        .map(|i| (i.wrapping_mul(31) % 251) as u8)
        .collect();
    a.isend_world(&mut ca, Rank(1), WORLD_CONTEXT, 1, &payload)
        .expect("rts accepted");
    // The receiver pulls whatever survived the faulty wire: the transfer
    // is now part-delivered, part-dropped, part-parked at the sender.
    let _ = b.try_recv_world(&mut cb, WORLD_CONTEXT, None, None);
    // Stop-and-sync begins: the round quiesces the wire and the DataMark
    // effect pushes every parked payload ahead of the flush marks.
    fabric.clear_all_link_faults();
    a.push_pending_rendezvous(&mut ca);
    assert_eq!(a.pending_rendezvous(), 0, "push drains the parked queue");
    let mut got = None;
    for _ in 0..200 {
        a.flush_reliable(&mut ca);
        b.flush_reliable(&mut cb);
        if let Ok(Some(m)) = b.try_recv_world(&mut cb, WORLD_CONTEXT, None, None) {
            got = Some(m);
            break;
        }
    }
    let got = got.expect("the partially-streamed transfer must complete");
    assert_eq!(&got.data[..], &payload[..], "byte-for-byte reassembly");
}
