//! Collectives under injected link faults: `bcast`/`reduce`/`barrier` over
//! reliable endpoints must either complete with the correct result or
//! surface a clean error — never hang. The harness mirrors the mpi crate's
//! `run_ranks` but keeps the fabric in the test's hands so faults can be
//! armed on specific tree edges before the ranks start.

use std::time::Duration;

use starfish_mpi::collectives::{barrier, bcast, reduce};
use starfish_mpi::{Comm, MpiEndpoint, RankDirectory, RecvMode, ReduceOp};
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, NodeId, Rank, VClock};
use starfish_vni::{Fabric, Ideal, LayerCosts, LinkFault};

const APP: AppId = AppId(9);

fn fabric(n: u32) -> Fabric {
    let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
    for i in 0..n {
        f.add_node(NodeId(i));
    }
    f
}

/// Bind one reliable endpoint per rank (rank r on node r) before any rank
/// runs, so faults armed on the fabric hit application traffic, not setup.
fn bind_ranks(fabric: &Fabric, n: u32, recv_timeout: Duration) -> Vec<MpiEndpoint> {
    let dir = RankDirectory::with_placement(&(0..n).map(NodeId).collect::<Vec<_>>());
    (0..n)
        .map(|r| {
            let mut ep = MpiEndpoint::new(
                fabric,
                APP,
                Rank(r),
                dir.clone(),
                RecvMode::Polled,
                TraceSink::disabled(),
            )
            .unwrap();
            ep.set_reliable(true);
            ep.set_blocking_timeout(recv_timeout);
            ep
        })
        .collect()
}

/// Run `f(rank, endpoint, comm, clock)` on one thread per bound endpoint,
/// collecting results in rank order. After `f` returns, each rank keeps
/// pumping its endpoint for a short window so peers still blocked on a
/// retransmission (recovered via their Ping probes) can be served — the
/// moral equivalent of not exiting before `MPI_Finalize`.
fn run_bound<T: Send + 'static>(
    eps: Vec<MpiEndpoint>,
    pump: Duration,
    f: impl Fn(u32, &mut MpiEndpoint, &mut Comm, &mut VClock) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let n = eps.len() as u32;
    let f = std::sync::Arc::new(f);
    let mut handles = Vec::new();
    for (r, mut ep) in eps.into_iter().enumerate() {
        let f = f.clone();
        handles.push(std::thread::spawn(move || {
            let mut comm = Comm::world(n, Rank(r as u32));
            let mut clock = VClock::new();
            let out = f(r as u32, &mut ep, &mut comm, &mut clock);
            let quiesce = std::time::Instant::now() + pump;
            while std::time::Instant::now() < quiesce {
                ep.flush_reliable(&mut clock);
                let _ = ep.try_recv_world(&mut clock, starfish_mpi::WORLD_CONTEXT, None, None);
                std::thread::sleep(Duration::from_millis(5));
            }
            out
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn run_ranks<T: Send + 'static>(
    fabric: &Fabric,
    n: u32,
    recv_timeout: Duration,
    f: impl Fn(u32, &mut MpiEndpoint, &mut Comm, &mut VClock) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let eps = bind_ranks(fabric, n, recv_timeout);
    run_bound(eps, Duration::from_millis(500), f)
}

#[test]
fn bcast_survives_a_dropped_tree_edge() {
    // Binomial tree for root 0, n = 4: rank 0 feeds ranks 2 (mask 2) and
    // 1 (mask 1); rank 2 feeds rank 3. Eat the first packet on the 0→2
    // trunk edge: the blocked receiver's Ping probe must recover it.
    let f = fabric(4);
    f.set_link_fault(NodeId(0), NodeId(2), LinkFault::seeded(7).drop_nth(0));
    let out = run_ranks(&f, 4, Duration::from_secs(20), |r, ep, comm, clock| {
        let data = if r == 0 {
            b"starfish".to_vec()
        } else {
            Vec::new()
        };
        bcast(ep, comm, clock, Rank(0), data.into()).unwrap()
    });
    for buf in &out {
        assert_eq!(&buf[..], b"starfish");
    }
    assert!(f.fault_stats().dropped >= 1, "the fault must actually fire");
}

#[test]
fn bcast_survives_lossy_links() {
    // Probabilistic loss on every tree edge out of the root; reliability
    // must still deliver the payload everywhere.
    let f = fabric(4);
    for dst in 1..4 {
        f.set_link_fault(
            NodeId(0),
            NodeId(dst),
            LinkFault::seeded(100 + dst as u64).drop(0.5),
        );
    }
    let out = run_ranks(&f, 4, Duration::from_secs(20), |r, ep, comm, clock| {
        let data = if r == 0 { vec![42u8; 64] } else { Vec::new() };
        bcast(ep, comm, clock, Rank(0), data.into()).unwrap()
    });
    for buf in &out {
        assert_eq!(buf.len(), 64);
        assert!(buf.iter().all(|b| *b == 42));
    }
}

#[test]
fn reduce_is_exact_under_duplicating_links() {
    // Every packet into the root is duplicated; the reliable layer must
    // discard the clones or the sum would be wrong (duplicate contributions
    // are silent corruption, not an error).
    let f = fabric(4);
    for src in 1..4 {
        f.set_link_fault(
            NodeId(src),
            NodeId(0),
            LinkFault::seeded(src as u64).duplicate(1.0),
        );
    }
    let out = run_ranks(&f, 4, Duration::from_secs(20), |r, ep, comm, clock| {
        let data = vec![r as u64 + 1, 10 * (r as u64 + 1)];
        reduce(ep, comm, clock, Rank(0), &data, ReduceOp::Sum).unwrap()
    });
    assert_eq!(out[0], Some(vec![1 + 2 + 3 + 4, 10 + 20 + 30 + 40]));
    for o in &out[1..] {
        assert_eq!(*o, None);
    }
    assert!(f.fault_stats().duplicated >= 1);
}

#[test]
fn barrier_completes_under_mixed_faults() {
    // Drop + duplicate + reorder across several links at once; the
    // dissemination barrier must still release every rank.
    let f = fabric(5);
    for (src, dst) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 0)] {
        f.set_link_fault(
            NodeId(src),
            NodeId(dst),
            LinkFault::seeded(src as u64 * 31 + dst as u64)
                .drop(0.25)
                .duplicate(0.25)
                .reorder(0.25),
        );
    }
    let out = run_ranks(&f, 5, Duration::from_secs(20), |_, ep, comm, clock| {
        barrier(ep, comm, clock).unwrap();
        true
    });
    assert_eq!(out, vec![true; 5]);
}

#[test]
fn collective_over_a_crashed_node_errors_instead_of_hanging() {
    // Node 2 dies after endpoints bind but before the collective starts.
    // Every live rank must get a clean error within its receive timeout —
    // sends into the crashed node fail fast, receives from it time out.
    let f = fabric(3);
    let eps = bind_ranks(&f, 3, Duration::from_millis(500));
    f.crash_node(NodeId(2));
    let out = run_bound(eps, Duration::from_millis(100), |r, ep, comm, clock| {
        let data = if r == 0 {
            b"doomed".to_vec()
        } else {
            Vec::new()
        };
        bcast(ep, comm, clock, Rank(0), data.into())
            .err()
            .map(|e| e.to_string())
    });
    for (r, e) in out.iter().enumerate() {
        assert!(e.is_some(), "rank {r} must surface an error, got success");
    }
}
