//! Ensemble-family chaos: seeded churn scenarios against the threaded
//! group-communication stack, judged by the two group oracles —
//! **view agreement** (surviving members converge on the same view with
//! the same membership) and **total order** (pairwise, the cast sequences
//! of any two survivors agree on every cast they both delivered). These
//! scenarios are real-time concurrent, so the *verdict* is deterministic
//! per seed even though packet interleavings are not.
//!
//! The tail of the file drives the same machinery through the full
//! [`starfish::Cluster`]: a silently-crashed node must be evicted by the
//! heartbeat detector and a restarted daemon must rejoin under its old
//! identity.

use std::time::Duration;

use bytes::Bytes;
use starfish_ensemble::{Endpoint, EndpointConfig, GcEvent, HeartbeatCfg, HeartbeatChaos};
use starfish_util::rng::DetRng;
use starfish_util::{NodeId, VirtualTime};
use starfish_vni::{Fabric, Ideal, LayerCosts};

const MARKER: u32 = u32::MAX;

fn encode(from: u32, id: u64) -> Bytes {
    let mut b = Vec::with_capacity(12);
    b.extend_from_slice(&from.to_le_bytes());
    b.extend_from_slice(&id.to_le_bytes());
    Bytes::from(b)
}

fn decode(p: &[u8]) -> (u32, u64) {
    let mut f = [0u8; 4];
    let mut i = [0u8; 8];
    f.copy_from_slice(&p[..4]);
    i.copy_from_slice(&p[4..12]);
    (u32::from_le_bytes(f), u64::from_le_bytes(i))
}

/// Survivor node id, its final view members, and its delivered casts in
/// order.
type SurvivorRow = (u32, Vec<NodeId>, Vec<(u32, u64)>);

struct EnsembleReport {
    survivors: Vec<SurvivorRow>,
}

/// One churn scenario derived from `seed`: boot 3–4 members under
/// heartbeat detection (optionally with seeded beacon-skip chaos), cast a
/// round of traffic, kill one member (fail-stop or silently), let the
/// survivors reconverge, cast again, then drain to a marker.
fn run_ensemble_scenario(seed: u64) -> EnsembleReport {
    let mut rng = DetRng::new(seed).derive(0x454E53); // "ENS"
    let nodes = 3 + rng.below(2) as u32; // 3..=4
    let victim = rng.below(nodes as u64) as u32;
    let silent = rng.chance(0.5);
    let skip_p = if rng.chance(0.5) { 0.15 } else { 0.0 };

    let cfg = |_node: u32| EndpointConfig {
        heartbeat: Some(HeartbeatCfg {
            interval: Duration::from_millis(50),
            timeout: Duration::from_millis(400),
        }),
        chaos: (skip_p > 0.0).then_some(HeartbeatChaos { seed, skip_p }),
        ..EndpointConfig::default()
    };

    let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
    for n in 0..nodes {
        f.add_node(NodeId(n));
    }
    let mut eps = vec![Endpoint::found(&f, NodeId(0), cfg(0)).unwrap()];
    for n in 1..nodes {
        let e = Endpoint::join(&f, NodeId(n), NodeId(0), cfg(n)).unwrap();
        e.wait_for_view_size(n as usize + 1, Duration::from_secs(10))
            .unwrap();
        eps.push(e);
    }
    // Settle everyone but the last joiner: `wait_for_view_size` consumes
    // from the events channel, and the last joiner's own join-wait already
    // consumed its size-`nodes` view event.
    for e in &eps[..eps.len() - 1] {
        e.wait_for_view_size(nodes as usize, Duration::from_secs(10))
            .unwrap();
    }

    // Round 1: two casts per member.
    for (n, e) in eps.iter().enumerate() {
        for id in 0..2u64 {
            e.cast(encode(n as u32, id), VirtualTime::ZERO).unwrap();
        }
    }

    if silent {
        f.crash_node_silently(NodeId(victim));
    } else {
        f.crash_node(NodeId(victim));
    }
    let survivors: Vec<u32> = (0..nodes).filter(|n| *n != victim).collect();
    for n in &survivors {
        eps[*n as usize]
            .wait_for_view_size(survivors.len(), Duration::from_secs(20))
            .unwrap();
    }

    // Round 2 from the survivors, then a drain marker from the lowest.
    for n in &survivors {
        eps[*n as usize]
            .cast(encode(*n, 2), VirtualTime::ZERO)
            .unwrap();
    }
    eps[survivors[0] as usize]
        .cast(encode(MARKER, 0), VirtualTime::ZERO)
        .unwrap();

    let mut report = EnsembleReport {
        survivors: Vec::new(),
    };
    for n in &survivors {
        let e = &eps[*n as usize];
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            match e.events().recv_timeout(Duration::from_millis(200)) {
                Ok(GcEvent::Cast { payload, .. }) => {
                    let (from, id) = decode(&payload);
                    if from == MARKER {
                        break;
                    }
                    got.push((from, id));
                }
                Ok(_) => {}
                Err(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "seed {seed}: node {n} never saw the drain marker"
                    );
                }
            }
        }
        let view = e.current_view().expect("survivor has a view");
        report.survivors.push((*n, view.members, got));
    }
    report
}

/// Oracle: view agreement — all survivors report identical membership,
/// and it is exactly the survivor set.
fn check_view_agreement(seed: u64, r: &EnsembleReport) {
    let expect: Vec<NodeId> = r.survivors.iter().map(|(n, _, _)| NodeId(*n)).collect();
    for (n, members, _) in &r.survivors {
        assert_eq!(
            *members, expect,
            "seed {seed}: node {n} disagrees on the surviving membership"
        );
    }
}

/// Oracle: total order — any two survivors deliver the casts they have in
/// common in the same order, and nobody delivers a cast twice.
fn check_total_order(seed: u64, r: &EnsembleReport) {
    for (n, _, casts) in &r.survivors {
        let mut dedup = casts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            casts.len(),
            "seed {seed}: node {n} delivered a cast twice"
        );
    }
    for (i, (na, _, a)) in r.survivors.iter().enumerate() {
        for (nb, _, b) in &r.survivors[i + 1..] {
            let common_a: Vec<_> = a.iter().filter(|c| b.contains(c)).collect();
            let common_b: Vec<_> = b.iter().filter(|c| a.contains(c)).collect();
            assert_eq!(
                common_a, common_b,
                "seed {seed}: total order diverged between nodes {na} and {nb}"
            );
        }
    }
}

#[test]
fn seeded_churn_scenarios_uphold_group_oracles() {
    for seed in 0..6u64 {
        let r = run_ensemble_scenario(seed);
        check_view_agreement(seed, &r);
        check_total_order(seed, &r);
    }
}

#[test]
fn churn_verdict_is_reproducible_per_seed() {
    // The interleavings are concurrent, but the oracle verdict (and the
    // survivor membership itself) must be a pure function of the seed.
    for seed in [1u64, 4] {
        let a = run_ensemble_scenario(seed);
        let b = run_ensemble_scenario(seed);
        let ms = |r: &EnsembleReport| {
            r.survivors
                .iter()
                .map(|(n, m, _)| (*n, m.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ms(&a), ms(&b), "seed {seed}: membership verdict diverged");
    }
}

// ---- full-cluster chaos: silent crash, heartbeat eviction, restart -----

#[test]
fn cluster_evicts_silent_crash_and_restart_rejoins() {
    let cluster = starfish::Cluster::builder()
        .nodes(3)
        .network(Box::new(Ideal))
        .layers(LayerCosts::zero())
        .heartbeat(Duration::from_millis(50), Duration::from_millis(400))
        .build()
        .unwrap();
    // A hang emits no fabric event: only the heartbeat detector (enabled
    // through the builder knob) can evict the node from the replicated
    // configuration.
    cluster.fabric().crash_node_silently(NodeId(2));
    cluster
        .daemon()
        .wait_config(Duration::from_secs(20), |c| {
            c.up_nodes() == vec![NodeId(0), NodeId(1)]
        })
        .unwrap();
    // The recovered workstation rejoins under its old identity.
    cluster.restart_node(NodeId(2)).unwrap();
    cluster
        .daemon()
        .wait_config(Duration::from_secs(20), |c| c.up_nodes().len() == 3)
        .unwrap();
    assert!(cluster.daemon_of(NodeId(2)).is_some());
}

#[test]
fn cluster_restart_after_fail_stop_crash() {
    let cluster = starfish::Cluster::builder()
        .nodes(3)
        .network(Box::new(Ideal))
        .layers(LayerCosts::zero())
        .build()
        .unwrap();
    cluster.crash_node(NodeId(1));
    cluster
        .daemon()
        .wait_config(Duration::from_secs(20), |c| c.up_nodes().len() == 2)
        .unwrap();
    // Restarting an up node is rejected; restarting the crashed one works.
    assert!(cluster.restart_node(NodeId(0)).is_err());
    cluster.restart_node(NodeId(1)).unwrap();
    cluster
        .daemon()
        .wait_config(Duration::from_secs(20), |c| c.up_nodes().len() == 3)
        .unwrap();
}
