//! Diskless checkpointing under node loss: the `replica <k>` plan bank.
//!
//! The tentpole claim of the replica backend is the `k−1`-loss guarantee:
//! with every image fragment replicated on `k` distinct peer nodes, losing
//! *any* `k−1` nodes leaves at least one live copy of every fragment, so
//! the full recovery line survives in peer memory — no disk anywhere. The
//! tests here prove it exhaustively for `k = 2` and `k = 3` (every
//! (k−1)-node-loss subset), exercise the XOR-parity fallback when a full
//! replica set is gone, pin the honest failure mode beyond tolerance, and
//! sweep a seeded bank of random schedules forced into replica mode.
//! Failing seeds are shrunk and persisted like the main scenario bank.

use starfish_chaos::{minimize, oracle, run_mpi_scenario, FaultPlan};

/// A plan that checkpoints every 3 steps into a `replica <k>` store and
/// crashes `kill` at step 7 — between rounds 2 and 3, so the bank covers
/// both "fragments placed before the loss" and "placement re-derived from
/// the shrunken membership" images.
fn loss_plan(k: u8, nodes: u32, kill: &[u32]) -> FaultPlan {
    let mut text = format!(
        "starfish-fault-plan v1\nseed 11\nnodes {nodes}\nranks {nodes}\n\
         steps 12\nckpt-every 3\nreplica {k}\n"
    );
    for n in kill {
        text.push_str(&format!("@7 crash {n}\n"));
    }
    FaultPlan::parse(&text).expect("loss plan parses")
}

#[test]
fn losing_any_k_minus_1_nodes_keeps_the_full_line_in_peer_memory() {
    for (k, nodes) in [(2u8, 5u32), (3, 6)] {
        let subsets: Vec<Vec<u32>> = match k {
            2 => (0..nodes).map(|a| vec![a]).collect(),
            _ => (0..nodes)
                .flat_map(|a| ((a + 1)..nodes).map(move |b| vec![a, b]))
                .collect(),
        };
        for kill in subsets {
            let plan = loss_plan(k, nodes, &kill);
            let report = run_mpi_scenario(&plan);
            let v = oracle::check_all(&report);
            assert!(v.is_empty(), "k={k} kill={kill:?}: {v:?}");
            assert_eq!(report.ckpt_rounds, 4, "k={k} kill={kill:?}");
            assert_eq!(
                report.line, 4,
                "k={k} kill={kill:?}: every round must survive k−1 losses"
            );
            assert!(report.line_restorable, "k={k} kill={kill:?}");
            assert_eq!(
                report.replica_parity_rebuilds, 0,
                "k={k} kill={kill:?}: k−1 losses never need the parity group"
            );
            assert_eq!(report.replica_under_replicated, 0);
            assert!(report.replica_fragments > 0);
        }
    }
}

#[test]
fn parity_group_rebuilds_a_fully_lost_fragment() {
    // k=1: each fragment has a single replica, so losing the node that
    // holds rank 0's data fragment leaves only the XOR parity copy. The
    // crash lands *after* the last round (step 12 of 13; rounds complete at
    // steps 2/5/8/11), so no later full-strength put papers over the loss.
    // Placement is the deterministic ring: rank 0 owns node 0, peers are
    // [1,2,3], its data fragment sits on node 1 and parity on node 2.
    let plan = FaultPlan::parse(
        "starfish-fault-plan v1\nseed 11\nnodes 4\nranks 4\nsteps 13\n\
         ckpt-every 3\nreplica 1\n@12 crash 1\n",
    )
    .unwrap();
    let report = run_mpi_scenario(&plan);
    let v = oracle::check_all(&report);
    assert!(v.is_empty(), "{v:?}");
    assert_eq!(report.ckpt_rounds, 4);
    assert_eq!(report.line, 4, "the line must survive via the parity group");
    assert!(report.line_restorable);
    assert!(
        report.replica_parity_rebuilds >= 1,
        "rank 0's image can only be reassembled through a parity rebuild"
    );
}

#[test]
fn losses_beyond_tolerance_fail_honestly_not_silently() {
    // 3 nodes, k=2: both peers of node 0 hold every copy of rank 0's
    // fragments (and the parity). Crashing both after the last round
    // leaves rank 0 alive but its images gone — the store must report
    // line 0 rather than pretend anything is restorable.
    let plan = FaultPlan::parse(
        "starfish-fault-plan v1\nseed 11\nnodes 3\nranks 3\nsteps 13\n\
         ckpt-every 3\nreplica 2\n@12 crash 1\n@12 crash 2\n",
    )
    .unwrap();
    let report = run_mpi_scenario(&plan);
    assert_eq!(report.ckpt_rounds, 4);
    assert_eq!(report.nodes_lost, 2, "k losses: the promise is void");
    assert_eq!(report.line, 0, "no surviving copy ⇒ no claimed line");
    assert!(report.line_restorable, "line 0 is trivially restorable");
    // The honest regression is excused by every oracle (nodes_lost ≥ k).
    let v = oracle::check_all(&report);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn replica_replays_are_bit_identical() {
    let plan = loss_plan(2, 5, &[3]);
    let a = run_mpi_scenario(&plan);
    let b = run_mpi_scenario(&plan);
    assert_eq!(a, b, "replica-mode replay diverged");
    // And the directive genuinely changes the endstate vs. a disk run.
    let mut disk = plan.clone();
    disk.replica_k = None;
    let d = run_mpi_scenario(&disk);
    assert_eq!(d.replica_fragments, 0);
    assert_ne!(a, d);
}

/// Seeded bank: random schedules (crashes, partitions, link faults, torn
/// images) forced into `replica 2` mode must uphold every oracle,
/// including the diskless k−1-loss promise. Failures shrink to a small
/// plan artifact exactly like the main scenario bank.
#[test]
fn seeded_replica_scenarios_uphold_all_oracles() {
    for seed in 0..40u64 {
        let mut plan = FaultPlan::generate(seed);
        plan.replica_k = Some(2);
        let v = oracle::check_all(&run_mpi_scenario(&plan));
        if !v.is_empty() {
            let min = minimize(&plan, |p| {
                !oracle::check_all(&run_mpi_scenario(p)).is_empty()
            });
            let why = oracle::check_all(&run_mpi_scenario(&min));
            let path = format!(
                "{}/tests/regressions/shrunk-replica-seed-{seed}.plan",
                env!("CARGO_MANIFEST_DIR")
            );
            let note = match std::fs::write(&path, format!("# violations: {why:?}\n{min}")) {
                Ok(()) => format!("shrunk plan written to {path}"),
                Err(e) => format!("could not write {path}: {e}"),
            };
            panic!("replica seed {seed} violated {v:?}; {note}\nminimized:\n{min}");
        }
    }
}
