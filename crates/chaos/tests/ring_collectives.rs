//! The ring-collective fault bank: bandwidth-optimal ring collectives
//! (reduce-scatter + ring-allgather pipelines) under seeded drop /
//! duplicate / reorder faults armed on the ring links themselves, plus a
//! crash mid-sequence. The oracles are exactly-once arithmetic — the
//! closed-form expected sums, where a duplicated or lost block
//! contribution is silent corruption, not an error — and byte-for-byte
//! payload integrity of every gathered block. The harness mirrors
//! `collectives_faults.rs`: endpoints bind before faults arm, ranks run on
//! their own threads, and everyone keeps pumping briefly after finishing
//! so a peer's retransmission probes can still be served.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use starfish_chaos::FaultPlan;
use starfish_mpi::collectives::{allgather_with, allreduce_with};
use starfish_mpi::{
    AllgatherAlgo, AllreduceAlgo, Comm, MpiEndpoint, RankDirectory, RecvMode, ReduceOp,
};
use starfish_util::trace::TraceSink;
use starfish_util::{AppId, NodeId, Rank, VClock};
use starfish_vni::{Fabric, Ideal, LayerCosts, LinkFault};

const APP: AppId = AppId(9);

fn fabric(n: u32) -> Fabric {
    let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
    for i in 0..n {
        f.add_node(NodeId(i));
    }
    f
}

/// Bind one reliable endpoint per rank (rank r on node r) before any rank
/// runs, so faults armed on the fabric hit application traffic, not setup.
fn bind_ranks(fabric: &Fabric, n: u32, recv_timeout: Duration) -> Vec<MpiEndpoint> {
    let dir = RankDirectory::with_placement(&(0..n).map(NodeId).collect::<Vec<_>>());
    (0..n)
        .map(|r| {
            let mut ep = MpiEndpoint::new(
                fabric,
                APP,
                Rank(r),
                dir.clone(),
                RecvMode::Polled,
                TraceSink::disabled(),
            )
            .unwrap();
            ep.set_reliable(true);
            ep.set_blocking_timeout(recv_timeout);
            ep
        })
        .collect()
}

/// Run `f(rank, endpoint, comm, clock)` on one thread per bound endpoint,
/// collecting results in rank order, then keep pumping each endpoint for a
/// short window so peers still blocked on a retransmission can be served.
fn run_bound<T: Send + 'static>(
    eps: Vec<MpiEndpoint>,
    pump: Duration,
    f: impl Fn(u32, &mut MpiEndpoint, &mut Comm, &mut VClock) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let n = eps.len() as u32;
    let f = std::sync::Arc::new(f);
    let mut handles = Vec::new();
    for (r, mut ep) in eps.into_iter().enumerate() {
        let f = f.clone();
        handles.push(std::thread::spawn(move || {
            let mut comm = Comm::world(n, Rank(r as u32));
            let mut clock = VClock::new();
            let out = f(r as u32, &mut ep, &mut comm, &mut clock);
            let quiesce = std::time::Instant::now() + pump;
            while std::time::Instant::now() < quiesce {
                ep.flush_reliable(&mut clock);
                let _ = ep.try_recv_world(&mut clock, starfish_mpi::WORLD_CONTEXT, None, None);
                std::thread::sleep(Duration::from_millis(5));
            }
            out
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn run_ranks<T: Send + 'static>(
    fabric: &Fabric,
    n: u32,
    recv_timeout: Duration,
    f: impl Fn(u32, &mut MpiEndpoint, &mut Comm, &mut VClock) -> T + Send + Sync + 'static,
) -> Vec<T> {
    let eps = bind_ranks(fabric, n, recv_timeout);
    run_bound(eps, Duration::from_millis(500), f)
}

/// Arm `mk(i)` on every directed data link of the ring, `i -> (i+1) % n`.
/// Both ring phases (reduce-scatter and allgather) push blocks along
/// exactly these edges; the reverse edges carry only acks.
fn arm_ring(f: &Fabric, n: u32, mk: impl Fn(u32) -> LinkFault) {
    for i in 0..n {
        f.set_link_fault(NodeId(i), NodeId((i + 1) % n), mk(i));
    }
}

/// Rank `r`'s allreduce contribution: element `i` is `(r+1)*(i+1)`, so the
/// elementwise sum has the closed form `(i+1) * n(n+1)/2` and any block
/// delivered twice (or a lost retransmission papered over with zeros)
/// breaks the arithmetic instead of hiding in it.
fn contribution(r: u32, elems: usize) -> Vec<u64> {
    (0..elems)
        .map(|i| (r as u64 + 1) * (i as u64 + 1))
        .collect()
}

fn expected_sum(n: u32, elems: usize) -> Vec<u64> {
    let ranks: u64 = (1..=n as u64).sum();
    (0..elems).map(|i| ranks * (i as u64 + 1)).collect()
}

/// Rank `k`'s allgather block: a position-and-origin-dependent byte
/// pattern, so a block delivered into the wrong slot (or assembled from a
/// duplicated segment) fails byte-for-byte comparison.
fn block_pattern(r: u32, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((r as usize * 131 + i * 7) & 0xff) as u8)
        .collect()
}

#[test]
fn ring_allreduce_is_exact_over_faulty_ring_links() {
    // Every data edge of the 5-ring drops, duplicates and reorders; every
    // ack edge loses a fifth of its acks. 257 elements (prime, not
    // divisible by 5) forces ragged blocks through both phases. The
    // reliable layer must absorb all of it: the sums are checked exactly.
    let n = 5;
    let f = fabric(n);
    arm_ring(&f, n, |i| {
        LinkFault::seeded(13 + 2 * i as u64)
            .drop(0.3)
            .duplicate(0.3)
            .reorder(0.25)
    });
    for i in 0..n {
        f.set_link_fault(
            NodeId((i + 1) % n),
            NodeId(i),
            LinkFault::seeded(101 + i as u64).drop(0.2),
        );
    }
    let out = run_ranks(&f, n, Duration::from_secs(20), |r, ep, comm, clock| {
        allreduce_with(
            ep,
            comm,
            clock,
            &contribution(r, 257),
            ReduceOp::Sum,
            AllreduceAlgo::Ring,
        )
        .unwrap()
    });
    let want = expected_sum(n, 257);
    for (r, o) in out.iter().enumerate() {
        assert_eq!(o, &want, "rank {r} finished with a wrong sum");
    }
    let stats = f.fault_stats();
    assert!(stats.dropped >= 1, "the drop faults must actually fire");
    assert!(stats.duplicated >= 1, "the dup faults must actually fire");
}

#[test]
fn segmented_ring_survives_chunk_level_faults() {
    // Shrink the segment size to 64 B so each ring block (1 KiB at 512
    // elements over 4 ranks) becomes a 16-segment train, then drop and
    // reorder on every data edge: the armed faults hit individual
    // segments mid-reduce-scatter, not whole blocks. Reassembly must stay
    // exact, and the fault layer must have eaten segment-scale frame
    // counts — proof the pipeline actually split the transfers.
    let n = 4;
    let f = fabric(n);
    arm_ring(&f, n, |i| {
        LinkFault::seeded(7 + 3 * i as u64).drop(0.4).reorder(0.3)
    });
    let out = run_ranks(&f, n, Duration::from_secs(20), |r, ep, comm, clock| {
        ep.set_rendezvous_chunk_bytes(64);
        allreduce_with(
            ep,
            comm,
            clock,
            &contribution(r, 512),
            ReduceOp::Sum,
            AllreduceAlgo::Ring,
        )
        .unwrap()
    });
    let want = expected_sum(n, 512);
    for (r, o) in out.iter().enumerate() {
        assert_eq!(o, &want, "rank {r} finished with a wrong sum");
    }
    assert!(
        f.fault_stats().dropped >= 16,
        "segment-level faults must outnumber the block count: {} dropped",
        f.fault_stats().dropped
    );
}

#[test]
fn ring_allgather_preserves_every_block_byte_for_byte() {
    // Each rank contributes a distinct 4 KiB pattern; the ring circulates
    // every block through every faulty edge (a block born on rank 0
    // crosses all n-1 data links to reach rank 1's final slot). Any
    // mis-slotted, torn or duplicate-assembled block fails the
    // byte-for-byte oracle on some rank.
    let n = 5;
    let f = fabric(n);
    arm_ring(&f, n, |i| {
        LinkFault::seeded(41 + i as u64)
            .drop(0.25)
            .duplicate(0.35)
            .reorder(0.25)
    });
    let out = run_ranks(&f, n, Duration::from_secs(20), |r, ep, comm, clock| {
        allgather_with(
            ep,
            comm,
            clock,
            &block_pattern(r, 4096),
            AllgatherAlgo::Ring,
        )
        .unwrap()
    });
    for (r, view) in out.iter().enumerate() {
        assert_eq!(view.len(), n as usize, "rank {r} gathered a short world");
        for (k, block) in view.iter().enumerate() {
            assert_eq!(
                &block[..],
                &block_pattern(k as u32, 4096)[..],
                "rank {r}'s copy of rank {k}'s block is corrupt"
            );
        }
    }
    assert!(f.fault_stats().duplicated >= 1, "the dup faults must fire");
}

#[test]
fn crash_mid_ring_sequence_stops_every_rank_with_an_error() {
    // Stop-and-sync: the first ring allreduce completes exactly; then
    // node 2 crashes — strictly between the two collectives, enforced by
    // a two-phase barrier with the crasher thread — and the second ring
    // allreduce must stop every rank with a clean error inside its
    // receive timeout. No rank may hang waiting on the dead ring segment,
    // and no rank may return a torn sum.
    let n = 4;
    let f = fabric(n);
    let eps = bind_ranks(&f, n, Duration::from_millis(500));
    let gate = Arc::new(Barrier::new(n as usize + 1));
    let crasher = {
        let f = f.clone();
        let gate = gate.clone();
        std::thread::spawn(move || {
            gate.wait();
            f.crash_node(NodeId(2));
            gate.wait();
        })
    };
    let out = run_bound(
        eps,
        Duration::from_millis(100),
        move |r, ep, comm, clock| {
            let first = allreduce_with(
                ep,
                comm,
                clock,
                &contribution(r, 64),
                ReduceOp::Sum,
                AllreduceAlgo::Ring,
            )
            .unwrap();
            gate.wait();
            gate.wait();
            let second = allreduce_with(
                ep,
                comm,
                clock,
                &contribution(r, 64),
                ReduceOp::Sum,
                AllreduceAlgo::Ring,
            )
            .err()
            .map(|e| e.to_string());
            (first, second)
        },
    );
    crasher.join().unwrap();
    let want = expected_sum(n, 64);
    for (r, (first, second)) in out.iter().enumerate() {
        assert_eq!(first, &want, "rank {r}'s pre-crash allreduce must be exact");
        assert!(
            second.is_some(),
            "rank {r} must surface an error after the crash, got success"
        );
    }
}

#[test]
fn committed_ring_plan_replays_the_shrunk_fault_bank() {
    // The committed shrunk plan is the authoritative description of the
    // ring scenario: this test re-arms exactly the faults it pins around
    // the collective it names and re-checks the closed-form sums, so the
    // file keeps reproducing the fault bank it was shrunk from. (The
    // generic regression replay in regressions.rs also drives the same
    // plan's faulty links with the standard point-to-point schedule.)
    let dir = format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(format!("{dir}/ring-collective-faulty-links.plan")).unwrap();
    let plan = FaultPlan::parse(&text).unwrap();
    assert_eq!(plan.collective.as_deref(), Some("allreduce-ring"));
    assert_eq!(plan.nodes, plan.ranks, "ring placement is rank r on node r");
    assert_eq!(plan.payload % 8, 0, "payload must be whole u64 elements");
    for i in 0..plan.nodes {
        assert!(
            plan.faults
                .iter()
                .any(|s| s.src == i && s.dst == (i + 1) % plan.nodes),
            "the plan must fault every data edge of the ring (missing {i})"
        );
    }
    let n = plan.nodes;
    let elems = plan.payload as usize / 8;
    let f = fabric(n);
    for s in &plan.faults {
        f.set_link_fault(NodeId(s.src), NodeId(s.dst), s.to_fault());
    }
    let out = run_ranks(&f, n, Duration::from_secs(20), move |r, ep, comm, clock| {
        allreduce_with(
            ep,
            comm,
            clock,
            &contribution(r, elems),
            ReduceOp::Sum,
            AllreduceAlgo::Ring,
        )
        .unwrap()
    });
    let want = expected_sum(n, elems);
    for (r, o) in out.iter().enumerate() {
        assert_eq!(o, &want, "rank {r} regressed on the committed plan");
    }
    assert!(f.fault_stats().dropped >= 1, "the plan's faults must fire");
}
