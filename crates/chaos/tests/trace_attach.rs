//! Acceptance: replaying a committed regression plan under the flight
//! recorder yields (a) the identical `ScenarioReport` — recording must not
//! perturb the deterministic schedule — and (b) a reassembled cross-node
//! causal trace that is internally consistent (acyclic happens-before DAG,
//! per-process Lamport monotonicity) and loads as Perfetto JSON.

use starfish_chaos::{oracle, run_mpi_scenario, run_mpi_scenario_traced, FaultPlan};
use starfish_trace::{perfetto, reassemble};

fn torn_interior_plan() -> FaultPlan {
    let path = format!(
        "{}/tests/regressions/torn-interior-image.plan",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("read committed plan");
    FaultPlan::parse(&text).expect("committed plan parses")
}

#[test]
fn tracing_does_not_perturb_the_deterministic_schedule() {
    let plan = torn_interior_plan();
    let untraced = run_mpi_scenario(&plan);
    let (traced, traces) = run_mpi_scenario_traced(&plan);
    assert_eq!(
        untraced, traced,
        "recording must be invisible to the virtual-time schedule"
    );
    assert!(!traces.is_empty(), "a traced run must return rings");
    assert!(oracle::check_all(&traced).is_empty());
}

#[test]
fn replayed_regression_emits_a_consistent_causal_trace() {
    let plan = torn_interior_plan();
    let (_, traces) = run_mpi_scenario_traced(&plan);
    // One ring per rank plus the plan-level "chaos" ring.
    assert_eq!(traces.len(), plan.ranks as usize + 1);
    let total: usize = traces.iter().map(|t| t.events.len()).sum();
    assert!(total > 0, "the replay must record events");

    let dag = reassemble(traces.clone());
    dag.check().expect("happens-before DAG consistent");
    assert!(
        dag.message_edges > 0,
        "a multi-rank replay must stitch cross-process message edges"
    );
    // The injected corruptions appear as fault events in the plan ring.
    let chaos = traces
        .iter()
        .find(|t| t.scope == "chaos")
        .expect("plan-level ring present");
    assert!(chaos.events.iter().any(|e| e.summary().contains("Corrupt")));
}

#[test]
fn replayed_regression_trace_is_perfetto_loadable() {
    let plan = torn_interior_plan();
    let (_, traces) = run_mpi_scenario_traced(&plan);
    let json = perfetto::export(&traces);
    perfetto::validate(&json).expect("exported trace passes the schema check");
}
