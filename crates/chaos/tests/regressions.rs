//! Replay every committed regression plan: each one once exposed a real
//! violation and must pass all oracles forever. `.plan` files under
//! `tests/regressions/` are picked up automatically — to reproduce a
//! failure locally, drop the shrunk plan in and run
//! `cargo test -p starfish-chaos --test regressions`.

use starfish_chaos::{oracle, run_mpi_scenario, FaultPlan};

#[test]
fn committed_regression_plans_pass_all_oracles() {
    let dir = format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR"));
    let mut plans = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("regressions dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("plan") {
            plans.push(path);
        }
    }
    plans.sort();
    assert!(
        !plans.is_empty(),
        "the regression corpus must contain at least one plan"
    );
    for path in plans {
        let text = std::fs::read_to_string(&path).expect("read plan");
        let plan = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let report = run_mpi_scenario(&plan);
        let v = oracle::check_all(&report);
        assert!(v.is_empty(), "{} regressed: {v:?}", path.display());
    }
}

/// The replica-node-loss plan specifically: pin the diskless endstate so
/// the file keeps proving the k−1-loss guarantee it was written for.
#[test]
fn replica_node_loss_plan_pins_the_peer_memory_line() {
    let dir = format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(format!("{dir}/replica-node-loss.plan")).unwrap();
    let plan = FaultPlan::parse(&text).unwrap();
    assert_eq!(plan.replica_k, Some(2));
    let report = run_mpi_scenario(&plan);
    assert_eq!(report.ckpt_rounds, 4);
    assert_eq!(report.nodes_lost, 1);
    assert_eq!(report.line, 4, "the full line must survive one node loss");
    assert!(report.line_restorable, "proven by actual fragment fetches");
    assert_eq!(report.replica_parity_rebuilds, 0);
    assert!(oracle::check_all(&report).is_empty());
}

/// The torn-interior-image plan specifically: pin the endstate shape so
/// the file keeps describing the scenario it was shrunk from.
#[test]
fn torn_interior_image_plan_pins_the_restorable_line() {
    let dir = format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(format!("{dir}/torn-interior-image.plan")).unwrap();
    let plan = FaultPlan::parse(&text).unwrap();
    let report = run_mpi_scenario(&plan);
    assert_eq!(report.ckpt_rounds, 3);
    assert_eq!(report.corruptions, 2, "both torn images must hit");
    assert_eq!(
        report.line, 1,
        "the jointly-restorable line is 1 (min-of-latest would wrongly say 2)"
    );
    assert!(report.line_restorable);
    assert!(oracle::check_all(&report).is_empty());
}

/// The chunked-pipeline plan specifically: pin that it really splits
/// transfers into chunk trains (the fault layer must see — and drop —
/// many more frames than the transfer count) and that reassembly stayed
/// byte-perfect, so the file keeps proving what it was committed for.
#[test]
fn rendezvous_chunked_pipeline_plan_pins_chunk_level_faults() {
    let dir = format!("{}/tests/regressions", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(format!("{dir}/rendezvous-chunked-pipeline.plan")).unwrap();
    let plan = FaultPlan::parse(&text).unwrap();
    assert_eq!(plan.rndv_chunk, Some(1024));
    assert_eq!(plan.payload, 16384, "16 chunks per transfer");
    let report = run_mpi_scenario(&plan);
    assert!(oracle::check_all(&report).is_empty());
    assert_eq!(report.rndv_pending, 0, "no transfer left parked");
    assert_eq!(report.payload_corruptions, 0, "byte-for-byte reassembly");
    let sent: usize = report.sent.values().map(Vec::len).sum();
    assert!(
        report.stats.dropped as usize > sent,
        "chunk-level faults must outnumber transfers: {} dropped frames \
         across {sent} transfers",
        report.stats.dropped
    );
}
