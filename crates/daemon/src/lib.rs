//! # starfish-daemon — the per-node Starfish daemon
//!
//! "Each Starfish node runs a Starfish daemon ... these daemons are used to
//! interact with clients, spawn MPI programs ..., track and recover from
//! failures, and to maintain the configuration of the system" (paper §1).
//!
//! The daemon is built from the paper's four modules (figure 1):
//!
//! * **Ensemble** — the group-communication endpoint
//!   ([`starfish_ensemble::Endpoint`]), owned by the daemon's event loop;
//! * **management module** ([`config`]) — the replicated cluster
//!   configuration: a deterministic state machine driven exclusively by
//!   totally ordered casts, so every daemon holds identical state
//!   (§3.1.1: "the use of ensemble's reliable and totally ordered delivery
//!   mechanism is instrumental here, in maintaining coherent state between
//!   all cluster daemons");
//! * **lightweight membership module** ([`starfish_lwgroups::LwRouter`]) —
//!   deduces per-application lightweight views from the main group;
//! * **lightweight endpoint modules** — one per local application process:
//!   the channel pair carrying configuration, lightweight-membership and
//!   relayed coordination / C-R messages (paper §2.3, Table 1).
//!
//! The daemon is deliberately **application-agnostic**: starting an actual
//! MPI process is delegated to a [`host::NodeHost`] implementation supplied
//! by the `starfish` crate. Because every daemon derives its actions
//! (spawn/restart/rollback decisions, placement, epochs) deterministically
//! from the same replicated state and view sequence, no additional agreement
//! protocol is needed anywhere in the failure path.
//!
//! [`mgmt`] implements the ASCII management/user protocol (§3.1.1): login,
//! node administration, parameter control, and job submission — the exact
//! textual protocol the paper's Java GUI speaks underneath.

pub mod config;
pub mod daemon;
pub mod forensics;
pub mod host;
pub mod mgmt;
pub mod msg;
pub mod stats;

pub use config::{AppEntry, AppSpec, AppStatus, CkptProto, ClusterConfig, FtPolicy, LevelKind};
pub use daemon::{postmortem_dir, Daemon, DaemonConfig};
pub use forensics::Forensics;
pub use host::{NodeHost, ProcSpec};
pub use mgmt::MgmtSession;
pub use msg::{CfgCmd, ProcDown, ProcUp, RelayKind};
pub use stats::StatsHub;
