//! Daemon message types: the replicated command stream and the local
//! daemon ↔ application-process protocol (paper §2.3, Table 1).

use bytes::Bytes;

use starfish_checkpoint::backend::CkptBackend;
use starfish_lwgroups::LwView;
use starfish_telemetry::Snapshot;
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{AppId, Epoch, Error, NodeId, Rank, Result, VirtualTime};

use crate::config::{AppSpec, CkptProto, FtPolicy, LevelKind};

/// Replicated configuration commands, carried as totally ordered casts
/// between daemons (Table 1 "Control" messages).
#[derive(Debug, Clone, PartialEq)]
pub enum CfgCmd {
    AddNode {
        node: NodeId,
        arch_index: u8,
    },
    RemoveNode {
        node: NodeId,
    },
    DisableNode {
        node: NodeId,
    },
    EnableNode {
        node: NodeId,
    },
    /// The membership layer reported this node gone (crash); recorded in the
    /// replicated state so placement decisions exclude it.
    NodeDead {
        node: NodeId,
    },
    SetParam {
        key: String,
        value: String,
    },
    Submit {
        spec: AppSpec,
    },
    Suspend {
        app: AppId,
    },
    ResumeApp {
        app: AppId,
    },
    Delete {
        app: AppId,
    },
    /// A rank reported normal completion.
    RankDone {
        app: AppId,
        rank: Rank,
    },
    /// Client- or system-initiated checkpoint request.
    TriggerCkpt {
        app: AppId,
    },
    /// Deterministic restart decision (issued by the surviving view
    /// coordinator's daemon after a failure under the `Restart` policy).
    /// `line` is the recovery line: the checkpoint index each rank restarts
    /// from (uniform for coordinated protocols, per-rank for uncoordinated).
    RestartApp {
        app: AppId,
        line: Vec<u64>,
    },
    /// State-transfer request: a freshly joined daemon asks for the
    /// replicated configuration. Applying it changes nothing; its position
    /// in the total order defines the snapshot point, and the view
    /// coordinator responds with a [`P2pMsg::State`] snapshot.
    NeedState {
        node: NodeId,
    },
    /// Migrate one rank to another node (paper §3.2.1: "C/R allows Starfish
    /// to migrate application processes from one node to another, e.g., if
    /// a better node becomes available"). The whole application rolls back
    /// to `line` (so the cut is consistent) and the rank restarts on `node`.
    Migrate {
        app: AppId,
        rank: Rank,
        node: NodeId,
        line: Vec<u64>,
    },
}

const T_ADD: u8 = 1;
const T_REMOVE: u8 = 2;
const T_DISABLE: u8 = 3;
const T_ENABLE: u8 = 4;
const T_DEAD: u8 = 5;
const T_PARAM: u8 = 6;
const T_SUBMIT: u8 = 7;
const T_SUSPEND: u8 = 8;
const T_RESUMEAPP: u8 = 9;
const T_DELETE: u8 = 10;
const T_RANKDONE: u8 = 11;
const T_CKPT: u8 = 12;
const T_RESTART: u8 = 13;
const T_NEEDSTATE: u8 = 14;
const T_MIGRATE: u8 = 15;

fn encode_policy(p: FtPolicy) -> u8 {
    match p {
        FtPolicy::Restart => 0,
        FtPolicy::NotifyView => 1,
        FtPolicy::Kill => 2,
    }
}

fn decode_policy(b: u8) -> Result<FtPolicy> {
    Ok(match b {
        0 => FtPolicy::Restart,
        1 => FtPolicy::NotifyView,
        2 => FtPolicy::Kill,
        _ => return Err(Error::codec(format!("bad policy byte {b}"))),
    })
}

fn encode_level(l: LevelKind) -> u8 {
    match l {
        LevelKind::Native => 0,
        LevelKind::Vm => 1,
    }
}

fn decode_level(b: u8) -> Result<LevelKind> {
    Ok(match b {
        0 => LevelKind::Native,
        1 => LevelKind::Vm,
        _ => return Err(Error::codec(format!("bad level byte {b}"))),
    })
}

fn encode_proto(p: CkptProto) -> u8 {
    match p {
        CkptProto::StopAndSync => 0,
        CkptProto::ChandyLamport => 1,
        CkptProto::Independent => 2,
    }
}

fn decode_proto(b: u8) -> Result<CkptProto> {
    Ok(match b {
        0 => CkptProto::StopAndSync,
        1 => CkptProto::ChandyLamport,
        2 => CkptProto::Independent,
        _ => return Err(Error::codec(format!("bad proto byte {b}"))),
    })
}

/// Backend wire form: tag byte then the replica degree (0 for disk, which
/// has no parameters).
fn encode_backend(b: CkptBackend, enc: &mut Encoder) {
    match b {
        CkptBackend::Disk => {
            enc.put_u8(0);
            enc.put_u8(0);
        }
        CkptBackend::Replica { k } => {
            enc.put_u8(1);
            enc.put_u8(k);
        }
    }
}

fn decode_backend(dec: &mut Decoder<'_>) -> Result<CkptBackend> {
    let tag = dec.get_u8()?;
    let k = dec.get_u8()?;
    Ok(match tag {
        0 => CkptBackend::Disk,
        1 if k >= 1 => CkptBackend::Replica { k },
        _ => return Err(Error::codec(format!("bad backend tag {tag} (k={k})"))),
    })
}

impl Encode for AppSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.name);
        enc.put_u32(self.size);
        enc.put_u8(encode_policy(self.policy));
        enc.put_u8(encode_level(self.level));
        enc.put_u8(encode_proto(self.proto));
        encode_backend(self.backend, enc);
        enc.put_str(&self.owner);
        enc.put_u64(self.token);
    }
}

impl Decode for AppSpec {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AppSpec {
            name: dec.get_str()?,
            size: dec.get_u32()?,
            policy: decode_policy(dec.get_u8()?)?,
            level: decode_level(dec.get_u8()?)?,
            proto: decode_proto(dec.get_u8()?)?,
            backend: decode_backend(dec)?,
            owner: dec.get_str()?,
            token: dec.get_u64()?,
        })
    }
}

impl Encode for CfgCmd {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            CfgCmd::AddNode { node, arch_index } => {
                enc.put_u8(T_ADD);
                node.encode(enc);
                enc.put_u8(*arch_index);
            }
            CfgCmd::RemoveNode { node } => {
                enc.put_u8(T_REMOVE);
                node.encode(enc);
            }
            CfgCmd::DisableNode { node } => {
                enc.put_u8(T_DISABLE);
                node.encode(enc);
            }
            CfgCmd::EnableNode { node } => {
                enc.put_u8(T_ENABLE);
                node.encode(enc);
            }
            CfgCmd::NodeDead { node } => {
                enc.put_u8(T_DEAD);
                node.encode(enc);
            }
            CfgCmd::SetParam { key, value } => {
                enc.put_u8(T_PARAM);
                enc.put_str(key);
                enc.put_str(value);
            }
            CfgCmd::Submit { spec } => {
                enc.put_u8(T_SUBMIT);
                spec.encode(enc);
            }
            CfgCmd::Suspend { app } => {
                enc.put_u8(T_SUSPEND);
                app.encode(enc);
            }
            CfgCmd::ResumeApp { app } => {
                enc.put_u8(T_RESUMEAPP);
                app.encode(enc);
            }
            CfgCmd::Delete { app } => {
                enc.put_u8(T_DELETE);
                app.encode(enc);
            }
            CfgCmd::RankDone { app, rank } => {
                enc.put_u8(T_RANKDONE);
                app.encode(enc);
                rank.encode(enc);
            }
            CfgCmd::TriggerCkpt { app } => {
                enc.put_u8(T_CKPT);
                app.encode(enc);
            }
            CfgCmd::RestartApp { app, line } => {
                enc.put_u8(T_RESTART);
                app.encode(enc);
                line.encode(enc);
            }
            CfgCmd::NeedState { node } => {
                enc.put_u8(T_NEEDSTATE);
                node.encode(enc);
            }
            CfgCmd::Migrate {
                app,
                rank,
                node,
                line,
            } => {
                enc.put_u8(T_MIGRATE);
                app.encode(enc);
                rank.encode(enc);
                node.encode(enc);
                line.encode(enc);
            }
        }
    }
}

impl Decode for CfgCmd {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            T_ADD => CfgCmd::AddNode {
                node: NodeId::decode(dec)?,
                arch_index: dec.get_u8()?,
            },
            T_REMOVE => CfgCmd::RemoveNode {
                node: NodeId::decode(dec)?,
            },
            T_DISABLE => CfgCmd::DisableNode {
                node: NodeId::decode(dec)?,
            },
            T_ENABLE => CfgCmd::EnableNode {
                node: NodeId::decode(dec)?,
            },
            T_DEAD => CfgCmd::NodeDead {
                node: NodeId::decode(dec)?,
            },
            T_PARAM => CfgCmd::SetParam {
                key: dec.get_str()?,
                value: dec.get_str()?,
            },
            T_SUBMIT => CfgCmd::Submit {
                spec: AppSpec::decode(dec)?,
            },
            T_SUSPEND => CfgCmd::Suspend {
                app: AppId::decode(dec)?,
            },
            T_RESUMEAPP => CfgCmd::ResumeApp {
                app: AppId::decode(dec)?,
            },
            T_DELETE => CfgCmd::Delete {
                app: AppId::decode(dec)?,
            },
            T_RANKDONE => CfgCmd::RankDone {
                app: AppId::decode(dec)?,
                rank: Rank::decode(dec)?,
            },
            T_CKPT => CfgCmd::TriggerCkpt {
                app: AppId::decode(dec)?,
            },
            T_RESTART => CfgCmd::RestartApp {
                app: AppId::decode(dec)?,
                line: Vec::<u64>::decode(dec)?,
            },
            T_NEEDSTATE => CfgCmd::NeedState {
                node: NodeId::decode(dec)?,
            },
            T_MIGRATE => CfgCmd::Migrate {
                app: AppId::decode(dec)?,
                rank: Rank::decode(dec)?,
                node: NodeId::decode(dec)?,
                line: Vec::<u64>::decode(dec)?,
            },
            t => return Err(Error::codec(format!("unknown CfgCmd tag {t}"))),
        })
    }
}

/// Kind of application message relayed through the daemons (Table 1:
/// coordination vs. checkpoint/restart; both opaque to daemons).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayKind {
    Coordination,
    CheckpointRestart,
}

/// Envelope of an application message relayed inside a lightweight group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRelay {
    pub app: AppId,
    pub kind: RelayKind,
    pub from: Rank,
    /// Specific destination rank, or None for a lightweight-group multicast.
    pub to: Option<Rank>,
    pub body: Bytes,
}

impl Encode for AppRelay {
    fn encode(&self, enc: &mut Encoder) {
        self.app.encode(enc);
        enc.put_u8(match self.kind {
            RelayKind::Coordination => 0,
            RelayKind::CheckpointRestart => 1,
        });
        self.from.encode(enc);
        self.to.map(|r| r.0).encode(enc);
        self.body.encode(enc);
    }
}

impl Decode for AppRelay {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AppRelay {
            app: AppId::decode(dec)?,
            kind: match dec.get_u8()? {
                0 => RelayKind::Coordination,
                1 => RelayKind::CheckpointRestart,
                b => return Err(Error::codec(format!("bad relay kind {b}"))),
            },
            from: Rank::decode(dec)?,
            to: Option::<u32>::decode(dec)?.map(Rank),
            body: Bytes::decode(dec)?,
        })
    }
}

/// Messages from the daemon's lightweight endpoint module to a local
/// application process (the paper's local TCP connection, §2.3).
#[derive(Debug, Clone)]
pub enum ProcDown {
    /// Lightweight-group view notification (the dynamicity/fault-tolerance
    /// upcall of §3.2).
    LwView { view: LwView, vt: VirtualTime },
    /// Relayed application message (coordination or C/R).
    Relay {
        kind: RelayKind,
        from: Rank,
        body: Bytes,
        vt: VirtualTime,
    },
    /// Configuration: start a checkpoint round now.
    StartCheckpoint { vt: VirtualTime },
    /// Configuration: suspend at the next service point.
    Suspend { vt: VirtualTime },
    /// Configuration: resume from suspension.
    Resume { vt: VirtualTime },
    /// Configuration: roll back to checkpoint `index` with a new epoch.
    Rollback {
        index: u64,
        epoch: Epoch,
        vt: VirtualTime,
    },
    /// Configuration: terminate immediately.
    Kill { vt: VirtualTime },
}

/// Messages from a local application process up to its daemon.
#[derive(Debug, Clone)]
pub enum ProcUp {
    /// Multicast a coordination or C/R message in the app's lightweight
    /// group.
    Cast {
        kind: RelayKind,
        body: Bytes,
        vt: VirtualTime,
    },
    /// Send a C/R message to a specific rank.
    SendTo {
        kind: RelayKind,
        to: Rank,
        body: Bytes,
        vt: VirtualTime,
    },
    /// This rank finished normally.
    Done { vt: VirtualTime },
    /// A checkpoint round committed locally at `index` (reported by the
    /// round coordinator for bookkeeping/GC).
    CkptCommitted { index: u64, vt: VirtualTime },
    /// Cumulative telemetry snapshot of this process's registry; the daemon
    /// casts it so every daemon's stats hub sees it.
    Stats { snap: Snapshot, vt: VirtualTime },
}

/// Top-level envelope of every daemon cast: either a replicated
/// configuration command or a lightweight-group operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WireCast {
    Cfg(CfgCmd),
    Lw(starfish_lwgroups::LwMsg),
    /// Cumulative telemetry snapshot of one scope (replaces the previous
    /// snapshot of that scope in every daemon's stats hub).
    Stats {
        scope: String,
        snap: Snapshot,
    },
    /// A structured cluster event observed locally (suspicion, checkpoint
    /// commit, respawn, injected fault) published onto every daemon's event
    /// bus through the total order, so all buses agree on sequence.
    /// Events derivable from the `Cfg` stream itself are *not* cast — each
    /// daemon appends those deterministically while applying the command.
    Event {
        origin: NodeId,
        vt: VirtualTime,
        kind: starfish_events::EventKind,
    },
}

impl Encode for WireCast {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WireCast::Cfg(c) => {
                enc.put_u8(0);
                c.encode(enc);
            }
            WireCast::Lw(l) => {
                enc.put_u8(1);
                l.encode(enc);
            }
            WireCast::Stats { scope, snap } => {
                enc.put_u8(2);
                enc.put_str(scope);
                snap.encode(enc);
            }
            WireCast::Event { origin, vt, kind } => {
                enc.put_u8(3);
                origin.encode(enc);
                enc.put_u64(vt.as_nanos());
                kind.encode(enc);
            }
        }
    }
}

impl Decode for WireCast {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => WireCast::Cfg(CfgCmd::decode(dec)?),
            1 => WireCast::Lw(starfish_lwgroups::LwMsg::decode(dec)?),
            2 => WireCast::Stats {
                scope: dec.get_str()?,
                snap: Snapshot::decode(dec)?,
            },
            3 => WireCast::Event {
                origin: NodeId::decode(dec)?,
                vt: VirtualTime::from_nanos(dec.get_u64()?),
                kind: starfish_events::EventKind::decode(dec)?,
            },
            t => return Err(Error::codec(format!("unknown WireCast tag {t}"))),
        })
    }
}

/// Targeted daemon-to-daemon payloads (ensemble point-to-point).
#[derive(Debug, Clone, PartialEq)]
pub enum P2pMsg {
    /// A relayed application message addressed to one rank.
    Relay(AppRelay),
    /// State transfer: the serialized replicated configuration, sent by the
    /// view coordinator in response to a `NeedState` cast.
    State(Bytes),
}

impl Encode for P2pMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            P2pMsg::Relay(r) => {
                enc.put_u8(0);
                r.encode(enc);
            }
            P2pMsg::State(b) => {
                enc.put_u8(1);
                b.encode(enc);
            }
        }
    }
}

impl Decode for P2pMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => P2pMsg::Relay(AppRelay::decode(dec)?),
            1 => P2pMsg::State(Bytes::decode(dec)?),
            t => return Err(Error::codec(format!("unknown P2pMsg tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::codec::roundtrip;

    fn spec() -> AppSpec {
        AppSpec {
            name: "jacobi".into(),
            size: 8,
            policy: FtPolicy::NotifyView,
            level: LevelKind::Native,
            proto: CkptProto::Independent,
            backend: CkptBackend::Replica { k: 3 },
            owner: "bob".into(),
            token: 99,
        }
    }

    #[test]
    fn appspec_backend_bytes_roundtrip_and_reject_bad_tags() {
        for b in [
            CkptBackend::Disk,
            CkptBackend::Replica { k: 1 },
            CkptBackend::Replica { k: 2 },
        ] {
            let cmd = CfgCmd::Submit {
                spec: AppSpec {
                    backend: b,
                    ..spec()
                },
            };
            assert_eq!(roundtrip(&cmd).unwrap(), cmd);
        }
        let mut enc = starfish_util::codec::Encoder::new();
        enc.put_u8(9); // unknown backend tag
        enc.put_u8(0);
        let bytes = enc.into_bytes();
        let mut dec = starfish_util::codec::Decoder::new(&bytes);
        assert!(decode_backend(&mut dec).is_err());
        // Replica with k = 0 is meaningless on the wire.
        let mut enc = starfish_util::codec::Encoder::new();
        enc.put_u8(1);
        enc.put_u8(0);
        let bytes = enc.into_bytes();
        let mut dec = starfish_util::codec::Decoder::new(&bytes);
        assert!(decode_backend(&mut dec).is_err());
    }

    #[test]
    fn cfgcmd_roundtrip_all_variants() {
        let cmds = vec![
            CfgCmd::AddNode {
                node: NodeId(1),
                arch_index: 5,
            },
            CfgCmd::RemoveNode { node: NodeId(1) },
            CfgCmd::DisableNode { node: NodeId(2) },
            CfgCmd::EnableNode { node: NodeId(2) },
            CfgCmd::NodeDead { node: NodeId(3) },
            CfgCmd::SetParam {
                key: "k".into(),
                value: "v".into(),
            },
            CfgCmd::Submit { spec: spec() },
            CfgCmd::Suspend { app: AppId(4) },
            CfgCmd::ResumeApp { app: AppId(4) },
            CfgCmd::Delete { app: AppId(4) },
            CfgCmd::RankDone {
                app: AppId(4),
                rank: Rank(2),
            },
            CfgCmd::TriggerCkpt { app: AppId(4) },
            CfgCmd::RestartApp {
                app: AppId(4),
                line: vec![3, 3, 2],
            },
        ];
        for c in cmds {
            assert_eq!(roundtrip(&c).unwrap(), c);
        }
        assert!(CfgCmd::decode_from_bytes(&[0xEE]).is_err());
    }

    #[test]
    fn wirecast_roundtrip() {
        let w = WireCast::Cfg(CfgCmd::TriggerCkpt { app: AppId(1) });
        assert_eq!(roundtrip(&w).unwrap(), w);
        let w = WireCast::Lw(starfish_lwgroups::LwMsg::Destroy {
            gid: starfish_util::GroupId(3),
        });
        assert_eq!(roundtrip(&w).unwrap(), w);
        let reg = starfish_telemetry::Registry::new();
        reg.inc(starfish_telemetry::metric::CKPT_ROUNDS);
        reg.record(starfish_telemetry::metric::CKPT_IMAGE_BYTES, 4096);
        let w = WireCast::Stats {
            scope: "app1.r0".into(),
            snap: reg.snapshot(),
        };
        assert_eq!(roundtrip(&w).unwrap(), w);
        let w = WireCast::Event {
            origin: NodeId(1),
            vt: VirtualTime::from_nanos(42_000),
            kind: starfish_events::EventKind::NodeSuspected {
                node: NodeId(2),
                silent_ns: 450_000_000,
            },
        };
        assert_eq!(roundtrip(&w).unwrap(), w);
    }

    #[test]
    fn p2pmsg_roundtrip() {
        let m = P2pMsg::State(Bytes::from_static(b"cfg"));
        assert_eq!(roundtrip(&m).unwrap(), m);
        let m = P2pMsg::Relay(AppRelay {
            app: AppId(1),
            kind: RelayKind::Coordination,
            from: Rank(0),
            to: Some(Rank(1)),
            body: Bytes::from_static(b"x"),
        });
        assert_eq!(roundtrip(&m).unwrap(), m);
    }

    #[test]
    fn apprelay_roundtrip() {
        let r = AppRelay {
            app: AppId(3),
            kind: RelayKind::CheckpointRestart,
            from: Rank(1),
            to: Some(Rank(2)),
            body: Bytes::from_static(b"cr"),
        };
        assert_eq!(roundtrip(&r).unwrap(), r);
        let r2 = AppRelay {
            to: None,
            kind: RelayKind::Coordination,
            ..r
        };
        assert_eq!(roundtrip(&r2).unwrap(), r2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use starfish_util::codec::{Decode, Encode};

    proptest! {
        /// Arbitrary submissions round-trip (names/owners are user input).
        #[test]
        fn appspec_roundtrip(
            name in ".{0,32}",
            size in 1u32..512,
            policy in 0u8..3,
            level in 0u8..2,
            proto in 0u8..3,
            replica_k in 0u8..8,
            owner in "[a-z]{0,12}",
            token in any::<u64>(),
        ) {
            let spec = AppSpec {
                name,
                size,
                policy: decode_policy(policy).unwrap(),
                level: decode_level(level).unwrap(),
                proto: decode_proto(proto).unwrap(),
                backend: match replica_k {
                    0 => CkptBackend::Disk,
                    k => CkptBackend::Replica { k },
                },
                owner,
                token,
            };
            let cmd = CfgCmd::Submit { spec };
            let bytes = cmd.encode_to_bytes();
            prop_assert_eq!(CfgCmd::decode_from_bytes(&bytes).unwrap(), cmd);
        }

        /// Corrupt bytes never panic the decoder.
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = CfgCmd::decode_from_bytes(&data);
            let _ = WireCast::decode_from_bytes(&data);
            let _ = P2pMsg::decode_from_bytes(&data);
            let _ = AppRelay::decode_from_bytes(&data);
        }
    }
}
