//! The ASCII management/user protocol (paper §3.1.1).
//!
//! "Managing the cluster is done by opening a TCP connection to one of the
//! daemons, on which an ASCII based protocol is used. ... The management
//! protocol starts with a login session, in which the client side has to
//! authenticate itself as an administrator ... A similar protocol ... is
//! used between clients and any of the cluster nodes in order to submit
//! applications ... identified as a user session, and is thus limited to
//! submitting, suspending, resuming, and deleting applications. (A user can
//! only suspend, resume, and delete its own applications.)"
//!
//! A [`MgmtSession`] wraps one such connection: feed it request lines, get
//! response lines (`OK ...` / `ERR ...`). The paper's Java GUI is a pure
//! presentation layer over exactly this protocol and is intentionally not
//! reproduced.

use std::collections::BTreeMap;
use std::time::Duration;

use starfish_util::{AppId, NodeId};

#[cfg(test)]
use crate::config::AppStatus;
use crate::config::{AppSpec, CfgNodeStatus, CkptProto, FtPolicy, LevelKind};
use crate::daemon::Daemon;
use crate::msg::CfgCmd;
use starfish_checkpoint::backend::CkptBackend;
use starfish_events::{EventCursor, Poll};

/// Default administrator password; override with `SET admin_password <pw>`.
pub const DEFAULT_ADMIN_PASSWORD: &str = "starfish";

/// One usage line per command, served by `HELP`. `starfish-lint` checks
/// this table against the dispatch below in both directions: every command
/// arm must have an entry, every entry must have an arm.
pub const COMMAND_USAGE: &[(&str, &str)] = &[
    ("HELP", "HELP — list commands"),
    ("LOGIN", "LOGIN ADMIN <password> | LOGIN USER <name>"),
    ("LOGOUT", "LOGOUT — end the session"),
    (
        "ADDNODE",
        "ADDNODE <id> [arch] — admin: add a node to the cluster",
    ),
    ("REMOVENODE", "REMOVENODE <id> — admin: remove a node"),
    (
        "DISABLE",
        "DISABLE <id> — admin: stop scheduling onto a node",
    ),
    (
        "ENABLE",
        "ENABLE <id> — admin: resume scheduling onto a node",
    ),
    ("SET", "SET <key> <value> — admin: set a cluster parameter"),
    (
        "SUBMIT",
        "SUBMIT <name> <size> [POLICY restart|view|kill] [LEVEL native|vm] [PROTO sync|cl|indep] [STORE disk|replica:<k>]",
    ),
    ("SUSPEND", "SUSPEND <app> — pause an application you own"),
    ("RESUME", "RESUME <app> — resume a suspended application"),
    ("DELETE", "DELETE <app> — remove an application"),
    (
        "CHECKPOINT",
        "CHECKPOINT <app> — trigger a coordinated checkpoint",
    ),
    (
        "CKPT",
        "CKPT STATUS <app> — per-rank fragment placement and replication health",
    ),
    (
        "MIGRATE",
        "MIGRATE <app> <rank> <node> — admin: move a rank (cold)",
    ),
    ("NODES", "NODES — list nodes and their status"),
    (
        "STATS",
        "STATS | STATS SUBSCRIBE <interval_ms> | STATS HISTORY [n] — merged cluster telemetry",
    ),
    (
        "HEALTH",
        "HEALTH — per-node liveness (announce state, heartbeat age) plus key health metrics",
    ),
    ("TIMELINE", "TIMELINE <app> — per-rank event timeline"),
    (
        "TRACE",
        "TRACE SCOPES | TRACE DUMP [scope] | TRACE TAIL <n> [scope] | TRACE PATH <app> | TRACE FOLLOW <scope>",
    ),
    (
        "EVENTS",
        "EVENTS [TAIL <n>] | EVENTS SUBSCRIBE [filter] — cluster event bus",
    ),
    (
        "POSTMORTEM",
        "POSTMORTEM <app> — recovery forensics bundle (JSON)",
    ),
    ("APPS", "APPS — list applications (alias: STATUS)"),
    ("STATUS", "STATUS — list applications (alias: APPS)"),
];

#[derive(Debug, Clone, PartialEq, Eq)]
enum Role {
    Admin,
    User(String),
}

/// The streaming state a `SUBSCRIBE`/`FOLLOW` command arms on a session.
/// One subscription per session; a new one replaces the old.
enum Subscription {
    Events {
        cursor: EventCursor,
        /// Substring match against the event label (e.g. "recovery").
        filter: Option<String>,
    },
    Stats {
        interval_ms: u64,
        last_emit: Option<std::time::Instant>,
    },
    Trace {
        scope: String,
        next_seq: u64,
    },
}

/// One management or user session against a daemon.
pub struct MgmtSession {
    daemon: Daemon,
    role: Option<Role>,
    /// Token source for submissions (deterministic per session).
    next_token: u64,
    subscription: Option<Subscription>,
}

impl MgmtSession {
    /// Open a session against any daemon of the cluster. `session_seed`
    /// disambiguates submission tokens between concurrent sessions.
    pub fn connect(daemon: Daemon, session_seed: u64) -> Self {
        MgmtSession {
            daemon,
            role: None,
            next_token: session_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            subscription: None,
        }
    }

    /// Whether a `SUBSCRIBE`/`FOLLOW` is armed on this session.
    pub fn subscribed(&self) -> bool {
        self.subscription.is_some()
    }

    /// Drop the active subscription (client disconnected or issued a new
    /// command that replaces it).
    pub fn unsubscribe(&mut self) {
        self.subscription = None;
    }

    /// Drain the push frames the active subscription owes the client. The
    /// serving loop calls this between request lines (and on a timer for
    /// `STATS SUBSCRIBE`); with no subscription armed it returns nothing.
    pub fn poll_frames(&mut self) -> Vec<String> {
        let mut frames = Vec::new();
        match &mut self.subscription {
            None => {}
            Some(Subscription::Events { cursor, filter }) => {
                let Poll { events, missed } = cursor.poll();
                if missed > 0 {
                    frames.push(format!("EVENT! missed {missed}"));
                }
                for ev in events {
                    if let Some(f) = filter {
                        if !ev.kind.label().contains(f.as_str()) {
                            continue;
                        }
                    }
                    frames.push(format!("EVENT {}", ev.summary()));
                }
            }
            Some(Subscription::Stats {
                interval_ms,
                last_emit,
            }) => {
                let due = match (*interval_ms, &*last_emit) {
                    (0, _) => true,
                    (_, None) => true,
                    (ms, Some(t)) => t.elapsed() >= Duration::from_millis(ms),
                };
                if due {
                    *last_emit = Some(std::time::Instant::now());
                    let snap = self.daemon.stats().merged();
                    let mut f = String::from("STATS");
                    for line in starfish_telemetry::render_stats(&snap).lines() {
                        f.push('\n');
                        f.push_str(line);
                    }
                    frames.push(f);
                }
            }
            Some(Subscription::Trace { scope, next_seq }) => {
                if let Some(r) = self.daemon.trace_hub().get(scope) {
                    let from = *next_seq;
                    for ev in r.dump().events.iter().filter(|e| e.seq >= from) {
                        frames.push(format!("TRACE {scope} {}", ev.summary()));
                        *next_seq = ev.seq + 1;
                    }
                }
            }
        }
        frames
    }

    fn is_admin(&self) -> bool {
        self.role == Some(Role::Admin)
    }

    fn user(&self) -> Option<&str> {
        match &self.role {
            Some(Role::User(u)) => Some(u),
            Some(Role::Admin) => Some("admin"),
            None => None,
        }
    }

    fn may_touch(&self, app_owner: &str) -> bool {
        match &self.role {
            Some(Role::Admin) => true,
            Some(Role::User(u)) => u == app_owner,
            None => false,
        }
    }

    fn parse_app_id(tok: &str) -> Result<AppId, String> {
        tok.trim_start_matches("app")
            .parse::<u32>()
            .map(AppId)
            .map_err(|_| format!("ERR bad application id {tok:?}"))
    }

    fn parse_node_id(tok: &str) -> Result<NodeId, String> {
        tok.trim_start_matches('n')
            .parse::<u32>()
            .map(NodeId)
            .map_err(|_| format!("ERR bad node id {tok:?}"))
    }

    /// Process one request line; returns the response line(s).
    pub fn handle_line(&mut self, line: &str) -> String {
        match self.try_handle(line) {
            Ok(resp) => resp,
            Err(e) => e,
        }
    }

    fn require_admin(&self) -> Result<(), String> {
        if self.is_admin() {
            Ok(())
        } else {
            Err("ERR admin privileges required".into())
        }
    }

    fn require_login(&self) -> Result<(), String> {
        if self.role.is_some() {
            Ok(())
        } else {
            Err("ERR login required".into())
        }
    }

    fn try_handle(&mut self, line: &str) -> Result<String, String> {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let Some(cmd) = toks.first() else {
            return Ok(String::new());
        };
        match cmd.to_ascii_uppercase().as_str() {
            "LOGIN" => match toks.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
                Some("ADMIN") => {
                    let pw = toks.get(2).copied().unwrap_or("");
                    let expected = self
                        .daemon
                        .config()
                        .params
                        .get("admin_password")
                        .cloned()
                        .unwrap_or_else(|| DEFAULT_ADMIN_PASSWORD.to_string());
                    if pw == expected {
                        self.role = Some(Role::Admin);
                        Ok("OK management connection".into())
                    } else {
                        Err("ERR authentication failed".into())
                    }
                }
                Some("USER") => {
                    let name = toks
                        .get(2)
                        .ok_or_else(|| "ERR usage: LOGIN USER <name>".to_string())?;
                    self.role = Some(Role::User(name.to_string()));
                    Ok("OK user session".into())
                }
                _ => Err("ERR usage: LOGIN ADMIN <password> | LOGIN USER <name>".into()),
            },
            "LOGOUT" => {
                self.role = None;
                Ok("OK bye".into())
            }
            "ADDNODE" => {
                self.require_admin()?;
                let node =
                    Self::parse_node_id(toks.get(1).ok_or("ERR usage: ADDNODE <id> [arch]")?)?;
                let arch: u8 = toks.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
                self.daemon
                    .issue(CfgCmd::AddNode {
                        node,
                        arch_index: arch,
                    })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK node {node} added"))
            }
            "REMOVENODE" => {
                self.require_admin()?;
                let node = Self::parse_node_id(toks.get(1).ok_or("ERR usage: REMOVENODE <id>")?)?;
                self.daemon
                    .issue(CfgCmd::RemoveNode { node })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK node {node} removed"))
            }
            "DISABLE" => {
                self.require_admin()?;
                let node = Self::parse_node_id(toks.get(1).ok_or("ERR usage: DISABLE <id>")?)?;
                self.daemon
                    .issue(CfgCmd::DisableNode { node })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK node {node} disabled"))
            }
            "ENABLE" => {
                self.require_admin()?;
                let node = Self::parse_node_id(toks.get(1).ok_or("ERR usage: ENABLE <id>")?)?;
                self.daemon
                    .issue(CfgCmd::EnableNode { node })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK node {node} enabled"))
            }
            "SET" => {
                self.require_admin()?;
                let key = toks.get(1).ok_or("ERR usage: SET <key> <value>")?;
                let value = toks.get(2).ok_or("ERR usage: SET <key> <value>")?;
                self.daemon
                    .issue(CfgCmd::SetParam {
                        key: key.to_string(),
                        value: value.to_string(),
                    })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK {key}={value}"))
            }
            "SUBMIT" => {
                self.require_login()?;
                let name = toks.get(1).ok_or(
                    "ERR usage: SUBMIT <name> <size> [POLICY restart|view|kill] [LEVEL native|vm] [PROTO sync|cl|indep] [STORE disk|replica:<k>]",
                )?;
                let size: u32 = toks
                    .get(2)
                    .and_then(|s| s.parse().ok())
                    .ok_or("ERR bad size")?;
                let mut policy = FtPolicy::Restart;
                let mut level = LevelKind::Vm;
                let mut proto = CkptProto::StopAndSync;
                let mut backend = CkptBackend::Disk;
                let mut i = 3;
                while i + 1 < toks.len() + 1 {
                    match toks.get(i).map(|s| s.to_ascii_uppercase()).as_deref() {
                        Some("POLICY") => {
                            policy =
                                match toks.get(i + 1).map(|s| s.to_ascii_lowercase()).as_deref() {
                                    Some("restart") => FtPolicy::Restart,
                                    Some("view") => FtPolicy::NotifyView,
                                    Some("kill") => FtPolicy::Kill,
                                    _ => return Err("ERR bad POLICY".into()),
                                };
                            i += 2;
                        }
                        Some("LEVEL") => {
                            level = match toks.get(i + 1).map(|s| s.to_ascii_lowercase()).as_deref()
                            {
                                Some("native") => LevelKind::Native,
                                Some("vm") => LevelKind::Vm,
                                _ => return Err("ERR bad LEVEL".into()),
                            };
                            i += 2;
                        }
                        Some("PROTO") => {
                            proto = match toks.get(i + 1).map(|s| s.to_ascii_lowercase()).as_deref()
                            {
                                Some("sync") => CkptProto::StopAndSync,
                                Some("cl") => CkptProto::ChandyLamport,
                                Some("indep") => CkptProto::Independent,
                                _ => return Err("ERR bad PROTO".into()),
                            };
                            i += 2;
                        }
                        Some("STORE") => {
                            backend = toks
                                .get(i + 1)
                                .and_then(|s| CkptBackend::parse(s))
                                .ok_or("ERR bad STORE (disk|replica|replica:<k>)")?;
                            i += 2;
                        }
                        Some(_) => return Err(format!("ERR unknown option {:?}", toks[i])),
                        None => break,
                    }
                }
                let token = self.next_token;
                self.next_token = self.next_token.wrapping_add(0x9E37_79B9) | 1;
                let spec = AppSpec {
                    name: name.to_string(),
                    size,
                    policy,
                    level,
                    proto,
                    backend,
                    owner: self.user().unwrap_or("?").to_string(),
                    token,
                };
                self.daemon
                    .issue(CfgCmd::Submit { spec })
                    .map_err(|e| format!("ERR {e}"))?;
                // Wait for the submission to land in the replicated state so
                // we can report the assigned id.
                let cfg = self
                    .daemon
                    .wait_config(Duration::from_secs(10), |c| {
                        c.find_app_by_token(token).is_some()
                    })
                    .map_err(|_| "ERR submission not scheduled (no nodes?)".to_string())?;
                let app = cfg.find_app_by_token(token).expect("just checked");
                Ok(format!("OK submitted {} size {}", app.id, app.spec.size))
            }
            "SUSPEND" | "RESUME" | "DELETE" | "CHECKPOINT" => {
                self.require_login()?;
                let id = Self::parse_app_id(
                    toks.get(1)
                        .ok_or_else(|| format!("ERR usage: {cmd} <app>"))?,
                )?;
                let cfg = self.daemon.config();
                let entry = cfg
                    .apps
                    .get(&id)
                    .ok_or_else(|| format!("ERR no such application {id}"))?;
                if !self.may_touch(&entry.spec.owner) {
                    return Err(format!("ERR {id} belongs to {}", entry.spec.owner));
                }
                let c = match cmd.to_ascii_uppercase().as_str() {
                    "SUSPEND" => CfgCmd::Suspend { app: id },
                    "RESUME" => CfgCmd::ResumeApp { app: id },
                    "DELETE" => CfgCmd::Delete { app: id },
                    _ => CfgCmd::TriggerCkpt { app: id },
                };
                self.daemon.issue(c).map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK {} {}", cmd.to_ascii_lowercase(), id))
            }
            "CKPT" => {
                self.require_login()?;
                const USAGE: &str =
                    "ERR usage: CKPT STATUS <app> — per-rank fragment placement and replication health";
                match toks.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
                    Some("STATUS") if toks.len() == 3 => {
                        let id = Self::parse_app_id(toks[2]).map_err(|_| USAGE.to_string())?;
                        let cfg = self.daemon.config();
                        let entry = cfg
                            .apps
                            .get(&id)
                            .ok_or_else(|| format!("ERR no such application {id}"))?;
                        let hub = self.daemon.ckpt_store();
                        let backend = hub.backend_of(id);
                        let mut out = format!(
                            "OK ckpt status {id} backend={backend} epoch={}",
                            entry.epoch
                        );
                        match backend {
                            CkptBackend::Disk => {
                                for r in 0..entry.spec.size {
                                    let rank = starfish_util::Rank(r);
                                    out.push_str(&format!(
                                        "\nr{r} latest={} store=disk",
                                        hub.latest_index(id, rank)
                                    ));
                                }
                            }
                            CkptBackend::Replica { .. } => {
                                let health = hub.replica().health(id);
                                if health.is_empty() {
                                    out.push_str("\n(no fragments stored yet)");
                                }
                                for h in health {
                                    let frags = hub.replica().placement(id, h.rank);
                                    let map: Vec<String> = frags
                                        .iter()
                                        .map(|f| {
                                            let nodes: Vec<String> =
                                                f.replicas.iter().map(|n| n.to_string()).collect();
                                            format!("f{}->[{}]", f.seq, nodes.join(","))
                                        })
                                        .collect();
                                    out.push_str(&format!(
                                        "\nr{} index={} owner={} frags={} min_live={} parity={} {} {}",
                                        h.rank.0,
                                        h.index,
                                        h.owner,
                                        h.fragments,
                                        h.min_live_replicas,
                                        if h.parity_live { "live" } else { "lost" },
                                        if h.recoverable { "recoverable" } else { "UNRECOVERABLE" },
                                        map.join(" ")
                                    ));
                                }
                            }
                        }
                        Ok(out)
                    }
                    _ => Err(USAGE.into()),
                }
            }
            "MIGRATE" => {
                self.require_admin()?;
                let id = Self::parse_app_id(
                    toks.get(1)
                        .ok_or("ERR usage: MIGRATE <app> <rank> <node>")?,
                )?;
                let rank: u32 = toks
                    .get(2)
                    .map(|s| s.trim_start_matches('r'))
                    .and_then(|s| s.parse().ok())
                    .ok_or("ERR bad rank")?;
                let node = Self::parse_node_id(
                    toks.get(3)
                        .ok_or("ERR usage: MIGRATE <app> <rank> <node>")?,
                )?;
                let cfg = self.daemon.config();
                let entry = cfg
                    .apps
                    .get(&id)
                    .ok_or_else(|| format!("ERR no such application {id}"))?;
                // Consistent rollback point: the latest checkpoint common to
                // all ranks (0 = restart from scratch; CHECKPOINT first for
                // a warm migration).
                let line = vec![0u64; entry.spec.size as usize];
                self.daemon
                    .issue(CfgCmd::Migrate {
                        app: id,
                        rank: starfish_util::Rank(rank),
                        node,
                        line,
                    })
                    .map_err(|e| format!("ERR {e}"))?;
                Ok(format!("OK migrate {id} rank {rank} -> {node} (cold)"))
            }
            "NODES" => {
                self.require_login()?;
                let cfg = self.daemon.config();
                let mut out = String::from("OK nodes");
                for (n, e) in &cfg.nodes {
                    out.push_str(&format!("\n{n} {:?} {}", e.status, e.arch));
                }
                Ok(out)
            }
            "STATS" => {
                self.require_login()?;
                const USAGE: &str =
                    "ERR usage: STATS | STATS SUBSCRIBE <interval_ms> | STATS HISTORY [n]";
                match toks.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
                    None => {
                        let snap = self.daemon.stats().merged();
                        if snap.is_empty() {
                            return Ok("OK stats (no data)".into());
                        }
                        let mut out = String::from("OK stats");
                        for line in starfish_telemetry::render_stats(&snap).lines() {
                            out.push('\n');
                            out.push_str(line);
                        }
                        Ok(out)
                    }
                    Some("SUBSCRIBE") if toks.len() == 3 => {
                        let ms: u64 = toks[2].parse().map_err(|_| USAGE.to_string())?;
                        self.subscription = Some(Subscription::Stats {
                            interval_ms: ms,
                            last_emit: None,
                        });
                        Ok(format!("OK subscribed stats interval={ms}ms"))
                    }
                    Some("HISTORY") if toks.len() <= 3 => {
                        let n: usize = match toks.get(2) {
                            Some(t) => t.parse().map_err(|_| USAGE.to_string())?,
                            None => usize::MAX,
                        };
                        let hist = self.daemon.stats().history();
                        let skip = hist.len().saturating_sub(n);
                        let mut out = format!("OK stats history {}", hist.len() - skip);
                        let mut prev: Option<u64> = None;
                        for (vt, snap) in hist.iter().skip(skip) {
                            let total: u64 = snap.counters.iter().map(|(_, v)| *v).sum();
                            let delta = match prev {
                                Some(p) => total.saturating_sub(p),
                                None => total,
                            };
                            prev = Some(total);
                            out.push_str(&format!(
                                "\n@{} total={total} delta={delta}",
                                vt.as_nanos()
                            ));
                        }
                        Ok(out)
                    }
                    _ => Err(USAGE.into()),
                }
            }
            "HEALTH" => {
                self.require_login()?;
                let cfg = self.daemon.config();
                let snap = self.daemon.stats().merged();
                let ages: BTreeMap<NodeId, Duration> =
                    self.daemon.heartbeat_ages().into_iter().collect();
                let mut out = String::from("OK health");
                for (n, e) in &cfg.nodes {
                    // Registered-but-unannounced is *not* "up": the daemon
                    // never proved it is alive (the phantom-node rule).
                    let state = match e.status {
                        CfgNodeStatus::Up if e.announced => "up",
                        CfgNodeStatus::Up => "registered",
                        CfgNodeStatus::Disabled => "disabled",
                        CfgNodeStatus::Dead => "dead",
                        CfgNodeStatus::Removed => "removed",
                    };
                    let hb = if *n == self.daemon.node() {
                        "self".to_string()
                    } else {
                        match ages.get(n) {
                            Some(d) => format!("{}ms", d.as_millis()),
                            None => "-".to_string(),
                        }
                    };
                    out.push_str(&format!("\n{n} {state} hb_age={hb}"));
                }
                out.push_str(&format!(
                    "\nprocs.running {}",
                    snap.gauge(starfish_telemetry::metric::PROCS_RUNNING)
                ));
                for (label, id) in [
                    (
                        "ensemble.view_changes",
                        starfish_telemetry::metric::ENSEMBLE_VIEW_CHANGES,
                    ),
                    (
                        "ensemble.heartbeat_misses",
                        starfish_telemetry::metric::ENSEMBLE_HEARTBEAT_MISSES,
                    ),
                    ("ckpt.rounds", starfish_telemetry::metric::CKPT_ROUNDS),
                    (
                        "recovery.restarts",
                        starfish_telemetry::metric::RECOVERY_RESTARTS,
                    ),
                    ("trace.dropped", starfish_telemetry::metric::TRACE_DROPPED),
                ] {
                    out.push_str(&format!("\n{label} {}", snap.counter(id)));
                }
                Ok(out)
            }
            "TIMELINE" => {
                self.require_login()?;
                const USAGE: &str = "ERR usage: TIMELINE <app>";
                if toks.len() != 2 {
                    return Err(USAGE.into());
                }
                let id = Self::parse_app_id(toks[1]).map_err(|_| USAGE.to_string())?;
                let events = self.daemon.stats().timeline_for(&format!("{id}.r"));
                if events.is_empty() {
                    return Ok(format!("OK timeline {id} (empty)"));
                }
                let mut out = format!("OK timeline {id}");
                for line in starfish_telemetry::render_timeline(&events).lines() {
                    out.push('\n');
                    out.push_str(line);
                }
                Ok(out)
            }
            "TRACE" => {
                self.require_login()?;
                const USAGE: &str = "ERR usage: TRACE SCOPES | TRACE DUMP [scope] | TRACE TAIL <n> [scope] | TRACE PATH <app> | TRACE FOLLOW <scope>";
                let hub = self.daemon.trace_hub();
                match toks.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
                    Some("SCOPES") if toks.len() == 2 => {
                        let scopes = hub.scopes();
                        let mut out = format!("OK trace scopes {}", scopes.len());
                        for s in scopes {
                            let (len, dropped) = hub
                                .get(&s)
                                .map(|r| (r.len(), r.dropped()))
                                .unwrap_or((0, 0));
                            out.push_str(&format!("\n{s} events={len} dropped={dropped}"));
                        }
                        Ok(out)
                    }
                    Some("DUMP") if toks.len() <= 3 => {
                        let dumps = match toks.get(2) {
                            Some(scope) => match hub.get(scope) {
                                Some(r) => vec![r.dump()],
                                None => return Err(format!("ERR no such scope {scope:?}")),
                            },
                            None => hub.dump_all(),
                        };
                        let mut out = String::from("OK trace dump");
                        for t in &dumps {
                            out.push_str(&format!("\n== {} dropped={}", t.scope, t.dropped));
                            for ev in &t.events {
                                out.push('\n');
                                out.push_str(&ev.summary());
                            }
                        }
                        Ok(out)
                    }
                    Some("TAIL") if toks.len() == 3 || toks.len() == 4 => {
                        let n: usize = toks[2].parse().map_err(|_| USAGE.to_string())?;
                        let dumps = match toks.get(3) {
                            Some(scope) => match hub.get(scope) {
                                Some(r) => vec![r.dump()],
                                None => return Err(format!("ERR no such scope {scope:?}")),
                            },
                            None => hub.dump_all(),
                        };
                        let mut out = format!("OK trace tail {n}");
                        for t in &dumps {
                            out.push_str(&format!("\n== {} dropped={}", t.scope, t.dropped));
                            let skip = t.events.len().saturating_sub(n);
                            for ev in t.events.iter().skip(skip) {
                                out.push('\n');
                                out.push_str(&ev.summary());
                            }
                        }
                        Ok(out)
                    }
                    Some("FOLLOW") if toks.len() == 3 => {
                        let scope = toks[2].to_string();
                        let Some(r) = hub.get(&scope) else {
                            return Err(format!("ERR no such scope {scope:?}"));
                        };
                        // Live edge: only events recorded after this line.
                        let next_seq = r.dump().events.last().map(|e| e.seq + 1).unwrap_or(0);
                        self.subscription = Some(Subscription::Trace {
                            scope: scope.clone(),
                            next_seq,
                        });
                        Ok(format!("OK following trace {scope}"))
                    }
                    Some("PATH") if toks.len() == 3 => {
                        let id = Self::parse_app_id(toks[2]).map_err(|_| USAGE.to_string())?;
                        let dumps = hub.dump_prefix(&format!("{id}.r"));
                        if dumps.iter().all(|t| t.events.is_empty()) {
                            return Ok(format!("OK trace path {id} (empty)"));
                        }
                        let dag = starfish_trace::reassemble(dumps);
                        dag.check()
                            .map_err(|e| format!("ERR trace inconsistent: {e}"))?;
                        let mut out = format!("OK trace path {id}");
                        for line in dag.render_path().lines() {
                            out.push('\n');
                            out.push_str(line);
                        }
                        Ok(out)
                    }
                    _ => Err(USAGE.into()),
                }
            }
            "EVENTS" => {
                self.require_login()?;
                const USAGE: &str = "ERR usage: EVENTS [TAIL <n>] | EVENTS SUBSCRIBE [filter]";
                let tail = |n: usize| {
                    let bus = self.daemon.events();
                    let mut out = format!(
                        "OK events published={} dropped={}",
                        bus.published(),
                        bus.dropped()
                    );
                    for ev in bus.tail(n) {
                        out.push('\n');
                        out.push_str(&ev.summary());
                    }
                    out
                };
                match toks.get(1).map(|s| s.to_ascii_uppercase()).as_deref() {
                    None => Ok(tail(10)),
                    Some("TAIL") if toks.len() == 3 => {
                        let n: usize = toks[2].parse().map_err(|_| USAGE.to_string())?;
                        Ok(tail(n))
                    }
                    Some("SUBSCRIBE") if toks.len() <= 3 => {
                        let filter = toks.get(2).map(|s| s.to_string());
                        self.subscription = Some(Subscription::Events {
                            cursor: self.daemon.events().subscribe(),
                            filter,
                        });
                        Ok("OK subscribed events".into())
                    }
                    _ => Err(USAGE.into()),
                }
            }
            "POSTMORTEM" => {
                self.require_login()?;
                const USAGE: &str = "ERR usage: POSTMORTEM <app>";
                if toks.len() != 2 {
                    return Err(USAGE.into());
                }
                let id = Self::parse_app_id(toks[1]).map_err(|_| USAGE.to_string())?;
                match self.daemon.postmortem(id) {
                    Some(pm) => Ok(format!("OK postmortem {id}\n{}", pm.to_json())),
                    None => {
                        let have: Vec<String> = self
                            .daemon
                            .postmortem_apps()
                            .iter()
                            .map(|a| a.to_string())
                            .collect();
                        Err(format!(
                            "ERR no postmortem for {id} (have: [{}])",
                            have.join(",")
                        ))
                    }
                }
            }
            "APPS" | "STATUS" => {
                self.require_login()?;
                let cfg = self.daemon.config();
                let mut out = String::from("OK apps");
                for a in cfg.apps.values() {
                    let placement: Vec<String> =
                        a.placement.iter().map(|n| n.to_string()).collect();
                    out.push_str(&format!(
                        "\n{} {} size={} status={:?} epoch={} owner={} placement=[{}]",
                        a.id,
                        a.spec.name,
                        a.spec.size,
                        a.status,
                        a.epoch,
                        a.spec.owner,
                        placement.join(",")
                    ));
                }
                Ok(out)
            }
            "HELP" => {
                // No login gate: a client must be able to discover LOGIN.
                let mut out = String::from("OK commands");
                for (_, usage) in COMMAND_USAGE {
                    out.push('\n');
                    out.push_str(usage);
                }
                Ok(out)
            }
            other => Err(format!("ERR unknown command {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::DaemonConfig;
    use crate::host::NullHost;
    use starfish_checkpoint::store::CkptStore;
    use starfish_util::NodeId;
    use starfish_vni::{Fabric, Ideal, LayerCosts};

    fn one_node_daemon() -> Daemon {
        let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
        f.add_node(NodeId(0));
        let d = Daemon::start(
            &f,
            DaemonConfig::new(NodeId(0)),
            None,
            Box::new(NullHost),
            CkptStore::new(),
        )
        .unwrap();
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 1)
            .unwrap();
        d
    }

    #[test]
    fn help_lists_every_command_without_login() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 9);
        let out = s.handle_line("HELP");
        assert!(out.starts_with("OK commands"), "{out}");
        for (cmd, usage) in COMMAND_USAGE {
            assert!(out.contains(usage), "HELP missing {cmd}: {out}");
        }
        // And every advertised command really dispatches (no ERR unknown).
        for (cmd, _) in COMMAND_USAGE {
            let resp = s.handle_line(cmd);
            assert!(
                !resp.contains("unknown command"),
                "{cmd} advertised but unhandled: {resp}"
            );
        }
    }

    #[test]
    fn login_gates_commands() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 1);
        assert!(s.handle_line("STATUS").starts_with("ERR login required"));
        assert!(s.handle_line("LOGIN ADMIN wrongpw").starts_with("ERR"));
        assert!(s
            .handle_line("LOGIN ADMIN starfish")
            .starts_with("OK management"));
        assert!(s.handle_line("STATUS").starts_with("OK"));
        assert!(s.handle_line("LOGOUT").starts_with("OK"));
        assert!(s.handle_line("STATUS").starts_with("ERR"));
    }

    #[test]
    fn user_session_cannot_administrate() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 2);
        assert!(s.handle_line("LOGIN USER alice").starts_with("OK user"));
        assert!(s
            .handle_line("ADDNODE 5")
            .starts_with("ERR admin privileges"));
        assert!(s.handle_line("SET x y").starts_with("ERR admin"));
    }

    #[test]
    fn submit_reports_assigned_id_and_ownership_enforced() {
        let d = one_node_daemon();
        let mut alice = MgmtSession::connect(d.clone(), 3);
        alice.handle_line("LOGIN USER alice");
        let resp = alice.handle_line("SUBMIT myjob 2 POLICY kill LEVEL vm PROTO sync");
        assert!(resp.starts_with("OK submitted app"), "{resp}");
        // Bob may not delete alice's job.
        let mut bob = MgmtSession::connect(d.clone(), 4);
        bob.handle_line("LOGIN USER bob");
        let id_tok = resp.split_whitespace().nth(2).unwrap();
        let del = bob.handle_line(&format!("DELETE {id_tok}"));
        assert!(del.starts_with("ERR"), "{del}");
        // Alice can.
        let del = alice.handle_line(&format!("DELETE {id_tok}"));
        assert!(del.starts_with("OK delete"), "{del}");
        d.wait_config(Duration::from_secs(5), |c| {
            c.apps.values().all(|a| a.status == AppStatus::Killed)
        })
        .unwrap();
        // Admin can see it in APPS.
        let mut admin = MgmtSession::connect(d, 5);
        admin.handle_line("LOGIN ADMIN starfish");
        let apps = admin.handle_line("APPS");
        assert!(apps.contains("myjob"), "{apps}");
        assert!(apps.contains("Killed"), "{apps}");
    }

    #[test]
    fn admin_node_lifecycle_via_protocol() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 6);
        s.handle_line("LOGIN ADMIN starfish");
        assert!(s.handle_line("ADDNODE 9 1").starts_with("OK"));
        d.wait_config(Duration::from_secs(5), |c| c.nodes.len() == 2)
            .unwrap();
        assert!(s.handle_line("DISABLE n9").starts_with("OK"));
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 1)
            .unwrap();
        assert!(s.handle_line("ENABLE n9").starts_with("OK"));
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 2)
            .unwrap();
        let nodes = s.handle_line("NODES");
        assert!(nodes.contains("n9"), "{nodes}");
        // The heterogeneous arch is visible.
        assert!(
            nodes.contains("SunOS") || nodes.contains("big-endian"),
            "{nodes}"
        );
    }

    /// The phantom-node regression, end to end over the management
    /// protocol: a bare ADDNODE registers a node whose daemon never booted;
    /// a subsequent submission must land every rank on the live node.
    #[test]
    fn bare_addnode_is_not_scheduled_until_daemon_announces() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 11);
        s.handle_line("LOGIN ADMIN starfish");
        assert!(s.handle_line("ADDNODE 7").starts_with("OK"));
        let cfg = d
            .wait_config(Duration::from_secs(5), |c| c.nodes.len() == 2)
            .unwrap();
        // Registered and administratively Up, but not live.
        assert_eq!(cfg.up_nodes(), vec![NodeId(0), NodeId(7)]);
        assert_eq!(cfg.live_nodes(), vec![NodeId(0)]);
        let resp = s.handle_line("SUBMIT phantomjob 3");
        assert!(resp.starts_with("OK submitted"), "{resp}");
        let cfg = d
            .wait_config(Duration::from_secs(5), |c| !c.apps.is_empty())
            .unwrap();
        let app = cfg.apps.values().next().unwrap();
        assert_eq!(
            app.placement,
            vec![NodeId(0); 3],
            "no rank may be scheduled onto the never-announced node 7"
        );
    }

    #[test]
    fn set_param_changes_admin_password() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 7);
        s.handle_line("LOGIN ADMIN starfish");
        s.handle_line("SET admin_password hunter2");
        d.wait_config(Duration::from_secs(5), |c| {
            c.params.get("admin_password").map(|s| s.as_str()) == Some("hunter2")
        })
        .unwrap();
        let mut s2 = MgmtSession::connect(d, 8);
        assert!(s2.handle_line("LOGIN ADMIN starfish").starts_with("ERR"));
        assert!(s2.handle_line("LOGIN ADMIN hunter2").starts_with("OK"));
    }

    #[test]
    fn trace_commands_over_the_protocol() {
        let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
        f.add_node(NodeId(0));
        let mut cfg = DaemonConfig::new(NodeId(0));
        cfg.recorder = starfish_trace::FlightRecorder::new("n0", 64);
        let d = Daemon::start(&f, cfg, None, Box::new(NullHost), CkptStore::new()).unwrap();
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 1)
            .unwrap();
        let mut s = MgmtSession::connect(d, 11);
        s.handle_line("LOGIN ADMIN starfish");
        let scopes = s.handle_line("TRACE SCOPES");
        assert!(scopes.starts_with("OK trace scopes"), "{scopes}");
        assert!(scopes.contains("n0"), "{scopes}");
        // Forming the singleton view records at least one event.
        let dump = s.handle_line("TRACE DUMP n0");
        assert!(dump.starts_with("OK trace dump"), "{dump}");
        assert!(dump.contains("== n0"), "{dump}");
        assert!(dump.lines().count() > 2, "{dump}");
        let tail = s.handle_line("TRACE TAIL 1 n0");
        assert!(tail.starts_with("OK trace tail 1"), "{tail}");
        assert_eq!(tail.lines().count(), 3, "{tail}");
        assert!(s
            .handle_line("TRACE DUMP nosuch")
            .starts_with("ERR no such scope"));
        // No traced application ranks yet: the path query is empty, not an
        // error.
        assert!(s
            .handle_line("TRACE PATH app7")
            .starts_with("OK trace path app7 (empty)"));
    }

    /// Satellite: bad or missing arguments to TIMELINE/TRACE come back as a
    /// single uniform `ERR usage: ...` line, never a multi-line reply or a
    /// mismatched error shape.
    #[test]
    fn trace_and_timeline_usage_errors_are_one_line() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 12);
        s.handle_line("LOGIN ADMIN starfish");
        for bad in [
            "TRACE",
            "TRACE BOGUS",
            "TRACE SCOPES extra",
            "TRACE TAIL",
            "TRACE TAIL nope",
            "TRACE TAIL 3 scope extra",
            "TRACE PATH",
            "TRACE PATH nope",
            "TRACE PATH app1 extra",
            "TIMELINE",
            "TIMELINE nope",
            "TIMELINE app1 extra",
        ] {
            let resp = s.handle_line(bad);
            assert!(resp.starts_with("ERR usage:"), "{bad} -> {resp}");
            assert_eq!(resp.lines().count(), 1, "{bad} -> {resp}");
        }
    }

    #[test]
    fn ckpt_status_reports_backend_and_rejects_bad_usage() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 13);
        s.handle_line("LOGIN ADMIN starfish");
        // Disk-backed app: per-rank latest indices, store=disk.
        let resp = s.handle_line("SUBMIT diskjob 2 POLICY kill STORE disk");
        assert!(resp.starts_with("OK submitted"), "{resp}");
        let id = resp.split_whitespace().nth(2).unwrap().to_string();
        let status = s.handle_line(&format!("CKPT STATUS {id}"));
        assert!(status.starts_with("OK ckpt status"), "{status}");
        assert!(status.contains("backend=disk"), "{status}");
        assert!(status.contains("store=disk"), "{status}");
        // Replica-backed app: placement/health report (empty until a round).
        let resp = s.handle_line("SUBMIT memjob 1 POLICY kill STORE replica:2");
        assert!(resp.starts_with("OK submitted"), "{resp}");
        let id2 = resp.split_whitespace().nth(2).unwrap().to_string();
        let status = s.handle_line(&format!("CKPT STATUS {id2}"));
        assert!(status.contains("backend=replica:2"), "{status}");
        assert!(status.contains("no fragments stored yet"), "{status}");
        // Usage errors are one uniform line.
        for bad in ["CKPT", "CKPT STATUS", "CKPT STATUS nope", "CKPT BOGUS x"] {
            let resp = s.handle_line(bad);
            assert!(resp.starts_with("ERR usage: CKPT"), "{bad} -> {resp}");
            assert_eq!(resp.lines().count(), 1, "{bad} -> {resp}");
        }
        // Bad STORE option is rejected.
        assert!(s
            .handle_line("SUBMIT z 1 STORE floppy")
            .starts_with("ERR bad STORE"));
    }

    #[test]
    fn events_tail_and_subscribe_stream_frames() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 20);
        s.handle_line("LOGIN ADMIN starfish");
        // The bus already carries the founder's own node-up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let out = s.handle_line("EVENTS");
            assert!(out.starts_with("OK events published="), "{out}");
            if out.contains("node-up") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "no node-up: {out}");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Subscribe at the live edge, then publish an observation.
        assert_eq!(s.handle_line("EVENTS SUBSCRIBE"), "OK subscribed events");
        assert!(s.subscribed());
        d.publish_event(starfish_events::EventKind::FaultInjected {
            desc: "test kill".into(),
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let frames = loop {
            let frames = s.poll_frames();
            if !frames.is_empty() {
                break frames;
            }
            assert!(std::time::Instant::now() < deadline, "no frames");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(
            frames
                .iter()
                .any(|f| f.starts_with("EVENT ") && f.contains("fault-injected")),
            "{frames:?}"
        );
        // A label filter suppresses non-matching events.
        assert_eq!(
            s.handle_line("EVENTS SUBSCRIBE recovery"),
            "OK subscribed events"
        );
        d.publish_event(starfish_events::EventKind::FaultInjected {
            desc: "filtered".into(),
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(s.poll_frames().is_empty());
        s.unsubscribe();
        assert!(!s.subscribed());
        // Pull form with explicit count.
        let out = s.handle_line("EVENTS TAIL 1");
        assert_eq!(out.lines().count(), 2, "{out}");
    }

    #[test]
    fn stats_subscribe_and_history_over_the_protocol() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 21);
        s.handle_line("LOGIN ADMIN starfish");
        // Interval 0: a frame on every poll (no wall clock involved).
        assert!(s
            .handle_line("STATS SUBSCRIBE 0")
            .starts_with("OK subscribed stats"));
        let f1 = s.poll_frames();
        assert_eq!(f1.len(), 1);
        assert!(f1[0].starts_with("STATS"), "{f1:?}");
        assert_eq!(s.poll_frames().len(), 1);
        // History is served even when empty (no app flushed stats yet).
        let h = s.handle_line("STATS HISTORY");
        assert!(h.starts_with("OK stats history"), "{h}");
        let h = s.handle_line("STATS HISTORY 3");
        assert!(h.starts_with("OK stats history"), "{h}");
    }

    #[test]
    fn trace_follow_streams_only_new_events() {
        let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
        f.add_node(NodeId(0));
        let mut cfg = DaemonConfig::new(NodeId(0));
        cfg.recorder = starfish_trace::FlightRecorder::new("n0", 64);
        let d = Daemon::start(&f, cfg, None, Box::new(NullHost), CkptStore::new()).unwrap();
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 1)
            .unwrap();
        let mut s = MgmtSession::connect(d.clone(), 22);
        s.handle_line("LOGIN ADMIN starfish");
        assert_eq!(s.handle_line("TRACE FOLLOW n0"), "OK following trace n0");
        // Nothing new yet: the follow starts at the live edge, not history.
        assert!(s.poll_frames().is_empty());
        // New ensemble traffic shows up as frames.
        d.issue(CfgCmd::SetParam {
            key: "k".into(),
            value: "v".into(),
        })
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let frames = loop {
            let frames = s.poll_frames();
            if !frames.is_empty() {
                break frames;
            }
            assert!(std::time::Instant::now() < deadline, "no trace frames");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(frames[0].starts_with("TRACE n0 "), "{frames:?}");
        assert!(s
            .handle_line("TRACE FOLLOW nosuch")
            .starts_with("ERR no such scope"));
    }

    /// Satellite: HEALTH distinguishes a registered-but-unannounced node
    /// from a live one, and surfaces per-peer heartbeat age.
    #[test]
    fn health_reports_announce_state_and_heartbeat_age() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d.clone(), 23);
        s.handle_line("LOGIN ADMIN starfish");
        s.handle_line("ADDNODE 7");
        d.wait_config(Duration::from_secs(5), |c| c.nodes.len() == 2)
            .unwrap();
        let out = s.handle_line("HEALTH");
        assert!(out.starts_with("OK health"), "{out}");
        // Our own daemon announced itself; node 7's daemon never booted.
        assert!(out.contains("n0 up hb_age=self"), "{out}");
        assert!(out.contains("n7 registered hb_age=-"), "{out}");
    }

    /// Satellite: every malformed subscription/forensics line comes back as
    /// one uniform `ERR usage:` line.
    #[test]
    fn subscription_and_postmortem_usage_errors_are_one_line() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 24);
        s.handle_line("LOGIN ADMIN starfish");
        for bad in [
            "EVENTS BOGUS",
            "EVENTS TAIL",
            "EVENTS TAIL nope",
            "EVENTS TAIL 3 extra",
            "EVENTS SUBSCRIBE f extra",
            "STATS SUBSCRIBE",
            "STATS SUBSCRIBE nope",
            "STATS SUBSCRIBE 5 extra",
            "STATS HISTORY nope",
            "STATS BOGUS",
            "TRACE FOLLOW",
            "TRACE FOLLOW a b",
            "POSTMORTEM",
            "POSTMORTEM nope",
            "POSTMORTEM app1 extra",
        ] {
            let resp = s.handle_line(bad);
            assert!(resp.starts_with("ERR usage:"), "{bad} -> {resp}");
            assert_eq!(resp.lines().count(), 1, "{bad} -> {resp}");
        }
        // A well-formed query for a recovery that never happened names the
        // bundles that do exist.
        assert!(s
            .handle_line("POSTMORTEM app9")
            .starts_with("ERR no postmortem for app9"));
    }

    #[test]
    fn malformed_lines_rejected() {
        let d = one_node_daemon();
        let mut s = MgmtSession::connect(d, 9);
        s.handle_line("LOGIN ADMIN starfish");
        assert!(s.handle_line("SUBMIT").starts_with("ERR"));
        assert!(s.handle_line("SUBMIT x notanumber").starts_with("ERR"));
        assert!(s.handle_line("FROBNICATE").starts_with("ERR unknown"));
        assert!(s.handle_line("ADDNODE xyz").starts_with("ERR bad node id"));
        assert_eq!(s.handle_line("   "), "");
    }
}
