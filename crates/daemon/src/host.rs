//! The node-host interface: how a daemon starts and steers the actual MPI
//! processes on its node.
//!
//! The daemon crate stays application-agnostic; the `starfish` crate
//! implements [`NodeHost`] with the real application-process runtime. The
//! channels of a [`ProcSpec`] are the paper's local TCP connection between
//! the daemon's lightweight endpoint module and the process's group handler
//! module (§2.3).

use crossbeam::channel::{Receiver, Sender};

use starfish_util::{AppId, Epoch, NodeId, Rank, VirtualTime};

use crate::config::AppEntry;
use crate::msg::{ProcDown, ProcUp};

/// Virtual-time cost of one hop on the local daemon ↔ process connection
/// (loopback TCP on the era's machines).
pub const LOCAL_LINK_LATENCY: VirtualTime = VirtualTime(30_000);

/// Everything a node host needs to start (or restart) one application
/// process.
pub struct ProcSpec {
    pub app: AppId,
    pub rank: Rank,
    pub node: NodeId,
    pub epoch: Epoch,
    pub entry: AppEntry,
    /// Restore from this checkpoint index (0 ⇒ fresh start from the initial
    /// state).
    pub restore_from: u64,
    /// Daemon → process messages (lightweight membership, configuration,
    /// relayed coordination / C-R).
    pub down_rx: Receiver<ProcDown>,
    /// Process → daemon messages, tagged with the process identity.
    pub up_tx: Sender<(AppId, Rank, ProcUp)>,
    /// Virtual time at which the spawn happens (inherited by the process).
    pub spawn_vt: VirtualTime,
}

/// Implemented by the `starfish` crate: the runtime half of each node.
pub trait NodeHost: Send + 'static {
    /// Placement or epoch of an application changed (submit or restart):
    /// update the MPI rank directory. Called by every daemon; must be
    /// idempotent.
    fn placement_update(&self, entry: &AppEntry);

    /// Start an application process on this node (fresh or restored,
    /// depending on `spec.restore_from`).
    fn spawn(&self, spec: ProcSpec);

    /// A rank was lost with no replacement (NotifyView policy): unplace it.
    fn rank_lost(&self, app: AppId, rank: Rank);
}

/// A no-op host for daemon-level tests.
#[derive(Debug, Default)]
pub struct NullHost;

impl NodeHost for NullHost {
    fn placement_update(&self, _entry: &AppEntry) {}
    fn spawn(&self, _spec: ProcSpec) {}
    fn rank_lost(&self, _app: AppId, _rank: Rank) {}
}
