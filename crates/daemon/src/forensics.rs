//! Recovery forensics: a deterministic observer of the ordered event
//! stream that assembles one [`Postmortem`] bundle per application
//! recovery.
//!
//! The tracker is driven exclusively by the daemon's event bus — every
//! input is a [`ClusterEvent`] that either rode the totally ordered cast
//! path or was derived deterministically from it, so all daemons observing
//! the same stream assemble byte-identical bundles.
//!
//! Lifecycle of one recovery:
//!
//! ```text
//! node-suspected ──► node-dead ──► recovery-begin ──► recovery-restore
//!      (wall age)      (vt)           (opens bundle)    (line, epoch)
//!                 ──► recovery-respawn × replaced ──► recovery-complete
//!                        (per replacement rank)        (synthesized on the
//!                                                       last respawn)
//! ```
//!
//! The per-phase timings mix clock domains deliberately and say so:
//! detection latency is the failure detector's wall clock (carried inside
//! the `node-suspected` event), everything downstream is virtual time.

use std::collections::BTreeMap;

use starfish_events::{ClusterEvent, EventKind, MetricDelta, Phase, Postmortem, Rollback};
use starfish_telemetry::{metric, MetricKind, Snapshot};
use starfish_util::{AppId, NodeId};

/// One in-flight recovery, keyed by app.
struct InFlight {
    begin_seq: u64,
    begin_vt_ns: u64,
    dead: Vec<NodeId>,
    /// Wall-clock silent-time of the first suspicion of the first dead
    /// node, if the failure was detected by heartbeat (fail-stop fabric
    /// events skip suspicion).
    detect_wall_ns: Option<u64>,
    /// Virtual time between first suspicion and the dead declaration.
    suspect_to_dead_vt_ns: Option<u64>,
    line: Vec<u64>,
    epoch: u64,
    expected_respawns: Option<usize>,
    respawns_seen: usize,
    /// Cluster-wide metrics at recovery begin (for the delta section).
    stats_before: Snapshot,
}

/// Everything [`Forensics::finalize`] needs besides its own record: the
/// bus window to embed (the caller slices from [`Forensics::begin_seq`]),
/// the cluster-wide metrics at completion, a causal trace slice around
/// the crash, and the recovery line's backend label.
pub struct BundleInputs<'a> {
    pub app_name: &'a str,
    pub store_backend: &'a str,
    pub complete_vt_ns: u64,
    pub events: Vec<ClusterEvent>,
    pub stats_after: &'a Snapshot,
    pub trace: Vec<String>,
}

/// Deterministic recovery observer. One per daemon loop.
#[derive(Default)]
pub struct Forensics {
    /// Latest suspicion per node: `(event vt ns, wall silent ns)`.
    suspects: BTreeMap<NodeId, (u64, u64)>,
    /// When the cluster declared each node dead (event vt ns).
    dead_at: BTreeMap<NodeId, u64>,
    inflight: BTreeMap<AppId, InFlight>,
}

impl Forensics {
    pub fn new() -> Self {
        Forensics::default()
    }

    /// Tell the tracker how many replacement ranks the recovery of `app`
    /// will respawn (known when the `RestartApp` effect is applied). The
    /// recovery completes when that many `recovery-respawn` events have
    /// been observed.
    pub fn expect_respawns(&mut self, app: AppId, n: usize) {
        if let Some(f) = self.inflight.get_mut(&app) {
            f.expected_respawns = Some(n);
        }
    }

    /// Whether a recovery of `app` is currently being assembled.
    pub fn in_flight(&self, app: AppId) -> bool {
        self.inflight.contains_key(&app)
    }

    /// Feed one bus event. Returns `Some(app)` when this event completed a
    /// recovery: the caller should synthesize the `recovery-complete` event,
    /// feed it back through here, and then call [`Forensics::finalize`].
    ///
    /// `stats_now` is only read when a recovery *begins* (cheap closure so
    /// the common path never snapshots).
    pub fn observe(
        &mut self,
        ev: &ClusterEvent,
        stats_now: impl FnOnce() -> Snapshot,
    ) -> Option<AppId> {
        match &ev.kind {
            EventKind::NodeSuspected { node, silent_ns } => {
                self.suspects
                    .entry(*node)
                    .or_insert((ev.vt.as_nanos(), *silent_ns));
            }
            EventKind::NodeUp { node } => {
                // A re-announced node starts a fresh detector history.
                self.suspects.remove(node);
                self.dead_at.remove(node);
            }
            EventKind::NodeDead { node } => {
                self.dead_at.entry(*node).or_insert(ev.vt.as_nanos());
            }
            EventKind::RecoveryBegin { app, dead } => {
                let first_dead = dead.first();
                let detect = first_dead.and_then(|n| self.suspects.get(n)).copied();
                let suspect_to_dead = first_dead.and_then(|n| {
                    let (s_vt, _) = self.suspects.get(n)?;
                    let d_vt = self.dead_at.get(n)?;
                    Some(d_vt.saturating_sub(*s_vt))
                });
                self.inflight.insert(
                    *app,
                    InFlight {
                        begin_seq: ev.seq,
                        begin_vt_ns: ev.vt.as_nanos(),
                        dead: dead.clone(),
                        detect_wall_ns: detect.map(|(_, silent)| silent),
                        suspect_to_dead_vt_ns: suspect_to_dead,
                        line: Vec::new(),
                        epoch: 0,
                        expected_respawns: None,
                        respawns_seen: 0,
                        stats_before: stats_now(),
                    },
                );
            }
            EventKind::RecoveryRestore { app, epoch, line } => {
                if let Some(f) = self.inflight.get_mut(app) {
                    f.line = line.clone();
                    f.epoch = epoch.raw() as u64;
                }
            }
            EventKind::RecoveryRespawn { app, .. } => {
                if let Some(f) = self.inflight.get_mut(app) {
                    f.respawns_seen += 1;
                    if Some(f.respawns_seen) == f.expected_respawns {
                        return Some(*app);
                    }
                }
            }
            _ => {}
        }
        None
    }

    /// Build the bundle for `app` and close its in-flight record.
    pub fn finalize(&mut self, app: AppId, inputs: BundleInputs<'_>) -> Option<Postmortem> {
        let BundleInputs {
            app_name,
            store_backend,
            complete_vt_ns,
            events,
            stats_after,
            trace,
        } = inputs;
        let f = self.inflight.remove(&app)?;
        let mut pm = Postmortem::new(app_name);
        pm.epoch = f.epoch;
        pm.store_backend = store_backend.to_string();
        pm.begin_vt_ns = f.begin_vt_ns;
        pm.complete_vt_ns = complete_vt_ns;
        let dead: Vec<String> = f.dead.iter().map(|n| n.to_string()).collect();
        pm.trigger = if f.detect_wall_ns.is_some() {
            format!("node {} dead (heartbeat timeout)", dead.join(" "))
        } else {
            format!("node {} dead (fail-stop)", dead.join(" "))
        };
        if let Some(d) = f.detect_wall_ns {
            pm.phases.push(Phase::wall("detect", d));
        }
        if let Some(d) = f.suspect_to_dead_vt_ns {
            pm.phases.push(Phase::virt("suspect-to-dead", d));
        }
        // Restore latency is recorded by the restarted ranks themselves
        // (recovery.restore_ns / recovery.fetch_ns histograms); at bundle
        // time the window delta is the best available daemon-side view.
        let restore_delta =
            hist_sum_delta(&f.stats_before, stats_after, metric::RECOVERY_RESTORE_NS);
        if restore_delta > 0 {
            pm.phases.push(Phase::virt("restore", restore_delta));
        }
        pm.phases.push(Phase::virt(
            "respawn-window",
            complete_vt_ns.saturating_sub(f.begin_vt_ns),
        ));
        let depth = hist_sum_delta(
            &f.stats_before,
            stats_after,
            metric::RECOVERY_ROLLBACK_VT_NS,
        );
        let lost = hist_sum_delta(&f.stats_before, stats_after, metric::RECOVERY_LOST_MSGS);
        pm.rollback = Rollback {
            line: f.line,
            depth_vt_ns: depth,
            messages_lost: lost,
        };
        pm.events = events;
        pm.trace = trace;
        pm.metrics = metrics_delta(&f.stats_before, stats_after);
        Some(pm)
    }

    /// The bus seq at which the recovery of `app` opened (for slicing the
    /// event window). The window should start at the first suspicion or
    /// death of any involved node, whichever the bus still retains.
    pub fn begin_seq(&self, app: AppId) -> Option<u64> {
        self.inflight.get(&app).map(|f| f.begin_seq)
    }

    /// First event seq worth embedding: walks back from the recovery's dead
    /// set to the earliest suspicion/death the tracker saw. Conservative —
    /// returns `begin_seq` when no earlier anchor exists.
    pub fn window_start_vt(&self, app: AppId) -> Option<u64> {
        let f = self.inflight.get(&app)?;
        let mut start = f.begin_vt_ns;
        for n in &f.dead {
            if let Some((vt, _)) = self.suspects.get(n) {
                start = start.min(*vt);
            }
            if let Some(vt) = self.dead_at.get(n) {
                start = start.min(*vt);
            }
        }
        Some(start)
    }
}

/// Counters that moved between two cluster-wide snapshots, by metric name.
fn metrics_delta(before: &Snapshot, after: &Snapshot) -> Vec<MetricDelta> {
    let mut out = Vec::new();
    for id in metric::all() {
        match id.kind() {
            MetricKind::Counter => {
                let d = after.counter(id) as i64 - before.counter(id) as i64;
                if d != 0 {
                    out.push(MetricDelta {
                        name: id.name().to_string(),
                        delta: d,
                    });
                }
            }
            MetricKind::Histogram => {
                let b = before.hist(id).map(|h| h.count).unwrap_or(0);
                let a = after.hist(id).map(|h| h.count).unwrap_or(0);
                if a != b {
                    out.push(MetricDelta {
                        name: id.name().to_string(),
                        delta: a as i64 - b as i64,
                    });
                }
            }
            MetricKind::Gauge => {}
        }
    }
    out
}

fn hist_sum_delta(before: &Snapshot, after: &Snapshot, id: starfish_telemetry::MetricId) -> u64 {
    let b = before.hist(id).map(|h| h.sum).unwrap_or(0);
    let a = after.hist(id).map(|h| h.sum).unwrap_or(0);
    a.saturating_sub(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::{Epoch, Rank, VirtualTime};

    fn ev(seq: u64, vt_ns: u64, kind: EventKind) -> ClusterEvent {
        ClusterEvent {
            seq,
            vt: VirtualTime::from_nanos(vt_ns),
            origin: NodeId(0),
            kind,
        }
    }

    fn drive_recovery(fx: &mut Forensics) -> Vec<ClusterEvent> {
        let app = AppId(1);
        let events = vec![
            ev(
                0,
                1_000,
                EventKind::NodeSuspected {
                    node: NodeId(2),
                    silent_ns: 450_000_000,
                },
            ),
            ev(1, 2_000, EventKind::NodeDead { node: NodeId(2) }),
            ev(
                2,
                3_000,
                EventKind::RecoveryBegin {
                    app,
                    dead: vec![NodeId(2)],
                },
            ),
            ev(
                3,
                3_500,
                EventKind::RecoveryRestore {
                    app,
                    epoch: Epoch(2),
                    line: vec![4, 4, 4],
                },
            ),
            ev(
                4,
                4_000,
                EventKind::RecoveryRespawn {
                    app,
                    rank: Rank(1),
                    node: NodeId(0),
                },
            ),
        ];
        for (i, e) in events.iter().enumerate() {
            let done = fx.observe(e, Snapshot::default);
            if matches!(e.kind, EventKind::RecoveryBegin { .. }) {
                fx.expect_respawns(app, 1);
            }
            if i == events.len() - 1 {
                assert_eq!(done, Some(app), "last respawn completes the recovery");
            } else {
                assert_eq!(done, None);
            }
        }
        events
    }

    #[test]
    fn full_lifecycle_builds_a_bundle() {
        let mut fx = Forensics::new();
        let events = drive_recovery(&mut fx);
        assert!(fx.in_flight(AppId(1)));
        assert_eq!(fx.begin_seq(AppId(1)), Some(2));
        // Window walks back to the suspicion.
        assert_eq!(fx.window_start_vt(AppId(1)), Some(1_000));
        let pm = fx
            .finalize(
                AppId(1),
                BundleInputs {
                    app_name: "app1",
                    store_backend: "replica:2",
                    complete_vt_ns: 5_000,
                    events,
                    stats_after: &Snapshot::default(),
                    trace: vec![],
                },
            )
            .unwrap();
        assert!(!fx.in_flight(AppId(1)));
        assert_eq!(pm.epoch, 2);
        assert_eq!(pm.rollback.line, vec![4, 4, 4]);
        assert_eq!(pm.phase_ns("detect"), Some(450_000_000));
        assert_eq!(pm.phase_ns("suspect-to-dead"), Some(1_000));
        assert_eq!(pm.phase_ns("respawn-window"), Some(2_000));
        assert!(pm.trigger.contains("heartbeat timeout"), "{}", pm.trigger);
        assert_eq!(pm.events.len(), 5);
    }

    #[test]
    fn fail_stop_without_suspicion_is_labelled() {
        let mut fx = Forensics::new();
        let app = AppId(3);
        fx.observe(
            &ev(0, 100, EventKind::NodeDead { node: NodeId(1) }),
            Snapshot::default,
        );
        fx.observe(
            &ev(
                1,
                200,
                EventKind::RecoveryBegin {
                    app,
                    dead: vec![NodeId(1)],
                },
            ),
            Snapshot::default,
        );
        fx.expect_respawns(app, 0);
        let pm = fx
            .finalize(
                app,
                BundleInputs {
                    app_name: "app3",
                    store_backend: "disk",
                    complete_vt_ns: 300,
                    events: vec![],
                    stats_after: &Snapshot::default(),
                    trace: vec![],
                },
            )
            .unwrap();
        assert!(pm.trigger.contains("fail-stop"), "{}", pm.trigger);
        assert_eq!(pm.phase_ns("detect"), None);
    }

    #[test]
    fn reannounce_resets_detector_history() {
        let mut fx = Forensics::new();
        fx.observe(
            &ev(
                0,
                100,
                EventKind::NodeSuspected {
                    node: NodeId(2),
                    silent_ns: 7,
                },
            ),
            Snapshot::default,
        );
        fx.observe(
            &ev(1, 200, EventKind::NodeUp { node: NodeId(2) }),
            Snapshot::default,
        );
        fx.observe(
            &ev(
                2,
                300,
                EventKind::RecoveryBegin {
                    app: AppId(1),
                    dead: vec![NodeId(2)],
                },
            ),
            Snapshot::default,
        );
        let pm = fx
            .finalize(
                AppId(1),
                BundleInputs {
                    app_name: "app1",
                    store_backend: "disk",
                    complete_vt_ns: 400,
                    events: vec![],
                    stats_after: &Snapshot::default(),
                    trace: vec![],
                },
            )
            .unwrap();
        // The stale pre-rejoin suspicion must not masquerade as detection.
        assert_eq!(pm.phase_ns("detect"), None);
    }

    #[test]
    fn finalize_unknown_app_is_none() {
        let mut fx = Forensics::new();
        assert!(fx
            .finalize(
                AppId(9),
                BundleInputs {
                    app_name: "app9",
                    store_backend: "disk",
                    complete_vt_ns: 0,
                    events: vec![],
                    stats_after: &Snapshot::default(),
                    trace: vec![],
                },
            )
            .is_none());
    }
}
