//! The management module: replicated cluster configuration.
//!
//! A deterministic state machine. Every mutation is a [`CfgCmd`] delivered
//! through the totally ordered cast stream, so all daemons apply the same
//! commands in the same order and hold bit-identical state. Queries are
//! local. (Paper §2.1, §3.1.1.)

use std::collections::BTreeMap;

use starfish_checkpoint::arch::{Arch, DEFAULT_ARCH, MACHINES};
use starfish_checkpoint::backend::CkptBackend;
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{AppId, Epoch, Error, NodeId, Rank, Result};

use crate::msg::CfgCmd;

/// Per-application fault-tolerance policy (paper §3.2.2: the client chooses
/// at submission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtPolicy {
    /// Automatically restart from the recovery line.
    Restart,
    /// Deliver view notifications and let the application repartition.
    NotifyView,
    /// Kill the application on any node loss (legacy MPI behaviour).
    Kill,
}

/// Which local checkpoint level an application uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelKind {
    Native,
    Vm,
}

/// Which distributed C/R protocol an application runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptProto {
    StopAndSync,
    ChandyLamport,
    Independent,
}

/// Submission-time application description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    pub name: String,
    pub size: u32,
    pub policy: FtPolicy,
    pub level: LevelKind,
    pub proto: CkptProto,
    /// Where this app's checkpoints live: the modeled stable disk, or the
    /// diskless in-memory replica store (k peer copies per fragment).
    pub backend: CkptBackend,
    /// Submitting user (for the user-session permission checks).
    pub owner: String,
    /// Client-chosen token so the submitting session can find the assigned
    /// AppId in the replicated state.
    pub token: u64,
}

/// Lifecycle of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppStatus {
    Running,
    Suspended,
    Done,
    Killed,
}

/// One application's replicated entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppEntry {
    pub id: AppId,
    pub spec: AppSpec,
    /// Node of each rank (index = rank).
    pub placement: Vec<NodeId>,
    pub status: AppStatus,
    /// Restart epoch: bumped on every rollback/restart decision.
    pub epoch: Epoch,
    /// How many ranks have reported completion (app is Done at size).
    pub done_ranks: u32,
}

/// Node lifecycle in the replicated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfgNodeStatus {
    Up,
    Disabled,
    Dead,
    Removed,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeEntry {
    pub status: CfgNodeStatus,
    pub arch: Arch,
    /// Whether the node's own daemon has self-announced (an `AddNode` cast
    /// originated by the node itself). A bare admin `ADDNODE` registers the
    /// node in the configuration but leaves it unannounced: it shows up in
    /// `NODES` output and [`ClusterConfig::up_nodes`], but the scheduler
    /// refuses to place ranks there until the daemon proves it is alive.
    pub announced: bool,
}

impl NodeEntry {
    /// Eligible to run work: administratively `Up` *and* its daemon has
    /// announced itself on the cast stream.
    pub fn live(&self) -> bool {
        self.status == CfgNodeStatus::Up && self.announced
    }
}

/// The replicated cluster configuration.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    pub nodes: BTreeMap<NodeId, NodeEntry>,
    pub params: BTreeMap<String, String>,
    pub apps: BTreeMap<AppId, AppEntry>,
    next_app: u32,
}

/// Deterministic side effects the applier reports so the daemon can act on
/// them (spawn, kill, ...). Effects are derived purely from the command and
/// the pre-state, so every daemon computes the same list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgEffect {
    AppSubmitted(AppId),
    AppKilled(AppId),
    AppSuspended(AppId),
    AppResumed(AppId),
    AppDone(AppId),
    AppRestarted {
        app: AppId,
        epoch: Epoch,
        /// Recovery line: the checkpoint index each rank restarts from.
        line: Vec<u64>,
        /// (rank, node) for every rank whose placement changed.
        replaced: Vec<(Rank, NodeId)>,
    },
    CheckpointRequested(AppId),
    NodeChanged(NodeId),
    ParamSet(String),
}

impl ClusterConfig {
    pub fn new() -> Self {
        ClusterConfig::default()
    }

    /// Administratively `Up` nodes, sorted by id. Includes nodes registered
    /// by a bare admin `ADDNODE` whose daemon has not announced yet — use
    /// [`ClusterConfig::live_nodes`] for scheduling decisions.
    pub fn up_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, e)| e.status == CfgNodeStatus::Up)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Nodes eligible to run work (`Up` and daemon-announced), sorted by id.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|(_, e)| e.live())
            .map(|(n, _)| *n)
            .collect()
    }

    pub fn arch_of(&self, node: NodeId) -> Arch {
        self.nodes
            .get(&node)
            .map(|e| e.arch)
            .unwrap_or(DEFAULT_ARCH)
    }

    /// Current load (placed ranks of live apps) per node.
    fn load(&self) -> BTreeMap<NodeId, usize> {
        let mut load: BTreeMap<NodeId, usize> = BTreeMap::new();
        for app in self.apps.values() {
            if matches!(app.status, AppStatus::Running | AppStatus::Suspended) {
                for n in &app.placement {
                    *load.entry(*n).or_default() += 1;
                }
            }
        }
        load
    }

    /// Deterministic initial placement: round-robin over up nodes, starting
    /// at the least-loaded one.
    pub fn place_new(&self, size: u32) -> Option<Vec<NodeId>> {
        let nodes = self.live_nodes();
        if nodes.is_empty() {
            return None;
        }
        let load = self.load();
        let start = nodes
            .iter()
            .enumerate()
            .min_by_key(|(_, n)| (load.get(n).copied().unwrap_or(0), **n))
            .map(|(i, _)| i)
            .unwrap_or(0);
        Some(
            (0..size as usize)
                .map(|r| nodes[(start + r) % nodes.len()])
                .collect(),
        )
    }

    /// Deterministic re-placement of lost ranks onto surviving nodes
    /// (least-loaded first; paper §3.2.2: "some rules regarding how to
    /// choose the node on which a process will be started after a partial
    /// failure").
    pub fn replace_lost(&self, app: &AppEntry) -> Option<Vec<(Rank, NodeId)>> {
        let nodes = self.live_nodes();
        if nodes.is_empty() {
            return None;
        }
        let mut load = self.load();
        let mut out = Vec::new();
        for (r, n) in app.placement.iter().enumerate() {
            let alive = self.nodes.get(n).map(|e| e.live()).unwrap_or(false);
            if !alive {
                let target = *nodes
                    .iter()
                    .min_by_key(|cand| (load.get(cand).copied().unwrap_or(0), **cand))?;
                *load.entry(target).or_default() += 1;
                out.push((Rank(r as u32), target));
            }
        }
        Some(out)
    }

    pub fn find_app_by_token(&self, token: u64) -> Option<&AppEntry> {
        self.apps.values().find(|a| a.spec.token == token)
    }

    /// Apply a command as if originated by the node it concerns: an
    /// `AddNode` applied this way counts as a self-announce. Convenience for
    /// single-replica state machines and tests; daemons delivering the cast
    /// stream use [`ClusterConfig::apply_from`] with the real sender.
    pub fn apply(&mut self, cmd: &CfgCmd) -> Vec<CfgEffect> {
        let from = match cmd {
            CfgCmd::AddNode { node, .. } => *node,
            _ => NodeId(u32::MAX),
        };
        self.apply_from(from, cmd)
    }

    /// Apply one totally ordered command originated by `from`; returns the
    /// deterministic effects. `from` is the cast's sender in the total
    /// order, so every replica sees the same value: an `AddNode` whose
    /// sender *is* the added node is a daemon self-announce and marks the
    /// node live; any other sender (an admin `ADDNODE` relayed by whichever
    /// daemon served the management connection) merely registers it.
    pub fn apply_from(&mut self, from: NodeId, cmd: &CfgCmd) -> Vec<CfgEffect> {
        match cmd {
            CfgCmd::AddNode { node, arch_index } => {
                let arch = MACHINES
                    .get(*arch_index as usize)
                    .copied()
                    .unwrap_or(DEFAULT_ARCH);
                // Announce survives a benign re-add, but never resurrects
                // across Dead/Removed: those daemons must announce anew.
                let announced = from == *node
                    || self
                        .nodes
                        .get(node)
                        .map(|e| {
                            e.announced
                                && matches!(e.status, CfgNodeStatus::Up | CfgNodeStatus::Disabled)
                        })
                        .unwrap_or(false);
                self.nodes.insert(
                    *node,
                    NodeEntry {
                        status: CfgNodeStatus::Up,
                        arch,
                        announced,
                    },
                );
                vec![CfgEffect::NodeChanged(*node)]
            }
            CfgCmd::RemoveNode { node } => {
                if let Some(e) = self.nodes.get_mut(node) {
                    e.status = CfgNodeStatus::Removed;
                    e.announced = false;
                }
                vec![CfgEffect::NodeChanged(*node)]
            }
            CfgCmd::DisableNode { node } => {
                if let Some(e) = self.nodes.get_mut(node) {
                    if e.status == CfgNodeStatus::Up {
                        e.status = CfgNodeStatus::Disabled;
                    }
                }
                vec![CfgEffect::NodeChanged(*node)]
            }
            CfgCmd::EnableNode { node } => {
                if let Some(e) = self.nodes.get_mut(node) {
                    if matches!(e.status, CfgNodeStatus::Disabled | CfgNodeStatus::Dead) {
                        e.status = CfgNodeStatus::Up;
                    }
                }
                vec![CfgEffect::NodeChanged(*node)]
            }
            CfgCmd::NodeDead { node } => {
                if let Some(e) = self.nodes.get_mut(node) {
                    if e.status != CfgNodeStatus::Removed {
                        e.status = CfgNodeStatus::Dead;
                    }
                    // A dead daemon's announce is void: after an admin
                    // re-add (or ENABLE) the restarted daemon must announce
                    // again before the node is schedulable.
                    e.announced = false;
                }
                vec![CfgEffect::NodeChanged(*node)]
            }
            CfgCmd::SetParam { key, value } => {
                self.params.insert(key.clone(), value.clone());
                vec![CfgEffect::ParamSet(key.clone())]
            }
            CfgCmd::Submit { spec } => {
                let Some(placement) = self.place_new(spec.size) else {
                    return Vec::new(); // no nodes: submission dropped
                };
                self.next_app += 1;
                let id = AppId(self.next_app);
                self.apps.insert(
                    id,
                    AppEntry {
                        id,
                        spec: spec.clone(),
                        placement,
                        status: AppStatus::Running,
                        epoch: Epoch(0),
                        done_ranks: 0,
                    },
                );
                vec![CfgEffect::AppSubmitted(id)]
            }
            CfgCmd::Suspend { app } => match self.apps.get_mut(app) {
                Some(a) if a.status == AppStatus::Running => {
                    a.status = AppStatus::Suspended;
                    vec![CfgEffect::AppSuspended(*app)]
                }
                _ => Vec::new(),
            },
            CfgCmd::ResumeApp { app } => match self.apps.get_mut(app) {
                Some(a) if a.status == AppStatus::Suspended => {
                    a.status = AppStatus::Running;
                    vec![CfgEffect::AppResumed(*app)]
                }
                _ => Vec::new(),
            },
            CfgCmd::Delete { app } => match self.apps.get_mut(app) {
                Some(a) if matches!(a.status, AppStatus::Running | AppStatus::Suspended) => {
                    a.status = AppStatus::Killed;
                    vec![CfgEffect::AppKilled(*app)]
                }
                _ => Vec::new(),
            },
            CfgCmd::RankDone { app, rank: _ } => match self.apps.get_mut(app) {
                Some(a) if a.status == AppStatus::Running => {
                    a.done_ranks += 1;
                    if a.done_ranks >= a.spec.size {
                        a.status = AppStatus::Done;
                        vec![CfgEffect::AppDone(*app)]
                    } else {
                        Vec::new()
                    }
                }
                _ => Vec::new(),
            },
            CfgCmd::TriggerCkpt { app } => {
                if self
                    .apps
                    .get(app)
                    .map(|a| a.status == AppStatus::Running)
                    .unwrap_or(false)
                {
                    vec![CfgEffect::CheckpointRequested(*app)]
                } else {
                    Vec::new()
                }
            }
            CfgCmd::NeedState { .. } => Vec::new(),
            CfgCmd::Migrate {
                app,
                rank,
                node,
                line,
            } => {
                let target_up = self.nodes.get(node).map(|e| e.live()).unwrap_or(false);
                if !target_up {
                    return Vec::new();
                }
                let Some(a) = self.apps.get_mut(app) else {
                    return Vec::new();
                };
                if a.status != AppStatus::Running || rank.index() >= a.placement.len() {
                    return Vec::new();
                }
                if a.placement[rank.index()] == *node {
                    return Vec::new(); // already there
                }
                a.placement[rank.index()] = *node;
                a.epoch = Epoch(a.epoch.0 + 1);
                // Reuses the restart machinery: the migrated rank spawns
                // from its line checkpoint on the new node; survivors roll
                // back to the same line so the cut stays consistent. Any
                // rank that had already finished re-runs from the line, so
                // the done count starts over.
                a.done_ranks = 0;
                vec![CfgEffect::AppRestarted {
                    app: *app,
                    epoch: a.epoch,
                    line: line.clone(),
                    replaced: vec![(*rank, *node)],
                }]
            }
            CfgCmd::RestartApp { app, line } => {
                // Deterministic restart decision: bump epoch, re-place lost
                // ranks. Every daemon computes the identical outcome.
                let Some(entry) = self.apps.get(app).cloned() else {
                    return Vec::new();
                };
                if !matches!(entry.status, AppStatus::Running | AppStatus::Suspended) {
                    return Vec::new();
                }
                let Some(replaced) = self.replace_lost(&entry) else {
                    // No nodes left to host the lost ranks: kill.
                    self.apps.get_mut(app).expect("present").status = AppStatus::Killed;
                    return vec![CfgEffect::AppKilled(*app)];
                };
                if replaced.is_empty() {
                    // Nothing was actually lost (e.g. a re-issued restart
                    // decision after a coordinator handover): no-op, keeping
                    // the command idempotent.
                    return Vec::new();
                }
                let a = self.apps.get_mut(app).expect("present");
                for (r, n) in &replaced {
                    a.placement[r.index()] = *n;
                }
                a.epoch = Epoch(a.epoch.0 + 1);
                // A coordinated line cannot be partially resumed: every
                // rank — including ones that already finished — rolls back
                // to the line and runs again, so the done count restarts.
                a.done_ranks = 0;
                vec![CfgEffect::AppRestarted {
                    app: *app,
                    epoch: a.epoch,
                    line: line.clone(),
                    replaced,
                }]
            }
        }
    }
}

// ---- state-transfer serialization ------------------------------------------

fn status_byte(s: AppStatus) -> u8 {
    match s {
        AppStatus::Running => 0,
        AppStatus::Suspended => 1,
        AppStatus::Done => 2,
        AppStatus::Killed => 3,
    }
}

fn status_from(b: u8) -> Result<AppStatus> {
    Ok(match b {
        0 => AppStatus::Running,
        1 => AppStatus::Suspended,
        2 => AppStatus::Done,
        3 => AppStatus::Killed,
        _ => return Err(Error::codec(format!("bad app status {b}"))),
    })
}

fn node_status_byte(s: CfgNodeStatus) -> u8 {
    match s {
        CfgNodeStatus::Up => 0,
        CfgNodeStatus::Disabled => 1,
        CfgNodeStatus::Dead => 2,
        CfgNodeStatus::Removed => 3,
    }
}

fn node_status_from(b: u8) -> Result<CfgNodeStatus> {
    Ok(match b {
        0 => CfgNodeStatus::Up,
        1 => CfgNodeStatus::Disabled,
        2 => CfgNodeStatus::Dead,
        3 => CfgNodeStatus::Removed,
        _ => return Err(Error::codec(format!("bad node status {b}"))),
    })
}

impl Encode for AppEntry {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.spec.encode(enc);
        self.placement.encode(enc);
        enc.put_u8(status_byte(self.status));
        self.epoch.encode(enc);
        enc.put_u32(self.done_ranks);
    }
}

impl Decode for AppEntry {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AppEntry {
            id: AppId::decode(dec)?,
            spec: AppSpec::decode(dec)?,
            placement: Vec::<NodeId>::decode(dec)?,
            status: status_from(dec.get_u8()?)?,
            epoch: Epoch::decode(dec)?,
            done_ranks: dec.get_u32()?,
        })
    }
}

impl Encode for ClusterConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.nodes.len() as u32);
        for (n, e) in &self.nodes {
            n.encode(enc);
            enc.put_u8(node_status_byte(e.status));
            e.arch.encode(enc);
            enc.put_u8(e.announced as u8);
        }
        enc.put_u32(self.params.len() as u32);
        for (k, v) in &self.params {
            enc.put_str(k);
            enc.put_str(v);
        }
        enc.put_u32(self.apps.len() as u32);
        for a in self.apps.values() {
            a.encode(enc);
        }
        enc.put_u32(self.next_app);
    }
}

impl Decode for ClusterConfig {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let mut cfg = ClusterConfig::new();
        let n_nodes = dec.get_u32()? as usize;
        for _ in 0..n_nodes {
            let n = NodeId::decode(dec)?;
            let status = node_status_from(dec.get_u8()?)?;
            let arch = Arch::decode(dec)?;
            let announced = dec.get_u8()? != 0;
            cfg.nodes.insert(
                n,
                NodeEntry {
                    status,
                    arch,
                    announced,
                },
            );
        }
        let n_params = dec.get_u32()? as usize;
        for _ in 0..n_params {
            let k = dec.get_str()?;
            let v = dec.get_str()?;
            cfg.params.insert(k, v);
        }
        let n_apps = dec.get_u32()? as usize;
        for _ in 0..n_apps {
            let a = AppEntry::decode(dec)?;
            cfg.apps.insert(a.id, a);
        }
        cfg.next_app = dec.get_u32()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_util::codec::roundtrip;

    fn spec(name: &str, size: u32) -> AppSpec {
        AppSpec {
            name: name.into(),
            size,
            policy: FtPolicy::Restart,
            level: LevelKind::Vm,
            proto: CkptProto::StopAndSync,
            backend: CkptBackend::Replica { k: 2 },
            owner: "alice".into(),
            token: 42,
        }
    }

    fn with_nodes(n: u32) -> ClusterConfig {
        let mut c = ClusterConfig::new();
        for i in 0..n {
            c.apply(&CfgCmd::AddNode {
                node: NodeId(i),
                arch_index: 0,
            });
        }
        c
    }

    #[test]
    fn submit_assigns_ids_and_round_robin_placement() {
        let mut c = with_nodes(3);
        let eff = c.apply(&CfgCmd::Submit { spec: spec("a", 5) });
        assert_eq!(eff, vec![CfgEffect::AppSubmitted(AppId(1))]);
        let app = c.apps.get(&AppId(1)).unwrap();
        assert_eq!(app.placement.len(), 5);
        // Round-robin over 3 nodes.
        assert_eq!(app.placement[0], app.placement[3]);
        assert_eq!(app.placement[1], app.placement[4]);
        // Second submission starts at the least-loaded node.
        let eff = c.apply(&CfgCmd::Submit { spec: spec("b", 1) });
        assert_eq!(eff, vec![CfgEffect::AppSubmitted(AppId(2))]);
        let b = c.apps.get(&AppId(2)).unwrap();
        assert_eq!(b.placement[0], NodeId(2), "node 2 had only one rank");
    }

    #[test]
    fn two_replicas_converge_on_same_command_stream() {
        let cmds = vec![
            CfgCmd::AddNode {
                node: NodeId(0),
                arch_index: 0,
            },
            CfgCmd::AddNode {
                node: NodeId(1),
                arch_index: 5,
            },
            CfgCmd::Submit { spec: spec("x", 4) },
            CfgCmd::SetParam {
                key: "ckpt_interval".into(),
                value: "3600".into(),
            },
            CfgCmd::DisableNode { node: NodeId(1) },
        ];
        let mut a = ClusterConfig::new();
        let mut b = ClusterConfig::new();
        for cmd in &cmds {
            a.apply(cmd);
            b.apply(cmd);
        }
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn lifecycle_suspend_resume_delete() {
        let mut c = with_nodes(1);
        c.apply(&CfgCmd::Submit { spec: spec("a", 1) });
        let id = AppId(1);
        assert_eq!(
            c.apply(&CfgCmd::Suspend { app: id }),
            vec![CfgEffect::AppSuspended(id)]
        );
        // Double-suspend is a no-op.
        assert!(c.apply(&CfgCmd::Suspend { app: id }).is_empty());
        assert_eq!(
            c.apply(&CfgCmd::ResumeApp { app: id }),
            vec![CfgEffect::AppResumed(id)]
        );
        assert_eq!(
            c.apply(&CfgCmd::Delete { app: id }),
            vec![CfgEffect::AppKilled(id)]
        );
        assert_eq!(c.apps[&id].status, AppStatus::Killed);
    }

    #[test]
    fn app_done_when_all_ranks_finish() {
        let mut c = with_nodes(1);
        c.apply(&CfgCmd::Submit { spec: spec("a", 2) });
        assert!(c
            .apply(&CfgCmd::RankDone {
                app: AppId(1),
                rank: Rank(0)
            })
            .is_empty());
        let eff = c.apply(&CfgCmd::RankDone {
            app: AppId(1),
            rank: Rank(1),
        });
        assert_eq!(eff, vec![CfgEffect::AppDone(AppId(1))]);
    }

    #[test]
    fn restart_replaces_lost_ranks_deterministically() {
        let mut c = with_nodes(3);
        c.apply(&CfgCmd::Submit { spec: spec("a", 3) });
        let app = c.apps[&AppId(1)].clone();
        let dead = app.placement[1];
        c.apply(&CfgCmd::NodeDead { node: dead });
        let eff = c.apply(&CfgCmd::RestartApp {
            app: AppId(1),
            line: vec![7, 7, 7],
        });
        match &eff[0] {
            CfgEffect::AppRestarted {
                app,
                epoch,
                line,
                replaced,
            } => {
                assert_eq!(*app, AppId(1));
                assert_eq!(*epoch, Epoch(1));
                assert_eq!(line, &vec![7, 7, 7]);
                assert_eq!(replaced.len(), 1);
                assert_eq!(replaced[0].0, Rank(1));
                assert_ne!(replaced[0].1, dead);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The placement is updated in the replicated state.
        let app = &c.apps[&AppId(1)];
        assert_ne!(app.placement[1], dead);
    }

    #[test]
    fn restart_with_no_nodes_kills() {
        let mut c = with_nodes(1);
        c.apply(&CfgCmd::Submit { spec: spec("a", 1) });
        c.apply(&CfgCmd::NodeDead { node: NodeId(0) });
        let eff = c.apply(&CfgCmd::RestartApp {
            app: AppId(1),
            line: vec![0],
        });
        assert_eq!(eff, vec![CfgEffect::AppKilled(AppId(1))]);
    }

    #[test]
    fn disabled_nodes_get_no_new_work() {
        let mut c = with_nodes(2);
        c.apply(&CfgCmd::DisableNode { node: NodeId(0) });
        c.apply(&CfgCmd::Submit { spec: spec("a", 3) });
        let app = &c.apps[&AppId(1)];
        assert!(app.placement.iter().all(|n| *n == NodeId(1)));
        // Re-enable and the node is eligible again.
        c.apply(&CfgCmd::EnableNode { node: NodeId(0) });
        assert_eq!(c.up_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    /// The phantom-node regression at the state-machine level: a bare
    /// `ADDNODE` (an AddNode cast originated by some *other* daemon) makes
    /// the node administratively Up but not schedulable; only the node's
    /// own announce cast does.
    #[test]
    fn unannounced_node_gets_no_placement_until_self_announce() {
        let mut c = with_nodes(1); // NodeId(0): self-announced, live
        let phantom = NodeId(9);
        // Admin registers the phantom through whichever daemon served the
        // management connection — node 0 here, never the phantom itself.
        c.apply_from(
            NodeId(0),
            &CfgCmd::AddNode {
                node: phantom,
                arch_index: 0,
            },
        );
        assert_eq!(c.up_nodes(), vec![NodeId(0), phantom], "admin view");
        assert_eq!(c.live_nodes(), vec![NodeId(0)], "scheduler view");
        c.apply(&CfgCmd::Submit { spec: spec("a", 4) });
        let app = &c.apps[&AppId(1)];
        assert!(
            app.placement.iter().all(|n| *n == NodeId(0)),
            "no rank may land on the unannounced node: {:?}",
            app.placement
        );
        // Lost-rank re-placement skips it too.
        let entry = app.clone();
        c.apply(&CfgCmd::NodeDead { node: NodeId(0) });
        assert_eq!(c.replace_lost(&entry), None, "no live node to host ranks");
        // The phantom's daemon finally boots and announces itself: the
        // AddNode cast comes from the node itself, upgrading it to live.
        c.apply_from(
            phantom,
            &CfgCmd::AddNode {
                node: phantom,
                arch_index: 0,
            },
        );
        assert_eq!(c.live_nodes(), vec![phantom]);
        c.apply(&CfgCmd::Submit { spec: spec("b", 2) });
        assert!(c.apps[&AppId(2)].placement.iter().all(|n| *n == phantom));
    }

    /// Death voids an announce: an admin re-add of a dead node does not
    /// resurrect liveness, the restarted daemon's own announce does.
    #[test]
    fn announce_does_not_survive_death() {
        let mut c = with_nodes(2);
        c.apply(&CfgCmd::NodeDead { node: NodeId(1) });
        c.apply_from(
            NodeId(0),
            &CfgCmd::AddNode {
                node: NodeId(1),
                arch_index: 0,
            },
        );
        assert_eq!(c.live_nodes(), vec![NodeId(0)], "re-add is not an announce");
        // Disable/enable of a live node keeps the announce (the daemon
        // never went away).
        c.apply(&CfgCmd::DisableNode { node: NodeId(0) });
        c.apply(&CfgCmd::EnableNode { node: NodeId(0) });
        assert_eq!(c.live_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn token_lookup() {
        let mut c = with_nodes(1);
        c.apply(&CfgCmd::Submit { spec: spec("a", 1) });
        assert_eq!(c.find_app_by_token(42).unwrap().id, AppId(1));
        assert!(c.find_app_by_token(7).is_none());
    }

    #[test]
    fn full_config_snapshot_roundtrips() {
        let mut c = with_nodes(3);
        c.apply(&CfgCmd::Submit { spec: spec("a", 4) });
        c.apply(&CfgCmd::SetParam {
            key: "x".into(),
            value: "1".into(),
        });
        c.apply(&CfgCmd::DisableNode { node: NodeId(2) });
        let got = roundtrip(&c).unwrap();
        assert_eq!(got.nodes, c.nodes);
        assert_eq!(got.params, c.params);
        assert_eq!(got.apps, c.apps);
        // next_app travels too: the next submission gets a fresh id.
        let mut got = got;
        got.apply(&CfgCmd::Submit { spec: spec("b", 1) });
        assert!(got.apps.contains_key(&AppId(2)));
    }

    #[test]
    fn needstate_is_a_noop_on_state() {
        let mut c = with_nodes(1);
        let before = c.clone();
        assert!(c.apply(&CfgCmd::NeedState { node: NodeId(9) }).is_empty());
        assert_eq!(c.nodes, before.nodes);
        assert_eq!(c.apps, before.apps);
    }

    #[test]
    fn migrate_moves_rank_and_bumps_epoch() {
        let mut c = with_nodes(3);
        c.apply(&CfgCmd::Submit { spec: spec("a", 2) });
        let app = AppId(1);
        let old = c.apps[&app].placement[1];
        let target = (0..3)
            .map(NodeId)
            .find(|n| *n != old && *n != c.apps[&app].placement[0])
            .unwrap_or(NodeId(2));
        let eff = c.apply(&CfgCmd::Migrate {
            app,
            rank: Rank(1),
            node: target,
            line: vec![3, 3],
        });
        match &eff[0] {
            CfgEffect::AppRestarted {
                replaced,
                epoch,
                line,
                ..
            } => {
                assert_eq!(replaced, &vec![(Rank(1), target)]);
                assert_eq!(*epoch, Epoch(1));
                assert_eq!(line, &vec![3, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.apps[&app].placement[1], target);
        // Migrating to a dead node is refused.
        c.apply(&CfgCmd::NodeDead { node: NodeId(0) });
        let eff = c.apply(&CfgCmd::Migrate {
            app,
            rank: Rank(0),
            node: NodeId(0),
            line: vec![0, 0],
        });
        assert!(eff.is_empty());
    }

    #[test]
    fn heterogeneous_arch_tracked_per_node() {
        let mut c = ClusterConfig::new();
        c.apply(&CfgCmd::AddNode {
            node: NodeId(0),
            arch_index: 1, // SunOS big-endian
        });
        assert_eq!(c.arch_of(NodeId(0)), MACHINES[1]);
        assert_eq!(c.arch_of(NodeId(9)), DEFAULT_ARCH);
    }
}
