//! Cluster-wide telemetry aggregation.
//!
//! Every process runtime flushes cumulative [`Snapshot`]s of its registry up
//! to its daemon ([`ProcUp::Stats`](crate::msg::ProcUp)); the daemon casts
//! them on the totally ordered ensemble stream
//! ([`WireCast::Stats`](crate::msg::WireCast)), so all daemons converge on
//! the same per-scope table and any of them can answer the `STATS`, `HEALTH`
//! and `TIMELINE` management commands.
//!
//! Scopes are strings: `"cluster"` for the shared infrastructure registry
//! (fabric, trace, ensemble), `"app<N>.r<R>"` for one application process.
//! Snapshots are **cumulative**, so a newer snapshot for a scope *replaces*
//! the previous one; snapshots of *different* scopes merge additively.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_telemetry::{Snapshot, TimelineEvent};
use starfish_util::VirtualTime;

/// Default number of timestamped history snapshots retained.
pub const DEFAULT_HISTORY_RETENTION: usize = 64;

#[derive(Default)]
struct History {
    retention: usize,
    ring: VecDeque<(VirtualTime, Snapshot)>,
}

/// Shared table of the latest snapshot per scope. Cheap to clone.
#[derive(Clone, Default)]
pub struct StatsHub {
    inner: Arc<Mutex<BTreeMap<String, Snapshot>>>,
    history: Arc<Mutex<History>>,
}

impl StatsHub {
    pub fn new() -> Self {
        StatsHub::default()
    }

    /// Install `snap` as the latest cumulative snapshot of `scope`.
    pub fn update(&self, scope: &str, snap: Snapshot) {
        self.inner.lock().insert(scope.to_string(), snap);
    }

    /// All scopes currently known, in order.
    pub fn scopes(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Latest snapshot of one scope.
    pub fn get(&self, scope: &str) -> Option<Snapshot> {
        self.inner.lock().get(scope).cloned()
    }

    /// Additive merge of every scope's latest snapshot — the cluster-wide
    /// view.
    pub fn merged(&self) -> Snapshot {
        let g = self.inner.lock();
        let mut out = Snapshot::default();
        for snap in g.values() {
            out.merge(snap);
        }
        out
    }

    /// Append a timestamped snapshot of the current cluster-wide merge to
    /// the history ring (called while applying ordered `Stats` casts, so
    /// all daemons record the same sequence).
    pub fn record_history(&self, vt: VirtualTime) {
        let snap = self.merged();
        let mut h = self.history.lock();
        if h.retention == 0 {
            h.retention = DEFAULT_HISTORY_RETENTION;
        }
        // Same ordered-stream point twice (e.g. the per-rank cast followed
        // by its "cluster" piggyback) collapses into one sample.
        if h.ring.back().map(|(t, _)| *t) == Some(vt) {
            h.ring.pop_back();
        }
        h.ring.push_back((vt, snap));
        while h.ring.len() > h.retention {
            h.ring.pop_front();
        }
    }

    /// Set how many history snapshots are retained (`SET stats_history <n>`).
    pub fn set_retention(&self, n: usize) {
        let mut h = self.history.lock();
        h.retention = n.max(1);
        while h.ring.len() > h.retention {
            h.ring.pop_front();
        }
    }

    /// Oldest-first timestamped history snapshots.
    pub fn history(&self) -> Vec<(VirtualTime, Snapshot)> {
        self.history.lock().ring.iter().cloned().collect()
    }

    /// Timeline events of every scope starting with `prefix` (e.g.
    /// `"app1."`), ordered by virtual start time.
    pub fn timeline_for(&self, prefix: &str) -> Vec<TimelineEvent> {
        let g = self.inner.lock();
        let mut events: Vec<TimelineEvent> = g
            .iter()
            .filter(|(scope, _)| scope.starts_with(prefix))
            .flat_map(|(_, s)| s.timeline.iter().cloned())
            .collect();
        events.sort_by_key(|e| (e.start_vt, e.end_vt));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_telemetry::{metric, Registry};

    #[test]
    fn replace_per_scope_merge_across_scopes() {
        let hub = StatsHub::new();
        let r = Registry::new();
        r.inc(metric::ENSEMBLE_CASTS);
        hub.update("a", r.snapshot());
        r.inc(metric::ENSEMBLE_CASTS);
        // Cumulative re-flush of the same scope replaces, not doubles.
        hub.update("a", r.snapshot());
        assert_eq!(hub.merged().counter(metric::ENSEMBLE_CASTS), 2);
        let r2 = Registry::new();
        r2.inc(metric::ENSEMBLE_CASTS);
        hub.update("b", r2.snapshot());
        assert_eq!(hub.merged().counter(metric::ENSEMBLE_CASTS), 3);
        assert_eq!(hub.scopes(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn history_ring_dedups_vt_and_respects_retention() {
        let hub = StatsHub::new();
        let r = Registry::new();
        for i in 0..5u64 {
            r.inc(metric::ENSEMBLE_CASTS);
            hub.update("a", r.snapshot());
            hub.record_history(starfish_util::VirtualTime(i * 100));
        }
        assert_eq!(hub.history().len(), 5);
        // Same vt replaces the last sample instead of duplicating it.
        hub.record_history(starfish_util::VirtualTime(400));
        assert_eq!(hub.history().len(), 5);
        hub.set_retention(2);
        let h = hub.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, starfish_util::VirtualTime(300));
        // New samples keep honouring the tighter retention.
        hub.record_history(starfish_util::VirtualTime(500));
        assert_eq!(hub.history().len(), 2);
    }

    #[test]
    fn timeline_prefix_filter_sorts_by_start() {
        let hub = StatsHub::new();
        let r = Registry::new();
        r.span_record(
            "late",
            "",
            starfish_util::VirtualTime(200),
            starfish_util::VirtualTime(300),
        );
        r.span_record(
            "early",
            "",
            starfish_util::VirtualTime(10),
            starfish_util::VirtualTime(20),
        );
        hub.update("app1.r0", r.snapshot());
        hub.update("app2.r0", r.snapshot());
        let tl = hub.timeline_for("app1.");
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].name, "early");
    }
}
