//! Cluster-wide telemetry aggregation.
//!
//! Every process runtime flushes cumulative [`Snapshot`]s of its registry up
//! to its daemon ([`ProcUp::Stats`](crate::msg::ProcUp)); the daemon casts
//! them on the totally ordered ensemble stream
//! ([`WireCast::Stats`](crate::msg::WireCast)), so all daemons converge on
//! the same per-scope table and any of them can answer the `STATS`, `HEALTH`
//! and `TIMELINE` management commands.
//!
//! Scopes are strings: `"cluster"` for the shared infrastructure registry
//! (fabric, trace, ensemble), `"app<N>.r<R>"` for one application process.
//! Snapshots are **cumulative**, so a newer snapshot for a scope *replaces*
//! the previous one; snapshots of *different* scopes merge additively.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use starfish_telemetry::{Snapshot, TimelineEvent};

/// Shared table of the latest snapshot per scope. Cheap to clone.
#[derive(Clone, Default)]
pub struct StatsHub {
    inner: Arc<Mutex<BTreeMap<String, Snapshot>>>,
}

impl StatsHub {
    pub fn new() -> Self {
        StatsHub::default()
    }

    /// Install `snap` as the latest cumulative snapshot of `scope`.
    pub fn update(&self, scope: &str, snap: Snapshot) {
        self.inner.lock().insert(scope.to_string(), snap);
    }

    /// All scopes currently known, in order.
    pub fn scopes(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Latest snapshot of one scope.
    pub fn get(&self, scope: &str) -> Option<Snapshot> {
        self.inner.lock().get(scope).cloned()
    }

    /// Additive merge of every scope's latest snapshot — the cluster-wide
    /// view.
    pub fn merged(&self) -> Snapshot {
        let g = self.inner.lock();
        let mut out = Snapshot::default();
        for snap in g.values() {
            out.merge(snap);
        }
        out
    }

    /// Timeline events of every scope starting with `prefix` (e.g.
    /// `"app1."`), ordered by virtual start time.
    pub fn timeline_for(&self, prefix: &str) -> Vec<TimelineEvent> {
        let g = self.inner.lock();
        let mut events: Vec<TimelineEvent> = g
            .iter()
            .filter(|(scope, _)| scope.starts_with(prefix))
            .flat_map(|(_, s)| s.timeline.iter().cloned())
            .collect();
        events.sort_by_key(|e| (e.start_vt, e.end_vt));
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starfish_telemetry::{metric, Registry};

    #[test]
    fn replace_per_scope_merge_across_scopes() {
        let hub = StatsHub::new();
        let r = Registry::new();
        r.inc(metric::ENSEMBLE_CASTS);
        hub.update("a", r.snapshot());
        r.inc(metric::ENSEMBLE_CASTS);
        // Cumulative re-flush of the same scope replaces, not doubles.
        hub.update("a", r.snapshot());
        assert_eq!(hub.merged().counter(metric::ENSEMBLE_CASTS), 2);
        let r2 = Registry::new();
        r2.inc(metric::ENSEMBLE_CASTS);
        hub.update("b", r2.snapshot());
        assert_eq!(hub.merged().counter(metric::ENSEMBLE_CASTS), 3);
        assert_eq!(hub.scopes(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn timeline_prefix_filter_sorts_by_start() {
        let hub = StatsHub::new();
        let r = Registry::new();
        r.span_record(
            "late",
            "",
            starfish_util::VirtualTime(200),
            starfish_util::VirtualTime(300),
        );
        r.span_record(
            "early",
            "",
            starfish_util::VirtualTime(10),
            starfish_util::VirtualTime(20),
        );
        hub.update("app1.r0", r.snapshot());
        hub.update("app2.r0", r.snapshot());
        let tl = hub.timeline_for("app1.");
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[0].name, "early");
    }
}
