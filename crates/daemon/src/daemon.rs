//! The daemon event loop.
//!
//! One [`Daemon`] runs per node. Its thread multiplexes three sources:
//! the group-communication endpoint (views, totally ordered casts, targeted
//! relays), the local application processes (their `ProcUp` channel), and
//! administrative commands from management sessions.
//!
//! Everything that must be **consistent cluster-wide** (configuration,
//! placement, restart decisions) flows through the totally ordered cast
//! stream and a deterministic state machine, so all daemons agree without
//! any extra protocol. Everything **node-local** (spawning processes,
//! relaying to local processes) is derived from that shared state plus the
//! daemon's own node id.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::Mutex;

use starfish_checkpoint::backend::StoreHub;
use starfish_checkpoint::recovery::{self};
use starfish_ensemble::{Endpoint, EndpointConfig, GcEvent, HeartbeatAges, View};
use starfish_events::{ClusterEvent, EventBus, EventKind as BusEventKind, Postmortem};
use starfish_lwgroups::{LwEvent, LwMsg, LwRouter};
use starfish_telemetry::{metric, Registry};
use starfish_trace::{FlightRecorder, TraceHub};
use starfish_util::codec::{Decode, Encode};
use starfish_util::trace::{ActorKind, MsgClass, TraceSink};
use starfish_util::{AppId, Error, GroupId, NodeId, Rank, Result, VClock, VirtualTime};
use starfish_vni::Fabric;

use crate::config::{
    AppEntry, AppStatus, CfgEffect, CfgNodeStatus, CkptProto, ClusterConfig, FtPolicy,
};
use crate::forensics::Forensics;
use crate::host::{NodeHost, ProcSpec};
use crate::msg::{AppRelay, CfgCmd, P2pMsg, ProcDown, ProcUp, RelayKind, WireCast};
use crate::stats::StatsHub;

/// Per-daemon settings.
pub struct DaemonConfig {
    pub node: NodeId,
    /// Index into [`starfish_checkpoint::arch::MACHINES`] of this node's
    /// machine type (heterogeneous clusters, Table 2).
    pub arch_index: u8,
    pub trace: TraceSink,
    pub ensemble: EndpointConfig,
    /// Shared infrastructure registry (fabric/trace/ensemble metrics); its
    /// snapshot is cast under the `"cluster"` scope whenever process stats
    /// flush through this daemon.
    pub metrics: Option<Registry>,
    /// This daemon's flight recorder (scope `"n<id>"`); shared with the
    /// ensemble endpoint so casts and view changes become causal events.
    /// Disabled by default.
    pub recorder: FlightRecorder,
    /// The cluster's recorder registry. The daemon registers its own
    /// recorder here at start; the runtime host registers one per spawned
    /// process; the `TRACE` management commands read it.
    pub trace_hub: TraceHub,
    /// This daemon's cluster event bus. Enabled by default (events are
    /// control-plane volume; the bench pins publish cost at ns scale);
    /// pass [`EventBus::disabled`] to opt out entirely.
    pub events: EventBus,
}

impl DaemonConfig {
    pub fn new(node: NodeId) -> Self {
        DaemonConfig {
            node,
            arch_index: 0,
            trace: TraceSink::disabled(),
            ensemble: EndpointConfig::default(),
            metrics: None,
            recorder: FlightRecorder::disabled(),
            trace_hub: TraceHub::new(),
            events: EventBus::new(),
        }
    }
}

enum DaemonCmd {
    Issue(CfgCmd),
    /// Publish a locally observed cluster event (rides the ordered cast
    /// path so every daemon's bus assigns it the same sequence number).
    Emit(BusEventKind),
    Shutdown,
}

/// Handle to a running daemon (cheap to clone; management sessions hold
/// one).
#[derive(Clone)]
pub struct Daemon {
    node: NodeId,
    cmd_tx: Sender<DaemonCmd>,
    shared_cfg: Arc<Mutex<ClusterConfig>>,
    stats: StatsHub,
    trace_hub: TraceHub,
    store: StoreHub,
    events: EventBus,
    postmortems: Arc<Mutex<BTreeMap<AppId, Postmortem>>>,
    liveness: HeartbeatAges,
}

impl Daemon {
    /// Start a daemon. `contact == None` founds the Starfish group (first
    /// daemon of the cluster); otherwise join via an existing member.
    ///
    /// `store` accepts either a bare [`CkptStore`] (lifted into a disk-only
    /// [`StoreHub`]) or a shared `StoreHub` carrying both the disk and the
    /// replica (peer-memory) checkpoint backends.
    pub fn start(
        fabric: &Fabric,
        cfg: DaemonConfig,
        contact: Option<NodeId>,
        host: Box<dyn NodeHost>,
        store: impl Into<StoreHub>,
    ) -> Result<Daemon> {
        let store = store.into();
        let mut cfg = cfg;
        // Share the daemon's recorder with its ensemble endpoint (unless
        // the caller installed a distinct one) and make it discoverable.
        if cfg.recorder.is_enabled() && !cfg.ensemble.recorder.is_enabled() {
            cfg.ensemble.recorder = cfg.recorder.clone();
        }
        cfg.trace_hub.register(cfg.recorder.clone());
        let ep = match contact {
            None => Endpoint::found(fabric, cfg.node, cfg.ensemble.clone())?,
            Some(c) => Endpoint::join(fabric, cfg.node, c, cfg.ensemble.clone())?,
        };
        let (cmd_tx, cmd_rx) = channel::unbounded();
        let (up_tx, up_rx) = channel::unbounded();
        let shared_cfg = Arc::new(Mutex::new(ClusterConfig::new()));
        let stats = StatsHub::new();
        let trace_hub = cfg.trace_hub.clone();
        let node = cfg.node;
        let events = cfg.events.clone();
        let postmortems = Arc::new(Mutex::new(BTreeMap::new()));
        let liveness = ep.liveness();
        let state = Loop {
            node,
            arch_index: cfg.arch_index,
            trace: cfg.trace,
            metrics: cfg.metrics,
            stats: stats.clone(),
            ep,
            router: LwRouter::new(node),
            config: ClusterConfig::new(),
            shared_cfg: shared_cfg.clone(),
            host,
            store: store.clone(),
            clock: VClock::new(),
            procs: HashMap::new(),
            up_tx,
            announced: false,
            // The founding daemon owns the (empty) initial state; joiners
            // must acquire it via state transfer first.
            bootstrapped: contact.is_none(),
            requested_state: false,
            cast_buffer: Vec::new(),
            view: None,
            events: events.clone(),
            forensics: Forensics::new(),
            postmortems: postmortems.clone(),
            events_dropped_seen: 0,
            trace_hub: trace_hub.clone(),
        };
        std::thread::Builder::new()
            .name(format!("starfishd-{node}"))
            .spawn(move || state.run(cmd_rx, up_rx))
            .expect("spawn daemon");
        Ok(Daemon {
            node,
            cmd_tx,
            shared_cfg,
            stats,
            trace_hub,
            store,
            events,
            postmortems,
            liveness,
        })
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Issue a configuration command (cast to all daemons).
    pub fn issue(&self, cmd: CfgCmd) -> Result<()> {
        self.cmd_tx
            .send(DaemonCmd::Issue(cmd))
            .map_err(|_| Error::closed("daemon gone"))
    }

    /// Snapshot of the replicated configuration as this daemon knows it.
    pub fn config(&self) -> ClusterConfig {
        self.shared_cfg.lock().clone()
    }

    /// Wait (real time) until `pred` holds on the replicated configuration.
    pub fn wait_config(
        &self,
        timeout: Duration,
        mut pred: impl FnMut(&ClusterConfig) -> bool,
    ) -> Result<ClusterConfig> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let cfg = self.config();
            if pred(&cfg) {
                return Ok(cfg);
            }
            if std::time::Instant::now() >= deadline {
                return Err(Error::timeout("wait_config"));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The telemetry aggregation hub this daemon converges with the rest of
    /// the cluster (fed by totally ordered `WireCast::Stats`).
    pub fn stats(&self) -> &StatsHub {
        &self.stats
    }

    /// The cluster's flight-recorder registry (the `TRACE` management
    /// commands read it).
    pub fn trace_hub(&self) -> &TraceHub {
        &self.trace_hub
    }

    /// The checkpoint store hub this daemon reads recovery lines from (the
    /// `CKPT` management commands report through it).
    pub fn ckpt_store(&self) -> &StoreHub {
        &self.store
    }

    /// This daemon's cluster event bus (sequenced over the ordered cast
    /// path; the `EVENTS` management commands read it).
    pub fn events(&self) -> &EventBus {
        &self.events
    }

    /// Publish a locally observed cluster event (e.g. an injected fault).
    /// Rides the ordered cast path, so all daemons sequence it identically.
    pub fn publish_event(&self, kind: BusEventKind) -> Result<()> {
        self.cmd_tx
            .send(DaemonCmd::Emit(kind))
            .map_err(|_| Error::closed("daemon gone"))
    }

    /// The postmortem bundle of the most recent completed recovery of
    /// `app`, if any (the `POSTMORTEM` management command reads it).
    pub fn postmortem(&self, app: AppId) -> Option<Postmortem> {
        self.postmortems.lock().get(&app).cloned()
    }

    /// Apps with a completed recovery bundle available.
    pub fn postmortem_apps(&self) -> Vec<AppId> {
        self.postmortems.lock().keys().copied().collect()
    }

    /// Failure-detector liveness: `(peer, time since last heard)` per peer
    /// (the `HEALTH` management command's heartbeat-age column).
    pub fn heartbeat_ages(&self) -> Vec<(NodeId, Duration)> {
        self.liveness.ages()
    }

    /// Ask the daemon to leave the group and exit.
    pub fn shutdown(&self) {
        let _ = self.cmd_tx.send(DaemonCmd::Shutdown);
    }
}

/// Directory recovery postmortem bundles are written to by the view
/// coordinator. `STARFISH_POSTMORTEM_DIR` overrides it (tests, CI).
pub fn postmortem_dir() -> PathBuf {
    match std::env::var_os("STARFISH_POSTMORTEM_DIR") {
        Some(d) => PathBuf::from(d),
        None => PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/postmortems"
        )),
    }
}

// ---------------------------------------------------------------------------

struct Loop {
    node: NodeId,
    arch_index: u8,
    trace: TraceSink,
    /// Shared infrastructure registry (see [`DaemonConfig::metrics`]).
    metrics: Option<Registry>,
    stats: StatsHub,
    ep: Endpoint,
    router: LwRouter,
    config: ClusterConfig,
    shared_cfg: Arc<Mutex<ClusterConfig>>,
    host: Box<dyn NodeHost>,
    store: StoreHub,
    clock: VClock,
    procs: HashMap<(AppId, Rank), Sender<ProcDown>>,
    up_tx: Sender<(AppId, Rank, ProcUp)>,
    /// Whether we have announced our own AddNode yet.
    announced: bool,
    /// Joiners start un-bootstrapped: they ignore configuration casts until
    /// the state-transfer snapshot arrives, buffering everything after their
    /// own `NeedState` marker (which fixes the snapshot's position in the
    /// total order).
    bootstrapped: bool,
    requested_state: bool,
    cast_buffer: Vec<CfgCmd>,
    /// Latest installed main-group view.
    view: Option<View>,
    /// Cluster event bus: all appends happen while applying the totally
    /// ordered stream (or are the stream), so every bootstrapped daemon
    /// assigns identical sequence numbers.
    events: EventBus,
    forensics: Forensics,
    postmortems: Arc<Mutex<BTreeMap<AppId, Postmortem>>>,
    /// Bus drop count already mirrored into the EVENTS_DROPPED metric.
    events_dropped_seen: u64,
    /// Local flight recorders, for the postmortem causal slice.
    trace_hub: TraceHub,
}

impl Loop {
    fn run(mut self, cmd_rx: Receiver<DaemonCmd>, up_rx: Receiver<(AppId, Rank, ProcUp)>) {
        loop {
            channel::select! {
                recv(self.ep.events()) -> ev => match ev {
                    Ok(GcEvent::View { view, vt }) => {
                        self.clock.merge(vt);
                        self.on_view(view);
                    }
                    Ok(GcEvent::Cast { from, payload, vt, .. }) => {
                        self.clock.merge(vt);
                        if let Ok(wc) = WireCast::decode_from_bytes(&payload) {
                            self.on_cast(from, wc, vt);
                        }
                    }
                    Ok(GcEvent::Suspected { node, silent_for, vt }) => {
                        self.clock.merge(vt);
                        // Local failure-detector observation: cast it so the
                        // suspicion (and its measured detection latency)
                        // lands on every daemon's bus in the total order.
                        let _ = self.cast(WireCast::Event {
                            origin: self.node,
                            vt: self.clock.now(),
                            kind: BusEventKind::NodeSuspected {
                                node,
                                silent_ns: silent_for.as_nanos() as u64,
                            },
                        });
                    }
                    Ok(GcEvent::P2p { from: _, payload, vt }) => {
                        self.clock.merge(vt);
                        if let Ok(msg) = P2pMsg::decode_from_bytes(&payload) {
                            self.on_p2p(msg);
                        }
                    }
                    Ok(GcEvent::Left) | Err(_) => return,
                },
                recv(up_rx) -> msg => match msg {
                    Ok((app, rank, up)) => self.on_proc_up(app, rank, up),
                    Err(_) => { /* all process senders gone; keep serving */ }
                },
                recv(cmd_rx) -> cmd => match cmd {
                    Ok(DaemonCmd::Issue(c)) => {
                        let _ = self.cast(WireCast::Cfg(c));
                    }
                    Ok(DaemonCmd::Emit(kind)) => {
                        let _ = self.cast(WireCast::Event {
                            origin: self.node,
                            vt: self.clock.now(),
                            kind,
                        });
                    }
                    Ok(DaemonCmd::Shutdown) | Err(_) => {
                        let _ = self.ep.leave();
                        // Keep draining until ensemble reports Left.
                        loop {
                            match self.ep.events().recv_timeout(Duration::from_secs(2)) {
                                Ok(GcEvent::Left) | Err(_) => return,
                                Ok(_) => continue,
                            }
                        }
                    }
                },
            }
        }
    }

    fn cast(&mut self, wc: WireCast) -> Result<()> {
        let payload = wc.encode_to_bytes();
        self.ep.cast(payload, self.clock.now())
    }

    fn publish_config(&self) {
        *self.shared_cfg.lock() = self.config.clone();
    }

    // -- totally ordered casts --------------------------------------------------

    fn on_p2p(&mut self, msg: P2pMsg) {
        match msg {
            P2pMsg::Relay(relay) => self.deliver_targeted(relay),
            P2pMsg::State(bytes) => {
                if self.bootstrapped {
                    return; // duplicate snapshot
                }
                let Ok(cfg) = ClusterConfig::decode_from_bytes(&bytes) else {
                    return;
                };
                self.config = cfg;
                self.bootstrapped = true;
                self.publish_config();
                // Replay the casts that arrived after our snapshot point.
                let buffered = std::mem::take(&mut self.cast_buffer);
                for cmd in buffered {
                    let vt = self.clock.now();
                    self.on_cast(self.node, WireCast::Cfg(cmd), vt);
                }
                self.sync_lw_groups();
                // Now announce ourselves. A restarted daemon finds its node
                // already in the snapshot but marked Dead — it must still
                // announce so the re-add flips it back to Up.
                if !self.announced {
                    self.announced = true;
                    // Up-but-unannounced (a bare admin ADDNODE raced our
                    // boot) still needs the self-announce: only an AddNode
                    // cast from the node itself marks it live.
                    let already_live = self
                        .config
                        .nodes
                        .get(&self.node)
                        .map(|e| e.live())
                        .unwrap_or(false);
                    if !already_live {
                        let _ = self.cast(WireCast::Cfg(CfgCmd::AddNode {
                            node: self.node,
                            arch_index: self.arch_index,
                        }));
                    }
                }
            }
        }
    }

    /// Apply one totally ordered cast. `vt` is this daemon's delivery
    /// timestamp, used to stamp derived bus events: event *content and
    /// order* agree across daemons (they come from the total order), while
    /// timestamps are each daemon's own observation.
    fn on_cast(&mut self, from: NodeId, wc: WireCast, vt: VirtualTime) {
        match wc {
            WireCast::Cfg(cmd) => {
                if !self.bootstrapped {
                    match &cmd {
                        CfgCmd::NeedState { node } if *node == self.node => {
                            // Our snapshot point: buffer everything after it.
                            self.requested_state = true;
                        }
                        _ if self.requested_state => self.cast_buffer.push(cmd),
                        _ => {} // pre-snapshot traffic: covered by the snapshot
                    }
                    return;
                }
                // A bootstrapped member answers state-transfer requests if it
                // coordinates the current view.
                if let CfgCmd::NeedState { node } = &cmd {
                    let is_coord = self
                        .view
                        .as_ref()
                        .map(|v| v.coordinator() == self.node)
                        .unwrap_or(false);
                    if is_coord && *node != self.node {
                        let snapshot = self.config.encode_to_bytes();
                        let _ = self.ep.send_to(
                            *node,
                            P2pMsg::State(snapshot).encode_to_bytes(),
                            self.clock.now(),
                        );
                    }
                    return;
                }
                // RestartApp: capture the dead set from the *pre-apply*
                // placement (the NodeDead casts precede the restart in the
                // total order, so the status map already knows them).
                let restart_dead = match &cmd {
                    CfgCmd::RestartApp { app, .. } => Some(self.dead_in_placement(*app)),
                    _ => None,
                };
                let effects = self.config.apply_from(from, &cmd);
                // Peer-memory checkpoint fragments hosted on a dead node are
                // gone; the replica store must stop counting them before any
                // recovery-line computation below this point of the total
                // order. Re-added nodes rejoin the placement ring (their old
                // fragments do not resurrect — see ReplicaStore::node_up).
                // Only a self-announced AddNode joins the ring: a bare admin
                // ADDNODE has no daemon to hold fragments.
                match &cmd {
                    CfgCmd::NodeDead { node } => self.store.node_down(*node),
                    CfgCmd::AddNode { node, .. } if *node == from => self.store.node_up(*node),
                    _ => {}
                }
                // NotifyView bookkeeping: when a node is recorded dead, ranks
                // of notify-policy apps on it are lost for good.
                if let CfgCmd::NodeDead { node } = &cmd {
                    for app in self.config.apps.values() {
                        if app.spec.policy == FtPolicy::NotifyView
                            && matches!(app.status, AppStatus::Running | AppStatus::Suspended)
                        {
                            for (r, n) in app.placement.iter().enumerate() {
                                if n == node {
                                    self.host.rank_lost(app.id, Rank(r as u32));
                                }
                            }
                        }
                    }
                }
                self.publish_config();
                self.derive_events(from, &cmd, restart_dead, &effects, vt);
                for eff in effects {
                    self.on_effect(eff);
                }
                self.sync_lw_groups();
            }
            WireCast::Lw(lw) => {
                if !self.bootstrapped {
                    return; // no local processes yet; state derives from config
                }
                let events = self.router.on_cast(from, &lw, self.clock.now());
                self.deliver_lw_events(events);
            }
            WireCast::Stats { scope, snap } => {
                // Cumulative snapshot: total order makes every hub converge
                // on the same latest-per-scope table.
                self.stats.update(&scope, snap);
                // Timestamped history ring: rates/deltas stay queryable
                // after the fact (`STATS HISTORY`).
                self.stats.record_history(vt);
            }
            WireCast::Event {
                origin,
                vt: event_vt,
                kind,
            } => {
                // Cast-carried event (a local observation some daemon
                // published): every bootstrapped bus appends it at this
                // stream point with the publisher's origin and timestamp.
                if self.bootstrapped {
                    self.record_event(origin, event_vt, kind);
                }
            }
        }
    }

    /// Nodes of `app`'s current placement that the replicated configuration
    /// has recorded dead (or forgotten entirely).
    fn dead_in_placement(&self, app: AppId) -> Vec<NodeId> {
        let Some(entry) = self.config.apps.get(&app) else {
            return Vec::new();
        };
        let mut dead: Vec<NodeId> = entry
            .placement
            .iter()
            .filter(|n| {
                self.config
                    .nodes
                    .get(n)
                    .map(|e| e.status == CfgNodeStatus::Dead)
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        dead.sort_unstable();
        dead.dedup();
        dead
    }

    /// Bus events derivable from the ordered configuration stream itself:
    /// appended directly (no extra casts) at the same stream point on every
    /// bootstrapped daemon, stamped with the cast's local delivery `vt`
    /// and the cast sender as origin — so all buses tell the same story
    /// in the same order (timestamps and seqs are per-daemon).
    fn derive_events(
        &mut self,
        from: NodeId,
        cmd: &CfgCmd,
        restart_dead: Option<Vec<NodeId>>,
        effects: &[CfgEffect],
        vt: VirtualTime,
    ) {
        match cmd {
            // Only a self-announced AddNode proves a live daemon (the
            // phantom-node rule); a bare admin registration is not "up".
            CfgCmd::AddNode { node, .. } if *node == from => {
                self.record_event(from, vt, BusEventKind::NodeUp { node: *node });
            }
            CfgCmd::NodeDead { node } => {
                self.record_event(from, vt, BusEventKind::NodeDead { node: *node });
            }
            CfgCmd::TriggerCkpt { app } => {
                self.record_event(from, vt, BusEventKind::CkptRoundBegin { app: *app });
            }
            CfgCmd::RestartApp { app, line } => {
                let dead = restart_dead.unwrap_or_default();
                self.record_event(from, vt, BusEventKind::RecoveryBegin { app: *app, dead });
                let epoch = self
                    .config
                    .apps
                    .get(app)
                    .map(|a| a.epoch)
                    .unwrap_or_default();
                self.record_event(
                    from,
                    vt,
                    BusEventKind::RecoveryRestore {
                        app: *app,
                        epoch,
                        line: line.clone(),
                    },
                );
                let replaced_n = effects
                    .iter()
                    .find_map(|e| match e {
                        CfgEffect::AppRestarted {
                            app: a, replaced, ..
                        } if a == app => Some(replaced.len()),
                        _ => None,
                    })
                    .unwrap_or(0);
                self.forensics.expect_respawns(*app, replaced_n);
                if replaced_n == 0 {
                    // Pure rollback, no replacement ranks: complete at once.
                    self.record_event(
                        from,
                        vt,
                        BusEventKind::RecoveryComplete { app: *app, epoch },
                    );
                    self.finalize_postmortem(*app, vt);
                }
            }
            _ => {}
        }
    }

    /// Append a bus event at the current point of the ordered stream and
    /// run the forensics state machine over it. When the event completes a
    /// recovery, synthesizes the `recovery-complete` event (every daemon
    /// does so at the same stream point) and finalizes the bundle.
    fn record_event(&mut self, origin: NodeId, vt: VirtualTime, kind: BusEventKind) {
        let Some(seq) = self.events.publish(origin, vt, kind.clone()) else {
            return;
        };
        if let Some(m) = &self.metrics {
            m.inc(metric::EVENTS_PUBLISHED);
            let dropped = self.events.dropped();
            if dropped > self.events_dropped_seen {
                m.add(metric::EVENTS_DROPPED, dropped - self.events_dropped_seen);
                self.events_dropped_seen = dropped;
            }
        }
        let ev = ClusterEvent {
            seq,
            vt,
            origin,
            kind,
        };
        let stats = self.stats.clone();
        let completed = self.forensics.observe(&ev, move || stats.merged());
        if let Some(app) = completed {
            let epoch = self
                .config
                .apps
                .get(&app)
                .map(|a| a.epoch)
                .unwrap_or_default();
            self.record_event(origin, vt, BusEventKind::RecoveryComplete { app, epoch });
            self.finalize_postmortem(app, vt);
        }
    }

    /// Assemble the recovery bundle of `app`, store it for `POSTMORTEM`,
    /// and (coordinator only) write it to [`postmortem_dir`].
    fn finalize_postmortem(&mut self, app: AppId, complete_vt: VirtualTime) {
        let start_vt = self.forensics.window_start_vt(app).unwrap_or(0);
        let window: Vec<ClusterEvent> = self
            .events
            .snapshot()
            .into_iter()
            .filter(|e| e.vt.as_nanos() >= start_vt && e.vt.as_nanos() <= complete_vt.as_nanos())
            .collect();
        let name = format!("{app}");
        let backend = self
            .config
            .apps
            .get(&app)
            .map(|a| a.spec.backend.to_string())
            .unwrap_or_else(|| "disk".into());
        let trace = self.trace_slice(start_vt, complete_vt.as_nanos());
        let stats_after = self.stats.merged();
        let Some(pm) = self.forensics.finalize(
            app,
            crate::forensics::BundleInputs {
                app_name: &name,
                store_backend: &backend,
                complete_vt_ns: complete_vt.as_nanos(),
                events: window,
                stats_after: &stats_after,
                trace,
            },
        ) else {
            return;
        };
        let is_coord = self
            .view
            .as_ref()
            .map(|v| v.coordinator() == self.node)
            .unwrap_or(false);
        if is_coord {
            let dir = postmortem_dir();
            if std::fs::create_dir_all(&dir).is_ok() {
                let path = dir.join(format!("{}-e{}.json", name, pm.epoch));
                let _ = std::fs::write(path, pm.to_json());
            }
        }
        self.postmortems.lock().insert(app, pm);
    }

    /// Flight-recorder summaries inside the recovery window, for the
    /// bundle's causal slice. Bounded; local to this daemon's recorders.
    fn trace_slice(&self, from_ns: u64, to_ns: u64) -> Vec<String> {
        const MAX: usize = 256;
        let mut out = Vec::new();
        for pt in self.trace_hub.dump_all() {
            for ev in &pt.events {
                let t = ev.vt.as_nanos();
                if t >= from_ns && t <= to_ns {
                    out.push(format!("{}: {}", pt.scope, ev.summary()));
                    if out.len() >= MAX {
                        return out;
                    }
                }
            }
        }
        out
    }

    fn on_effect(&mut self, eff: CfgEffect) {
        match eff {
            CfgEffect::AppSubmitted(id) => {
                let entry = self.config.apps[&id].clone();
                if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                    eprintln!(
                        "[daemon {}] AppSubmitted {} placement={:?}",
                        self.node, id, entry.placement
                    );
                }
                self.store
                    .set_backend(id, entry.spec.backend, entry.placement.clone());
                self.host.placement_update(&entry);
                for (r, n) in entry.placement.iter().enumerate() {
                    if *n == self.node {
                        self.spawn_proc(&entry, Rank(r as u32), 0);
                    }
                }
            }
            CfgEffect::AppRestarted {
                app,
                epoch: _,
                line,
                replaced,
            } => {
                let entry = self.config.apps[&app].clone();
                self.store.update_placement(app, entry.placement.clone());
                self.host.placement_update(&entry);
                // Restart replaced ranks that land on this node; if a
                // replaced rank's *previous* incarnation ran here (a
                // migration, not a crash), kill it first.
                for (rank, node) in &replaced {
                    if *node != self.node {
                        if let Some(tx) = self.procs.remove(&(app, *rank)) {
                            self.procs_delta(-1);
                            self.trace.record(
                                MsgClass::Configuration,
                                ActorKind::Daemon,
                                ActorKind::AppProcess,
                                "local-tcp",
                                0,
                            );
                            let _ = tx.send(ProcDown::Kill {
                                vt: self.clock.now(),
                            });
                        }
                    }
                }
                for (rank, node) in &replaced {
                    if *node == self.node {
                        let from = line.get(rank.index()).copied().unwrap_or(0);
                        self.spawn_proc(&entry, *rank, from);
                        // Observation, not derivation: only the hosting
                        // daemon knows the spawn happened, so it casts the
                        // respawn event into the total order.
                        let _ = self.cast(WireCast::Event {
                            origin: self.node,
                            vt: self.clock.now(),
                            kind: BusEventKind::RecoveryRespawn {
                                app,
                                rank: *rank,
                                node: *node,
                            },
                        });
                    }
                }
                // Roll back the survivors hosted here. A survivor whose
                // process already ran to completion has no one listening
                // for the rollback — and the restarted rank's coordinated
                // rounds and collectives span *every* rank — so finished
                // survivors are respawned from the line instead.
                let replaced_ranks: Vec<Rank> = replaced.iter().map(|(r, _)| *r).collect();
                for (r, n) in entry.placement.iter().enumerate() {
                    let rank = Rank(r as u32);
                    if *n == self.node && !replaced_ranks.contains(&rank) {
                        let idx = line.get(r).copied().unwrap_or(0);
                        if self.procs.contains_key(&(app, rank)) {
                            self.send_down(
                                app,
                                rank,
                                ProcDown::Rollback {
                                    index: idx,
                                    epoch: entry.epoch,
                                    vt: self.clock.now(),
                                },
                                MsgClass::Configuration,
                            );
                        } else {
                            self.spawn_proc(&entry, rank, idx);
                        }
                    }
                }
            }
            CfgEffect::AppKilled(app) => {
                let local: Vec<(AppId, Rank)> = self
                    .procs
                    .keys()
                    .filter(|(a, _)| *a == app)
                    .copied()
                    .collect();
                for key in local {
                    self.send_down(
                        key.0,
                        key.1,
                        ProcDown::Kill {
                            vt: self.clock.now(),
                        },
                        MsgClass::Configuration,
                    );
                    if self.procs.remove(&key).is_some() {
                        self.procs_delta(-1);
                    }
                }
            }
            CfgEffect::AppSuspended(app) => {
                self.down_all(app, |vt| ProcDown::Suspend { vt }, MsgClass::Configuration)
            }
            CfgEffect::AppResumed(app) => {
                self.down_all(app, |vt| ProcDown::Resume { vt }, MsgClass::Configuration)
            }
            CfgEffect::AppDone(app) => {
                // Images are retained after completion (postmortem restore /
                // migration of finished jobs); storage is reclaimed when the
                // application is deleted.
                let before = self.procs.len();
                self.procs.retain(|(a, _), _| *a != app);
                self.procs_delta(before as i64 - self.procs.len() as i64);
            }
            CfgEffect::CheckpointRequested(app) => {
                // The round coordinator is the lowest rank; its hosting
                // daemon forwards the trigger.
                if let Some(entry) = self.config.apps.get(&app) {
                    if entry.placement.first() == Some(&self.node) {
                        self.send_down(
                            app,
                            Rank(0),
                            ProcDown::StartCheckpoint {
                                vt: self.clock.now(),
                            },
                            MsgClass::Configuration,
                        );
                    }
                }
            }
            CfgEffect::ParamSet(key) => {
                if key == "stats_history" {
                    if let Some(n) = self
                        .config
                        .params
                        .get("stats_history")
                        .and_then(|v| v.parse::<usize>().ok())
                    {
                        self.stats.set_retention(n);
                    }
                }
            }
            CfgEffect::NodeChanged(_) => {}
        }
    }

    fn spawn_proc(&mut self, entry: &AppEntry, rank: Rank, restore_from: u64) {
        if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
            eprintln!(
                "[daemon {}] spawn {}.{} restore_from={restore_from} (replacing_entry={})",
                self.node,
                entry.id,
                rank,
                self.procs.contains_key(&(entry.id, rank))
            );
        }
        let (down_tx, down_rx) = channel::unbounded();
        if self.procs.insert((entry.id, rank), down_tx).is_none() {
            self.procs_delta(1);
        }
        self.host.spawn(ProcSpec {
            app: entry.id,
            rank,
            node: self.node,
            epoch: entry.epoch,
            entry: entry.clone(),
            restore_from,
            down_rx,
            up_tx: self.up_tx.clone(),
            spawn_vt: self.clock.now(),
        });
    }

    /// Keep the cluster-wide `procs.running` gauge in step with this
    /// daemon's local process table (additive deltas, so daemons sharing a
    /// registry in-process still sum correctly).
    fn procs_delta(&self, delta: i64) {
        if delta != 0 {
            if let Some(m) = &self.metrics {
                m.gauge_add(metric::PROCS_RUNNING, delta);
            }
        }
    }

    fn send_down(&self, app: AppId, rank: Rank, msg: ProcDown, class: MsgClass) {
        if let Some(tx) = self.procs.get(&(app, rank)) {
            self.trace.record(
                class,
                ActorKind::Daemon,
                ActorKind::AppProcess,
                "local-tcp",
                0,
            );
            let _ = tx.send(msg);
        }
    }

    fn down_all(&mut self, app: AppId, make: impl Fn(VirtualTime) -> ProcDown, class: MsgClass) {
        let keys: Vec<(AppId, Rank)> = self
            .procs
            .keys()
            .filter(|(a, _)| *a == app)
            .copied()
            .collect();
        for (a, r) in keys {
            self.send_down(a, r, make(self.clock.now()), class);
        }
    }

    // -- lightweight groups -------------------------------------------------------

    /// Derive the lightweight groups from the replicated configuration. All
    /// daemons run this at the same point of the total order, so the
    /// synthesized operations are identical everywhere.
    fn sync_lw_groups(&mut self) {
        let vt = self.clock.now();
        let mut events = Vec::new();
        // Desired groups.
        let desired: Vec<(GroupId, Vec<NodeId>)> = self
            .config
            .apps
            .values()
            .filter(|a| matches!(a.status, AppStatus::Running | AppStatus::Suspended))
            .map(|a| {
                let mut nodes = a.placement.clone();
                nodes.sort_unstable();
                nodes.dedup();
                (GroupId(a.id.0), nodes)
            })
            .collect();
        for (gid, nodes) in &desired {
            match self.router.members(*gid) {
                None => {
                    events.extend(self.router.on_cast(
                        self.node,
                        &LwMsg::Create {
                            gid: *gid,
                            members: nodes.clone(),
                        },
                        vt,
                    ));
                }
                Some(current) => {
                    for n in nodes {
                        if !current.contains(n) {
                            events.extend(self.router.on_cast(
                                self.node,
                                &LwMsg::Join {
                                    gid: *gid,
                                    node: *n,
                                },
                                vt,
                            ));
                        }
                    }
                    for n in &current {
                        if !nodes.contains(n) {
                            events.extend(self.router.on_cast(
                                self.node,
                                &LwMsg::Leave {
                                    gid: *gid,
                                    node: *n,
                                },
                                vt,
                            ));
                        }
                    }
                }
            }
        }
        // Destroy groups of dead apps.
        let live: Vec<GroupId> = desired.iter().map(|(g, _)| *g).collect();
        let stale: Vec<GroupId> = self
            .router
            .groups_spanning(self.node)
            .into_iter()
            .chain(self.router.local_groups())
            .filter(|g| !live.contains(g))
            .collect();
        for gid in stale {
            events.extend(self.router.on_cast(self.node, &LwMsg::Destroy { gid }, vt));
        }
        self.deliver_lw_events(events);
    }

    fn deliver_lw_events(&mut self, events: Vec<LwEvent>) {
        for ev in events {
            match ev {
                LwEvent::View { view, vt } => {
                    let app = AppId(view.gid.0);
                    let keys: Vec<(AppId, Rank)> = self
                        .procs
                        .keys()
                        .filter(|(a, _)| *a == app)
                        .copied()
                        .collect();
                    for (a, r) in keys {
                        self.send_down(
                            a,
                            r,
                            ProcDown::LwView {
                                view: view.clone(),
                                vt,
                            },
                            MsgClass::LwMembership,
                        );
                    }
                }
                LwEvent::Mcast {
                    gid: _,
                    from: _,
                    payload,
                    vt,
                } => {
                    if let Ok(relay) = AppRelay::decode_from_bytes(&payload) {
                        match relay.to {
                            Some(to) => self.deliver_targeted_at(relay, to, vt),
                            None => {
                                let keys: Vec<(AppId, Rank)> = self
                                    .procs
                                    .keys()
                                    .filter(|(a, r)| *a == relay.app && *r != relay.from)
                                    .copied()
                                    .collect();
                                for (a, r) in keys {
                                    self.send_down(
                                        a,
                                        r,
                                        ProcDown::Relay {
                                            kind: relay.kind,
                                            from: relay.from,
                                            body: relay.body.clone(),
                                            vt,
                                        },
                                        match relay.kind {
                                            RelayKind::Coordination => MsgClass::Coordination,
                                            RelayKind::CheckpointRestart => {
                                                MsgClass::CheckpointRestart
                                            }
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                LwEvent::Destroyed { .. } => {}
            }
        }
    }

    fn deliver_targeted(&mut self, relay: AppRelay) {
        if let Some(to) = relay.to {
            let vt = self.clock.now();
            self.deliver_targeted_at(relay, to, vt);
        }
    }

    fn deliver_targeted_at(&mut self, relay: AppRelay, to: Rank, vt: VirtualTime) {
        self.send_down(
            relay.app,
            to,
            ProcDown::Relay {
                kind: relay.kind,
                from: relay.from,
                body: relay.body,
                vt,
            },
            match relay.kind {
                RelayKind::Coordination => MsgClass::Coordination,
                RelayKind::CheckpointRestart => MsgClass::CheckpointRestart,
            },
        );
    }

    // -- membership ----------------------------------------------------------------

    fn on_view(&mut self, view: View) {
        if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
            eprintln!(
                "[daemon {}] view {:?} (coord {})",
                self.node,
                view,
                view.coordinator()
            );
        }
        self.view = Some(view.clone());
        if view.contains(self.node) {
            if self.bootstrapped {
                // Founder (or already synced): announce once. A restarted
                // daemon finds its node already in the replicated config
                // but marked Dead — it must still announce so the re-add
                // flips it back to Up.
                if !self.announced {
                    self.announced = true;
                    let already_live = self
                        .config
                        .nodes
                        .get(&self.node)
                        .map(|e| e.live())
                        .unwrap_or(false);
                    if !already_live {
                        let _ = self.cast(WireCast::Cfg(CfgCmd::AddNode {
                            node: self.node,
                            arch_index: self.arch_index,
                        }));
                    }
                }
            } else if !self.requested_state {
                // Joiner: mark our snapshot point in the total order.
                let _ = self.cast(WireCast::Cfg(CfgCmd::NeedState { node: self.node }));
                // `requested_state` flips when our own marker is delivered.
            }
        }
        // Lightweight views for groups spanning departed nodes.
        let events = self.router.on_main_view(&view, self.clock.now());
        self.deliver_lw_events(events);

        // The view coordinator drives the failure response; everyone else
        // just applies the resulting casts.
        if !self.bootstrapped || view.coordinator() != self.node {
            return;
        }
        // One view-change event per installed view, cast by the coordinator
        // so it lands in the total order ahead of any NodeDead response.
        let _ = self.cast(WireCast::Event {
            origin: self.node,
            vt: self.clock.now(),
            kind: BusEventKind::ViewChange {
                view: view.id.raw(),
                members: view.members.clone(),
            },
        });
        let dead: Vec<NodeId> = self
            .config
            .nodes
            .iter()
            .filter(|(n, e)| {
                matches!(e.status, CfgNodeStatus::Up | CfgNodeStatus::Disabled)
                    && !view.contains(**n)
            })
            .map(|(n, _)| *n)
            .collect();
        if dead.is_empty() {
            return;
        }
        if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
            eprintln!("[daemon {}] coordinator response: dead={dead:?}", self.node);
        }
        for n in &dead {
            let _ = self.cast(WireCast::Cfg(CfgCmd::NodeDead { node: *n }));
        }
        // Policy response per affected application. Note: we compute from
        // the *current* local config (the casts above will be applied by
        // everyone, including us, in order).
        let apps: Vec<AppEntry> = self
            .config
            .apps
            .values()
            .filter(|a| matches!(a.status, AppStatus::Running | AppStatus::Suspended))
            .filter(|a| a.placement.iter().any(|n| dead.contains(n)))
            .cloned()
            .collect();
        for app in apps {
            match app.spec.policy {
                FtPolicy::Kill => {
                    let _ = self.cast(WireCast::Cfg(CfgCmd::Delete { app: app.id }));
                }
                FtPolicy::NotifyView => {
                    // Nothing to cast: the lightweight view (delivered above
                    // on every daemon) is the application's signal.
                }
                FtPolicy::Restart => {
                    let line = self.compute_line(&app, &dead);
                    let _ = self.cast(WireCast::Cfg(CfgCmd::RestartApp { app: app.id, line }));
                }
            }
        }
    }

    /// Recovery line for a restart decision (carried in the cast so all
    /// daemons — whose store reads might race — agree by construction).
    fn compute_line(&self, app: &AppEntry, dead: &[NodeId]) -> Vec<u64> {
        let ranks: Vec<Rank> = (0..app.spec.size).map(Rank).collect();
        match app.spec.proto {
            CkptProto::StopAndSync | CkptProto::ChandyLamport => {
                let idx = self.store.latest_common_index(app.id, &ranks);
                vec![idx; ranks.len()]
            }
            CkptProto::Independent => {
                let latest: std::collections::BTreeMap<Rank, u64> = ranks
                    .iter()
                    .map(|r| (*r, self.store.latest_index(app.id, *r)))
                    .collect();
                let deps = self.store.deps(app.id);
                let failed: Vec<Rank> = app
                    .placement
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| dead.contains(n))
                    .map(|(r, _)| Rank(r as u32))
                    .collect();
                let rl = recovery::recovery_line(&latest, &deps, &failed);
                ranks.iter().map(|r| rl.index_of(*r)).collect()
            }
        }
    }

    // -- process messages -------------------------------------------------------------

    fn on_proc_up(&mut self, app: AppId, rank: Rank, up: ProcUp) {
        match up {
            ProcUp::Cast { kind, body, vt } => {
                self.clock.merge(vt);
                self.trace.record(
                    match kind {
                        RelayKind::Coordination => MsgClass::Coordination,
                        RelayKind::CheckpointRestart => MsgClass::CheckpointRestart,
                    },
                    ActorKind::AppProcess,
                    ActorKind::Daemon,
                    "via-daemon",
                    body.len(),
                );
                let relay = AppRelay {
                    app,
                    kind,
                    from: rank,
                    to: None,
                    body,
                };
                let _ = self.cast(WireCast::Lw(LwMsg::Mcast {
                    gid: GroupId(app.0),
                    payload: relay.encode_to_bytes(),
                }));
            }
            ProcUp::SendTo { kind, to, body, vt } => {
                self.clock.merge(vt);
                let relay = AppRelay {
                    app,
                    kind,
                    from: rank,
                    to: Some(to),
                    body,
                };
                let Some(entry) = self.config.apps.get(&app) else {
                    return;
                };
                let Some(target_node) = entry.placement.get(to.index()).copied() else {
                    return;
                };
                if target_node == self.node {
                    self.deliver_targeted(relay);
                } else {
                    let _ = self.ep.send_to(
                        target_node,
                        P2pMsg::Relay(relay).encode_to_bytes(),
                        self.clock.now(),
                    );
                }
            }
            ProcUp::Done { vt } => {
                self.clock.merge(vt);
                if std::env::var_os("STARFISH_RT_DEBUG").is_some() {
                    eprintln!("[daemon {}] Done from {app}.{rank}", self.node);
                }
                if self.procs.remove(&(app, rank)).is_some() {
                    self.procs_delta(-1);
                }
                let _ = self.cast(WireCast::Cfg(CfgCmd::RankDone { app, rank }));
            }
            ProcUp::CkptCommitted { index, vt } => {
                self.clock.merge(vt);
                let _ = self.cast(WireCast::Event {
                    origin: self.node,
                    vt: self.clock.now(),
                    kind: BusEventKind::CkptCommit { app, rank, index },
                });
                if index > 1 {
                    self.store.prune_below(app, index);
                }
            }
            ProcUp::Stats { snap, vt } => {
                self.clock.merge(vt);
                let scope = format!("{app}.r{}", rank.0);
                let _ = self.cast(WireCast::Stats { scope, snap });
                // Piggyback the shared infrastructure registry so `STATS`
                // reflects fabric/trace/ensemble activity too. The scope is
                // a single well-known key, so re-casts replace, not double.
                if let Some(m) = &self.metrics {
                    let _ = self.cast(WireCast::Stats {
                        scope: "cluster".to_string(),
                        snap: m.snapshot(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppSpec, LevelKind};
    use crate::host::NullHost;
    use starfish_checkpoint::backend::CkptBackend;
    use starfish_checkpoint::store::CkptStore;
    use starfish_vni::{Ideal, LayerCosts};

    type SpawnLog = Arc<Mutex<Vec<(AppId, Rank, NodeId, u64)>>>;

    struct RecordingHost {
        spawns: SpawnLog,
        lost: Arc<Mutex<Vec<(AppId, Rank)>>>,
    }

    impl NodeHost for RecordingHost {
        fn placement_update(&self, _entry: &AppEntry) {}
        fn spawn(&self, spec: ProcSpec) {
            self.spawns
                .lock()
                .push((spec.app, spec.rank, spec.node, spec.restore_from));
        }
        fn rank_lost(&self, app: AppId, rank: Rank) {
            self.lost.lock().push((app, rank));
        }
    }

    fn fabric(n: u32) -> Fabric {
        let f = Fabric::new(Box::new(Ideal), LayerCosts::zero());
        for i in 0..n {
            f.add_node(NodeId(i));
        }
        f
    }

    fn spec(name: &str, size: u32, policy: FtPolicy) -> AppSpec {
        AppSpec {
            name: name.into(),
            size,
            policy,
            level: LevelKind::Vm,
            proto: CkptProto::StopAndSync,
            backend: CkptBackend::Disk,
            owner: "t".into(),
            token: 7,
        }
    }

    fn start_cluster(f: &Fabric, n: u32) -> (Vec<Daemon>, Vec<SpawnLog>) {
        let mut daemons = Vec::new();
        let mut spawns = Vec::new();
        for i in 0..n {
            let rec = Arc::new(Mutex::new(Vec::new()));
            let host = RecordingHost {
                spawns: rec.clone(),
                lost: Arc::new(Mutex::new(Vec::new())),
            };
            spawns.push(rec);
            let d = Daemon::start(
                f,
                DaemonConfig::new(NodeId(i)),
                if i == 0 { None } else { Some(NodeId(0)) },
                Box::new(host),
                CkptStore::new(),
            )
            .unwrap();
            // Wait until this daemon appears in the replicated config so
            // subsequent placements use every node.
            d.wait_config(Duration::from_secs(10), |c| {
                c.up_nodes().len() == (i + 1) as usize
            })
            .unwrap();
            daemons.push(d);
        }
        // All daemons converge on the full node set.
        for d in &daemons {
            d.wait_config(Duration::from_secs(10), |c| {
                c.up_nodes().len() == n as usize
            })
            .unwrap();
        }
        (daemons, spawns)
    }

    #[test]
    fn daemons_replicate_config_and_spawn() {
        let f = fabric(3);
        let (daemons, spawns) = start_cluster(&f, 3);
        daemons[1]
            .issue(CfgCmd::Submit {
                spec: spec("app", 3, FtPolicy::Restart),
            })
            .unwrap();
        // Every daemon sees the app.
        for d in &daemons {
            let cfg = d
                .wait_config(Duration::from_secs(10), |c| !c.apps.is_empty())
                .unwrap();
            let app = cfg.apps.values().next().unwrap();
            assert_eq!(app.spec.size, 3);
            assert_eq!(app.placement.len(), 3);
        }
        // Each node spawned exactly the ranks placed on it.
        let cfg = daemons[0].config();
        let app = cfg.apps.values().next().unwrap();
        std::thread::sleep(Duration::from_millis(100));
        for (i, rec) in spawns.iter().enumerate() {
            let got = rec.lock().clone();
            let expect: Vec<Rank> = app
                .placement
                .iter()
                .enumerate()
                .filter(|(_, n)| **n == NodeId(i as u32))
                .map(|(r, _)| Rank(r as u32))
                .collect();
            let got_ranks: Vec<Rank> = got.iter().map(|(_, r, _, _)| *r).collect();
            assert_eq!(got_ranks, expect, "node {i} spawned wrong ranks");
            assert!(got.iter().all(|(_, _, _, from)| *from == 0));
        }
    }

    #[test]
    fn node_crash_triggers_restart_decision() {
        let f = fabric(3);
        let (daemons, spawns) = start_cluster(&f, 3);
        daemons[0]
            .issue(CfgCmd::Submit {
                spec: spec("app", 3, FtPolicy::Restart),
            })
            .unwrap();
        daemons[0]
            .wait_config(Duration::from_secs(10), |c| !c.apps.is_empty())
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let app = daemons[0].config().apps.values().next().unwrap().clone();
        // Crash the node hosting rank 1.
        let dead = app.placement[1];
        f.crash_node(dead);
        // Surviving daemons converge: app restarted with bumped epoch and
        // rank 1 re-placed on a surviving node.
        for d in daemons.iter().filter(|d| d.node() != dead) {
            let cfg = d
                .wait_config(Duration::from_secs(10), |c| {
                    c.apps
                        .values()
                        .next()
                        .map(|a| a.epoch.0 == 1)
                        .unwrap_or(false)
                })
                .unwrap();
            let a = cfg.apps.values().next().unwrap();
            assert_ne!(a.placement[1], dead);
            assert_eq!(
                cfg.nodes[&dead].status,
                CfgNodeStatus::Dead,
                "dead node recorded"
            );
        }
        // Someone spawned the replacement with restore_from 0 (no
        // checkpoints were taken).
        std::thread::sleep(Duration::from_millis(100));
        let restarted: Vec<(AppId, Rank, NodeId, u64)> = spawns
            .iter()
            .flat_map(|r| r.lock().clone())
            .filter(|(_, r, _, _)| *r == Rank(1))
            .collect();
        assert!(
            restarted.iter().any(|(_, _, n, _)| *n != dead),
            "rank 1 respawned on a survivor: {restarted:?}"
        );
    }

    #[test]
    fn recovery_publishes_event_sequence_and_postmortem() {
        let f = fabric(3);
        let (daemons, _spawns) = start_cluster(&f, 3);
        daemons[0]
            .issue(CfgCmd::Submit {
                spec: spec("app", 3, FtPolicy::Restart),
            })
            .unwrap();
        daemons[0]
            .wait_config(Duration::from_secs(10), |c| !c.apps.is_empty())
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let entry = daemons[0].config().apps.values().next().unwrap().clone();
        let app = entry.id;
        let dead = entry.placement[1];
        f.crash_node(dead);
        // Every survivor assembles the same bundle for the recovered app.
        let survivors: Vec<&Daemon> = daemons.iter().filter(|d| d.node() != dead).collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let bundles: Vec<Postmortem> = survivors
            .iter()
            .map(|d| loop {
                if let Some(pm) = d.postmortem(app) {
                    break pm;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "daemon {} produced no postmortem",
                    d.node()
                );
                std::thread::sleep(Duration::from_millis(20));
            })
            .collect();
        let pm = &bundles[0];
        assert_eq!(pm.epoch, 1);
        assert_eq!(pm.store_backend, "disk");
        // No checkpoint committed: the recovery line is all-zeros.
        assert_eq!(pm.rollback.line, vec![0, 0, 0]);
        // The bundle's event slice tells the recovery story in order.
        let labels: Vec<&str> = pm.events.iter().map(|e| e.kind.label()).collect();
        for need in [
            "node-dead",
            "recovery-begin",
            "recovery-restore",
            "recovery-respawn",
            "recovery-complete",
        ] {
            assert!(labels.contains(&need), "missing {need} in {labels:?}");
        }
        let pos = |l: &str| labels.iter().position(|x| *x == l).unwrap();
        assert!(pos("node-dead") < pos("recovery-begin"));
        assert!(pos("recovery-begin") < pos("recovery-restore"));
        assert!(pos("recovery-restore") < pos("recovery-respawn"));
        assert!(pos("recovery-respawn") < pos("recovery-complete"));
        // Detection phase exists (fabric crash = fail-stop detector here).
        assert!(pm.complete_vt_ns >= pm.begin_vt_ns);
        // Every survivor tells the same story: the event *content and order*
        // come from the totally ordered stream, so they must agree.
        // Per-daemon observables legitimately differ — absolute sequence
        // numbers (joiners bootstrap later, so their buses start shorter)
        // and virtual timestamps (delivery vt is the receiver's own clock).
        let norm = |pm: &Postmortem| {
            let evs: Vec<String> = pm
                .events
                .iter()
                .map(|e| format!("{} {}", e.origin, e.kind.label()))
                .collect();
            (pm.epoch, pm.trigger.clone(), pm.rollback.clone(), evs)
        };
        for other in &bundles[1..] {
            assert_eq!(norm(pm), norm(other));
        }
        // The live bus carries the same story a subscriber would stream.
        let bus_labels: Vec<String> = survivors[0]
            .events()
            .snapshot()
            .iter()
            .map(|e| e.kind.label().to_string())
            .collect();
        for need in ["node-up", "node-dead", "recovery-complete"] {
            assert!(
                bus_labels.iter().any(|l| l == need),
                "bus missing {need}: {bus_labels:?}"
            );
        }
    }

    #[test]
    fn kill_policy_deletes_app_on_crash() {
        let f = fabric(2);
        let (daemons, _spawns) = start_cluster(&f, 2);
        daemons[0]
            .issue(CfgCmd::Submit {
                spec: spec("fragile", 2, FtPolicy::Kill),
            })
            .unwrap();
        daemons[0]
            .wait_config(Duration::from_secs(10), |c| !c.apps.is_empty())
            .unwrap();
        f.crash_node(NodeId(1));
        let cfg = daemons[0]
            .wait_config(Duration::from_secs(10), |c| {
                c.apps
                    .values()
                    .next()
                    .map(|a| a.status == AppStatus::Killed)
                    .unwrap_or(false)
            })
            .unwrap();
        assert_eq!(cfg.apps.values().next().unwrap().status, AppStatus::Killed);
    }

    #[test]
    fn suspend_resume_roundtrip_in_config() {
        let f = fabric(1);
        let d = Daemon::start(
            &f,
            DaemonConfig::new(NodeId(0)),
            None,
            Box::new(NullHost),
            CkptStore::new(),
        )
        .unwrap();
        d.wait_config(Duration::from_secs(5), |c| c.up_nodes().len() == 1)
            .unwrap();
        d.issue(CfgCmd::Submit {
            spec: spec("s", 1, FtPolicy::Kill),
        })
        .unwrap();
        let cfg = d
            .wait_config(Duration::from_secs(5), |c| !c.apps.is_empty())
            .unwrap();
        let id = cfg.apps.values().next().unwrap().id;
        d.issue(CfgCmd::Suspend { app: id }).unwrap();
        d.wait_config(Duration::from_secs(5), |c| {
            c.apps[&id].status == AppStatus::Suspended
        })
        .unwrap();
        d.issue(CfgCmd::ResumeApp { app: id }).unwrap();
        d.wait_config(Duration::from_secs(5), |c| {
            c.apps[&id].status == AppStatus::Running
        })
        .unwrap();
    }

    #[test]
    fn daemon_shutdown_leaves_group() {
        let f = fabric(2);
        let (daemons, _) = start_cluster(&f, 2);
        daemons[1].shutdown();
        // Daemon 0 keeps running; the group shrinks without marking node 1
        // dead (graceful leave is not a crash).
        std::thread::sleep(Duration::from_millis(300));
        let cfg = daemons[0].config();
        // Node 1 is still listed (graceful daemon exit does not remove the
        // node from the configuration; that is the admin's REMOVENODE).
        assert!(cfg.nodes.contains_key(&NodeId(1)));
    }
}
