//! Pure per-flow state machines of the MPI reliability layer.
//!
//! [`FlowTx`] (sender → one peer) and [`FlowRx`] (one peer incarnation →
//! this endpoint) hold *all* sequencing decisions of the reliable channel:
//! sequence assignment, the retransmission window with cumulative
//! acknowledgement, duplicate discard, out-of-order parking with gap NACKs,
//! and tail-loss detection against a flushed high-water mark. They are pure
//! `state × event → verdict` machines over an opaque payload type `P`: the
//! endpoint instantiates them with real framed packets, and the `verify`
//! crate's model checker instantiates them with one-byte payloads and
//! exhaustively enumerates loss/reorder/duplication schedules against the
//! exactly-once and FIFO oracles.
//!
//! Invariants encoded here (and model-checked in `crates/verify`):
//! * sequences are assigned contiguously from 1 (0 marks unmanaged traffic);
//! * a payload is delivered exactly once, in sequence order;
//! * everything below a cumulative ack is forgotten, everything above is
//!   retransmittable;
//! * a NACK never names a sequence that is already parked or delivered.

use std::collections::{BTreeMap, VecDeque};

/// Most missing sequences named by a single NACK. Bounds control-message
/// size; the remainder is recovered by the next ping/flush round.
pub const NACK_BATCH: usize = 64;

/// Sender-side state of one reliable flow.
#[derive(Debug, Clone)]
pub struct FlowTx<P> {
    /// Next sequence number to assign (sequences start at 1; 0 = unmanaged).
    next_seq: u64,
    /// Sent payloads retained for retransmission, oldest first.
    buf: VecDeque<(u64, P)>,
    /// Retention bound: the window slides once more than `window` payloads
    /// are unacknowledged.
    window: usize,
}

impl<P> FlowTx<P> {
    pub fn new(window: usize) -> Self {
        FlowTx {
            next_seq: 1,
            buf: VecDeque::new(),
            window,
        }
    }

    /// The sequence the next committed send will carry. Assignment is split
    /// from [`commit`](Self::commit) so a failed wire send does not burn a
    /// sequence number and leave a permanent gap the receiver would NACK
    /// forever.
    pub fn peek_seq(&self) -> u64 {
        self.next_seq
    }

    /// Record a successfully sent payload under `seq` (which must be the
    /// value [`peek_seq`](Self::peek_seq) returned) and advance the flow.
    pub fn commit(&mut self, seq: u64, payload: P) {
        debug_assert_eq!(seq, self.next_seq, "commit out of order");
        self.next_seq += 1;
        self.buf.push_back((seq, payload));
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }

    /// Cumulative acknowledgement: everything below `next` is delivered and
    /// forgotten. Returns the sequences still buffered — the peer asked for
    /// them by pinging, so they are all candidates for retransmission.
    pub fn on_ping(&mut self, next: u64) -> Vec<u64> {
        self.buf.retain(|(s, _)| *s >= next);
        self.buf.iter().map(|(s, _)| *s).collect()
    }

    /// Buffered payloads whose sequence appears in `seqs`, for retransmission.
    pub fn select(&self, seqs: &[u64]) -> Vec<(u64, &P)> {
        self.buf
            .iter()
            .filter(|(s, _)| seqs.contains(s))
            .map(|(s, p)| (*s, p))
            .collect()
    }

    /// Highest sequence ever assigned, if any send was committed: the
    /// high-water mark advertised by a Flush.
    pub fn highest(&self) -> Option<u64> {
        (self.next_seq > 1).then(|| self.next_seq - 1)
    }

    /// Number of unacknowledged payloads currently buffered.
    pub fn in_flight(&self) -> usize {
        self.buf.len()
    }
}

/// What the receive side decided about one arriving sequenced payload.
#[derive(Debug, PartialEq, Eq)]
pub enum RxVerdict<P> {
    /// Already delivered or already parked: discard (and count it).
    Duplicate,
    /// In order: deliver these payloads (the arrival plus any parked run it
    /// unblocked), in sequence order.
    Deliver(Vec<P>),
    /// Early arrival parked above a gap; NACK these missing sequences (may
    /// be empty when every gap member is already parked).
    Parked { nack: Vec<u64> },
}

/// Receiver-side state of one reliable flow.
#[derive(Debug, Clone)]
pub struct FlowRx<P> {
    /// Lowest sequence number not yet delivered.
    next: u64,
    /// Out-of-order arrivals parked until the gap below them fills.
    parked: BTreeMap<u64, P>,
}

impl<P> FlowRx<P> {
    pub fn new() -> Self {
        FlowRx {
            next: 1,
            parked: BTreeMap::new(),
        }
    }

    /// Classify an arriving payload carrying `seq` (> 0).
    pub fn on_data(&mut self, seq: u64, payload: P) -> RxVerdict<P> {
        debug_assert!(seq > 0, "sequence 0 is unmanaged traffic");
        if seq < self.next || self.parked.contains_key(&seq) {
            return RxVerdict::Duplicate;
        }
        if seq > self.next {
            let nack: Vec<u64> = (self.next..seq)
                .filter(|s| !self.parked.contains_key(s))
                .take(NACK_BATCH)
                .collect();
            self.parked.insert(seq, payload);
            return RxVerdict::Parked { nack };
        }
        self.next += 1;
        let mut ready = vec![payload];
        while let Some(p) = self.parked.remove(&self.next) {
            self.next += 1;
            ready.push(p);
        }
        RxVerdict::Deliver(ready)
    }

    /// Sequences missing below a peer-advertised high-water mark `highest`
    /// (tail-loss repair on Flush): everything in `next..=highest` that is
    /// neither delivered nor parked, capped at [`NACK_BATCH`].
    pub fn missing_upto(&self, highest: u64) -> Vec<u64> {
        (self.next..=highest)
            .filter(|s| !self.parked.contains_key(s))
            .take(NACK_BATCH)
            .collect()
    }

    /// Lowest sequence not yet delivered (the cumulative-ack value a Ping
    /// advertises).
    pub fn next_expected(&self) -> u64 {
        self.next
    }

    /// Number of payloads parked above a gap.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }
}

impl<P> Default for FlowTx<P> {
    fn default() -> Self {
        FlowTx::new(crate::endpoint::REL_WINDOW)
    }
}

impl<P> Default for FlowRx<P> {
    fn default() -> Self {
        FlowRx::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_delivers_immediately() {
        let mut rx = FlowRx::new();
        for seq in 1..=5u64 {
            assert_eq!(rx.on_data(seq, seq), RxVerdict::Deliver(vec![seq]));
        }
        assert_eq!(rx.next_expected(), 6);
    }

    #[test]
    fn gap_parks_and_nacks_then_cascades() {
        let mut rx = FlowRx::new();
        assert_eq!(rx.on_data(3, "c"), RxVerdict::Parked { nack: vec![1, 2] });
        // The second early arrival only NACKs the still-missing member.
        assert_eq!(rx.on_data(2, "b"), RxVerdict::Parked { nack: vec![1] });
        assert_eq!(rx.parked_len(), 2);
        // Filling the gap releases the whole parked run in order.
        assert_eq!(rx.on_data(1, "a"), RxVerdict::Deliver(vec!["a", "b", "c"]));
        assert_eq!(rx.parked_len(), 0);
        assert_eq!(rx.next_expected(), 4);
    }

    #[test]
    fn duplicates_discarded_before_and_after_delivery() {
        let mut rx = FlowRx::new();
        assert_eq!(rx.on_data(2, "b"), RxVerdict::Parked { nack: vec![1] });
        assert_eq!(rx.on_data(2, "b"), RxVerdict::Duplicate); // parked dup
        assert_eq!(rx.on_data(1, "a"), RxVerdict::Deliver(vec!["a", "b"]));
        assert_eq!(rx.on_data(1, "a"), RxVerdict::Duplicate); // delivered dup
    }

    #[test]
    fn cumulative_ack_trims_and_reports_remainder() {
        let mut tx = FlowTx::new(16);
        for i in 1..=4u64 {
            let s = tx.peek_seq();
            assert_eq!(s, i);
            tx.commit(s, i * 10);
        }
        assert_eq!(tx.highest(), Some(4));
        // Peer delivered 1 and 2: forget them, resend the rest.
        assert_eq!(tx.on_ping(3), vec![3, 4]);
        assert_eq!(tx.in_flight(), 2);
        assert_eq!(tx.select(&[3]), vec![(3, &30)]);
        assert!(tx.select(&[1, 2]).is_empty());
    }

    #[test]
    fn window_slides_oldest_out() {
        let mut tx = FlowTx::new(2);
        for _ in 0..3 {
            let s = tx.peek_seq();
            tx.commit(s, ());
        }
        assert_eq!(tx.in_flight(), 2);
        assert!(tx.select(&[1]).is_empty(), "seq 1 slid out of the window");
        assert_eq!(tx.select(&[2, 3]).len(), 2);
    }

    #[test]
    fn flush_names_missing_tail() {
        let mut rx = FlowRx::new();
        assert!(matches!(rx.on_data(1, ()), RxVerdict::Deliver(_)));
        assert_eq!(rx.missing_upto(4), vec![2, 3, 4]);
        assert_eq!(rx.on_data(3, ()), RxVerdict::Parked { nack: vec![2] });
        assert_eq!(rx.missing_upto(4), vec![2, 4]);
        assert!(rx.missing_upto(1).is_empty());
    }

    #[test]
    fn nack_batch_is_bounded() {
        let mut rx: FlowRx<()> = FlowRx::new();
        let verdict = rx.on_data(1000, ());
        match verdict {
            RxVerdict::Parked { nack } => {
                assert_eq!(nack.len(), NACK_BATCH);
                assert_eq!(nack[0], 1);
            }
            other => panic!("expected Parked, got {other:?}"),
        }
    }
}
