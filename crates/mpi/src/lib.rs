//! # starfish-mpi — the MPI module of Starfish
//!
//! Implements the MPI subset the paper's runtime provides to application
//! processes (§2.2): blocking and non-blocking point-to-point operations
//! with an eager protocol, message matching with `ANY_SOURCE`/`ANY_TAG`
//! wildcards, the posted/unexpected-queue design, and the standard
//! collectives, all running over the VNI's fast data path.
//!
//! Structure:
//! * [`wire`] — the data-message envelope (source rank, context, tag,
//!   piggybacked checkpoint interval, restart epoch);
//! * [`directory`] — the rank → node directory maintained by the daemons
//!   (updated when processes spawn, migrate or restart);
//! * [`comm`] — communicators ([`comm::Comm`]): rank translation, split and
//!   dup with deterministic context derivation;
//! * [`endpoint`] — [`endpoint::MpiEndpoint`], one per application process:
//!   send/recv/isend/irecv/wait/probe, channel-state capture for C/R, and
//!   the C/R data-path marks (flush marks, Chandy–Lamport markers);
//! * [`collectives`] — barrier, bcast, reduce, allreduce, gather, scatter,
//!   allgather, alltoall, scan over point-to-point;
//! * [`reliability`] — the pure per-flow sequencing state machines of the
//!   reliable channel (shared with the `verify` crate's model checker).
//!
//! ## Starfish API notes (paper §1)
//!
//! Everything here is standard MPI shape; the Starfish extensions
//! (checkpoint requests, view-change upcalls, reconfiguration) live in the
//! `starfish` crate's process context as *additional* downcalls/upcalls, so
//! unmodified MPI programs run unchanged and Starfish-aware programs can be
//! mechanically stripped back to plain MPI.

pub mod collectives;
pub mod comm;
pub mod directory;
pub mod endpoint;
pub mod reliability;
pub mod replication;
pub mod threshold;
pub mod wire;

pub use collectives::{
    AllgatherAlgo, AllreduceAlgo, BcastAlgo, CollAlgoSelector, ReduceOp, COLL_TAG_BASE,
    MAX_COLL_RANKS,
};
pub use comm::Comm;
pub use directory::RankDirectory;
pub use endpoint::{
    CtsCadence, MpiEndpoint, RecvMode, RecvdMsg, Request, ANY_SOURCE, ANY_TAG,
    DEFAULT_RNDV_THRESHOLD, EAGER_CREDIT_BYTES, RNDV_CHUNK_BYTES, RNDV_EARLY_CHUNKS,
};
pub use replication::{plan_push, replica_net, FragPath, FragXfer, PushSession};
pub use threshold::{calibrate, measured_crossover, threshold_consistent, ThresholdCache};
pub use wire::{MsgHeader, CTRL_CONTEXT, DATA_PORT_BASE, WORLD_CONTEXT};
