//! Data-message envelope and addressing constants.

use bytes::{Bytes, BytesMut};
use starfish_trace::TraceCtx;
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{AppId, Epoch, Rank, Result};
use starfish_vni::PortId;

/// Application processes bind data ports at
/// `DATA_PORT_BASE + app * APP_PORT_STRIDE + world_rank`, so concurrent
/// applications sharing a node never collide.
pub const DATA_PORT_BASE: u32 = 1000;

/// Maximum ranks per application for port allocation purposes.
pub const APP_PORT_STRIDE: u32 = 8192;

/// Context id of `MPI_COMM_WORLD` point-to-point traffic.
pub const WORLD_CONTEXT: u32 = 1;

/// Context id reserved for C/R data-path marks (flush marks and
/// Chandy–Lamport markers) — FIFO with data, never matched by user receives.
pub const CTRL_CONTEXT: u32 = 0;

/// Data port of a given application's world rank.
pub fn data_port(app: AppId, world_rank: Rank) -> PortId {
    PortId(DATA_PORT_BASE + app.0 * APP_PORT_STRIDE + world_rank.0)
}

/// Header flag: the body is a rendezvous RTS envelope ([`RndvEnv`]), not
/// application data. The real payload follows in a later
/// [`FLAG_RNDV_DATA`] message once the receiver grants a CTS.
pub const FLAG_RNDV_RTS: u8 = 1 << 0;

/// Header flag: the frame is one rendezvous DATA chunk. The header is
/// followed by a [`RndvChunk`] descriptor; the chunk bytes ride in the
/// packet's separate `payload` segment (zero-copy gather framing), or —
/// for single-buffer frames — directly after the descriptor.
pub const FLAG_RNDV_DATA: u8 = 1 << 1;

/// The envelope prefixed to every data-path message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Sender's world rank.
    pub src: Rank,
    /// Communicator context.
    pub context: u32,
    /// User (or collective-internal) tag.
    pub tag: u64,
    /// Sender's restart epoch: stale-epoch messages are dropped on receive.
    pub epoch: Epoch,
    /// Sender's checkpoint interval (uncoordinated-C/R piggyback, §recovery).
    pub interval: u64,
    /// Per-(sender, destination, epoch) sequence number assigned by the
    /// reliability layer; `0` means the message is outside it (reliability
    /// off, or control/restored traffic) and is delivered as it arrives.
    pub seq: u64,
    /// Rendezvous-protocol flags ([`FLAG_RNDV_RTS`] / [`FLAG_RNDV_DATA`]);
    /// `0` for plain eager messages.
    pub flags: u8,
}

impl MsgHeader {
    /// Serialized header length: the fixed fields plus the `u16` length of
    /// the optional extension region that follows them. The extension (today
    /// only a [`TraceCtx`]) is skipped wholesale by [`parse`](Self::parse),
    /// so a receiver that does not understand it — the paper's unmodified
    /// MPI program, §MPI-module — still gets the exact body bytes.
    pub const LEN: usize = 4 + 4 + 8 + 4 + 8 + 8 + 1 + 2;

    fn put_fixed(&self, enc: &mut Encoder) {
        self.src.encode(enc);
        enc.put_u32(self.context);
        enc.put_u64(self.tag);
        self.epoch.encode(enc);
        enc.put_u64(self.interval);
        enc.put_u64(self.seq);
        enc.put_u8(self.flags);
    }

    /// Prefix `body` with this header (no extension). The body bytes are
    /// copied once into the framed buffer; all subsequent layer hand-offs
    /// share it.
    pub fn frame(&self, body: &[u8]) -> Bytes {
        self.frame_ext(body, TraceCtx::NONE)
    }

    /// Prefix `body` with this header and, when `ctx` carries one, a
    /// trace-context extension.
    pub fn frame_ext(&self, body: &[u8], ctx: TraceCtx) -> Bytes {
        self.frame_ext_prefixed(&[], body, ctx)
    }

    /// Like [`frame_ext`](Self::frame_ext), but with an extra `prefix`
    /// region between the header and `body`. The rendezvous DATA path uses
    /// this to plant the transfer id before the payload so the payload
    /// itself is copied into the wire buffer exactly once.
    pub fn frame_ext_prefixed(&self, prefix: &[u8], body: &[u8], ctx: TraceCtx) -> Bytes {
        let ext = if ctx.is_some() { TraceCtx::WIRE_LEN } else { 0 };
        let mut enc = Encoder::with_capacity(Self::LEN + ext + prefix.len() + body.len());
        self.put_fixed(&mut enc);
        enc.put_u16(ext as u16);
        if ctx.is_some() {
            ctx.encode(&mut enc);
        }
        let mut buf = BytesMut::from(&enc.into_vec()[..]);
        buf.extend_from_slice(prefix);
        buf.extend_from_slice(body);
        buf.freeze()
    }

    fn parse_fixed(framed: &Bytes) -> Result<(MsgHeader, usize)> {
        let mut dec = Decoder::new(&framed[..]);
        let src = Rank::decode(&mut dec)?;
        let context = dec.get_u32()?;
        let tag = dec.get_u64()?;
        let epoch = Epoch::decode(&mut dec)?;
        let interval = dec.get_u64()?;
        let seq = dec.get_u64()?;
        let flags = dec.get_u8()?;
        let ext = dec.get_u16()? as usize;
        if dec.remaining() < ext {
            return Err(starfish_util::Error::codec(format!(
                "extension length {ext} exceeds remaining {} bytes",
                dec.remaining()
            )));
        }
        Ok((
            MsgHeader {
                src,
                context,
                tag,
                epoch,
                interval,
                seq,
                flags,
            },
            ext,
        ))
    }

    /// Split a framed payload into header + body (zero-copy body slice).
    /// Any extension region is skipped unread.
    pub fn parse(framed: &Bytes) -> Result<(MsgHeader, Bytes)> {
        let (header, ext) = Self::parse_fixed(framed)?;
        Ok((header, framed.slice(Self::LEN + ext..)))
    }

    /// Like [`parse`](Self::parse), but also decode the trace context when
    /// the extension carries one ([`TraceCtx::NONE`] otherwise).
    pub fn parse_ext(framed: &Bytes) -> Result<(MsgHeader, Bytes, TraceCtx)> {
        let (header, ext) = Self::parse_fixed(framed)?;
        let ctx = if ext >= TraceCtx::WIRE_LEN {
            let mut dec = Decoder::new(&framed[Self::LEN..Self::LEN + ext]);
            TraceCtx::decode(&mut dec)?
        } else {
            TraceCtx::NONE
        };
        Ok((header, framed.slice(Self::LEN + ext..), ctx))
    }
}

/// The descriptor of one rendezvous DATA chunk.
///
/// A rendezvous payload is shipped as a pipeline of chunk frames. Each frame
/// is a *two-segment* (gather) packet: the [`MsgHeader`] (with
/// [`FLAG_RNDV_DATA`]) plus this 24-byte descriptor travel in the packet's
/// `head` segment; the chunk bytes themselves are the packet's `payload`
/// segment — a reference-counted slice of the sender's original buffer,
/// never copied into the frame. The receiver reassembles chunks
/// offset-addressed into one contiguous buffer (the transfer's single copy),
/// so duplicates are idempotent and arrival order does not matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RndvChunk {
    /// Transfer id of the RTS this chunk answers.
    pub id: u64,
    /// Byte offset of this chunk within the transfer.
    pub offset: u64,
    /// Total transfer size in bytes (every chunk repeats it, so a chunk
    /// that overtakes its RTS still sizes the reassembly buffer).
    pub total: u64,
}

impl RndvChunk {
    pub const LEN: usize = 24;

    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut buf = [0u8; Self::LEN];
        buf[..8].copy_from_slice(&self.id.to_be_bytes());
        buf[8..16].copy_from_slice(&self.offset.to_be_bytes());
        buf[16..].copy_from_slice(&self.total.to_be_bytes());
        buf
    }

    pub fn decode(body: &[u8]) -> Result<RndvChunk> {
        if body.len() < Self::LEN {
            return Err(starfish_util::Error::codec(format!(
                "rendezvous chunk descriptor {} bytes, need {}",
                body.len(),
                Self::LEN
            )));
        }
        Ok(RndvChunk {
            id: u64::from_be_bytes(body[..8].try_into().expect("8 bytes")),
            offset: u64::from_be_bytes(body[8..16].try_into().expect("8 bytes")),
            total: u64::from_be_bytes(body[16..24].try_into().expect("8 bytes")),
        })
    }
}

/// The body of a rendezvous RTS message: the transfer id (unique per sender
/// incarnation) and the payload size the receiver should expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RndvEnv {
    pub id: u64,
    pub size: u64,
}

impl RndvEnv {
    pub const LEN: usize = 16;

    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut buf = [0u8; Self::LEN];
        buf[..8].copy_from_slice(&self.id.to_be_bytes());
        buf[8..].copy_from_slice(&self.size.to_be_bytes());
        buf
    }

    pub fn decode(body: &[u8]) -> Result<RndvEnv> {
        if body.len() < Self::LEN {
            return Err(starfish_util::Error::codec(format!(
                "RTS envelope {} bytes, need {}",
                body.len(),
                Self::LEN
            )));
        }
        Ok(RndvEnv {
            id: u64::from_be_bytes(body[..8].try_into().expect("8 bytes")),
            size: u64::from_be_bytes(body[8..16].try_into().expect("8 bytes")),
        })
    }
}

/// Control traffic of the MPI reliability layer, carried on the data port as
/// [`starfish_vni::PacketKind::Control`] packets so it can never be confused
/// with (or matched against) application data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelMsg {
    /// Receiver reports a gap: `seqs` are missing from `from`'s flow.
    Nack {
        from: Rank,
        epoch: Epoch,
        seqs: Vec<u64>,
    },
    /// Receiver probes a silent flow: it has everything below `next`.
    Ping { from: Rank, epoch: Epoch, next: u64 },
    /// Sender advertises its highest assigned seq so the receiver can
    /// detect tail loss at quiescence.
    Flush {
        from: Rank,
        epoch: Epoch,
        highest: u64,
    },
    /// Receiver grants a rendezvous transfer: a matching receive is posted
    /// for the RTS carrying `id`, the sender may ship the payload.
    /// Idempotent — a blocked receiver re-sends it on the ping cadence, the
    /// sender honours only the first copy per id.
    Cts { from: Rank, epoch: Epoch, id: u64 },
    /// Receiver returns eager flow-control credit: it consumed `bytes` of
    /// eager payload from `from`'s traffic, the sender may spend them again.
    Credit {
        from: Rank,
        epoch: Epoch,
        bytes: u64,
    },
}

impl RelMsg {
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::with_capacity(32);
        match self {
            RelMsg::Nack { from, epoch, seqs } => {
                enc.put_u8(1);
                from.encode(&mut enc);
                epoch.encode(&mut enc);
                enc.put_u32(seqs.len() as u32);
                for s in seqs {
                    enc.put_u64(*s);
                }
            }
            RelMsg::Ping { from, epoch, next } => {
                enc.put_u8(2);
                from.encode(&mut enc);
                epoch.encode(&mut enc);
                enc.put_u64(*next);
            }
            RelMsg::Flush {
                from,
                epoch,
                highest,
            } => {
                enc.put_u8(3);
                from.encode(&mut enc);
                epoch.encode(&mut enc);
                enc.put_u64(*highest);
            }
            RelMsg::Cts { from, epoch, id } => {
                enc.put_u8(4);
                from.encode(&mut enc);
                epoch.encode(&mut enc);
                enc.put_u64(*id);
            }
            RelMsg::Credit { from, epoch, bytes } => {
                enc.put_u8(5);
                from.encode(&mut enc);
                epoch.encode(&mut enc);
                enc.put_u64(*bytes);
            }
        }
        enc.into_bytes()
    }

    pub fn decode(buf: &Bytes) -> Result<RelMsg> {
        let mut dec = Decoder::new(&buf[..]);
        let kind = dec.get_u8()?;
        let from = Rank::decode(&mut dec)?;
        let epoch = Epoch::decode(&mut dec)?;
        match kind {
            1 => {
                let n = dec.get_u32()? as usize;
                let mut seqs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    seqs.push(dec.get_u64()?);
                }
                Ok(RelMsg::Nack { from, epoch, seqs })
            }
            2 => Ok(RelMsg::Ping {
                from,
                epoch,
                next: dec.get_u64()?,
            }),
            3 => Ok(RelMsg::Flush {
                from,
                epoch,
                highest: dec.get_u64()?,
            }),
            4 => Ok(RelMsg::Cts {
                from,
                epoch,
                id: dec.get_u64()?,
            }),
            5 => Ok(RelMsg::Credit {
                from,
                epoch,
                bytes: dec.get_u64()?,
            }),
            k => Err(starfish_util::Error::codec(format!(
                "unknown RelMsg kind {k}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_parse_roundtrip() {
        let h = MsgHeader {
            src: Rank(3),
            context: 7,
            tag: 42,
            epoch: Epoch(1),
            interval: 9,
            seq: 11,
            flags: 0,
        };
        let framed = h.frame(b"payload");
        assert_eq!(framed.len(), MsgHeader::LEN + 7);
        let (got, body) = MsgHeader::parse(&framed).unwrap();
        assert_eq!(got, h);
        assert_eq!(&body[..], b"payload");
    }

    #[test]
    fn body_slice_is_zero_copy() {
        let h = MsgHeader {
            src: Rank(0),
            context: 1,
            tag: 0,
            epoch: Epoch(0),
            interval: 0,
            seq: 0,
            flags: 0,
        };
        let framed = h.frame(&[9u8; 64]);
        let (_, body) = MsgHeader::parse(&framed).unwrap();
        // Same backing allocation.
        assert_eq!(body.as_ptr(), framed[MsgHeader::LEN..].as_ptr());
    }

    #[test]
    fn rndv_chunk_roundtrip() {
        let c = RndvChunk {
            id: 0x1122_3344_5566_7788,
            offset: 128 * 1024,
            total: 1 << 20,
        };
        assert_eq!(RndvChunk::decode(&c.encode()).unwrap(), c);
        // Trailing bytes after the descriptor (single-buffer frames) are fine.
        let mut buf = c.encode().to_vec();
        buf.extend_from_slice(b"chunk-bytes");
        assert_eq!(RndvChunk::decode(&buf).unwrap(), c);
        assert!(RndvChunk::decode(&buf[..23]).is_err());
    }

    #[test]
    fn rel_msg_roundtrip() {
        for msg in [
            RelMsg::Nack {
                from: Rank(2),
                epoch: Epoch(1),
                seqs: vec![3, 4, 9],
            },
            RelMsg::Ping {
                from: Rank(0),
                epoch: Epoch(0),
                next: 17,
            },
            RelMsg::Flush {
                from: Rank(5),
                epoch: Epoch(2),
                highest: 40,
            },
            RelMsg::Cts {
                from: Rank(1),
                epoch: Epoch(0),
                id: 9,
            },
            RelMsg::Credit {
                from: Rank(3),
                epoch: Epoch(1),
                bytes: 4096,
            },
        ] {
            assert_eq!(RelMsg::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let short = Bytes::from_static(b"abc");
        assert!(MsgHeader::parse(&short).is_err());
    }

    fn ctx() -> TraceCtx {
        TraceCtx {
            trace: 0xAAAA,
            span: 0xBBBB,
            parent: 0xCCCC,
            lamport: 42,
        }
    }

    /// The unmodified-program compatibility guarantee (§MPI-module): a peer
    /// that knows nothing about trace contexts parses a context-carrying
    /// frame with the plain `parse` and gets exactly the same header and
    /// body bytes — the length-prefixed extension is skipped wholesale.
    #[test]
    fn trace_ext_is_invisible_to_a_plain_parse() {
        let h = MsgHeader {
            src: Rank(3),
            context: 7,
            tag: 42,
            epoch: Epoch(1),
            interval: 9,
            seq: 11,
            flags: 0,
        };
        let traced = h.frame_ext(b"payload", ctx());
        assert_eq!(traced.len(), MsgHeader::LEN + TraceCtx::WIRE_LEN + 7);
        let (got, body) = MsgHeader::parse(&traced).unwrap();
        assert_eq!(got, h);
        assert_eq!(&body[..], b"payload");
        // And the ctx-aware parse recovers the context.
        let (got2, body2, c) = MsgHeader::parse_ext(&traced).unwrap();
        assert_eq!(got2, h);
        assert_eq!(&body2[..], b"payload");
        assert_eq!(c, ctx());
    }

    /// The converse direction: a frame without a context parses cleanly
    /// with the ctx-aware parse, reporting "no context".
    #[test]
    fn untraced_frame_parses_with_ctx_aware_parse() {
        let h = MsgHeader {
            src: Rank(0),
            context: 1,
            tag: 5,
            epoch: Epoch(0),
            interval: 0,
            seq: 0,
            flags: 0,
        };
        let plain = h.frame(b"xy");
        let (_, body, c) = MsgHeader::parse_ext(&plain).unwrap();
        assert_eq!(&body[..], b"xy");
        assert!(c.is_none());
    }

    /// A lying extension length (longer than the frame) is rejected, not
    /// sliced out of bounds.
    #[test]
    fn oversized_ext_length_rejected() {
        let h = MsgHeader {
            src: Rank(0),
            context: 1,
            tag: 0,
            epoch: Epoch(0),
            interval: 0,
            seq: 0,
            flags: 0,
        };
        let framed = h.frame(b"abc");
        let mut raw = framed.to_vec();
        // The ext_len u16 is the last two bytes of the fixed header.
        raw[MsgHeader::LEN - 2..MsgHeader::LEN].copy_from_slice(&1000u16.to_be_bytes());
        let lying = Bytes::from(raw);
        assert!(MsgHeader::parse(&lying).is_err());
        assert!(MsgHeader::parse_ext(&lying).is_err());
    }

    #[test]
    fn data_port_offsets_by_app_and_rank() {
        assert_eq!(data_port(AppId(0), Rank(0)), PortId(1000));
        assert_eq!(data_port(AppId(0), Rank(7)), PortId(1007));
        // Different applications never collide.
        assert_ne!(data_port(AppId(1), Rank(0)), data_port(AppId(0), Rank(0)));
        assert_ne!(
            data_port(AppId(1), Rank(0)),
            data_port(AppId(0), Rank(8191))
        );
    }
}
