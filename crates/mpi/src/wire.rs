//! Data-message envelope and addressing constants.

use bytes::{Bytes, BytesMut};
use starfish_util::codec::{Decode, Decoder, Encode, Encoder};
use starfish_util::{AppId, Epoch, Rank, Result};
use starfish_vni::PortId;

/// Application processes bind data ports at
/// `DATA_PORT_BASE + app * APP_PORT_STRIDE + world_rank`, so concurrent
/// applications sharing a node never collide.
pub const DATA_PORT_BASE: u32 = 1000;

/// Maximum ranks per application for port allocation purposes.
pub const APP_PORT_STRIDE: u32 = 8192;

/// Context id of `MPI_COMM_WORLD` point-to-point traffic.
pub const WORLD_CONTEXT: u32 = 1;

/// Context id reserved for C/R data-path marks (flush marks and
/// Chandy–Lamport markers) — FIFO with data, never matched by user receives.
pub const CTRL_CONTEXT: u32 = 0;

/// Data port of a given application's world rank.
pub fn data_port(app: AppId, world_rank: Rank) -> PortId {
    PortId(DATA_PORT_BASE + app.0 * APP_PORT_STRIDE + world_rank.0)
}

/// The envelope prefixed to every data-path message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Sender's world rank.
    pub src: Rank,
    /// Communicator context.
    pub context: u32,
    /// User (or collective-internal) tag.
    pub tag: u64,
    /// Sender's restart epoch: stale-epoch messages are dropped on receive.
    pub epoch: Epoch,
    /// Sender's checkpoint interval (uncoordinated-C/R piggyback, §recovery).
    pub interval: u64,
}

impl MsgHeader {
    /// Serialized header length (fixed).
    pub const LEN: usize = 4 + 4 + 8 + 4 + 8;

    /// Prefix `body` with this header. The body bytes are copied once into
    /// the framed buffer; all subsequent layer hand-offs share it.
    pub fn frame(&self, body: &[u8]) -> Bytes {
        let mut enc = Encoder::with_capacity(Self::LEN + body.len());
        self.src.encode(&mut enc);
        enc.put_u32(self.context);
        enc.put_u64(self.tag);
        self.epoch.encode(&mut enc);
        enc.put_u64(self.interval);
        let mut buf = BytesMut::from(&enc.into_vec()[..]);
        buf.extend_from_slice(body);
        buf.freeze()
    }

    /// Split a framed payload into header + body (zero-copy body slice).
    pub fn parse(framed: &Bytes) -> Result<(MsgHeader, Bytes)> {
        let mut dec = Decoder::new(&framed[..]);
        let src = Rank::decode(&mut dec)?;
        let context = dec.get_u32()?;
        let tag = dec.get_u64()?;
        let epoch = Epoch::decode(&mut dec)?;
        let interval = dec.get_u64()?;
        let body = framed.slice(Self::LEN..);
        Ok((
            MsgHeader {
                src,
                context,
                tag,
                epoch,
                interval,
            },
            body,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_parse_roundtrip() {
        let h = MsgHeader {
            src: Rank(3),
            context: 7,
            tag: 42,
            epoch: Epoch(1),
            interval: 9,
        };
        let framed = h.frame(b"payload");
        assert_eq!(framed.len(), MsgHeader::LEN + 7);
        let (got, body) = MsgHeader::parse(&framed).unwrap();
        assert_eq!(got, h);
        assert_eq!(&body[..], b"payload");
    }

    #[test]
    fn body_slice_is_zero_copy() {
        let h = MsgHeader {
            src: Rank(0),
            context: 1,
            tag: 0,
            epoch: Epoch(0),
            interval: 0,
        };
        let framed = h.frame(&[9u8; 64]);
        let (_, body) = MsgHeader::parse(&framed).unwrap();
        // Same backing allocation.
        assert_eq!(body.as_ptr(), framed[MsgHeader::LEN..].as_ptr());
    }

    #[test]
    fn truncated_header_rejected() {
        let short = Bytes::from_static(b"abc");
        assert!(MsgHeader::parse(&short).is_err());
    }

    #[test]
    fn data_port_offsets_by_app_and_rank() {
        assert_eq!(data_port(AppId(0), Rank(0)), PortId(1000));
        assert_eq!(data_port(AppId(0), Rank(7)), PortId(1007));
        // Different applications never collide.
        assert_ne!(data_port(AppId(1), Rank(0)), data_port(AppId(0), Rank(0)));
        assert_ne!(
            data_port(AppId(1), Rank(0)),
            data_port(AppId(0), Rank(8191))
        );
    }
}
