//! Checkpoint-fragment replication over the MPI transfer paths.
//!
//! The diskless replica backend ([`starfish_checkpoint::replica`]) splits a
//! rank's checkpoint image into fragments and pushes each to `k` peer
//! nodes. Those pushes ride the same two transfer paths as application
//! data: fragments under the rendezvous threshold go out eagerly, larger
//! ones use the RTS/CTS rendezvous handshake — so replication traffic obeys
//! the same flow control as everything else on the fabric.
//!
//! This module is the flow-machinery side of that design: it plans which
//! path each fragment takes (tied to the *real*
//! [`DEFAULT_RNDV_THRESHOLD`], not a copy of the constant), builds the
//! canonical [`ReplicaNet`] cost model from those constants, and tracks the
//! per-fragment ack state of an in-progress push so a checkpoint round
//! knows when every replica is durable in peer memory. The ack protocol
//! itself is model-checked in `crates/verify` (`models/replica.rs`).

use std::collections::BTreeSet;

use starfish_checkpoint::replica::{Fragment, ReplicaNet, DEFAULT_FRAG_BYTES};
use starfish_util::NodeId;

use crate::endpoint::DEFAULT_RNDV_THRESHOLD;

/// Which transfer path a fragment push takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragPath {
    /// Small fragment: one eager send, counted against the peer's credit.
    Eager,
    /// Large fragment: RTS/CTS rendezvous, payload parked until the peer
    /// grants the transfer.
    Rendezvous,
}

impl FragPath {
    /// Path selection, same rule the data path uses.
    pub fn for_bytes(bytes: u64, rndv_threshold: u64) -> FragPath {
        if bytes >= rndv_threshold {
            FragPath::Rendezvous
        } else {
            FragPath::Eager
        }
    }
}

/// One planned fragment transfer of a push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragXfer {
    pub seq: u32,
    pub bytes: u64,
    pub path: FragPath,
}

/// Split an image of `image_bytes` into `frag_bytes`-sized transfers and
/// assign each its path. The tail fragment carries the remainder; a
/// zero-byte image still yields one (empty, eager) transfer so the ack
/// machinery has something to complete on.
pub fn plan_push(image_bytes: u64, frag_bytes: u64) -> Vec<FragXfer> {
    let frag_bytes = frag_bytes.max(1);
    let n = image_bytes.div_ceil(frag_bytes).max(1);
    (0..n)
        .map(|i| {
            let bytes = if i == n - 1 {
                image_bytes - i * frag_bytes
            } else {
                frag_bytes
            };
            FragXfer {
                seq: i as u32,
                bytes,
                path: FragPath::for_bytes(bytes, DEFAULT_RNDV_THRESHOLD as u64),
            }
        })
        .collect()
}

/// The canonical replica-push cost model: LAN-era latency/bandwidth with
/// the rendezvous threshold taken from the live MPI constant, so the
/// replica store's timing and the data path's flow control never drift
/// apart.
pub fn replica_net() -> ReplicaNet {
    let mut net = ReplicaNet::lan_1999();
    net.rndv_threshold = DEFAULT_RNDV_THRESHOLD as u64;
    net.frag_bytes = DEFAULT_FRAG_BYTES;
    net
}

/// Ack tracking for one in-progress fragment push: the round may only
/// commit once every `(fragment, replica)` copy has been acknowledged by
/// its hosting peer.
#[derive(Debug, Default, Clone)]
pub struct PushSession {
    pending: BTreeSet<(u32, NodeId)>,
}

impl PushSession {
    /// Start tracking a push of `frags` (data fragments plus parity, as
    /// returned by the replica store's placement).
    pub fn begin(frags: &[Fragment]) -> PushSession {
        let pending = frags
            .iter()
            .flat_map(|f| f.replicas.iter().map(move |n| (f.seq, *n)))
            .collect();
        PushSession { pending }
    }

    /// A peer acknowledged its copy of fragment `seq`. Returns `true` if
    /// this ack was still outstanding (duplicates are idempotent).
    pub fn ack(&mut self, seq: u32, from: NodeId) -> bool {
        self.pending.remove(&(seq, from))
    }

    /// A peer died mid-push: its outstanding copies will never be acked.
    /// Returns the fragment seqs that lost a pending copy — the caller
    /// re-pushes those to substitute peers (or commits under-replicated).
    pub fn peer_lost(&mut self, node: NodeId) -> Vec<u32> {
        let lost: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, n)| *n == node)
            .map(|(s, _)| *s)
            .collect();
        self.pending.retain(|(_, n)| *n != node);
        lost
    }

    /// A substitute copy was pushed after a peer loss: the round must now
    /// also wait for this peer's ack. Returns `true` if the copy was not
    /// already pending.
    pub fn repush(&mut self, seq: u32, to: NodeId) -> bool {
        self.pending.insert((seq, to))
    }

    /// Copies still awaiting acknowledgement.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Every copy acked: the checkpoint is durable in peer memory.
    pub fn complete(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_selection_matches_the_data_path_threshold() {
        let t = DEFAULT_RNDV_THRESHOLD as u64;
        assert_eq!(FragPath::for_bytes(t - 1, t), FragPath::Eager);
        assert_eq!(FragPath::for_bytes(t, t), FragPath::Rendezvous);
        assert_eq!(FragPath::for_bytes(t + 1, t), FragPath::Rendezvous);
    }

    #[test]
    fn plan_covers_every_byte_exactly_once() {
        for (image, frag) in [(0u64, 256 * 1024u64), (1, 256), (1000, 256), (1024, 256)] {
            let plan = plan_push(image, frag);
            assert!(!plan.is_empty());
            assert_eq!(plan.iter().map(|x| x.bytes).sum::<u64>(), image);
            // Seqs are dense from zero.
            for (i, x) in plan.iter().enumerate() {
                assert_eq!(x.seq, i as u32);
            }
        }
    }

    #[test]
    fn default_fragments_ride_the_rendezvous_path() {
        // 256 KiB fragments are over the 64 KiB threshold: a full-size
        // image pushes via rendezvous, only a sub-threshold tail goes eager.
        let plan = plan_push(544 * 1024, DEFAULT_FRAG_BYTES); // 256 + 256 + 32 KiB
        assert_eq!(plan.len(), 3);
        assert_eq!(plan[0].path, FragPath::Rendezvous);
        assert_eq!(plan[1].path, FragPath::Rendezvous);
        assert_eq!(plan[2].path, FragPath::Eager);
    }

    #[test]
    fn replica_net_tracks_the_live_mpi_threshold() {
        let net = replica_net();
        assert_eq!(net.rndv_threshold, DEFAULT_RNDV_THRESHOLD as u64);
        assert_eq!(net.frag_bytes, DEFAULT_FRAG_BYTES);
    }

    #[test]
    fn push_session_completes_only_after_every_ack() {
        let frags = vec![
            Fragment {
                seq: 0,
                bytes: 100,
                replicas: vec![NodeId(1), NodeId(2)],
            },
            Fragment {
                seq: 1,
                bytes: 100,
                replicas: vec![NodeId(2), NodeId(3)],
            },
        ];
        let mut s = PushSession::begin(&frags);
        assert_eq!(s.outstanding(), 4);
        assert!(s.ack(0, NodeId(1)));
        assert!(!s.ack(0, NodeId(1)), "duplicate ack is idempotent");
        assert!(!s.ack(0, NodeId(3)), "unknown copy ignored");
        assert!(s.ack(0, NodeId(2)));
        assert!(!s.complete());
        assert!(s.ack(1, NodeId(2)));
        assert!(s.ack(1, NodeId(3)));
        assert!(s.complete());
    }

    #[test]
    fn peer_loss_reports_fragments_needing_repush() {
        let frags = vec![
            Fragment {
                seq: 0,
                bytes: 100,
                replicas: vec![NodeId(1), NodeId(2)],
            },
            Fragment {
                seq: 1,
                bytes: 100,
                replicas: vec![NodeId(2), NodeId(3)],
            },
        ];
        let mut s = PushSession::begin(&frags);
        let lost = s.peer_lost(NodeId(2));
        assert_eq!(lost, vec![0, 1]);
        assert_eq!(s.outstanding(), 2);
        // Substitute copies re-arm the session until the new peer acks.
        for seq in lost {
            assert!(s.repush(seq, NodeId(4)));
        }
        assert_eq!(s.outstanding(), 4);
        s.ack(0, NodeId(1));
        s.ack(1, NodeId(3));
        s.ack(0, NodeId(4));
        s.ack(1, NodeId(4));
        assert!(s.complete());
        // Already-acked copies are not re-reported by a later loss.
        assert!(s.peer_lost(NodeId(1)).is_empty());
    }
}
