//! Communicators.

use starfish_util::{Error, Rank, Result};

use crate::wire::WORLD_CONTEXT;

/// A communicator: an ordered set of world ranks plus a context id that
/// isolates its traffic from every other communicator's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comm {
    context: u32,
    /// Members as world ranks; a member's *communicator rank* is its index.
    members: Vec<Rank>,
    my_index: usize,
    /// Collective-operation sequence number: every process of a communicator
    /// must invoke collectives in the same order (an MPI requirement), so
    /// this advances in lock-step and disambiguates concurrent rounds.
    /// Public because the checkpoint runtime must save/restore it so that a
    /// restored execution's collective tags line up across ranks.
    pub coll_seq: u64,
}

impl Comm {
    /// `MPI_COMM_WORLD` for an application of `size` ranks.
    pub fn world(size: u32, me: Rank) -> Comm {
        assert!(me.0 < size, "rank {me} out of range for size {size}");
        Comm {
            context: WORLD_CONTEXT,
            members: (0..size).map(Rank).collect(),
            my_index: me.0 as usize,
            coll_seq: 0,
        }
    }

    /// Build an arbitrary communicator (used by split/dup and by the
    /// dynamic-process machinery).
    pub fn from_members(context: u32, members: Vec<Rank>, me: Rank) -> Result<Comm> {
        let my_index = members
            .iter()
            .position(|r| *r == me)
            .ok_or_else(|| Error::invalid_arg(format!("{me} not in communicator")))?;
        Ok(Comm {
            context,
            members,
            my_index,
            coll_seq: 0,
        })
    }

    /// This process's rank *within the communicator*.
    pub fn rank(&self) -> Rank {
        Rank(self.my_index as u32)
    }

    pub fn size(&self) -> u32 {
        self.members.len() as u32
    }

    pub fn context(&self) -> u32 {
        self.context
    }

    /// Translate a communicator rank to a world rank.
    pub fn world_rank(&self, comm_rank: Rank) -> Result<Rank> {
        self.members
            .get(comm_rank.index())
            .copied()
            .ok_or_else(|| Error::invalid_arg(format!("rank {comm_rank} out of range")))
    }

    /// Translate a world rank to a communicator rank, if a member.
    pub fn comm_rank_of_world(&self, world: Rank) -> Option<Rank> {
        self.members
            .iter()
            .position(|r| *r == world)
            .map(|i| Rank(i as u32))
    }

    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    /// Duplicate with a fresh, deterministically derived context: same
    /// members, isolated traffic (MPI_Comm_dup).
    pub fn dup(&self) -> Comm {
        Comm {
            context: derive_context(self.context, 0x5F5F),
            members: self.members.clone(),
            my_index: self.my_index,
            coll_seq: 0,
        }
    }
}

/// Deterministic context derivation: every member computes the same child
/// context with no extra agreement round (contexts only need to be unique
/// per application, and the derivation chain is collision-resistant enough
/// for the handful of communicators real programs create).
pub fn derive_context(parent: u32, salt: u32) -> u32 {
    parent
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(salt)
        .wrapping_add(0x85EB_CA6B)
        | 0x8000_0000 // never collides with the well-known low contexts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_layout() {
        let c = Comm::world(4, Rank(2));
        assert_eq!(c.rank(), Rank(2));
        assert_eq!(c.size(), 4);
        assert_eq!(c.context(), WORLD_CONTEXT);
        assert_eq!(c.world_rank(Rank(3)).unwrap(), Rank(3));
    }

    #[test]
    fn subset_comm_translates_ranks() {
        // world ranks {1, 3} form a communicator.
        let c = Comm::from_members(55, vec![Rank(1), Rank(3)], Rank(3)).unwrap();
        assert_eq!(c.rank(), Rank(1)); // index of world rank 3
        assert_eq!(c.size(), 2);
        assert_eq!(c.world_rank(Rank(0)).unwrap(), Rank(1));
        assert_eq!(c.comm_rank_of_world(Rank(3)), Some(Rank(1)));
        assert_eq!(c.comm_rank_of_world(Rank(0)), None);
    }

    #[test]
    fn non_member_rejected() {
        assert!(Comm::from_members(55, vec![Rank(1)], Rank(0)).is_err());
    }

    #[test]
    fn dup_changes_context_only() {
        let c = Comm::world(2, Rank(0));
        let d = c.dup();
        assert_ne!(d.context(), c.context());
        assert_eq!(d.members(), c.members());
        assert_eq!(d.rank(), c.rank());
        // Derivation is deterministic: another process computes the same.
        let c2 = Comm::world(2, Rank(1));
        let d2 = c2.dup();
        assert_eq!(d.context(), d2.context());
    }

    #[test]
    fn derived_contexts_avoid_reserved_space() {
        let ctx = derive_context(WORLD_CONTEXT, 3);
        assert!(ctx >= 0x8000_0000);
        assert_ne!(ctx, WORLD_CONTEXT);
    }
}
