//! MPI collectives over point-to-point.
//!
//! Every collective operation of a communicator must be invoked by all
//! members in the same order (the MPI rule); the communicator's internal
//! sequence number then gives each round a unique tag so that consecutive
//! collectives never cross-match. Tree algorithms (binomial broadcast and
//! reduce) give the logarithmic depth one expects; the virtual-time cost of
//! a collective is computed automatically by the clock max-merging in the
//! endpoint layer.
//!
//! # Buffer discipline
//!
//! Per-rank blobs move as [`Bytes`] handles that alias the arrival buffer —
//! receiving a blob never copies it, and multi-blob results are zero-copy
//! slices. The only composite wire format is the allgather concatenation
//! broadcast from rank 0:
//!
//! ```text
//! [count: u32 BE] ( [len_i: u32 BE] [blob_i: len_i bytes] ) * count
//! ```
//!
//! built once into a single contiguous buffer at the root; every receiver
//! slices its `Vec<Bytes>` straight out of the broadcast buffer.

use bytes::Bytes;
use starfish_util::{Error, Rank, Result, VClock};

use crate::comm::Comm;
use crate::endpoint::{MpiEndpoint, RecvdMsg};

/// Tag space reserved for collectives: user tags must stay below `1 << 56`.
const COLL_TAG_BASE: u64 = 1 << 63;

fn coll_tag(op: u8, seq: u64) -> u64 {
    COLL_TAG_BASE | ((op as u64) << 48) | (seq & 0xFFFF_FFFF_FFFF)
}

const OP_BARRIER: u8 = 1;
const OP_BCAST: u8 = 2;
const OP_REDUCE: u8 = 3;
const OP_GATHER: u8 = 4;
const OP_SCATTER: u8 = 5;
// (op code 6 is reserved for allgather, which is composed of gather+bcast
// and therefore needs no tag space of its own)
const OP_ALLTOALL: u8 = 7;
const OP_SCAN: u8 = 8;
const OP_SPLIT: u8 = 9;

/// Plain-old-data element codec for typed collectives (canonical big-endian
/// on the wire).
pub trait Pod: Copy {
    const SIZE: usize;
    fn write(self, out: &mut Vec<u8>);
    fn read(buf: &[u8]) -> Self;
}

macro_rules! impl_pod {
    ($ty:ty, $size:expr) => {
        impl Pod for $ty {
            const SIZE: usize = $size;
            fn write(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn read(buf: &[u8]) -> Self {
                <$ty>::from_be_bytes(buf[..$size].try_into().unwrap())
            }
        }
    };
}

impl_pod!(f64, 8);
impl_pod!(i64, 8);
impl_pod!(u64, 8);
impl_pod!(u32, 4);
impl_pod!(u8, 1);

/// Encode a slice of Pod elements.
pub fn encode_slice<T: Pod>(xs: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * T::SIZE);
    for x in xs {
        x.write(&mut out);
    }
    out
}

/// Decode a slice of Pod elements.
pub fn decode_slice<T: Pod>(buf: &[u8]) -> Result<Vec<T>> {
    if !buf.len().is_multiple_of(T::SIZE) {
        return Err(Error::codec("ragged Pod buffer"));
    }
    Ok(buf.chunks_exact(T::SIZE).map(T::read).collect())
}

/// Element-wise reduction operators (associative and commutative, as the
/// tree algorithms require).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Prod,
    Min,
    Max,
}

/// Numeric element for reductions.
pub trait PodNum: Pod {
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

impl PodNum for f64 {
    fn reduce(op: ReduceOp, a: f64, b: f64) -> f64 {
        match op {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl PodNum for i64 {
    fn reduce(op: ReduceOp, a: i64, b: i64) -> i64 {
        match op {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

impl PodNum for u64 {
    fn reduce(op: ReduceOp, a: u64, b: u64) -> u64 {
        match op {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Prod => a.wrapping_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

fn send_c(
    ep: &mut MpiEndpoint,
    comm: &Comm,
    clock: &mut VClock,
    dst: Rank, // communicator rank
    tag: u64,
    data: &[u8],
) -> Result<()> {
    let world = comm.world_rank(dst)?;
    ep.send_world(clock, world, comm.context(), tag, data)
}

fn recv_c(
    ep: &mut MpiEndpoint,
    comm: &Comm,
    clock: &mut VClock,
    src: Rank, // communicator rank
    tag: u64,
) -> Result<RecvdMsg> {
    let world = comm.world_rank(src)?;
    ep.recv_world(clock, comm.context(), Some(world), Some(tag))
}

/// `MPI_Barrier`: dissemination algorithm, ⌈log₂ n⌉ rounds.
pub fn barrier(ep: &mut MpiEndpoint, comm: &mut Comm, clock: &mut VClock) -> Result<()> {
    let n = comm.size() as usize;
    let me = comm.rank().index();
    let tag_base = coll_tag(OP_BARRIER, comm.coll_seq);
    comm.coll_seq += 1;
    let mut k = 1usize;
    let mut round = 0u64;
    while k < n {
        let to = Rank(((me + k) % n) as u32);
        let from = Rank(((me + n - k) % n) as u32);
        send_c(ep, comm, clock, to, tag_base + (round << 32), &[])?;
        recv_c(ep, comm, clock, from, tag_base + (round << 32))?;
        k <<= 1;
        round += 1;
    }
    Ok(())
}

/// `MPI_Bcast` of raw bytes from communicator rank `root`: binomial tree.
/// Non-roots receive into the returned buffer, which aliases the arrival
/// buffer (no copy per tree level).
pub fn bcast(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    root: Rank,
    data: Bytes,
) -> Result<Bytes> {
    let n = comm.size() as usize;
    let me = comm.rank().index();
    let tag = coll_tag(OP_BCAST, comm.coll_seq);
    comm.coll_seq += 1;
    if n == 1 {
        return Ok(data);
    }
    let vr = (me + n - root.index()) % n;
    let mut buf = data;
    // Receive from parent (non-root).
    let mut mask = 1usize;
    while mask < n {
        if vr & mask != 0 {
            let src = Rank(((me + n - mask) % n) as u32);
            buf = recv_c(ep, comm, clock, src, tag)?.data;
            break;
        }
        mask <<= 1;
    }
    // Forward to children.
    mask >>= 1;
    while mask > 0 {
        if vr + mask < n {
            let dst = Rank(((me + mask) % n) as u32);
            send_c(ep, comm, clock, dst, tag, &buf)?;
        }
        mask >>= 1;
    }
    Ok(buf)
}

/// `MPI_Reduce` to communicator rank `root`: binomial combine tree. Returns
/// `Some(result)` at the root, `None` elsewhere.
pub fn reduce<T: PodNum>(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    root: Rank,
    data: &[T],
    op: ReduceOp,
) -> Result<Option<Vec<T>>> {
    let n = comm.size() as usize;
    let me = comm.rank().index();
    let tag = coll_tag(OP_REDUCE, comm.coll_seq);
    comm.coll_seq += 1;
    let vr = (me + n - root.index()) % n;
    let mut acc: Vec<T> = data.to_vec();
    let mut mask = 1usize;
    while mask < n {
        if vr & mask == 0 {
            let peer_vr = vr | mask;
            if peer_vr < n {
                let src = Rank(((peer_vr + root.index()) % n) as u32);
                let m = recv_c(ep, comm, clock, src, tag)?;
                let other: Vec<T> = decode_slice(&m.data)?;
                if other.len() != acc.len() {
                    return Err(Error::invalid_arg("reduce buffers differ in length"));
                }
                for (a, b) in acc.iter_mut().zip(other) {
                    *a = T::reduce(op, *a, b);
                }
            }
        } else {
            let peer_vr = vr ^ mask;
            let dst = Rank(((peer_vr + root.index()) % n) as u32);
            send_c(ep, comm, clock, dst, tag, &encode_slice(&acc))?;
            return Ok(None);
        }
        mask <<= 1;
    }
    Ok(Some(acc))
}

/// `MPI_Allreduce`: reduce to communicator rank 0, then broadcast.
pub fn allreduce<T: PodNum>(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    data: &[T],
    op: ReduceOp,
) -> Result<Vec<T>> {
    let reduced = reduce(ep, comm, clock, Rank(0), data, op)?;
    let bytes = bcast(
        ep,
        comm,
        clock,
        Rank(0),
        reduced
            .map(|v| Bytes::from(encode_slice(&v)))
            .unwrap_or_default(),
    )?;
    decode_slice(&bytes)
}

/// `MPI_Gather` of per-rank byte blobs to `root`. Returns `Some(blobs)` in
/// communicator-rank order at the root, `None` elsewhere. Each received
/// blob aliases its arrival buffer — the root copies nothing but its own
/// contribution.
pub fn gather(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    root: Rank,
    data: &[u8],
) -> Result<Option<Vec<Bytes>>> {
    let n = comm.size() as usize;
    let me = comm.rank();
    let tag = coll_tag(OP_GATHER, comm.coll_seq);
    comm.coll_seq += 1;
    if me == root {
        let mut out: Vec<Bytes> = vec![Bytes::new(); n];
        out[me.index()] = Bytes::copy_from_slice(data);
        for (i, slot) in out.iter_mut().enumerate() {
            if i == me.index() {
                continue;
            }
            let m = recv_c(ep, comm, clock, Rank(i as u32), tag)?;
            *slot = m.data;
        }
        Ok(Some(out))
    } else {
        send_c(ep, comm, clock, root, tag, data)?;
        Ok(None)
    }
}

/// `MPI_Scatter` of per-rank byte blobs from `root` (which passes
/// `Some(blobs)`, one per rank). Returns this rank's blob.
pub fn scatter(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    root: Rank,
    data: Option<Vec<Bytes>>,
) -> Result<Bytes> {
    let n = comm.size() as usize;
    let me = comm.rank();
    let tag = coll_tag(OP_SCATTER, comm.coll_seq);
    comm.coll_seq += 1;
    if me == root {
        let blobs = data.ok_or_else(|| Error::invalid_arg("scatter root must supply the blobs"))?;
        if blobs.len() != n {
            return Err(Error::invalid_arg(format!(
                "scatter needs {n} blobs, got {}",
                blobs.len()
            )));
        }
        for (i, blob) in blobs.iter().enumerate() {
            if i != me.index() {
                send_c(ep, comm, clock, Rank(i as u32), tag, blob)?;
            }
        }
        Ok(blobs[me.index()].clone())
    } else {
        Ok(recv_c(ep, comm, clock, root, tag)?.data)
    }
}

/// `MPI_Allgather` of per-rank blobs: gather to rank 0, then broadcast the
/// concatenation (wire layout in the module docs). Every returned blob is
/// a zero-copy slice of the single broadcast buffer.
pub fn allgather(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    data: &[u8],
) -> Result<Vec<Bytes>> {
    let gathered = gather(ep, comm, clock, Rank(0), data)?;
    let framed = gathered.map(|blobs| {
        let total: usize = 4 + blobs.iter().map(|b| 4 + b.len()).sum::<usize>();
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&(blobs.len() as u32).to_be_bytes());
        for b in &blobs {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
        Bytes::from(out)
    });
    let bytes = bcast(ep, comm, clock, Rank(0), framed.unwrap_or_default())?;
    // Unframe by slicing the shared buffer.
    let mut out = Vec::new();
    let mut pos = 4usize;
    if bytes.len() < 4 {
        return Err(Error::codec("allgather frame too short"));
    }
    let count = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
    for _ in 0..count {
        if pos + 4 > bytes.len() {
            return Err(Error::codec("allgather frame truncated"));
        }
        let len = u32::from_be_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(Error::codec("allgather frame truncated"));
        }
        out.push(bytes.slice(pos..pos + len));
        pos += len;
    }
    Ok(out)
}

/// `MPI_Alltoall` of per-destination blobs (`send[i]` goes to communicator
/// rank `i`); returns per-source blobs, each aliasing its arrival buffer
/// (only this rank's own blob is copied).
pub fn alltoall(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    send: &[Vec<u8>],
) -> Result<Vec<Bytes>> {
    let n = comm.size() as usize;
    let me = comm.rank().index();
    if send.len() != n {
        return Err(Error::invalid_arg(format!(
            "alltoall needs {n} blobs, got {}",
            send.len()
        )));
    }
    let tag = coll_tag(OP_ALLTOALL, comm.coll_seq);
    comm.coll_seq += 1;
    let mut out: Vec<Bytes> = vec![Bytes::new(); n];
    out[me] = Bytes::copy_from_slice(&send[me]);
    // Pairwise exchange: round r pairs me with me^r is only valid for powers
    // of two; use the simple shifted schedule instead.
    for r in 1..n {
        let dst = (me + r) % n;
        let src = (me + n - r) % n;
        send_c(ep, comm, clock, Rank(dst as u32), tag, &send[dst])?;
        let m = recv_c(ep, comm, clock, Rank(src as u32), tag)?;
        out[src] = m.data;
    }
    Ok(out)
}

/// `MPI_Scan` (inclusive prefix reduction in communicator-rank order).
pub fn scan<T: PodNum>(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    data: &[T],
    op: ReduceOp,
) -> Result<Vec<T>> {
    let n = comm.size() as usize;
    let me = comm.rank().index();
    let tag = coll_tag(OP_SCAN, comm.coll_seq);
    comm.coll_seq += 1;
    let mut acc: Vec<T> = data.to_vec();
    if me > 0 {
        let m = recv_c(ep, comm, clock, Rank((me - 1) as u32), tag)?;
        let prev: Vec<T> = decode_slice(&m.data)?;
        for (a, p) in acc.iter_mut().zip(prev) {
            *a = T::reduce(op, p, *a);
        }
    }
    if me + 1 < n {
        send_c(
            ep,
            comm,
            clock,
            Rank((me + 1) as u32),
            tag,
            &encode_slice(&acc),
        )?;
    }
    Ok(acc)
}

/// `MPI_Comm_split`: members with the same `color` form a new communicator,
/// ordered by `(key, world rank)`. Returns `None` for `color == None`
/// (MPI_UNDEFINED).
pub fn comm_split(
    ep: &mut MpiEndpoint,
    comm: &mut Comm,
    clock: &mut VClock,
    color: Option<u32>,
    key: u32,
) -> Result<Option<Comm>> {
    // Exchange (color, key) via allgather.
    let mut mine = Vec::new();
    mine.extend_from_slice(&color.unwrap_or(u32::MAX).to_be_bytes());
    mine.extend_from_slice(&key.to_be_bytes());
    let all = allgather(ep, comm, clock, &mine)?;
    let Some(my_color) = color else {
        return Ok(None);
    };
    let mut members: Vec<(u32, Rank)> = Vec::new();
    for (i, blob) in all.iter().enumerate() {
        if blob.len() != 8 {
            return Err(Error::codec("bad split blob"));
        }
        let c = u32::from_be_bytes(blob[0..4].try_into().unwrap());
        let k = u32::from_be_bytes(blob[4..8].try_into().unwrap());
        if c == my_color {
            members.push((k, comm.world_rank(Rank(i as u32))?));
        }
    }
    members.sort();
    let world_members: Vec<Rank> = members.into_iter().map(|(_, r)| r).collect();
    let new_ctx = crate::comm::derive_context(
        comm.context(),
        my_color
            .wrapping_mul(2654435761)
            .wrapping_add(OP_SPLIT as u32),
    );
    let me_world = comm.world_rank(comm.rank())?;
    Ok(Some(Comm::from_members(new_ctx, world_members, me_world)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::RankDirectory;
    use crate::endpoint::RecvMode;
    use starfish_util::trace::TraceSink;
    use starfish_util::{AppId, NodeId, VirtualTime};
    use starfish_vni::{Fabric, Ideal, LayerCosts};

    /// Run `f(rank, endpoint, comm, clock)` on `n` rank-threads and collect
    /// the results in rank order.
    fn run_ranks<T: Send + 'static>(
        n: u32,
        f: impl Fn(u32, &mut MpiEndpoint, &mut Comm, &mut VClock) -> T + Send + Sync + 'static,
    ) -> Vec<T> {
        let fabric = Fabric::new(Box::new(Ideal), LayerCosts::zero());
        for i in 0..n {
            fabric.add_node(NodeId(i));
        }
        let dir = RankDirectory::with_placement(&(0..n).map(NodeId).collect::<Vec<_>>());
        let f = std::sync::Arc::new(f);
        // Bind every endpoint before any rank runs (the MPI_Init barrier the
        // daemons provide in the full runtime).
        let eps: Vec<MpiEndpoint> = (0..n)
            .map(|r| {
                MpiEndpoint::new(
                    &fabric,
                    AppId(1),
                    starfish_util::Rank(r),
                    dir.clone(),
                    RecvMode::Polled,
                    TraceSink::disabled(),
                )
                .unwrap()
            })
            .collect();
        let mut handles = Vec::new();
        for (r, mut ep) in eps.into_iter().enumerate() {
            let f = f.clone();
            handles.push(std::thread::spawn(move || {
                let mut comm = Comm::world(n, starfish_util::Rank(r as u32));
                let mut clock = VClock::new();
                f(r as u32, &mut ep, &mut comm, &mut clock)
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn barrier_completes_at_many_sizes() {
        for n in [1u32, 2, 3, 5, 8] {
            let done = run_ranks(n, |_, ep, comm, clock| {
                barrier(ep, comm, clock).unwrap();
                true
            });
            assert_eq!(done.len(), n as usize);
        }
    }

    #[test]
    fn barrier_synchronizes_virtual_time() {
        // Rank 0 is far ahead in virtual time; after the barrier everyone's
        // clock is at least rank 0's pre-barrier time.
        let vts = run_ranks(4, |r, ep, comm, clock| {
            if r == 0 {
                clock.advance(VirtualTime::from_millis(500));
            }
            barrier(ep, comm, clock).unwrap();
            clock.now()
        });
        for vt in &vts {
            assert!(*vt >= VirtualTime::from_millis(500), "vt {vt:?}");
        }
    }

    #[test]
    fn bcast_from_various_roots() {
        for n in [2u32, 3, 5] {
            for root in 0..n {
                let res = run_ranks(n, move |r, ep, comm, clock| {
                    let data = if r == root {
                        format!("hello-{root}").into_bytes()
                    } else {
                        Vec::new()
                    };
                    bcast(ep, comm, clock, Rank(root), data.into()).unwrap()
                });
                for v in res {
                    assert_eq!(v, format!("hello-{root}").into_bytes());
                }
            }
        }
    }

    #[test]
    fn reduce_sum_and_max() {
        let res = run_ranks(5, |r, ep, comm, clock| {
            let data = vec![r as i64, 10 - r as i64];
            reduce(ep, comm, clock, Rank(0), &data, ReduceOp::Sum).unwrap()
        });
        assert_eq!(res[0].as_ref().unwrap(), &vec![10, 40]); // sum 0..5, 50-10
        for r in res.iter().skip(1) {
            assert!(r.is_none());
        }
        let res = run_ranks(4, |r, ep, comm, clock| {
            reduce(ep, comm, clock, Rank(2), &[r as i64], ReduceOp::Max).unwrap()
        });
        assert_eq!(res[2].as_ref().unwrap(), &vec![3]);
    }

    #[test]
    fn allreduce_everyone_gets_result() {
        for n in [1u32, 3, 4, 6] {
            let res = run_ranks(n, |r, ep, comm, clock| {
                allreduce(ep, comm, clock, &[(r + 1) as f64], ReduceOp::Prod).unwrap()
            });
            let expect: f64 = (1..=n).map(|x| x as f64).product();
            for v in res {
                assert_eq!(v, vec![expect]);
            }
        }
    }

    #[test]
    fn gather_and_scatter() {
        let res = run_ranks(4, |r, ep, comm, clock| {
            gather(ep, comm, clock, Rank(1), &[r as u8; 3]).unwrap()
        });
        let blobs = res[1].as_ref().unwrap();
        for (i, b) in blobs.iter().enumerate() {
            assert_eq!(b, &vec![i as u8; 3]);
        }
        let res = run_ranks(4, |r, ep, comm, clock| {
            let data = if r == 0 {
                Some((0..4).map(|i| Bytes::from(vec![i as u8 * 10])).collect())
            } else {
                None
            };
            scatter(ep, comm, clock, Rank(0), data).unwrap()
        });
        for (i, b) in res.iter().enumerate() {
            assert_eq!(b, &vec![i as u8 * 10]);
        }
    }

    #[test]
    fn allgather_all_see_all() {
        let res = run_ranks(3, |r, ep, comm, clock| {
            allgather(ep, comm, clock, &[r as u8 + 1]).unwrap()
        });
        for blobs in res {
            assert_eq!(blobs, vec![vec![1u8], vec![2], vec![3]]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let res = run_ranks(4, |r, ep, comm, clock| {
            let send: Vec<Vec<u8>> = (0..4).map(|d| vec![r as u8, d as u8]).collect();
            alltoall(ep, comm, clock, &send).unwrap()
        });
        for (me, got) in res.iter().enumerate() {
            for (src, blob) in got.iter().enumerate() {
                assert_eq!(blob, &vec![src as u8, me as u8]);
            }
        }
    }

    #[test]
    fn scan_prefix_sums() {
        let res = run_ranks(5, |r, ep, comm, clock| {
            scan(ep, comm, clock, &[(r + 1) as i64], ReduceOp::Sum).unwrap()
        });
        let mut expect = 0i64;
        for (r, v) in res.iter().enumerate() {
            expect += (r + 1) as i64;
            assert_eq!(v, &vec![expect]);
        }
    }

    #[test]
    fn comm_split_partitions_and_works() {
        // Even/odd split; each half does its own allreduce.
        let res = run_ranks(4, |r, ep, comm, clock| {
            let color = Some(r % 2);
            let mut sub = comm_split(ep, comm, clock, color, r).unwrap().unwrap();
            assert_eq!(sub.size(), 2);
            allreduce(ep, &mut sub, clock, &[r as i64], ReduceOp::Sum).unwrap()
        });
        assert_eq!(res[0], vec![2]); // 0 + 2
        assert_eq!(res[2], vec![2]);
        assert_eq!(res[1], vec![4]); // 1 + 3
        assert_eq!(res[3], vec![4]);
    }

    #[test]
    fn comm_split_undefined_color() {
        let res = run_ranks(3, |r, ep, comm, clock| {
            let color = if r == 2 { None } else { Some(0) };
            comm_split(ep, comm, clock, color, 0).unwrap().is_some()
        });
        assert_eq!(res, vec![true, true, false]);
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let res = run_ranks(3, |r, ep, comm, clock| {
            let a = allreduce(ep, comm, clock, &[r as i64], ReduceOp::Sum).unwrap();
            let b = allreduce(ep, comm, clock, &[r as i64 * 10], ReduceOp::Sum).unwrap();
            barrier(ep, comm, clock).unwrap();
            let c = allreduce(ep, comm, clock, &[1i64], ReduceOp::Sum).unwrap();
            (a, b, c)
        });
        for (a, b, c) in res {
            assert_eq!(a, vec![3]);
            assert_eq!(b, vec![30]);
            assert_eq!(c, vec![3]);
        }
    }

    #[test]
    fn pod_slice_roundtrip() {
        let xs = vec![1.5f64, -2.25, 0.0];
        assert_eq!(decode_slice::<f64>(&encode_slice(&xs)).unwrap(), xs);
        assert!(decode_slice::<f64>(&[1, 2, 3]).is_err());
    }
}
