//! The rank → node directory.
//!
//! The daemons decide where each application process runs — initially at
//! spawn, and again when a process is migrated or restarted on a surviving
//! node (paper §3.2). The directory is the authoritative, shared view of
//! that placement, plus the application's current restart epoch, which the
//! MPI layer stamps on every message so that traffic from a rolled-back past
//! is discarded.

use std::sync::Arc;

use parking_lot::RwLock;

use starfish_util::{Epoch, Error, NodeId, Rank, Result};

#[derive(Debug, Default)]
struct DirInner {
    placement: Vec<Option<NodeId>>,
    epoch: Epoch,
}

/// Shared placement directory of one application. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct RankDirectory {
    inner: Arc<RwLock<DirInner>>,
}

impl RankDirectory {
    /// Create a directory for `size` ranks, all unplaced.
    pub fn new(size: usize) -> Self {
        RankDirectory {
            inner: Arc::new(RwLock::new(DirInner {
                placement: vec![None; size],
                epoch: Epoch(0),
            })),
        }
    }

    /// Create with an explicit initial placement.
    pub fn with_placement(nodes: &[NodeId]) -> Self {
        RankDirectory {
            inner: Arc::new(RwLock::new(DirInner {
                placement: nodes.iter().map(|n| Some(*n)).collect(),
                epoch: Epoch(0),
            })),
        }
    }

    pub fn size(&self) -> usize {
        self.inner.read().placement.len()
    }

    /// Where a rank currently lives.
    pub fn node_of(&self, rank: Rank) -> Result<NodeId> {
        self.inner
            .read()
            .placement
            .get(rank.index())
            .copied()
            .flatten()
            .ok_or_else(|| Error::not_found(format!("rank {rank} is not placed")))
    }

    /// (Re)place a rank on a node (spawn, migration, restart).
    pub fn place(&self, rank: Rank, node: NodeId) {
        let mut g = self.inner.write();
        if rank.index() >= g.placement.len() {
            g.placement.resize(rank.index() + 1, None);
        }
        g.placement[rank.index()] = Some(node);
    }

    /// Mark a rank as down (its node crashed); sends to it fail fast until
    /// it is re-placed.
    pub fn unplace(&self, rank: Rank) {
        let mut g = self.inner.write();
        if let Some(slot) = g.placement.get_mut(rank.index()) {
            *slot = None;
        }
    }

    /// Ranks currently placed on `node`.
    pub fn ranks_on(&self, node: NodeId) -> Vec<Rank> {
        self.inner
            .read()
            .placement
            .iter()
            .enumerate()
            .filter(|(_, n)| **n == Some(node))
            .map(|(i, _)| Rank(i as u32))
            .collect()
    }

    /// Full placement snapshot.
    pub fn snapshot(&self) -> Vec<(Rank, Option<NodeId>)> {
        self.inner
            .read()
            .placement
            .iter()
            .enumerate()
            .map(|(i, n)| (Rank(i as u32), *n))
            .collect()
    }

    /// The application's current restart epoch.
    pub fn epoch(&self) -> Epoch {
        self.inner.read().epoch
    }

    /// Bump the epoch (called by the daemons when the application rolls
    /// back); returns the new epoch.
    pub fn bump_epoch(&self) -> Epoch {
        let mut g = self.inner.write();
        g.epoch = Epoch(g.epoch.0 + 1);
        g.epoch
    }

    /// Set the epoch to an absolute value (from the replicated
    /// configuration; idempotent, never regresses).
    pub fn set_epoch(&self, e: Epoch) {
        let mut g = self.inner.write();
        if e > g.epoch {
            g.epoch = e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_lookup() {
        let d = RankDirectory::new(3);
        assert!(d.node_of(Rank(0)).is_err());
        d.place(Rank(0), NodeId(5));
        d.place(Rank(1), NodeId(6));
        assert_eq!(d.node_of(Rank(0)).unwrap(), NodeId(5));
        assert_eq!(d.ranks_on(NodeId(6)), vec![Rank(1)]);
        assert_eq!(d.size(), 3);
    }

    #[test]
    fn unplace_fails_fast() {
        let d = RankDirectory::with_placement(&[NodeId(0), NodeId(1)]);
        d.unplace(Rank(1));
        assert!(d.node_of(Rank(1)).is_err());
        // Re-placement (restart on another node).
        d.place(Rank(1), NodeId(0));
        assert_eq!(d.node_of(Rank(1)).unwrap(), NodeId(0));
        assert_eq!(d.ranks_on(NodeId(0)), vec![Rank(0), Rank(1)]);
    }

    #[test]
    fn epoch_bumps() {
        let d = RankDirectory::new(1);
        assert_eq!(d.epoch(), Epoch(0));
        assert_eq!(d.bump_epoch(), Epoch(1));
        assert_eq!(d.epoch(), Epoch(1));
    }

    #[test]
    fn place_beyond_size_grows() {
        let d = RankDirectory::new(1);
        d.place(Rank(4), NodeId(2));
        assert_eq!(d.node_of(Rank(4)).unwrap(), NodeId(2));
        assert_eq!(d.size(), 5);
    }
}
